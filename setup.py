"""Shim for environments without the `wheel` package (offline legacy editable install)."""
from setuptools import setup

setup()
