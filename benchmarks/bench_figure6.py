"""Bench: regenerate Fig. 6 (serial + 8 ranks predicting 64 ranks)."""

from repro.experiments.figure56 import _print_figure, accuracy_for_small_scale


def run_fig6(trials=None, seed=0, quiet=False):
    results = accuracy_for_small_scale(8, trials=trials, seed=seed)
    if not quiet:
        _print_figure("Figure 6 — serial + 8 ranks predicting 64 ranks", results)
    return results


def test_figure6(regenerate):
    out = regenerate(run_fig6, "figure6")
    errors = [r["error"] for r in out.values()]
    assert sum(errors) / len(errors) < 0.25  # paper: 7% average, 19% max
