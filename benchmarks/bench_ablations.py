"""Ablation benches for the design choices DESIGN.md calls out.

All four reuse the cached campaigns of the figure benches where
possible, so they are cheap to re-run after the main harness.
"""

from __future__ import annotations

from repro.apps import get_app, paper_apps
from repro.experiments.common import (
    build_predictor,
    default_trials,
    measured_campaign,
    small_campaign,
)
from repro.fi.cache import cached_campaign
from repro.fi.campaign import Deployment
from repro.model.propagation import PropagationProfile, map_small_to_large
from repro.model.result import FaultInjectionResult
from repro.model.similarity import cosine_similarity
from repro.utils.tables import format_table

TARGET = 64


def ablation_alpha(trials=None, seed=0, quiet=False):
    """Sweep the fine-tuning trigger threshold (paper fixes 20 %)."""
    trials = default_trials(trials)
    thresholds = (0.05, 0.20, 0.50, float("inf"))
    rows = []
    out = {}
    for thr in thresholds:
        errors = []
        for name in paper_apps():
            predictor = build_predictor(
                name, small_nprocs=8, target_nprocs=TARGET, trials=trials, seed=seed
            )
            predictor.fine_tune_threshold = thr
            predicted = predictor.predict(TARGET)
            measured = FaultInjectionResult.from_campaign(
                measured_campaign(get_app(name), TARGET, trials, seed)
            )
            errors.append(abs(predicted.success - measured.success))
        avg = sum(errors) / len(errors)
        out[thr] = avg
        label = "off (never tune)" if thr == float("inf") else f"{thr:.2f}"
        rows.append((label, 100 * avg, 100 * max(errors)))
    if not quiet:
        print(format_table(
            ["trigger threshold", "avg error (pp)", "max error (pp)"],
            rows, title="Ablation — alpha fine-tuning threshold (S=8, p=64)",
        ))
    return out


def ablation_mapping(trials=None, seed=0, quiet=False):
    """Eq. 5 group mapping vs linear interpolation of r'.

    Both projections spread the small-scale mass over whole groups, so
    neither reconstructs the measured 64-rank histogram's concentration
    at exactly p contaminated ranks — the cosine against the raw
    profile is moderate for both, with interpolation marginally ahead.
    This is why the predictor consumes the *group weights* (Eq. 8)
    rather than the projected per-case vector: at group granularity the
    agreement is high (Table 2).
    """
    trials = default_trials(trials)
    rows = []
    out = {}
    for name in paper_apps():
        app = get_app(name)
        small = PropagationProfile.from_campaign(small_campaign(app, 8, trials, seed))
        large = PropagationProfile.from_campaign(
            measured_campaign(app, TARGET, trials, seed)
        )
        scores = {}
        for mode in ("group", "interpolate"):
            projected = map_small_to_large(small, TARGET, mode=mode)
            scores[mode] = cosine_similarity(
                projected.as_array(), large.as_array()
            )
        out[name] = scores
        rows.append((name.upper(), scores["group"], scores["interpolate"]))
    if not quiet:
        print(format_table(
            ["Benchmark", "Eq.5 group mapping", "linear interpolation"],
            rows, title="Ablation — propagation projection mode (cosine vs measured)",
        ))
    return out


def ablation_prob2(trials=None, seed=0, quiet=False):
    """Eq. 1 weight source: target-scale profile run vs extrapolation."""
    trials = default_trials(trials)
    rows = []
    out = {}
    for name in paper_apps():
        measured = FaultInjectionResult.from_campaign(
            measured_campaign(get_app(name), TARGET, trials, seed)
        )
        errs = {}
        for mode in ("profile", "extrapolate"):
            predictor = build_predictor(
                name, small_nprocs=8, target_nprocs=TARGET,
                trials=trials, seed=seed, prob2_mode=mode,
            )
            errs[mode] = abs(predictor.predict(TARGET).success - measured.success)
        out[name] = errs
        rows.append((name.upper(), 100 * errs["profile"], 100 * errs["extrapolate"]))
    if not quiet:
        print(format_table(
            ["Benchmark", "profile-run prob2 (pp)", "extrapolated prob2 (pp)"],
            rows, title="Ablation — source of the Eq. 1 parallel-unique weight",
        ))
    return out


def ablation_trials(trials=None, seed=0, quiet=False):
    """Statistical stability: success rate vs number of tests (§2/§5.1)."""
    counts = (50, 100, 200, 400)
    app = get_app("lu")
    rows = []
    out = {}
    for t in counts:
        res = cached_campaign(app, Deployment(nprocs=8, trials=t, seed=seed + 70_000))
        fi = FaultInjectionResult.from_campaign(res)
        lo, hi = fi.success_interval()
        out[t] = fi.success
        rows.append((t, fi.success, hi - lo))
    if not quiet:
        print(format_table(
            ["tests", "success rate", "95% CI width"],
            rows, title="Ablation — statistical stability of one deployment (LU, 8 ranks)",
        ))
    return out


def test_ablation_alpha(regenerate):
    out = regenerate(ablation_alpha, "ablation_alpha")
    assert out[0.20] <= out[float("inf")] + 0.05  # tuning should not hurt


def test_ablation_mapping(regenerate):
    out = regenerate(ablation_mapping, "ablation_mapping")
    for name, scores in out.items():
        # both projections are meaningful and land close to each other;
        # the per-case vector comparison is deliberately harsher than
        # Table 2's grouped comparison (see ablation_mapping docstring)
        assert 0.1 <= scores["group"] <= 1.0, name
        assert abs(scores["group"] - scores["interpolate"]) < 0.15, name


def test_ablation_prob2(regenerate):
    out = regenerate(ablation_prob2, "ablation_prob2")
    assert all(0 <= e <= 1 for s in out.values() for e in s.values())


def test_ablation_trials(regenerate):
    out = regenerate(ablation_trials, "ablation_trials")
    rates = list(out.values())
    assert max(rates) - min(rates) < 0.2  # §5.1: rates stabilize quickly
