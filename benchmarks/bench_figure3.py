"""Bench: regenerate Fig. 3 (serial multi-error vs parallel conditional)."""

from repro.experiments import figure3


def test_figure3(regenerate):
    out = regenerate(figure3.run, "figure3")
    for name, curves in out.items():
        serial = curves["serial"]
        # more injected errors never help: the serial curve trends down
        assert serial[0] >= serial[-1] - 0.05, name
        observed = [v for v in curves["parallel"] if v is not None]
        assert observed, name
