"""Bench: regenerate Fig. 8 (accuracy vs fault-injection cost)."""

from repro.experiments import figure8


def test_figure8(regenerate):
    out = regenerate(figure8.run, "figure8")
    scales = sorted(out)
    # paper shape: injection time grows monotonically with the scale,
    # and the largest small-scale gives at least as good accuracy as the
    # smallest
    # compare the extremes; intermediate wall times can wobble when the
    # cache was built on a shared machine
    times = [out[s]["normalized_time"] for s in scales]
    assert times[-1] > times[0]
    assert out[scales[-1]]["rmse"] <= out[scales[0]]["rmse"] + 0.05
