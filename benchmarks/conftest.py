"""Shared helpers for the benchmark harness.

Each ``bench_*`` file regenerates one of the paper's tables/figures (or
an ablation).  ``pytest-benchmark`` records the wall time of the full
regeneration; the actual rows are printed and also written under
``results/`` so ``pytest benchmarks/ --benchmark-only | tee ...`` leaves
a complete record.

Trial counts come from ``$REPRO_TRIALS`` (default 300; the paper uses
4000).  Campaigns are cached on disk (``.repro-cache/``), so benches
that share deployments — the serial samples reused by Figs. 5-8, the
measured 64-rank campaigns — only pay once per cache lifetime.
"""

from __future__ import annotations

import contextlib
import io
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


@pytest.fixture
def regenerate(benchmark, request):
    """Run one experiment once under the benchmark timer, tee its table."""

    def _run(func, name: str, **kwargs):
        captured: dict = {}

        def target():
            buf = io.StringIO()
            with contextlib.redirect_stdout(buf):
                captured["result"] = func(**kwargs)
            captured["text"] = buf.getvalue()

        benchmark.pedantic(target, rounds=1, iterations=1)
        text = captured.get("text", "")
        print()
        print(text)
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{name}.txt").write_text(text)
        return captured["result"]

    return _run
