#!/usr/bin/env python
"""Throughput benchmark for the trial-parallel campaign engine.

Runs one CG deployment serially and under ``jobs=2`` / ``jobs=4``,
verifies the parallel results are bit-identical to serial, and writes
``BENCH_campaign.json`` so the performance trajectory is tracked across
PRs.  On a runner with >= 4 cores (and outside ``--quick`` mode) the
benchmark *asserts* a >= 1.8x speedup at ``jobs=4``; on smaller machines
the speedup is recorded but not enforced — worker processes cannot beat
the clock without cores to run on.

The same deployment also runs once with crash-safe checkpointing at the
default interval (``repro.engine.DEFAULT_CHECKPOINT_EVERY``); outside
``--quick`` mode the benchmark asserts the durability tax stays under
5% of serial wall-clock.

The same CG deployment then runs lane-vectorized (``lanes=8/32``:
N trials batched into one pass through the app, see
docs/performance.md), verifies bit-identical joints, and *asserts* a
>= 4x trials/sec speedup at ``lanes=32`` — deterministic single-process
work, so enforced in ``--quick`` mode too.

Each fault-scenario family (``bitflip`` / ``rankkill`` /
``msgcorrupt``, see docs/scenarios.md) then runs the same deployment
through the pluggable dispatch path, recording per-family trials/sec
under the ``"scenarios"`` key.  Bit flips through the scenario layer
must stay bit-identical to the direct serial run, and (outside
``--quick`` mode) within 3% of its wall-clock — and of the prior
``BENCH_campaign.json``'s scenario-path time when a comparable record
exists.

An adaptive (``ci_halfwidth``) MG campaign then runs against the
fixed-N worst-case budget for the same ±0.08 precision target; the
benchmark asserts it converges with >= 25% fewer trials (deterministic,
enforced in ``--quick`` mode too) and, outside ``--quick`` mode, that
``jobs=2`` reproduces the serial adaptive run bit-for-bit.

The same CG deployment then runs on the distributed backend
(``--backend distributed:host:port``, see docs/distributed.md) against
real ``repro-worker`` subprocess pools of 1 and 2 workers — each pool
serving the campaign twice, cold then warm — recording trials/sec vs
pool size and the cold-vs-warm per-worker init time under the
``"distributed"`` key.  Both runs must stay bit-identical to serial and
the second campaign must find every worker warm (no re-init);
throughput is recorded but not enforced — on a small runner the socket
round-trips can eat the parallelism.

Finally the same CG deployment runs once with the hot-path profiler on
(``--profile``), recording its per-phase attribution, coverage and
overhead under the ``"profile"`` key of ``BENCH_campaign.json``.  The
profiler's *disabled*-path cost (the ``if prof is None`` test every
instrumented op now pays) is audited against the previous full-mode
``BENCH_campaign.json`` on disk, when one with a matching configuration
exists: serial wall-clock may not regress by more than 5%.

The deployment also runs once with causal tracing on (``--timeline``),
recording span counts and the tracing-enabled overhead under the
``"trace"`` key; outside ``--quick`` mode a tracing-*disabled* re-run
(best of 3) must stay within 2% of the baseline serial wall-clock —
the per-chunk/per-trial ``if tracing`` tests must be free.

Usage::

    python benchmarks/bench_campaign.py                # full: 200 trials
    python benchmarks/bench_campaign.py --quick        # CI smoke: 40 trials
    python benchmarks/bench_campaign.py --trials 1000 --jobs 2 4 8
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

# allow direct execution without an installed package / PYTHONPATH
sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

REQUIRED_SPEEDUP = 1.8
ASSERT_MIN_CPUS = 4

# Lane vectorization is single-process numpy work — no cores to wait
# on, no spawn overhead — so its floor holds on any machine and is
# asserted even in --quick mode.
LANES_REQUIRED_SPEEDUP = 4.0
LANE_COUNTS = (8, 32)
MAX_CHECKPOINT_OVERHEAD = 0.05  # durable progress must cost < 5% serial

# The profiler's disabled path (one ``is None`` test per instrumented
# op) must stay within noise of the pre-instrumentation baseline: the
# current serial time may not exceed the previous full-mode benchmark's
# serial time (same app/trials/nprocs/cpu_count) by more than 5%.
MAX_DISABLED_PROFILE_DRIFT = 0.05

# Causal tracing sits on chunk/trial boundaries, not in per-op hot
# loops, so its disabled path (a handful of ``if tracing`` tests per
# trial) must be unmeasurable: a tracing-off re-run (best of 3) may not
# exceed the baseline serial wall-clock by more than 2%.
MAX_DISABLED_TRACE_OVERHEAD = 0.02

# The scenario layer's dispatch (resolve_model + one virtual call per
# trial) must be free: the bit-flip family timed *through* the pluggable
# path may not run more than 3% slower than the direct serial baseline,
# and — when a comparable prior BENCH_campaign.json exists — more than
# 3% slower than the previous record's scenario-path time.
MAX_SCENARIO_DISPATCH_OVERHEAD = 0.03
SCENARIO_FAMILIES = ("bitflip", "rankkill", "msgcorrupt")

# Adaptive stopping must beat the fixed-N worst-case budget by >= 25%
# at the same precision target on a skewed deployment (MG's outcome
# rates are far from 1/2, the regime the paper's campaigns live in).
# Deterministic — asserted in --quick mode too.
ADAPTIVE_TARGET = 0.08
MIN_ADAPTIVE_SAVINGS = 0.25

# The distributed backend's value proposition is warm reuse — the same
# worker pool serves campaign after campaign without re-unpickling the
# engine context — so each pool size runs the deployment twice and the
# second campaign must join every worker warm. Byte-identity to serial
# is asserted for both runs; trials/sec is recorded only.
DIST_WORKER_COUNTS = (1, 2)


def _time_campaign(
    app, deployment, jobs: int, checkpoint_every: int | None = None
) -> tuple[float, dict]:
    from repro.fi.campaign import run_campaign

    t0 = time.perf_counter()
    result = run_campaign(
        app, deployment, jobs=jobs, checkpoint_every=checkpoint_every
    )
    return time.perf_counter() - t0, result.joint


def _time_adaptive(app, deployment, jobs: int) -> tuple[float, dict, object]:
    """Run one adaptive campaign; returns (wall, joint, CampaignConverged)."""
    from repro.fi.campaign import run_campaign
    from repro.obs import MemorySink, Recorder, recording
    from repro.obs.events import CampaignConverged

    mem = MemorySink()
    with recording(Recorder([mem])):
        t0 = time.perf_counter()
        result = run_campaign(app, deployment, jobs=jobs)
        wall = time.perf_counter() - t0
    (converged,) = mem.of(CampaignConverged)
    return wall, result.joint, converged


def _bench_lanes(app, nprocs: int, quick: bool) -> tuple[dict, bool]:
    """Trials/sec of the lane-vectorized pass vs the scalar loop."""
    from repro.fi.campaign import Deployment, run_campaign

    trials = 96 if quick else 256
    deployment = Deployment(nprocs=nprocs, trials=trials, seed=123)
    repeats = 2 if quick else 3
    print(f"bench_lanes: app={app.name} nprocs={nprocs} trials={trials} "
          f"(best of {repeats})")

    run_campaign(app, deployment, jobs=1, lanes=1)  # warm caches/JIT-free
    times: dict[int, float] = {}
    joints: dict[int, dict] = {}
    for lanes in (1, *LANE_COUNTS):
        best = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            result = run_campaign(app, deployment, jobs=1, lanes=lanes)
            best = min(best, time.perf_counter() - t0)
        times[lanes] = best
        joints[lanes] = result.joint

    parity_ok = all(
        joints[lanes] == joints[1] and list(joints[lanes]) == list(joints[1])
        for lanes in LANE_COUNTS
    )
    speedups = {lanes: times[1] / times[lanes] for lanes in LANE_COUNTS}
    for lanes in (1, *LANE_COUNTS):
        note = (f"  speedup {speedups[lanes]:.2f}x" if lanes != 1 else "")
        print(f"  lanes={lanes:<3d} {times[lanes]:7.2f}s  "
              f"{trials / times[lanes]:7.1f} trials/s{note}")
    ok = parity_ok
    if not parity_ok:
        print("FAIL: lane-vectorized joint diverged from lanes=1",
              file=sys.stderr)
    top = max(LANE_COUNTS)
    if speedups[top] < LANES_REQUIRED_SPEEDUP:
        print(f"FAIL: lanes={top} speedup {speedups[top]:.2f}x < "
              f"{LANES_REQUIRED_SPEEDUP}x", file=sys.stderr)
        ok = False
    record = {
        "trials": trials,
        "times_s": {str(n): round(t, 4) for n, t in times.items()},
        "trials_per_s": {
            str(n): round(trials / t, 1) for n, t in times.items()
        },
        "speedup": {str(n): round(s, 3) for n, s in speedups.items()},
        "parity_ok": parity_ok,
    }
    return record, ok


def _bench_scenarios(
    app,
    deployment,
    serial_time: float,
    serial_joint: dict,
    prior: dict | None,
    quick: bool,
) -> tuple[dict, bool]:
    """Per-family trials/sec through the pluggable scenario layer.

    ``bitflip`` is the same physics the rest of the benchmark times, so
    its joint must stay bit-identical to the direct serial run and its
    wall-clock within ``MAX_SCENARIO_DISPATCH_OVERHEAD`` of it (the
    dispatch indirection must be free); ``rankkill`` / ``msgcorrupt``
    establish the throughput record for the system-level families.
    """
    from dataclasses import replace

    from repro.fi.campaign import run_campaign

    trials = deployment.trials
    print(f"bench_scenarios: app={app.name} nprocs={deployment.nprocs} "
          f"trials={trials}")
    times: dict[str, float] = {}
    ok = True
    for family in SCENARIO_FAMILIES:
        dep = replace(deployment, scenario=family)
        t0 = time.perf_counter()
        result = run_campaign(app, dep, jobs=1)
        times[family] = time.perf_counter() - t0
        print(f"  --scenario {family:<11s} {times[family]:7.2f}s  "
              f"{trials / times[family]:7.1f} trials/s")
        if family == "bitflip" and (
            result.joint != serial_joint
            or list(result.joint) != list(serial_joint)
        ):
            print("FAIL: bit flips through the scenario layer diverged "
                  "from the direct serial run", file=sys.stderr)
            ok = False

    dispatch_overhead = times["bitflip"] / serial_time - 1.0
    print(f"  bitflip dispatch overhead vs serial baseline  "
          f"{100 * dispatch_overhead:+.1f}%")
    if not quick and dispatch_overhead > MAX_SCENARIO_DISPATCH_OVERHEAD:
        print(f"FAIL: scenario dispatch adds {100 * dispatch_overhead:.1f}% "
              f"> {100 * MAX_SCENARIO_DISPATCH_OVERHEAD:.0f}% to bit-flip "
              f"wall-clock", file=sys.stderr)
        ok = False

    record = {
        "trials": trials,
        "times_s": {f: round(t, 4) for f, t in times.items()},
        "trials_per_s": {f: round(trials / t, 1) for f, t in times.items()},
        "bitflip_dispatch_overhead": round(dispatch_overhead, 4),
    }

    # throughput drift vs the previous record's scenario-path time, when
    # one was captured on a comparable configuration
    prior_bitflip = (
        prior.get("scenarios", {}).get("times_s", {}).get("bitflip")
        if prior is not None else None
    )
    comparable = (
        isinstance(prior_bitflip, (int, float))
        and prior.get("quick") == quick
        and all(
            prior.get(key) == value for key, value in (
                ("bench", "campaign"), ("app", app.name),
                ("nprocs", deployment.nprocs), ("trials", trials),
                ("cpu_count", os.cpu_count() or 1),
            )
        )
    )
    if comparable:
        drift = times["bitflip"] / prior_bitflip - 1.0
        record["bitflip_drift_vs_prior"] = round(drift, 4)
        print(f"  bitflip throughput drift vs prior run  "
              f"{prior_bitflip:7.2f}s -> {times['bitflip']:7.2f}s  "
              f"({100 * drift:+.1f}%)")
        if not quick and drift > MAX_SCENARIO_DISPATCH_OVERHEAD:
            print(f"FAIL: bit-flip scenario wall-clock regressed "
                  f"{100 * drift:.1f}% > "
                  f"{100 * MAX_SCENARIO_DISPATCH_OVERHEAD:.0f}% vs the "
                  f"prior benchmark", file=sys.stderr)
            ok = False
    else:
        print("  (bitflip throughput drift check skipped: no comparable "
              "prior scenarios record)")
    return record, ok


def _bench_adaptive(quick: bool) -> tuple[dict, bool]:
    """The precision-targeted campaign vs its fixed-N worst-case budget."""
    from repro.apps import get_app
    from repro.engine import worst_case_trials
    from repro.fi.campaign import Deployment

    app = get_app("mg")
    cap = worst_case_trials(ADAPTIVE_TARGET)
    deployment = Deployment(
        nprocs=4, trials=cap, seed=123, ci_halfwidth=ADAPTIVE_TARGET
    )
    print(f"bench_adaptive: app=mg nprocs=4 target=±{ADAPTIVE_TARGET} "
          f"cap={cap} (fixed-N worst-case budget)")

    wall, joint, conv = _time_adaptive(app, deployment, jobs=1)
    savings = 1.0 - conv.trials_used / cap
    print(f"  jobs=1  {wall:7.2f}s  trials {conv.trials_used}/{cap} "
          f"in {conv.waves} wave(s)  savings {100 * savings:.0f}%  "
          f"worst ±{max(conv.halfwidths.values()):.4f}")

    parity_ok = True
    if not quick:
        wall2, joint2, conv2 = _time_adaptive(app, deployment, jobs=2)
        parity_ok = (
            joint2 == joint and list(joint2) == list(joint)
            and conv2.trials_used == conv.trials_used
        )
        print(f"  jobs=2  {wall2:7.2f}s  trials {conv2.trials_used}/{cap}  "
              f"parity {'ok' if parity_ok else 'BROKEN'}")

    ok = parity_ok
    if not conv.converged or max(conv.halfwidths.values()) > ADAPTIVE_TARGET:
        print(f"FAIL: adaptive campaign missed its ±{ADAPTIVE_TARGET} target",
              file=sys.stderr)
        ok = False
    if savings < MIN_ADAPTIVE_SAVINGS:
        print(f"FAIL: adaptive stopping saved only {100 * savings:.0f}% of "
              f"the fixed-N budget ({conv.trials_used}/{cap} trials), "
              f"expected >= {100 * MIN_ADAPTIVE_SAVINGS:.0f}%",
              file=sys.stderr)
        ok = False
    if not parity_ok:
        print("FAIL: adaptive jobs=2 diverged from serial", file=sys.stderr)
    record = {
        "app": "mg",
        "nprocs": 4,
        "target_halfwidth": ADAPTIVE_TARGET,
        "trials_cap": cap,
        "trials_used": conv.trials_used,
        "waves": conv.waves,
        "savings": round(savings, 3),
        "converged": conv.converged,
        "achieved_halfwidths": {
            k: round(v, 4) for k, v in conv.halfwidths.items()
        },
        "time_s": round(wall, 4),
        "parity_ok": parity_ok,
    }
    return record, ok


def _bench_distributed(
    app, deployment, serial_time: float, serial_joint: dict
) -> tuple[dict, bool]:
    """Trials/sec through warm distributed worker pools vs pool size."""
    import subprocess
    import tempfile

    from repro.fi.campaign import run_campaign
    from repro.obs import MemorySink, Recorder, recording
    from repro.obs.events import WorkerJoined

    trials = deployment.trials
    print(f"bench_distributed: app={app.name} nprocs={deployment.nprocs} "
          f"trials={trials} (cold + warm campaign per pool)")

    src = str(Path(__file__).resolve().parent.parent / "src")
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (src, env.get("PYTHONPATH")) if p
    )

    def timed_run(sink):
        with recording(Recorder([sink])):
            t0 = time.perf_counter()
            result = run_campaign(
                app, deployment, backend="distributed:127.0.0.1:0"
            )
            return time.perf_counter() - t0, result

    parity_ok = True
    warm_ok = True
    times: dict[int, float] = {}
    cold_inits: list[float] = []
    warm_inits: list[float] = []
    saved = {
        key: os.environ.get(key)
        for key in ("REPRO_DIST_PORT_FILE", "REPRO_DIST_WORKER_TIMEOUT")
    }
    try:
        # fail in a minute, not the default two, if a pool never comes up
        os.environ["REPRO_DIST_WORKER_TIMEOUT"] = "60"
        for n in DIST_WORKER_COUNTS:
            with tempfile.TemporaryDirectory() as tmp:
                port_file = str(Path(tmp) / "workers.port")
                os.environ["REPRO_DIST_PORT_FILE"] = port_file
                workers = [
                    subprocess.Popen(
                        [sys.executable, "-m", "repro.engine.distributed",
                         "--port-file", port_file, "--timeout", "60"],
                        env=env, stdout=subprocess.DEVNULL,
                        stderr=subprocess.DEVNULL,
                    )
                    for _ in range(n)
                ]
                try:
                    cold_sink = MemorySink()
                    cold_time, cold = timed_run(cold_sink)
                    warm_sink = MemorySink()
                    warm_time, warm = timed_run(warm_sink)
                finally:
                    for proc in workers:
                        proc.kill()
                    for proc in workers:
                        proc.wait()
            times[n] = warm_time
            warm_joins = warm_sink.of(WorkerJoined)
            cold_inits += [
                ev.init_s for ev in cold_sink.of(WorkerJoined) if not ev.warm
            ]
            warm_inits += [ev.init_s for ev in warm_joins if ev.warm]
            all_warm = bool(warm_joins) and all(ev.warm for ev in warm_joins)
            parity = all(
                r.joint == serial_joint
                and list(r.joint) == list(serial_joint)
                for r in (cold, warm)
            )
            print(f"  workers={n}  cold {cold_time:7.2f}s  warm "
                  f"{warm_time:7.2f}s  {trials / warm_time:7.1f} trials/s  "
                  f"speedup {serial_time / warm_time:.2f}x  parity "
                  f"{'ok' if parity else 'BROKEN'}  "
                  f"{'all-warm' if all_warm else 'COLD-RERUN'}")
            if not parity:
                print(f"FAIL: distributed joint (workers={n}) diverged "
                      f"from serial", file=sys.stderr)
                parity_ok = False
            if not all_warm:
                print(f"FAIL: second campaign on the workers={n} pool "
                      f"re-initialized instead of reusing warm state",
                      file=sys.stderr)
                warm_ok = False
    finally:
        for key, value in saved.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value

    cold_mean = sum(cold_inits) / max(len(cold_inits), 1)
    warm_mean = sum(warm_inits) / max(len(warm_inits), 1)
    print(f"  init: cold {1000 * cold_mean:.0f} ms/worker -> warm "
          f"{1000 * warm_mean:.2f} ms/worker "
          f"({len(cold_inits)} cold, {len(warm_inits)} warm joins)")
    record = {
        "trials": trials,
        "workers": list(DIST_WORKER_COUNTS),
        "times_s": {str(n): round(t, 4) for n, t in times.items()},
        "trials_per_s": {
            str(n): round(trials / t, 1) for n, t in times.items()
        },
        "speedup_vs_serial": {
            str(n): round(serial_time / t, 3) for n, t in times.items()
        },
        "cold_init_s": round(cold_mean, 4),
        "warm_init_s": round(warm_mean, 4),
        "parity_ok": parity_ok,
        "warm_reuse_ok": warm_ok,
    }
    return record, parity_ok and warm_ok


def _bench_profile(
    app, deployment, serial_time: float, serial_joint: dict
) -> tuple[dict, bool]:
    """Time the deployment with hot-path profiling on and break it down."""
    from repro.fi.campaign import run_campaign
    from repro.obs import MemorySink, Recorder, recording
    from repro.obs.profiler import coverage, profiles_of, traced_op_share

    mem = MemorySink()
    with recording(Recorder([mem], profiling=True)):
        t0 = time.perf_counter()
        result = run_campaign(app, deployment, jobs=1)
        wall = time.perf_counter() - t0
    (event,) = profiles_of(mem.events)
    parity_ok = (
        result.joint == serial_joint
        and list(result.joint) == list(serial_joint)
    )
    overhead = wall / serial_time - 1.0
    cov = coverage(event)
    share = traced_op_share(event)
    print(f"  jobs=1 --profile  {wall:7.2f}s  overhead {100 * overhead:+.1f}%  "
          f"span coverage {100 * cov:.0f}%  traced-op share "
          f"{100 * share:.0f}%  parity {'ok' if parity_ok else 'BROKEN'}")
    if not parity_ok:
        print("FAIL: profiled run diverged from serial", file=sys.stderr)
    hot = sorted(event.ops, key=lambda r: r["seconds"], reverse=True)
    record = {
        "time_s": round(wall, 4),
        "enabled_overhead": round(overhead, 4),
        "span_coverage": round(cov, 4),
        "traced_op_share": round(share, 4),
        "spans": {
            path: [int(count), round(seconds, 4)]
            for path, (count, seconds) in sorted(event.spans.items())
        },
        "hot_ops": [
            {
                "phase": row["phase"], "kind": row["kind"],
                "rank": row["rank"], "ops": row["ops"],
                "seconds": round(row["seconds"], 4),
            }
            for row in hot[:8]
        ],
    }
    return record, parity_ok


def _bench_trace(
    app, deployment, serial_time: float, serial_joint: dict, quick: bool
) -> tuple[dict, bool]:
    """Time the deployment with causal tracing on, and its disabled path."""
    from repro.fi.campaign import run_campaign
    from repro.obs import MemorySink, Recorder, recording
    from repro.obs.timeline import spans_of

    mem = MemorySink()
    with recording(Recorder([mem], tracing=True)):
        t0 = time.perf_counter()
        result = run_campaign(app, deployment, jobs=1)
        wall = time.perf_counter() - t0
    spans = spans_of(mem.events)
    cats: dict[str, int] = {}
    for span in spans:
        cats[span["cat"]] = cats.get(span["cat"], 0) + 1
    parity_ok = (
        result.joint == serial_joint
        and list(result.joint) == list(serial_joint)
    )
    enabled_overhead = wall / serial_time - 1.0
    print(f"  jobs=1 --timeline  {wall:7.2f}s  overhead "
          f"{100 * enabled_overhead:+.1f}%  {len(spans)} spans  parity "
          f"{'ok' if parity_ok else 'BROKEN'}")
    if not parity_ok:
        print("FAIL: traced run diverged from serial", file=sys.stderr)

    # the disabled path: same deployment, tracing off, best of 3
    disabled = float("inf")
    for _ in range(1 if quick else 3):
        t0 = time.perf_counter()
        run_campaign(app, deployment, jobs=1)
        disabled = min(disabled, time.perf_counter() - t0)
    disabled_overhead = disabled / serial_time - 1.0
    print(f"  jobs=1 (tracing off)  {disabled:7.2f}s  vs baseline "
          f"{100 * disabled_overhead:+.1f}%")
    ok = parity_ok
    if not spans:
        print("FAIL: traced run recorded no spans", file=sys.stderr)
        ok = False
    if not quick and disabled_overhead > MAX_DISABLED_TRACE_OVERHEAD:
        print(f"FAIL: tracing-disabled path adds "
              f"{100 * disabled_overhead:.1f}% > "
              f"{100 * MAX_DISABLED_TRACE_OVERHEAD:.0f}% to serial "
              f"wall-clock", file=sys.stderr)
        ok = False
    record = {
        "time_s": round(wall, 4),
        "enabled_overhead": round(enabled_overhead, 4),
        "disabled_time_s": round(disabled, 4),
        "disabled_overhead": round(disabled_overhead, 4),
        "spans": len(spans),
        "span_cats": dict(sorted(cats.items())),
        "parity_ok": parity_ok,
    }
    return record, ok


def _check_disabled_drift(
    prior: dict | None, record: dict, serial_time: float, quick: bool
) -> tuple[float | None, bool]:
    """Serial wall-clock vs the previous full-mode benchmark on disk."""
    if quick:
        return None, True
    comparable = (
        prior is not None
        and not prior.get("quick", True)
        and all(
            prior.get(key) == record[key]
            for key in ("bench", "app", "nprocs", "trials", "cpu_count")
        )
        and isinstance(prior.get("times_s", {}).get("1"), (int, float))
    )
    if not comparable:
        print("  (disabled-path drift check skipped: no comparable "
              "prior BENCH_campaign.json)")
        return None, True
    prior_serial = prior["times_s"]["1"]
    drift = serial_time / prior_serial - 1.0
    print(f"  disabled-path drift vs prior run  "
          f"{prior_serial:7.2f}s -> {serial_time:7.2f}s  "
          f"({100 * drift:+.1f}%)")
    if drift > MAX_DISABLED_PROFILE_DRIFT:
        print(f"FAIL: serial wall-clock regressed {100 * drift:.1f}% > "
              f"{100 * MAX_DISABLED_PROFILE_DRIFT:.0f}% vs the prior "
              f"benchmark — the profiler's disabled path is not free",
              file=sys.stderr)
        return drift, False
    return drift, True


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--trials", type=int, default=200,
                        help="trials per campaign (default 200)")
    parser.add_argument("--nprocs", type=int, default=4,
                        help="simulated MPI ranks per trial (default 4)")
    parser.add_argument("--jobs", type=int, nargs="+", default=[2, 4],
                        help="parallel worker counts to measure (default: 2 4)")
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke mode: 40 trials, no speedup assertion")
    parser.add_argument("--out", default="results/BENCH_campaign.json",
                        help="where to write the JSON record")
    args = parser.parse_args(argv)

    # campaigns must actually execute: caching would time a file read
    os.environ["REPRO_CACHE"] = "0"
    trials = 40 if args.quick else args.trials

    from repro.apps import get_app
    from repro.fi.campaign import Deployment

    app = get_app("cg")
    deployment = Deployment(nprocs=args.nprocs, trials=trials, seed=123)
    cpus = os.cpu_count() or 1
    print(f"bench_campaign: app=cg nprocs={args.nprocs} trials={trials} "
          f"cpu_count={cpus}")

    serial_time, serial_joint = _time_campaign(app, deployment, jobs=1)
    print(f"  jobs=1  {serial_time:7.2f}s  {trials / serial_time:7.1f} trials/s")

    times = {1: serial_time}
    speedups: dict[int, float] = {}
    parity_ok = True
    for jobs in args.jobs:
        wall, joint = _time_campaign(app, deployment, jobs=jobs)
        times[jobs] = wall
        speedups[jobs] = serial_time / wall
        if joint != serial_joint or list(joint) != list(serial_joint):
            parity_ok = False
        print(f"  jobs={jobs}  {wall:7.2f}s  {trials / wall:7.1f} trials/s  "
              f"speedup {speedups[jobs]:.2f}x  parity "
              f"{'ok' if parity_ok else 'BROKEN'}")

    from repro.engine import DEFAULT_CHECKPOINT_EVERY

    ckpt_time, ckpt_joint = _time_campaign(
        app, deployment, jobs=1, checkpoint_every=DEFAULT_CHECKPOINT_EVERY
    )
    if ckpt_joint != serial_joint or list(ckpt_joint) != list(serial_joint):
        parity_ok = False
    ckpt_overhead = ckpt_time / serial_time - 1.0
    print(f"  jobs=1 --checkpoint-every {DEFAULT_CHECKPOINT_EVERY}  "
          f"{ckpt_time:7.2f}s  overhead {100 * ckpt_overhead:+.1f}%  parity "
          f"{'ok' if parity_ok else 'BROKEN'}")

    profile_record, profile_ok = _bench_profile(
        app, deployment, serial_time, serial_joint
    )

    trace_record, trace_ok = _bench_trace(
        app, deployment, serial_time, serial_joint, args.quick
    )

    lanes_record, lanes_ok = _bench_lanes(app, args.nprocs, args.quick)

    # the previous benchmark on disk is the drift baseline for both the
    # profiler's disabled path and the scenario layer's bit-flip
    # throughput — read it before overwriting
    out = Path(args.out)
    prior: dict | None = None
    if out.exists():
        try:
            prior = json.loads(out.read_text())
        except (OSError, json.JSONDecodeError):
            prior = None

    scenarios_record, scenarios_ok = _bench_scenarios(
        app, deployment, serial_time, serial_joint, prior, args.quick
    )

    adaptive_record, adaptive_ok = _bench_adaptive(args.quick)

    distributed_record, distributed_ok = _bench_distributed(
        app, deployment, serial_time, serial_joint
    )

    record = {
        "bench": "campaign",
        "app": "cg",
        "nprocs": args.nprocs,
        "trials": trials,
        "quick": args.quick,
        "cpu_count": cpus,
        "unix_time": time.time(),
        "python": sys.version.split()[0],
        "times_s": {str(j): round(t, 4) for j, t in times.items()},
        "speedup": {str(j): round(s, 3) for j, s in speedups.items()},
        "checkpoint": {
            "every": DEFAULT_CHECKPOINT_EVERY,
            "time_s": round(ckpt_time, 4),
            "overhead": round(ckpt_overhead, 4),
        },
        "parity_ok": parity_ok,
        "profile": profile_record,
        "trace": trace_record,
        "lanes": lanes_record,
        "scenarios": scenarios_record,
        "adaptive": adaptive_record,
        "distributed": distributed_record,
    }

    drift, drift_ok = _check_disabled_drift(
        prior, record, serial_time, args.quick
    )
    if drift is not None:
        record["profile"]["disabled_drift_vs_prior"] = round(drift, 4)

    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(record, indent=2) + "\n")
    print(f"  wrote {out}")

    if not parity_ok:
        print("FAIL: parallel joint distribution diverged from serial",
              file=sys.stderr)
        return 1
    if (not profile_ok or not trace_ok or not lanes_ok
            or not scenarios_ok or not adaptive_ok or not distributed_ok):
        return 1
    if not drift_ok:
        return 1
    enforce = (not args.quick) and cpus >= ASSERT_MIN_CPUS and 4 in speedups
    if enforce and speedups[4] < REQUIRED_SPEEDUP:
        print(f"FAIL: jobs=4 speedup {speedups[4]:.2f}x < "
              f"{REQUIRED_SPEEDUP}x on a {cpus}-core runner", file=sys.stderr)
        return 1
    if not enforce and not args.quick:
        print(f"  (speedup assertion skipped: {cpus} < {ASSERT_MIN_CPUS} cores)")
    if not args.quick and ckpt_overhead > MAX_CHECKPOINT_OVERHEAD:
        print(f"FAIL: checkpointing overhead {100 * ckpt_overhead:.1f}% > "
              f"{100 * MAX_CHECKPOINT_OVERHEAD:.0f}% at the default "
              f"interval ({DEFAULT_CHECKPOINT_EVERY} trials)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
