"""Bench: regenerate Fig. 1 (CG error-propagation profiles)."""

from repro.experiments import figure12


def test_figure1_cg(regenerate):
    out = regenerate(figure12.run, "figure1", apps=("cg",))
    cg = out["cg"]
    # paper shape: strongly bimodal (mass at 1 and at all ranks), and the
    # grouped large-scale profile tracks the small-scale one
    assert cg["small"][0] > 0
    assert cg["small"][-1] > 0.3
    assert cg["cosine"] > 0.9
