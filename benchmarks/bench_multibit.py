"""Bench: extension — model generality under a 2-bit fault pattern."""

from repro.experiments import multibit


def test_multibit(regenerate):
    out = regenerate(multibit.run, "multibit")
    for name, res in out.items():
        for bits, r in res.items():
            assert r["error"] < 0.35, (name, bits)
        # a 2-bit fault is at least as damaging as a 1-bit fault
        assert res[2]["measured"] <= res[1]["measured"] + 0.1, name
