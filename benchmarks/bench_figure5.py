"""Bench: regenerate Fig. 5 (serial + 4 ranks predicting 64 ranks)."""

from repro.experiments.figure56 import accuracy_for_small_scale


def run_fig5(trials=None, seed=0, quiet=False):
    from repro.experiments.figure56 import _print_figure

    results = accuracy_for_small_scale(4, trials=trials, seed=seed)
    if not quiet:
        _print_figure("Figure 5 — serial + 4 ranks predicting 64 ranks", results)
    return results


def test_figure5(regenerate):
    out = regenerate(run_fig5, "figure5")
    errors = [r["error"] for r in out.values()]
    assert sum(errors) / len(errors) < 0.30  # paper: 8% average, 27% max
