"""Bench: regenerate Fig. 2 (FT error-propagation profiles)."""

from repro.experiments import figure12


def test_figure2_ft(regenerate):
    out = regenerate(figure12.run, "figure2", apps=("ft",))
    ft = out["ft"]
    assert ft["cosine"] > 0.9
