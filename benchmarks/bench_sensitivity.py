"""Bench: extension — outcome sensitivity to the flip site."""

from repro.experiments import sensitivity


def test_sensitivity(regenerate):
    out = regenerate(sensitivity.run, "sensitivity")
    for name, rep in out.items():
        bf = rep["bit_field"]
        # mantissa flips are far more benign than exponent flips
        assert bf["mantissa"] > bf["exponent"], name
