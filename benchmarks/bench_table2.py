"""Bench: regenerate Table 2 (cosine similarity between scales)."""

from repro.experiments import table2


def test_table2(regenerate):
    out = regenerate(table2.run, "table2")
    values = out["values"]
    # paper shape: 8V64 similarities are uniformly high
    for name in ("cg", "ft", "mg", "lu", "minife", "pennant"):
        assert values[f"{name} (8V64)"] > 0.8, name
