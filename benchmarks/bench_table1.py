"""Bench: regenerate Table 1 (parallel-unique computation share)."""

from repro.experiments import table1


def test_table1(regenerate):
    out = regenerate(table1.run, "table1")
    fr = out["fractions"]
    # paper shape: FT largest; MG/LU/PENNANT zero; CG/MiniFE small nonzero
    assert fr["ft"] > fr["cg"] > 0
    assert fr["mg"] == fr["lu"] == fr["pennant"] == 0.0
    assert fr["minife"] > fr["minife.large"] > 0
    assert fr["cg"] > fr["cg.classb"]
