"""Bench: regenerate the paper's §1 motivation measurements (CG)."""

from repro.experiments import motivation


def test_motivation(regenerate):
    out = regenerate(motivation.run, "motivation")
    assert out["par4_events"] > out["serial_events"]
    assert out["injection_time_growth"] > 0
