"""Bench: regenerate Fig. 7 (predicting 128 MPI processes, CG and FT)."""

from repro.experiments import figure7


def test_figure7(regenerate):
    out = regenerate(figure7.run, "figure7")
    for label, results in out.items():
        for name, r in results.items():
            assert r["error"] < 0.35, (label, name)
