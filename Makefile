# Convenience targets for the reproduction workflow.

PYTHON ?= python
TRIALS ?= 300

.PHONY: install test bench experiments report clean-cache loc

install:
	$(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

test-fast:
	REPRO_TRIALS=20 $(PYTHON) -m pytest tests/ -x

bench:
	REPRO_TRIALS=$(TRIALS) $(PYTHON) -m pytest benchmarks/ --benchmark-only

experiments:
	REPRO_TRIALS=$(TRIALS) $(PYTHON) -m repro.experiments all

report:
	REPRO_TRIALS=$(TRIALS) $(PYTHON) -m repro.experiments report

clean-cache:
	rm -rf .repro-cache results

loc:
	find src tests benchmarks examples -name '*.py' | xargs wc -l | tail -1
