# Convenience targets for the reproduction workflow.

PYTHON ?= python
TRIALS ?= 300

.PHONY: install test coverage bench bench-smoke experiments report obs-demo clean-cache loc

install:
	$(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

test-fast:
	REPRO_TRIALS=20 $(PYTHON) -m pytest tests/ -x

# Line coverage with the checked-in floor (.coverage-floor); requires
# pytest-cov.  CI runs this and publishes htmlcov/ as an artifact.
coverage:
	PYTHONPATH=src$(if $(PYTHONPATH),:$(PYTHONPATH)) \
		$(PYTHON) -m pytest tests/ -q \
		--cov=repro --cov-report=term --cov-report=html \
		--cov-fail-under=$$(cat .coverage-floor)

bench:
	REPRO_TRIALS=$(TRIALS) $(PYTHON) -m pytest benchmarks/ --benchmark-only

# Quick serial-vs-parallel campaign throughput check; writes
# results/BENCH_campaign.json (full mode asserts >=1.8x at jobs=4 on
# a >=4-core machine: `python benchmarks/bench_campaign.py`).
bench-smoke:
	PYTHONPATH=src$(if $(PYTHONPATH),:$(PYTHONPATH)) \
		$(PYTHON) benchmarks/bench_campaign.py --quick --out results/BENCH_campaign.json

experiments:
	REPRO_TRIALS=$(TRIALS) $(PYTHON) -m repro.experiments all

report:
	REPRO_TRIALS=$(TRIALS) $(PYTHON) -m repro.experiments report

# Smoke test for the observability layer: run a tiny uncached campaign
# with a JSONL trace + live progress, render the trace, and build the
# HTML dashboard.  Everything lands under .repro-out/ (git-ignored) so
# demo artifacts never end up in commits.
obs-demo:
	REPRO_CACHE=0 REPRO_TRIALS=20 PYTHONPATH=src$(if $(PYTHONPATH),:$(PYTHONPATH)) \
		$(PYTHON) -m repro.experiments motivation \
		--trace-out .repro-out/obs-demo.jsonl --progress --metrics-summary
	PYTHONPATH=src$(if $(PYTHONPATH),:$(PYTHONPATH)) \
		$(PYTHON) -m repro.experiments obs-report .repro-out/obs-demo.jsonl
	PYTHONPATH=src$(if $(PYTHONPATH),:$(PYTHONPATH)) \
		$(PYTHON) -m repro.experiments obs-dashboard .repro-out/obs-demo.jsonl

clean-cache:
	rm -rf .repro-cache .repro-out results

loc:
	find src tests benchmarks examples -name '*.py' | xargs wc -l | tail -1
