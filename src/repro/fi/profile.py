"""Dynamic-instruction profiles collected by the tracer's profiling pass.

A profile records, per (rank, region, instruction kind), how many dynamic
scalar FP instructions an execution performed.  It serves three purposes:

* it defines the *candidate space* from which injection plans sample
  (FP adds and multiplies, paper §2);
* region shares give the ``prob1``/``prob2`` weights of model Eq. 1 and
  reproduce Table 1 (share of parallel-unique computation);
* total counts reproduce the §1 motivation numbers (instruction-count
  growth of parallel vs serial execution under instrumentation).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.taint.region import Region
from repro.taint.tracer_api import OpKind

__all__ = ["InstructionProfile"]


@dataclass
class InstructionProfile:
    """Instruction counts per ``(rank, region, kind)``."""

    counts: dict[tuple[int, Region, OpKind], int] = field(default_factory=dict)

    def record(self, rank: int, region: Region, kind: OpKind, count: int) -> None:
        """Accumulate ``count`` instructions (used by the tracer)."""
        if count:
            key = (rank, region, kind)
            self.counts[key] = self.counts.get(key, 0) + int(count)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def ranks(self) -> list[int]:
        """Ranks that executed at least one traced instruction."""
        return sorted({rank for rank, _, _ in self.counts})

    def candidates(self, rank: int, region: Region | None = None) -> int:
        """Number of injection-candidate instructions (adds + muls)."""
        return sum(
            c
            for (r, reg, kind), c in self.counts.items()
            if r == rank and kind.is_candidate and (region is None or reg == region)
        )

    def total_instructions(self, rank: int | None = None) -> int:
        """All traced scalar FP instructions (candidates + passive)."""
        return sum(
            c for (r, _, _), c in self.counts.items() if rank is None or r == rank
        )

    def region_candidates(self, region: Region) -> int:
        """Candidate instructions across all ranks within ``region``."""
        return sum(
            c
            for (_, reg, kind), c in self.counts.items()
            if reg == region and kind.is_candidate
        )

    def parallel_unique_fraction(self) -> float:
        """Share of candidate instructions in parallel-unique computation.

        The reproduction's proxy for Table 1's execution-time share: the
        probability that a uniformly chosen candidate instruction lies in
        the parallel-unique region.
        """
        unique = self.region_candidates(Region.PARALLEL_UNIQUE)
        total = unique + self.region_candidates(Region.COMMON)
        return unique / total if total else 0.0

    def merged(self) -> dict[OpKind, int]:
        """Counts per kind summed over ranks and regions."""
        out: dict[OpKind, int] = {}
        for (_, _, kind), c in self.counts.items():
            out[kind] = out.get(kind, 0) + c
        return out
