"""Fail-stop scenario family: kill one rank mid-execution.

:class:`RankKillModel` studies process failure rather than data
corruption — the other axis of the paper's resilience space.  Each
trial samples a victim rank (uniform, or pinned with
``rankkill:rank=R``) and a scheduler step uniform over the fault-free
execution's step count, arms the scheduler's
:class:`~repro.mpisim.faults.RankFailure` controller, and classifies
what the survivors do:

* ``abort`` — communication with the dead rank tore the job down
  (:class:`~repro.errors.CollectiveAbortError`): a send targeting it,
  or a collective it can never join;
* ``deadlock`` — survivors wedged on point-to-point messages the dead
  rank will never send (:class:`~repro.errors.InjectedDeadlockError`);
* completion — ranks that never needed the victim again finish; the
  trial is then classified against the reference output (rank 0's
  death loses the output and counts as failure).

A victim that finishes before its sampled step leaves the fault unfired
— the ``activated=False`` analogue of a bit flip missed by shortened
control flow.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import (
    CollectiveAbortError,
    CommunicatorError,
    ConfigurationError,
    DeadlockError,
    FaultActivatedError,
)
from repro.fi.outcomes import Outcome, TrialRecord, classify_outcome
from repro.fi.scenarios.base import (
    FaultModel,
    emit_scenario_provenance,
    execution_dynamics,
)
from repro.mpisim.faults import RankFailure
from repro.mpisim.runner import execute_spmd
from repro.obs import RankKilled, TrialFinished
from repro.obs.trace import make_span
from repro.utils.rng import trial_seed

if TYPE_CHECKING:
    import numpy as np

    from repro.fi.campaign import AppProtocol, Deployment
    from repro.fi.profile import InstructionProfile

__all__ = ["RankKillModel", "RankKillPlan"]


@dataclass(frozen=True)
class RankKillPlan:
    """One armed fail-stop: kill ``rank`` at scheduler step ``step``."""

    rank: int
    step: int

    def to_payload(self) -> list[dict]:
        return [{"scenario": "rankkill", "rank": self.rank, "step": self.step}]


class RankKillModel(FaultModel):
    """Fail-stop a uniformly sampled rank at a uniformly sampled step."""

    name = "rankkill"
    PARAMS = ("rank",)

    def sample(
        self,
        profile: "InstructionProfile",
        rng: "np.random.Generator",
        *,
        app: "AppProtocol",
        deployment: "Deployment",
    ) -> RankKillPlan:
        dynamics = execution_dynamics(app, deployment)
        victim = self.int_param("rank")
        if victim is None:
            victim = int(rng.integers(0, deployment.nprocs))
        elif victim >= deployment.nprocs:
            raise ConfigurationError(
                f"scenario parameter rank={victim} outside "
                f"communicator of size {deployment.nprocs}"
            )
        step = int(rng.integers(1, max(2, dynamics.steps + 1)))
        return RankKillPlan(victim, step)

    def run_trial(
        self,
        app: "AppProtocol",
        deployment: "Deployment",
        profile: "InstructionProfile",
        reference: dict,
        trial: int,
        obs,
    ) -> TrialRecord:
        trial_t0 = time.perf_counter()
        tracing = obs.enabled and obs.tracing and obs.trace_ctx is not None
        trial_w0 = time.time() if tracing else 0.0
        with obs.span("trial"):
            rng = trial_seed(deployment.seed, trial)
            with obs.span("plan"):
                plan = self.sample(profile, rng, app=app, deployment=deployment)
            failure = RankFailure(rank=plan.rank, step=plan.step)
            detail = ""
            try:
                with obs.span("inject"):
                    outs = execute_spmd(
                        app.program, deployment.nprocs,
                        max_steps=deployment.max_steps, fail_stop=failure,
                    )
            except CollectiveAbortError as exc:
                outcome, detail = Outcome.FAILURE, f"abort: {exc}"
            except DeadlockError as exc:
                outcome, detail = Outcome.FAILURE, f"deadlock: {exc}"
            except FaultActivatedError as exc:
                outcome, detail = Outcome.FAILURE, f"crash: {exc}"
            except CommunicatorError as exc:
                outcome, detail = Outcome.FAILURE, f"hang: {exc}"
            else:
                if outs[0] is None:
                    outcome = Outcome.FAILURE
                    detail = "lost: rank 0 fail-stopped; no output to verify"
                else:
                    with obs.span("classify"):
                        outcome = classify_outcome(outs[0], reference, app.verify)
        record = TrialRecord(
            outcome=outcome,
            n_contaminated=0,
            activated=failure.fired,
            detail=detail,
        )
        if obs.enabled:
            obs.counter(f"campaign.trials.{outcome.value}")
            obs.observe("taint.contamination_spread", record.n_contaminated)
            fired: list[dict] = []
            if failure.fired:
                obs.emit(RankKilled(
                    trial=trial, rank=failure.rank, step=failure.fired_step,
                ))
                fired = [{
                    "scenario": "rankkill",
                    "rank": failure.rank, "step": failure.fired_step,
                }]
            obs.emit(TrialFinished(
                trial=trial, outcome=outcome.value,
                n_contaminated=record.n_contaminated,
                activated=record.activated,
                duration_s=time.perf_counter() - trial_t0,
            ))
            emit_scenario_provenance(
                obs, trial, record, plan.to_payload(), fired,
            )
        if tracing:
            parent = obs.trace_ctx
            obs.add_trace_span(make_span(
                f"trial {trial}", "trial", parent.derive("trial", trial),
                parent.span_id, trial_w0, time.perf_counter() - trial_t0,
                args={"trial": trial, "outcome": outcome.value},
            ))
        return record
