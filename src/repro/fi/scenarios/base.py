"""The pluggable fault-model contract behind every scenario family.

A :class:`FaultModel` owns every scenario-specific decision of one
fault-injection trial: sampling the trial's plan from the fault-free
execution, arming the right seam (the instruction-level tracer, the
scheduler's fail-stop controller, or its in-transit payload hook),
mapping exceptions and outputs to an outcome, and shaping the
provenance payload.  The campaign driver
(:mod:`repro.fi.campaign`) dispatches each trial through
``resolve_model(deployment.scenario).run_trial(...)`` and otherwise
never names a concrete family — adding a scenario touches this package
only.

Two invariants every model must uphold:

* **Determinism** — every per-trial decision derives from the
  ``numpy`` generator seeded by ``(deployment.seed, trial)``, so trials
  produce identical records in any order, in any worker process, and
  across checkpoint/resume.
* **Outcome-only side effects** — a model reports through the
  :class:`~repro.fi.outcomes.TrialRecord` and the observability
  recorder; it must not mutate the app, the deployment, or the profile.

System-level families (rank fail-stop, message corruption) sample their
fault sites against the *fault-free execution extent* — total scheduler
steps and total corruptible payload deliveries — probed once per
``(app, nprocs, max_steps)`` by :func:`execution_dynamics` and memoized
per process.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, ClassVar, Protocol

from repro.errors import ConfigurationError
from repro.obs.events import TrialProvenance
from repro.taint.tarray import TArray

if TYPE_CHECKING:  # avoid runtime cycles: campaign imports this package
    import numpy as np

    from repro.fi.campaign import AppProtocol, Deployment
    from repro.fi.outcomes import TrialRecord
    from repro.fi.profile import InstructionProfile

__all__ = [
    "ScenarioPlan",
    "FaultModel",
    "ExecutionDynamics",
    "execution_dynamics",
    "count_corruptible",
    "emit_scenario_provenance",
]


class ScenarioPlan(Protocol):
    """What one trial will inject, in scenario-specific terms.

    The only shared requirement is a provenance payload:
    ``to_payload()`` returns one JSON-able dict per planned fault.
    Scenario payloads carry a ``"scenario"`` key so provenance loaders
    can distinguish them from classic bit-flip sites.
    """

    def to_payload(self) -> list[dict]: ...


@dataclass(frozen=True)
class ExecutionDynamics:
    """Fault-free execution extent used to sample system-level fault sites."""

    steps: int        #: total deterministic scheduler steps
    deliveries: int   #: corruptible payload deliveries (TArray leaves in transit)


def count_corruptible(payload: Any) -> int:
    """Number of corruptible (TArray) leaves inside one delivered payload."""
    if isinstance(payload, TArray):
        return 1
    if isinstance(payload, dict):
        return sum(count_corruptible(v) for v in payload.values())
    if isinstance(payload, (list, tuple)):
        return sum(count_corruptible(v) for v in payload)
    return 0


class _DeliveryCounter:
    """Transit hook that tallies corruptible deliveries without touching them."""

    __slots__ = ("count",)

    def __init__(self) -> None:
        self.count = 0

    def on_p2p(self, src: int, dst: int, payload: Any) -> Any:
        self.count += count_corruptible(payload)
        return payload

    def on_collective(self, kind: str, rank: int, payload: Any) -> Any:
        self.count += count_corruptible(payload)
        return payload


#: (app cache key, nprocs, max_steps) -> probed dynamics, per process
_DYNAMICS: dict[tuple[str, int, int | None], ExecutionDynamics] = {}


def execution_dynamics(
    app: "AppProtocol", deployment: "Deployment"
) -> ExecutionDynamics:
    """Probe (and memoize) the fault-free extent of ``app`` at this scale.

    Runs the application once through the scheduler with no sink and a
    counting transit hook.  The result depends only on
    ``(app, nprocs, max_steps)`` — the scheduler is deterministic — so
    one probe per process serves every trial, and every worker process
    measures the same numbers.
    """
    key = (app.cache_key(), deployment.nprocs, deployment.max_steps)
    hit = _DYNAMICS.get(key)
    if hit is not None:
        return hit
    from repro.mpisim.scheduler import Scheduler
    from repro.taint.ops import FPOps

    def factory(rank, comm):
        return app.program(rank, deployment.nprocs, comm, FPOps(None, rank))

    counter = _DeliveryCounter()
    scheduler = Scheduler(
        deployment.nprocs, factory,
        max_steps=deployment.max_steps, transit=counter,
    )
    scheduler.run()
    dynamics = ExecutionDynamics(steps=scheduler.steps, deliveries=counter.count)
    _DYNAMICS[key] = dynamics
    return dynamics


def emit_scenario_provenance(
    obs,
    trial: int,
    record: "TrialRecord",
    planned: list[dict],
    fired: list[dict],
    timeline=(),
) -> None:
    """Emit the provenance event for one system-level scenario trial.

    The scenario counterpart of
    :func:`repro.obs.provenance.build_trial_provenance`: same event
    type, same sidecar routing, but ``planned``/``fired`` carry
    scenario payloads (dicts with a ``"scenario"`` key) instead of
    bit-flip sites, and the contamination ``timeline`` is whatever the
    scenario's sink observed.  No wall-clock fields, so scenario
    provenance files stay bit-identical for any ``jobs`` count too.
    """
    obs.emit(TrialProvenance(
        trial=trial,
        outcome=record.outcome.value,
        n_contaminated=record.n_contaminated,
        activated=record.activated,
        detail=record.detail,
        planned=[dict(p) for p in planned],
        fired=[dict(p) for p in fired],
        timeline=[[step, rank] for step, rank in timeline],
    ))


class FaultModel(abc.ABC):
    """One pluggable fault-scenario family (see module docstring).

    Subclasses set :attr:`name` (the spec name used by
    ``--scenario``), :attr:`PARAMS` (accepted ``k=v`` spec parameters),
    and :attr:`supports_lanes` (True only when ``run_trial`` semantics
    are preserved by the lane-vectorized execution path — currently the
    bit-flip family alone).
    """

    name: ClassVar[str]
    #: parameter keys accepted in a ``name:k=v,...`` spec
    PARAMS: ClassVar[tuple[str, ...]] = ()
    #: whether lane batching (``lanes > 1``) may execute this family
    supports_lanes: ClassVar[bool] = False

    def __init__(self, params: dict[str, str] | None = None):
        params = dict(params or {})
        unknown = sorted(set(params) - set(self.PARAMS))
        if unknown:
            accepted = ", ".join(self.PARAMS) if self.PARAMS else "(none)"
            raise ConfigurationError(
                f"scenario {self.name!r} does not accept parameter(s) "
                f"{', '.join(unknown)}; accepted: {accepted}"
            )
        self._params = params

    # ------------------------------------------------------------------
    def params(self) -> dict[str, str]:
        """The validated spec parameters this instance was built with."""
        return dict(self._params)

    def spec(self) -> str:
        """Canonical ``name[:k=v,...]`` spec string (parameters sorted)."""
        if not self._params:
            return self.name
        kv = ",".join(f"{k}={self._params[k]}" for k in sorted(self._params))
        return f"{self.name}:{kv}"

    def int_param(self, key: str, minimum: int = 0) -> int | None:
        """Parse an optional integer spec parameter, or None when unset."""
        raw = self._params.get(key)
        if raw is None:
            return None
        try:
            value = int(raw)
        except ValueError:
            raise ConfigurationError(
                f"scenario {self.name!r} parameter {key}={raw!r} is not an integer"
            ) from None
        if value < minimum:
            raise ConfigurationError(
                f"scenario {self.name!r} parameter {key}={value} must be >= {minimum}"
            )
        return value

    # ------------------------------------------------------------------
    @abc.abstractmethod
    def sample(
        self,
        profile: "InstructionProfile",
        rng: "np.random.Generator",
        *,
        app: "AppProtocol",
        deployment: "Deployment",
    ) -> ScenarioPlan:
        """Sample this trial's plan; consumes only ``rng`` state."""

    @abc.abstractmethod
    def run_trial(
        self,
        app: "AppProtocol",
        deployment: "Deployment",
        profile: "InstructionProfile",
        reference: dict,
        trial: int,
        obs,
    ) -> "TrialRecord":
        """Execute one fault-injection test end to end (see invariants)."""
