"""Pluggable fault-scenario families (see ``docs/scenarios.md``).

A scenario *spec* is a string — ``name`` or ``name:k=v,...`` — naming a
registered :class:`~repro.fi.scenarios.base.FaultModel` family plus its
parameters, e.g. ``bitflip``, ``rankkill:rank=0``, ``msgcorrupt:bit=63``.
Specs arrive from three places with fixed precedence (call argument >
``Deployment.scenario`` > ``$REPRO_SCENARIO`` > bit flips) and are
normalized by :func:`canonical_scenario` before cache keys or
checkpoint identities are derived; the parameterless default family
canonicalizes to ``None`` so pre-scenario cache entries and checkpoint
directories keep their identities.

Registered families:

* ``bitflip`` — transient bit flips in dynamic floating-point
  instructions (the paper's model; the default; lane-batchable);
* ``rankkill`` — fail-stop one rank mid-execution (``rank=R`` pins the
  victim);
* ``msgcorrupt`` — flip a bit in one message payload in transit
  (``bit=B`` pins the bit position).
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.fi.scenarios.base import (
    ExecutionDynamics,
    FaultModel,
    ScenarioPlan,
    execution_dynamics,
)
from repro.fi.scenarios.bitflip import BitFlipModel
from repro.fi.scenarios.msgcorrupt import MessageCorruptionModel
from repro.fi.scenarios.rankkill import RankKillModel

__all__ = [
    "SCENARIOS",
    "FaultModel",
    "ScenarioPlan",
    "ExecutionDynamics",
    "BitFlipModel",
    "RankKillModel",
    "MessageCorruptionModel",
    "parse_scenario",
    "canonical_scenario",
    "resolve_model",
    "execution_dynamics",
]

#: registered scenario families, by spec name
SCENARIOS: dict[str, type[FaultModel]] = {
    BitFlipModel.name: BitFlipModel,
    RankKillModel.name: RankKillModel,
    MessageCorruptionModel.name: MessageCorruptionModel,
}


def parse_scenario(spec: str) -> FaultModel:
    """Parse a ``name[:k=v,...]`` spec into a validated model instance."""
    name, _, tail = spec.partition(":")
    name = name.strip().lower()
    cls = SCENARIOS.get(name)
    if cls is None:
        raise ConfigurationError(
            f"unknown scenario {name!r}; available: {', '.join(sorted(SCENARIOS))}"
        )
    params: dict[str, str] = {}
    for item in tail.split(",") if tail else ():
        key, sep, value = item.partition("=")
        key, value = key.strip(), value.strip()
        if not sep or not key or not value:
            raise ConfigurationError(
                f"malformed scenario parameter {item!r} in {spec!r} "
                f"(expected key=value)"
            )
        params[key] = value
    return cls(params)


def canonical_scenario(spec: str | None) -> str | None:
    """Normalize a spec for identity derivation (keys, checkpoints).

    Parameters are validated and sorted; the parameterless default
    family (``bitflip``) canonicalizes to ``None`` so deployments that
    never mention scenarios keep their pre-scenario cache and
    checkpoint identities.
    """
    if spec is None or not spec.strip():
        return None
    canonical = parse_scenario(spec).spec()
    return None if canonical == BitFlipModel.name else canonical


#: spec -> model instance; resolve_model sits on the per-trial hot path
_MODELS: dict[str | None, FaultModel] = {}


def resolve_model(spec: str | None) -> FaultModel:
    """Memoized spec → model instance (``None`` = the default bit flips)."""
    model = _MODELS.get(spec)
    if model is None:
        model = BitFlipModel() if spec is None else parse_scenario(spec)
        _MODELS[spec] = model
    return model
