"""Message-corruption scenario family: flip bits in payloads in transit.

:class:`MessageCorruptionModel` models a faulty interconnect rather
than a faulty FPU: each trial samples one delivery uniformly from the
fault-free execution's corruptible delivery stream (point-to-point
envelopes and per-rank collective results, counted in the scheduler's
deterministic delivery order), one bit position, and one element, then
flips that bit in the payload's *faulty* copy as the scheduler hands it
over.  The golden copy is untouched, so the existing divergence
machinery — contamination marks on delivery, outcome classification
against the reference — observes the corruption with no scenario code
in the scheduler beyond the generic transit hook.

Like a bit flip absorbed by rounding, a corruption can be masked (the
flipped value round-trips to the same result) and the trial then counts
as success with contamination recorded honestly by the taint layer.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.errors import (
    CommunicatorError,
    ConfigurationError,
    DeadlockError,
    FaultActivatedError,
)
from repro.fi.outcomes import Outcome, TrialRecord, classify_outcome
from repro.fi.scenarios.base import (
    FaultModel,
    count_corruptible,
    emit_scenario_provenance,
    execution_dynamics,
)
from repro.fi.tracer import Tracer, TracerMode
from repro.mpisim.runner import execute_spmd
from repro.numerics.bits import bit_width, flip_bit_scalar
from repro.obs import MessageCorrupted, TrialFinished
from repro.obs.trace import make_span
from repro.taint.tarray import TArray
from repro.utils.rng import trial_seed

if TYPE_CHECKING:
    from repro.fi.campaign import AppProtocol, Deployment
    from repro.fi.profile import InstructionProfile

__all__ = ["MessageCorruptionModel", "MessageCorruptionPlan"]


@dataclass(frozen=True)
class MessageCorruptionPlan:
    """One in-transit corruption: flip ``bit`` in delivery ``delivery``.

    ``element_u`` is a uniform draw in ``[0, 1)`` scaled to the target
    payload's element count at corruption time, so the plan stays valid
    without knowing payload shapes up front.
    """

    delivery: int
    bit: int
    element_u: float

    def to_payload(self) -> list[dict]:
        return [{
            "scenario": "msgcorrupt", "delivery": self.delivery,
            "bit": self.bit, "element_u": self.element_u,
        }]


class _TransitCorruptor:
    """Transit hook that corrupts the plan's target delivery, then idles.

    Deliveries are counted in the scheduler's deterministic order, so a
    fixed ``(seed, trial)`` corrupts the same payload in every run.
    ``fired`` holds the observed corruption (or None when the execution
    ended before the target delivery).
    """

    __slots__ = ("_plan", "_seen", "fired")

    def __init__(self, plan: MessageCorruptionPlan):
        self._plan = plan
        self._seen = 0
        self.fired: dict | None = None

    # -- TransitHook -----------------------------------------------------
    def on_p2p(self, src: int, dst: int, payload: Any) -> Any:
        return self._intercept(payload, kind="p2p", src=src, dest=dst)

    def on_collective(self, kind: str, rank: int, payload: Any) -> Any:
        return self._intercept(payload, kind=kind, src=-1, dest=rank)

    # --------------------------------------------------------------------
    def _intercept(self, payload: Any, kind: str, src: int, dest: int) -> Any:
        if self.fired is not None:
            return payload
        leaves = count_corruptible(payload)
        if self._seen + leaves <= self._plan.delivery:
            # cheap skip: the target delivery is not in this payload
            self._seen += leaves
            return payload
        corrupted = self._visit(payload)
        if self.fired is not None:
            self.fired.update(kind=kind, src=src, dest=dest)
        return corrupted

    def _visit(self, payload: Any) -> Any:
        """Rebuild ``payload`` with the target leaf corrupted."""
        if self.fired is not None:
            return payload
        if isinstance(payload, TArray):
            if self._seen == self._plan.delivery:
                self._seen += 1
                return self._corrupt_leaf(payload)
            self._seen += 1
            return payload
        if isinstance(payload, dict):
            return {key: self._visit(val) for key, val in payload.items()}
        if isinstance(payload, (list, tuple)):
            return type(payload)(self._visit(val) for val in payload)
        return payload

    def _corrupt_leaf(self, arr: TArray) -> TArray:
        faulty = np.array(arr.faulty)  # the frozen faulty copy, writable
        flat = faulty.reshape(-1)
        element = min(int(self._plan.element_u * flat.size), flat.size - 1)
        bit = self._plan.bit % bit_width(faulty.dtype)
        pre = float(flat[element])
        post = flip_bit_scalar(pre, bit, faulty.dtype)
        flat[element] = post
        self.fired = {
            "scenario": "msgcorrupt", "delivery": self._plan.delivery,
            "element": element, "bit": bit, "pre": pre, "post": post,
        }
        # golden stays shared: payload_diverged() sees the corruption and
        # the scheduler marks the receiver contaminated as usual
        return TArray(arr.golden, faulty)


class MessageCorruptionModel(FaultModel):
    """Flip one sampled bit of one sampled payload delivery in transit."""

    name = "msgcorrupt"
    PARAMS = ("bit",)

    def sample(
        self,
        profile: "InstructionProfile",
        rng: "np.random.Generator",
        *,
        app: "AppProtocol",
        deployment: "Deployment",
    ) -> MessageCorruptionPlan:
        dynamics = execution_dynamics(app, deployment)
        if dynamics.deliveries < 1:
            raise ConfigurationError(
                f"app {app.name!r} exchanges no corruptible payloads at "
                f"nprocs={deployment.nprocs}; msgcorrupt needs message traffic"
            )
        delivery = int(rng.integers(0, dynamics.deliveries))
        bit = self.int_param("bit")
        if bit is None:
            bit = int(rng.integers(0, 64))
        element_u = float(rng.random())
        return MessageCorruptionPlan(delivery, bit, element_u)

    def run_trial(
        self,
        app: "AppProtocol",
        deployment: "Deployment",
        profile: "InstructionProfile",
        reference: dict,
        trial: int,
        obs,
    ) -> TrialRecord:
        trial_t0 = time.perf_counter()
        tracing = obs.enabled and obs.tracing and obs.trace_ctx is not None
        trial_w0 = time.time() if tracing else 0.0
        with obs.span("trial"):
            rng = trial_seed(deployment.seed, trial)
            with obs.span("plan"):
                plan = self.sample(profile, rng, app=app, deployment=deployment)
            # a plan-less tracer: contamination marks and their timeline
            # only — no instruction-level injection
            tracer = Tracer(TracerMode.PROFILE)
            corruptor = _TransitCorruptor(plan)
            detail = ""
            try:
                with obs.span("inject"):
                    outs = execute_spmd(
                        app.program, deployment.nprocs, sink=tracer,
                        max_steps=deployment.max_steps, transit=corruptor,
                    )
            except FaultActivatedError as exc:
                outcome, detail = Outcome.FAILURE, f"crash: {exc}"
            except (DeadlockError, CommunicatorError) as exc:
                outcome, detail = Outcome.FAILURE, f"hang: {exc}"
            else:
                with obs.span("classify"):
                    outcome = classify_outcome(outs[0], reference, app.verify)
        record = TrialRecord(
            outcome=outcome,
            n_contaminated=tracer.contaminated_count(),
            activated=corruptor.fired is not None,
            detail=detail,
        )
        if obs.enabled:
            obs.counter(f"campaign.trials.{outcome.value}")
            obs.observe("taint.contamination_spread", record.n_contaminated)
            fired: list[dict] = []
            if corruptor.fired is not None:
                blob = corruptor.fired
                obs.emit(MessageCorrupted(
                    trial=trial, kind=blob["kind"], src=blob["src"],
                    dest=blob["dest"], element=blob["element"],
                    bit=blob["bit"],
                ))
                fired = [blob]
            obs.emit(TrialFinished(
                trial=trial, outcome=outcome.value,
                n_contaminated=record.n_contaminated,
                activated=record.activated,
                duration_s=time.perf_counter() - trial_t0,
            ))
            emit_scenario_provenance(
                obs, trial, record, plan.to_payload(), fired,
                timeline=tuple(tracer.contamination_timeline),
            )
        if tracing:
            parent = obs.trace_ctx
            obs.add_trace_span(make_span(
                f"trial {trial}", "trial", parent.derive("trial", trial),
                parent.span_id, trial_w0, time.perf_counter() - trial_t0,
                args={"trial": trial, "outcome": outcome.value},
            ))
        return record
