"""The classic transient bit-flip family — the default scenario.

:class:`BitFlipModel` is the paper's fault model re-expressed behind
the :class:`~repro.fi.scenarios.base.FaultModel` contract: sample
dynamic-instruction sites from the profiling pass, arm the
instruction-level tracer, classify the perturbed output.  Its
``run_trial`` is the pre-refactor ``run_one_trial`` body verbatim —
records, events, and ``*.provenance.jsonl`` sidecars are byte-identical
to the pre-scenario pipeline for any jobs × lanes × resume combination
(``tests/unit/test_scenarios.py`` pins this against captured goldens).

It is the only family with ``supports_lanes=True``: lane batching
replays exactly this trial semantics N-at-a-time (see
``docs/performance.md``), which is not established for the
system-level families.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING

from repro.errors import CommunicatorError, DeadlockError, FaultActivatedError
from repro.fi.outcomes import Outcome, TrialRecord, classify_outcome
from repro.fi.plan import InjectionPlan, sample_plan
from repro.fi.scenarios.base import FaultModel
from repro.fi.tracer import Tracer, TracerMode
from repro.mpisim.runner import execute_spmd
from repro.obs import FaultInjected, TrialFinished
from repro.obs.provenance import build_trial_provenance
from repro.obs.trace import make_span
from repro.utils.rng import trial_seed

if TYPE_CHECKING:
    import numpy as np

    from repro.fi.campaign import AppProtocol, Deployment
    from repro.fi.profile import InstructionProfile

__all__ = ["BitFlipModel"]


class BitFlipModel(FaultModel):
    """Flip sampled bits of sampled dynamic floating-point instructions."""

    name = "bitflip"
    PARAMS = ()
    supports_lanes = True

    def sample(
        self,
        profile: "InstructionProfile",
        rng: "np.random.Generator",
        *,
        app: "AppProtocol",
        deployment: "Deployment",
    ) -> InjectionPlan:
        return sample_plan(
            profile,
            rng,
            n_errors=deployment.n_errors,
            target_rank=deployment.effective_target_rank,
            region=deployment.region,
            bits_per_error=deployment.bits_per_error,
        )

    def run_trial(
        self,
        app: "AppProtocol",
        deployment: "Deployment",
        profile: "InstructionProfile",
        reference: dict,
        trial: int,
        obs,
    ) -> TrialRecord:
        trial_t0 = time.perf_counter()
        # clock reads only: tracing must not perturb the trial itself
        tracing = obs.enabled and obs.tracing and obs.trace_ctx is not None
        trial_w0 = time.time() if tracing else 0.0
        with obs.span("trial"):
            rng = trial_seed(deployment.seed, trial)
            with obs.span("plan"):
                plan = self.sample(profile, rng, app=app, deployment=deployment)
            tracer = Tracer(TracerMode.INJECT, plan)
            detail = ""
            try:
                with obs.span("inject"):
                    outs = execute_spmd(
                        app.program, deployment.nprocs, sink=tracer,
                        max_steps=deployment.max_steps,
                    )
            except FaultActivatedError as exc:
                outcome, detail = Outcome.FAILURE, f"crash: {exc}"
            except (DeadlockError, CommunicatorError) as exc:
                outcome, detail = Outcome.FAILURE, f"hang: {exc}"
            else:
                with obs.span("classify"):
                    outcome = classify_outcome(outs[0], reference, app.verify)
        record = TrialRecord(
            outcome=outcome,
            n_contaminated=tracer.contaminated_count(),
            activated=tracer.all_flips_activated,
            detail=detail,
        )
        if obs.enabled:
            obs.counter(f"campaign.trials.{outcome.value}")
            obs.observe("taint.contamination_spread", record.n_contaminated)
            for flip in tracer.activated_flips:
                obs.emit(FaultInjected(
                    trial=trial, rank=flip.rank, region=flip.region.value,
                    index=flip.index, bit=flip.bit,
                ))
            obs.emit(TrialFinished(
                trial=trial, outcome=outcome.value,
                n_contaminated=record.n_contaminated,
                activated=record.activated,
                duration_s=time.perf_counter() - trial_t0,
            ))
            obs.emit(build_trial_provenance(trial, plan, tracer, record))
        if tracing:
            parent = obs.trace_ctx
            obs.add_trace_span(make_span(
                f"trial {trial}", "trial", parent.derive("trial", trial),
                parent.span_id, trial_w0, time.perf_counter() - trial_t0,
                args={"trial": trial, "outcome": outcome.value},
            ))
        return record
