"""The tracer: instruction accounting plus plan-driven flip firing.

One :class:`Tracer` instance lives for one application execution.  In
``PROFILE`` mode it only accumulates an :class:`InstructionProfile`.
In ``INJECT`` mode it additionally walks each rank/region's candidate
stream against the sorted flips of an :class:`InjectionPlan` and hands
the flips that land inside the current vectorized operation back to the
taint layer (as :class:`LaneInjection` records, with the plan's global
stream index translated into an offset local to the operation).

The tracer is also the collection point for *process contamination*:
the taint layer and the MPI simulator call :meth:`mark_contaminated`
whenever a rank's data diverges from the fault-free shadow — the
quantity profiled in the paper's Figs. 1–2.

Fault provenance (:mod:`repro.obs.provenance`) is collected here too:
the scheduler binds a step provider (:meth:`bind_step_provider`) so the
contamination timeline records *when* each rank was first touched, and
the taint layer reports each applied flip's op kind and pre/post
operand values through :meth:`record_flip`.
"""

from __future__ import annotations

import enum
from typing import Callable, Sequence

from repro.fi.plan import InjectionPlan, PlannedFlip
from repro.fi.profile import InstructionProfile
from repro.obs.provenance import FlipObservation
from repro.taint.region import Region
from repro.taint.tracer_api import LaneInjection, Operand, OpKind

__all__ = ["Tracer", "TracerMode"]


class TracerMode(enum.Enum):
    PROFILE = "profile"
    INJECT = "inject"


class _StreamCursor:
    """Walks one (rank, region) candidate stream against its sorted flips."""

    __slots__ = ("position", "pending", "next_index")

    def __init__(self, flips: Sequence[PlannedFlip]):
        self.position = 0
        self.pending = list(flips)  # sorted by index ascending
        self.next_index = self.pending[0].index if self.pending else None

    def advance(self, count: int) -> list[PlannedFlip]:
        """Advance by ``count`` instructions; return flips inside the window."""
        start = self.position
        self.position += count
        fired: list[PlannedFlip] = []
        while self.pending and self.pending[0].index < self.position:
            flip = self.pending.pop(0)
            assert flip.index >= start, "plan indices must be strictly increasing"
            fired.append(flip)
        self.next_index = self.pending[0].index if self.pending else None
        return fired


class Tracer:
    """Implements :class:`repro.taint.tracer_api.TraceSink` for one run."""

    def __init__(self, mode: TracerMode = TracerMode.PROFILE, plan: InjectionPlan | None = None):
        self.mode = mode
        self.plan = plan
        self.profile = InstructionProfile()
        self.contaminated: set[int] = set()
        self.activated_flips: list[PlannedFlip] = []
        #: (scheduler step, rank) appended when a rank is first contaminated.
        self.contamination_timeline: list[tuple[int, int]] = []
        #: applied-flip observations (op kind + pre/post operand values).
        self.flip_observations: list[FlipObservation] = []
        self._step_provider: Callable[[], int] | None = None
        self._cursors: dict[tuple[int, Region], _StreamCursor] = {}
        if mode is TracerMode.INJECT:
            if plan is None:
                raise ValueError("INJECT mode requires an injection plan")
            keys = {(f.rank, f.region) for f in plan.flips}
            for rank, region in keys:
                self._cursors[(rank, region)] = _StreamCursor(
                    plan.for_rank_region(rank, region)
                )
        elif plan is not None:
            raise ValueError("PROFILE mode must not carry an injection plan")

    # ------------------------------------------------------------------
    # TraceSink interface
    # ------------------------------------------------------------------
    def account(
        self, rank: int, region: Region, kind: OpKind, count: int
    ) -> Sequence[LaneInjection]:
        if self.mode is TracerMode.PROFILE:
            self.profile.record(rank, region, kind, count)
        if not kind.is_candidate or count == 0:
            return ()
        cursor = self._cursors.get((rank, region))
        if cursor is None:
            return ()
        if cursor.next_index is not None and cursor.next_index < cursor.position + count:
            start = cursor.position
            fired = cursor.advance(count)
            self.activated_flips.extend(fired)
            return [
                LaneInjection(
                    offset=f.index - start, operand=f.operand, bit=f.bit,
                    index=f.index,
                )
                for f in fired
            ]
        cursor.position += count
        return ()

    def mark_contaminated(self, rank: int) -> None:
        if rank not in self.contaminated:
            self.contaminated.add(rank)
            step = self._step_provider() if self._step_provider is not None else -1
            self.contamination_timeline.append((step, rank))

    def record_flip(
        self,
        rank: int,
        region: Region,
        kind: OpKind,
        index: int,
        operand: Operand,
        bits: Sequence[int],
        pre: float,
        post: float,
    ) -> None:
        """Store the observed values of one applied fault (provenance)."""
        self.flip_observations.append(FlipObservation(
            rank=rank, region=region.value, op=kind.value, index=index,
            operand=operand.name, bits=tuple(bits),
            pre=float(pre), post=float(post),
        ))

    def bind_step_provider(self, provider: Callable[[], int]) -> None:
        """Let the scheduler date contamination marks with its step count."""
        self._step_provider = provider

    # ------------------------------------------------------------------
    # post-run queries
    # ------------------------------------------------------------------
    @property
    def all_flips_activated(self) -> bool:
        """True when every planned flip actually fired during execution.

        A flip can miss when fault-perturbed control flow shortens the
        instruction stream relative to the profiling pass.
        """
        if self.plan is None:
            return True
        return len(self.activated_flips) == self.plan.n_errors

    def contaminated_count(self) -> int:
        """Number of contaminated ranks, counting injected ranks.

        The injected process counts as contaminated whenever a flip fired
        in it (the paper's propagation histograms start at one process),
        even if rounding absorbed the corruption immediately.
        """
        contaminated = set(self.contaminated)
        contaminated.update(f.rank for f in self.activated_flips)
        return len(contaminated)
