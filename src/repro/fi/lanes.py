"""Lane batching: N fault-injection trials in one pass through the app.

:func:`run_lane_block` executes trials ``[start, stop)`` of a
deployment as *lanes* of a single batched execution: one golden pass
through the mini-app and the :mod:`repro.mpisim` scheduler, with each
traced array carrying a stack of per-lane faulty shadows
(:class:`repro.taint.laneops.LaneFPOps`).  The :class:`BatchTracer`
merges every lane's injection plan into shared candidate-stream cursors
— instruction accounting runs **once** for the whole block — and
collects contamination marks, flip activations and provenance
observations per lane.

Semantics contract (docs/performance.md, "Lane vectorization"): records,
observability events and provenance are byte-identical to running each
trial alone.  Lanes whose faulty values would steer control flow off
the golden path (a ``TArray.value``/``to_numpy`` read or an
``fp.greater``/``fp.less`` comparison that disagrees) are *ejected* and
re-executed on the classic scalar path; everything still in the batch
shares the golden control flow, so one pass is exact for all of them.
A batch that fails outright (any exception) falls back to scalar
execution of the whole block — lanes are a pure fast path.
"""

from __future__ import annotations

import time
from typing import Callable, Sequence

from repro.fi.outcomes import TrialRecord, classify_outcome
from repro.fi.plan import InjectionPlan, PlannedFlip, sample_plan
from repro.mpisim.runner import execute_spmd
from repro.obs import FaultInjected, Recorder, TrialFinished, recording
from repro.obs.provenance import FlipObservation, build_trial_provenance
from repro.obs.trace import make_span
from repro.taint.laneops import LaneFPOps
from repro.taint.tarray import TArray
from repro.taint.tracer_api import LaneInjection, OpKind, Operand
from repro.utils.rng import trial_seed

import numpy as np

__all__ = ["BatchTracer", "run_lane_block"]


class _BatchCursor:
    """One (rank, region) candidate stream walked for *all* lanes at once.

    ``pending`` holds ``(index, lane, flip)`` entries sorted by
    ``(index, lane)`` — the union of every lane's plan for this stream.
    Because every lane in the batch executes the same (golden)
    instruction stream, one shared position serves them all; each lane
    sees exactly the windows its scalar cursor would have seen.
    """

    __slots__ = ("position", "pending", "next_index")

    def __init__(self, entries: list[tuple[int, int, PlannedFlip]]):
        self.position = 0
        self.pending = entries
        self.next_index = entries[0][0] if entries else None

    def advance(self, count: int) -> list[tuple[int, PlannedFlip]]:
        start = self.position
        self.position += count
        fired: list[tuple[int, PlannedFlip]] = []
        while self.pending and self.pending[0][0] < self.position:
            index, lane, flip = self.pending.pop(0)
            assert index >= start, "plan indices must be strictly increasing"
            fired.append((lane, flip))
        self.next_index = self.pending[0][0] if self.pending else None
        return fired

    def drop_lanes(self, lanes: set[int]) -> None:
        if not self.pending:
            return
        self.pending = [e for e in self.pending if e[1] not in lanes]
        self.next_index = self.pending[0][0] if self.pending else None


class BatchTracer:
    """TraceSink coordinating ``k`` lanes of one batched execution.

    Mirrors :class:`repro.fi.tracer.Tracer` per lane: activated flips,
    flip observations, contaminated-rank sets and contamination
    timelines are collected in per-lane lists, and
    :meth:`lane_view` exposes one lane's slice with the scalar tracer's
    interface (for classification and provenance).  The batch's own
    golden/faulty pair never diverges, so the plain
    :meth:`mark_contaminated` channel is a no-op; per-lane marks arrive
    via :meth:`mark_lanes_from_op` (taint layer, metered) and
    :meth:`mark_lanes_contaminated` (scheduler delivery, unmetered —
    the scalar scheduler also bypasses the observability meter).
    """

    def __init__(self, plans: Sequence[InjectionPlan]):
        self.plans = list(plans)
        self.k = len(self.plans)
        self.activated: list[list[PlannedFlip]] = [[] for _ in range(self.k)]
        self.observations: list[list[FlipObservation]] = [[] for _ in range(self.k)]
        #: rank -> (k,) bool: which lanes have seen rank contaminated
        self._cont: dict[int, np.ndarray] = {}
        #: rank -> contaminated-lane count (saturation short-circuit)
        self._cont_count: dict[int, int] = {}
        self.timelines: list[list[tuple[int, int]]] = [[] for _ in range(self.k)]
        #: rank -> (k,) mark-call tallies (the scalar path's
        #: ``taint.contaminated_reports.rank*`` counters, replayed later)
        self._reports: dict[int, np.ndarray] = {}
        self.ejected: set[int] = set()
        self._ejected_mask = np.zeros(self.k, dtype=bool)
        self.eject_reasons: dict[int, str] = {}
        self._step_provider: Callable[[], int] | None = None
        self._cursors: dict[tuple, _BatchCursor] = {}
        merged: dict[tuple, list[tuple[int, int, PlannedFlip]]] = {}
        for lane, plan in enumerate(self.plans):
            for rank, region in {(f.rank, f.region) for f in plan.flips}:
                merged.setdefault((rank, region), []).extend(
                    (f.index, lane, f)
                    for f in plan.for_rank_region(rank, region)
                )
        for key, entries in merged.items():
            entries.sort(key=lambda e: (e[0], e[1]))
            self._cursors[key] = _BatchCursor(entries)

    # ------------------------------------------------------------------
    # TraceSink interface
    # ------------------------------------------------------------------
    def account(self, rank, region, kind: OpKind, count: int):
        if not kind.is_candidate or count == 0:
            return ()
        cursor = self._cursors.get((rank, region))
        if cursor is None:
            return ()
        if cursor.next_index is not None and cursor.next_index < cursor.position + count:
            start = cursor.position
            fired = cursor.advance(count)
            out: list[LaneInjection] = []
            for lane, flip in fired:
                if lane in self.ejected:
                    continue  # scalar replay owns this lane's flips now
                self.activated[lane].append(flip)
                out.append(LaneInjection(
                    offset=flip.index - start, operand=flip.operand,
                    bit=flip.bit, index=flip.index, lane=lane,
                ))
            return out
        cursor.position += count
        return ()

    def mark_contaminated(self, rank: int) -> None:
        """No-op: the batch's golden/faulty pair never diverges."""
        return None

    def bind_step_provider(self, provider: Callable[[], int]) -> None:
        self._step_provider = provider

    # ------------------------------------------------------------------
    # per-lane channels
    # ------------------------------------------------------------------
    def mark_lanes_from_op(self, rank: int, lanes: Sequence[int]) -> None:
        """Taint-layer mark: counted, like the scalar metered sink."""
        lanes = self._live_lanes(lanes)
        if lanes is None:
            return
        reports = self._reports.get(rank)
        if reports is None:
            reports = self._reports[rank] = np.zeros(self.k, dtype=np.int64)
        reports[lanes] += 1
        self._mark(lanes, rank)

    def mark_lanes_contaminated(self, rank: int, lanes: Sequence[int]) -> None:
        """Scheduler delivery mark: uncounted (scalar bypasses the meter)."""
        lanes = self._live_lanes(lanes)
        if lanes is not None:
            self._mark(lanes, rank)

    def _live_lanes(self, lanes: Sequence[int]) -> np.ndarray | None:
        lanes = np.asarray(lanes, dtype=np.intp)
        if lanes.size == 0:
            return None
        if self.ejected:
            lanes = lanes[~self._ejected_mask[lanes]]
            if lanes.size == 0:
                return None
        return lanes

    def _mark(self, lanes: np.ndarray, rank: int) -> None:
        if self._cont_count.get(rank, 0) == self.k:
            return  # every lane already marked: nothing fresh possible
        cont = self._cont.get(rank)
        if cont is None:
            cont = self._cont[rank] = np.zeros(self.k, dtype=bool)
        fresh = lanes[~cont[lanes]]
        if fresh.size:
            cont[fresh] = True
            self._cont_count[rank] = (
                self._cont_count.get(rank, 0) + int(fresh.size)
            )
            step = (
                self._step_provider() if self._step_provider is not None else -1
            )
            for lane in fresh:
                self.timelines[int(lane)].append((step, rank))

    def lane_flip_reporter(self, lane: int, rank: int, region, kind: OpKind):
        """Bound per-lane ``on_flip`` callback (provenance observations)."""
        observations = self.observations[lane]
        region_value = region.value
        op = kind.value

        def on_flip(index, operand: Operand, bits, pre, post):
            observations.append(FlipObservation(
                rank=rank, region=region_value, op=op, index=index,
                operand=operand.name, bits=tuple(bits),
                pre=float(pre), post=float(post),
            ))

        return on_flip

    def eject(self, lanes: Sequence[int], reason: str) -> None:
        """Hand lanes back to the scalar path (control-flow divergence).

        Their pending flips are dropped from every cursor — the scalar
        replay runs its own tracer — and later batch results simply stop
        tracking them (their stale rows are never read back out).
        """
        fresh = [lane for lane in lanes if lane not in self.ejected]
        if not fresh:
            return
        self.ejected.update(fresh)
        self._ejected_mask[list(fresh)] = True
        for lane in fresh:
            self.eject_reasons.setdefault(lane, reason)
        fresh_set = set(fresh)
        for cursor in self._cursors.values():
            cursor.drop_lanes(fresh_set)

    # ------------------------------------------------------------------
    # post-run queries
    # ------------------------------------------------------------------
    def lane_view(self, lane: int) -> "_LaneView":
        return _LaneView(self, lane)

    def contaminated_ranks(self, lane: int) -> set[int]:
        """Ranks marked contaminated for ``lane`` during the pass."""
        return {rank for rank, cont in self._cont.items() if cont[lane]}

    def report_items(self, lane: int) -> list[tuple[int, int]]:
        """``(rank, count)`` mark tallies for ``lane`` (sorted by rank)."""
        return sorted(
            (rank, int(reports[lane]))
            for rank, reports in self._reports.items()
            if reports[lane]
        )


class _LaneView:
    """One lane's slice of a batch, with the scalar Tracer's interface."""

    __slots__ = ("_batch", "_lane")

    def __init__(self, batch: BatchTracer, lane: int):
        self._batch = batch
        self._lane = lane

    @property
    def plan(self) -> InjectionPlan:
        return self._batch.plans[self._lane]

    @property
    def activated_flips(self) -> list[PlannedFlip]:
        return self._batch.activated[self._lane]

    @property
    def flip_observations(self) -> list[FlipObservation]:
        return self._batch.observations[self._lane]

    @property
    def contamination_timeline(self) -> list[tuple[int, int]]:
        return self._batch.timelines[self._lane]

    @property
    def all_flips_activated(self) -> bool:
        return len(self.activated_flips) == self.plan.n_errors

    def contaminated_count(self) -> int:
        contaminated = self._batch.contaminated_ranks(self._lane)
        contaminated.update(f.rank for f in self.activated_flips)
        return len(contaminated)


# ----------------------------------------------------------------------
# block execution
# ----------------------------------------------------------------------
def _lane_output(raw: dict | None, lane: int):
    """Extract one lane's plain-value output from a raw (TArray) output."""
    if not isinstance(raw, dict):
        return raw
    out = {}
    for key, val in raw.items():
        if isinstance(val, TArray):
            ls = val.lanes
            row = ls.fstack[lane] if ls is not None else val.faulty
            out[key] = (
                float(np.asarray(row).reshape(())) if row.size == 1
                else np.asarray(row)
            )
        else:
            out[key] = val
    return out


def _replay_lane(
    app, deployment, reference, trial: int, lane: int,
    batch: BatchTracer, raw, snap, obs,
) -> TrialRecord:
    """Emit one lane's record/events exactly as the scalar loop would.

    The span structure (trial > plan/inject/classify) is replayed so
    event *order* matches ``run_one_trial``; durations differ (they are
    wall-clock) and are excluded from the parity contract.
    """
    trial_t0 = time.perf_counter()
    with obs.span("trial"):
        with obs.span("plan"):
            pass
        with obs.span("inject"):
            pass
        output = _lane_output(raw, lane)
        with obs.span("classify"):
            outcome = classify_outcome(output, reference, app.verify)
    view = batch.lane_view(lane)
    record = TrialRecord(
        outcome=outcome,
        n_contaminated=view.contaminated_count(),
        activated=view.all_flips_activated,
        detail="",
    )
    if obs.enabled:
        # replay the batch pass's shared metering — accounting ran once
        # for the whole block, so the captured counters are exactly one
        # trial's worth (fp.* per rank, scheduler steps/runs, ...)
        if snap is not None:
            for name, value in snap.counters.items():
                obs.counter(name, value)
            for name, values in snap.histograms.items():
                for value in values:
                    obs.observe(name, value)
        for rank, n in batch.report_items(lane):
            obs.counter(f"taint.contaminated_reports.rank{rank}", n)
        obs.counter(f"campaign.trials.{outcome.value}")
        obs.observe("taint.contamination_spread", record.n_contaminated)
        for flip in view.activated_flips:
            obs.emit(FaultInjected(
                trial=trial, rank=flip.rank, region=flip.region.value,
                index=flip.index, bit=flip.bit,
            ))
        obs.emit(TrialFinished(
            trial=trial, outcome=outcome.value,
            n_contaminated=record.n_contaminated,
            activated=record.activated,
            duration_s=time.perf_counter() - trial_t0,
        ))
        obs.emit(build_trial_provenance(trial, view.plan, view, record))
    return record


def run_lane_block(
    app, deployment, profile, reference, start: int, stop: int, obs,
) -> list[TrialRecord]:
    """Execute trials ``[start, stop)`` as lanes of one batched pass.

    Samples each trial's plan exactly as :func:`repro.fi.campaign.
    run_one_trial` would (``trial_seed(deployment.seed, trial)``), runs
    the app once with :class:`LaneFPOps` carrying one lane per trial,
    then replays per-lane records/events in trial order.  Ejected lanes
    — and the whole block, if the batched pass raises — re-execute on
    the scalar path, so any trial's result is identical to lanes=1.
    """
    from repro.fi.campaign import run_one_trial  # circular at import time

    # clock reads only — the scalar-fallback path below skips the block
    # span entirely (its trials record their own spans instead)
    tracing = obs.enabled and obs.tracing and obs.trace_ctx is not None
    if tracing:
        block_w0 = time.time()
        block_p0 = time.perf_counter()

    plans = [
        sample_plan(
            profile,
            trial_seed(deployment.seed, trial),
            n_errors=deployment.n_errors,
            target_rank=deployment.effective_target_rank,
            region=deployment.region,
            bits_per_error=deployment.bits_per_error,
        )
        for trial in range(start, stop)
    ]
    batch = BatchTracer(plans)
    # private recorder: captures the pass's counters/histograms for
    # per-lane replay without leaking anything into the live stream
    private = Recorder(enabled=obs.enabled)
    try:
        with recording(private):
            outputs = execute_spmd(
                app.program, deployment.nprocs, sink=batch,
                max_steps=deployment.max_steps,
                ops_factory=lambda sink, rank: LaneFPOps(sink, rank, batch),
                raw_outputs=True,
            )
    except Exception:
        # golden-path execution should never fail (the profiling pass
        # succeeded); if it somehow does, the scalar path is always right
        return [
            run_one_trial(app, deployment, profile, reference, trial, obs)
            for trial in range(start, stop)
        ]
    raw = outputs[0]
    snap = private.snapshot() if obs.enabled else None
    if tracing:
        # ejected lanes re-run scalar inside the replay loop; pointing
        # obs.trace_ctx at the block nests their trial spans under it
        parent_trace_ctx = obs.trace_ctx
        block_trace_ctx = parent_trace_ctx.derive("lanes", start, stop)
        obs.trace_ctx = block_trace_ctx
    records: list[TrialRecord] = []
    try:
        for lane, trial in enumerate(range(start, stop)):
            if lane in batch.ejected:
                records.append(
                    run_one_trial(
                        app, deployment, profile, reference, trial, obs
                    )
                )
            else:
                records.append(_replay_lane(
                    app, deployment, reference, trial, lane, batch, raw,
                    snap, obs,
                ))
    finally:
        if tracing:
            obs.trace_ctx = parent_trace_ctx
            obs.add_trace_span(make_span(
                f"lanes {start}..{stop}", "lanes", block_trace_ctx,
                parent_trace_ctx.span_id, block_w0,
                time.perf_counter() - block_p0,
                args={"start": start, "stop": stop,
                      "lanes": stop - start, "ejected": len(batch.ejected)},
            ))
    return records
