"""Injection-plan sampling — the randomized part of a fault-injection test.

A plan is a set of :class:`PlannedFlip` entries; each names a dynamic
candidate instruction by its index in one rank's per-region candidate
stream, which operand of that instruction to corrupt, and which bit to
flip.  Plans are sampled from an :class:`InstructionProfile` obtained in
a fault-free profiling pass, mirroring how F-SEFI arms a trigger on the
k-th dynamic instruction of a chosen type.

Sampling policy (paper §2): pick the MPI process uniformly at random,
then a uniformly random candidate instruction inside it, a uniformly
random operand of that instruction, and a uniformly random bit of the
64-bit operand.  For serial multi-error emulation (§3.3) all ``x``
errors target rank 0 and the *common* region.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import InjectionPlanError
from repro.fi.profile import InstructionProfile
from repro.numerics.bits import bit_width
from repro.taint.region import Region
from repro.taint.tracer_api import Operand

__all__ = ["PlannedFlip", "InjectionPlan", "sample_plan"]

_N_BITS = bit_width(np.dtype(np.float64))


@dataclass(frozen=True, order=True)
class PlannedFlip:
    """One single-bit flip of one operand of one dynamic instruction."""

    rank: int
    region: Region
    index: int          # candidate-instruction index in (rank, region)'s stream
    operand: Operand
    bit: int

    def __post_init__(self) -> None:
        if self.index < 0:
            raise InjectionPlanError(f"negative instruction index {self.index}")
        if not 0 <= self.bit < _N_BITS:
            raise InjectionPlanError(f"bit {self.bit} outside [0, {_N_BITS})")

    def to_payload(self) -> dict:
        """JSON-ready description of this fault site (provenance records)."""
        return {
            "rank": self.rank, "region": self.region.value,
            "index": self.index, "operand": self.operand.name,
            "bit": self.bit,
        }


@dataclass(frozen=True)
class InjectionPlan:
    """The full set of flips for one fault-injection test."""

    flips: tuple[PlannedFlip, ...]

    @property
    def n_errors(self) -> int:
        """Number of planned flips (a k-bit error contributes k)."""
        return len(self.flips)

    @property
    def target_ranks(self) -> frozenset[int]:
        return frozenset(f.rank for f in self.flips)

    def to_payload(self) -> list[dict]:
        """JSON-ready list of fault sites, in plan order."""
        return [f.to_payload() for f in self.flips]

    def for_rank_region(self, rank: int, region: Region) -> list[PlannedFlip]:
        """Flips of this plan in ``rank``'s ``region`` stream, index-sorted."""
        return sorted(
            (f for f in self.flips if f.rank == rank and f.region == region),
            key=lambda f: f.index,
        )


def _sample_region(
    profile: InstructionProfile, rank: int, rng: np.random.Generator
) -> Region:
    """Pick a region with probability proportional to its candidate count."""
    weights = [(reg, profile.candidates(rank, reg)) for reg in Region]
    total = sum(w for _, w in weights)
    if total == 0:
        raise InjectionPlanError(f"rank {rank} executed no candidate instructions")
    u = int(rng.integers(0, total))
    acc = 0
    for reg, w in weights:
        acc += w
        if u < acc:
            return reg
    raise AssertionError("unreachable")  # pragma: no cover


def sample_plan(
    profile: InstructionProfile,
    rng: np.random.Generator,
    n_errors: int = 1,
    target_rank: int | None = None,
    region: Region | None = None,
    bits_per_error: int = 1,
) -> InjectionPlan:
    """Sample an injection plan for one fault-injection test.

    Parameters
    ----------
    profile:
        Instruction profile from the fault-free profiling pass.
    rng:
        Per-trial random generator (see :func:`repro.utils.rng.trial_seed`).
    n_errors:
        Errors injected in this single test.  ``n_errors > 1`` is the
        serial multi-error emulation of multiple contaminated processes
        (paper §4.1): all flips then share one target rank.
    target_rank:
        Force the victim rank; default picks uniformly among ranks that
        executed candidate instructions (one victim per test, paper §2).
    region:
        Restrict flips to one computation region.  ``None`` samples the
        region proportionally to its candidate-instruction share.
    bits_per_error:
        Bits flipped per error (same instruction, same operand).  The
        paper's experiments use single-bit flips but its model makes no
        single-bit assumption (§2); multi-bit patterns exercise that.
    """
    if n_errors < 1:
        raise InjectionPlanError(f"n_errors must be >= 1, got {n_errors}")
    if not 1 <= bits_per_error <= _N_BITS:
        raise InjectionPlanError(
            f"bits_per_error must be in [1, {_N_BITS}], got {bits_per_error}"
        )
    ranks = profile.ranks
    if not ranks:
        raise InjectionPlanError("profile is empty — was the profiling pass run?")
    if target_rank is None:
        victim = int(ranks[int(rng.integers(0, len(ranks)))])
    else:
        if target_rank not in ranks:
            raise InjectionPlanError(f"rank {target_rank} not present in profile")
        victim = int(target_rank)
    if n_errors > 1 and target_rank is None and len(ranks) > 1:
        # Multi-error emulation is defined for a single execution stream.
        raise InjectionPlanError(
            "multi-error plans require an explicit target_rank in parallel profiles"
        )

    flips: list[PlannedFlip] = []
    chosen: set[tuple[Region, int]] = set()
    attempts = 0
    while len(chosen) < n_errors:
        attempts += 1
        if attempts > 100 * n_errors + 100:
            raise InjectionPlanError(
                f"cannot sample {n_errors} distinct flips from rank {victim}'s "
                f"{profile.candidates(victim)} candidate instructions"
            )
        reg = _sample_region(profile, victim, rng) if region is None else region
        space = profile.candidates(victim, reg)
        if space == 0:
            raise InjectionPlanError(
                f"rank {victim} has no candidate instructions in region {reg}"
            )
        index = int(rng.integers(0, space))
        if (reg, index) in chosen:
            continue  # never target the same dynamic instruction twice
        chosen.add((reg, index))
        operand = Operand(int(rng.integers(0, 3)))
        if bits_per_error == 1:
            bits = [int(rng.integers(0, _N_BITS))]
        else:
            bits = sorted(
                int(b) for b in rng.choice(_N_BITS, size=bits_per_error, replace=False)
            )
        flips.extend(
            PlannedFlip(
                rank=victim, region=reg, index=index, operand=operand, bit=bit,
            )
            for bit in bits
        )
    return InjectionPlan(flips=tuple(flips))
