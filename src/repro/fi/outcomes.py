"""Three-way outcome classification of a fault-injection test (paper §2).

* ``SUCCESS`` — output identical to the fault-free run, **or** different
  but accepted by the application's own verification checker;
* ``SDC`` — silent data corruption: output differs and fails the checker;
* ``FAILURE`` — the application crashed or hung (simulated via
  :class:`repro.errors.FaultActivatedError` and scheduler deadlock).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Mapping

import numpy as np

__all__ = ["Outcome", "TrialRecord", "classify_outcome", "outputs_identical"]

#: An application's final output: named scalars / arrays from rank 0.
AppOutput = Mapping[str, "np.ndarray | float"]


class Outcome(enum.Enum):
    SUCCESS = "success"
    SDC = "sdc"
    FAILURE = "failure"


@dataclass(frozen=True)
class TrialRecord:
    """One fault-injection test's result."""

    outcome: Outcome
    n_contaminated: int
    activated: bool          # did every planned flip actually fire?
    detail: str = ""


def outputs_identical(output: AppOutput, reference: AppOutput) -> bool:
    """Exact (NaN-aware) equality of two application outputs."""
    if set(output.keys()) != set(reference.keys()):
        return False
    for key, ref in reference.items():
        got = np.asarray(output[key], dtype=np.float64)
        if not np.array_equal(got, np.asarray(ref, dtype=np.float64), equal_nan=True):
            return False
    return True


def classify_outcome(
    output: AppOutput,
    reference: AppOutput,
    verifier: Callable[[AppOutput, AppOutput], bool],
) -> Outcome:
    """Classify a completed run (crashes/hangs are classified upstream).

    ``verifier`` is the application's checker: given the trial output and
    the fault-free reference it decides whether the result is still a
    valid answer (paper: "passes the application checkers").
    """
    if outputs_identical(output, reference):
        return Outcome.SUCCESS
    return Outcome.SUCCESS if verifier(output, reference) else Outcome.SDC
