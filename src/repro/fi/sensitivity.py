"""Sensitivity analysis: outcome rates by bit position and operand.

The paper's fault injector heritage (F-SEFI / P-FSEFI, and the authors'
observation in §2 that results are "sensitive to what type of
instruction is randomly selected") motivates a finer breakdown than the
aggregate campaign rates: *where* in the IEEE-754 word the flip lands
(mantissa / exponent / sign), which operand it corrupts, and which
instruction kind it hits.  This module runs single-error deployments and
aggregates outcomes along those axes — useful for explaining why an
application's success rate is what it is (low-mantissa flips are almost
always absorbed; exponent flips dominate SDC and crashes).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import (
    CommunicatorError,
    ConfigurationError,
    DeadlockError,
    FaultActivatedError,
)
from repro.fi.campaign import AppProtocol, Deployment
from repro.fi.outcomes import Outcome, classify_outcome
from repro.fi.plan import sample_plan
from repro.fi.tracer import Tracer, TracerMode
from repro.mpisim.runner import execute_spmd
from repro.numerics.bits import classify_bit, BitField
from repro.taint.tracer_api import Operand
from repro.utils.rng import trial_seed

__all__ = ["SensitivityReport", "run_sensitivity"]


@dataclass
class SensitivityReport:
    """Outcome counts broken down by flip location."""

    app_name: str
    deployment: Deployment
    by_bit_field: dict[tuple[BitField, Outcome], int] = field(default_factory=dict)
    by_operand: dict[tuple[Operand, Outcome], int] = field(default_factory=dict)
    by_bit: dict[int, dict[Outcome, int]] = field(default_factory=dict)

    def _bump(self, table: dict, key, outcome: Outcome) -> None:
        table[(key, outcome)] = table.get((key, outcome), 0) + 1

    def record(self, bit: int, operand: Operand, outcome: Outcome) -> None:
        """Attribute one test's outcome to its flip site."""
        self._bump(self.by_bit_field, classify_bit(bit), outcome)
        self._bump(self.by_operand, operand, outcome)
        per_bit = self.by_bit.setdefault(bit, {})
        per_bit[outcome] = per_bit.get(outcome, 0) + 1

    # ------------------------------------------------------------------
    def success_rate_by_bit_field(self) -> dict[BitField, float]:
        """Success rate per IEEE-754 field (mantissa/exponent/sign)."""
        out = {}
        for bf in BitField:
            total = sum(
                c for (k, _), c in self.by_bit_field.items() if k == bf
            )
            if total:
                succ = self.by_bit_field.get((bf, Outcome.SUCCESS), 0)
                out[bf] = succ / total
        return out

    def success_rate_by_operand(self) -> dict[Operand, float]:
        """Success rate per corrupted operand (A / B / OUT)."""
        out = {}
        for op in Operand:
            total = sum(c for (k, _), c in self.by_operand.items() if k == op)
            if total:
                succ = self.by_operand.get((op, Outcome.SUCCESS), 0)
                out[op] = succ / total
        return out

    def failure_rate_by_bit_field(self) -> dict[BitField, float]:
        """Crash/hang rate per IEEE-754 field."""
        out = {}
        for bf in BitField:
            total = sum(c for (k, _), c in self.by_bit_field.items() if k == bf)
            if total:
                fails = self.by_bit_field.get((bf, Outcome.FAILURE), 0)
                out[bf] = fails / total
        return out


def run_sensitivity(app: AppProtocol, deployment: Deployment) -> SensitivityReport:
    """Run a single-error deployment, attributing outcomes to flip sites."""
    if deployment.n_errors != 1:
        raise ConfigurationError("sensitivity analysis requires single-error tests")
    profile_tracer = Tracer(TracerMode.PROFILE)
    outputs = execute_spmd(app.program, deployment.nprocs, sink=profile_tracer)
    reference = outputs[0]

    report = SensitivityReport(app_name=app.name, deployment=deployment)
    for trial in range(deployment.trials):
        rng = trial_seed(deployment.seed, trial)
        plan = sample_plan(
            profile_tracer.profile,
            rng,
            target_rank=deployment.effective_target_rank,
            region=deployment.region,
        )
        tracer = Tracer(TracerMode.INJECT, plan)
        try:
            outs = execute_spmd(app.program, deployment.nprocs, sink=tracer)
        except FaultActivatedError:
            outcome = Outcome.FAILURE
        except (DeadlockError, CommunicatorError):
            outcome = Outcome.FAILURE
        else:
            outcome = classify_outcome(outs[0], reference, app.verify)
        (flip,) = plan.flips
        report.record(flip.bit, flip.operand, outcome)
    return report
