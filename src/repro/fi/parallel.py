"""Deprecated shim: trial-parallel execution moved to :mod:`repro.engine`.

This module once carried its own worker pool and chunk-merge loop; both
now live in the campaign engine — the pool in
:class:`repro.engine.backends.ProcessPoolBackend`, the (single) fold in
:class:`repro.engine.aggregate.ChunkAggregator`, and chunk planning in
:mod:`repro.engine.chunks`.  The names below are re-exported so
existing imports keep working; new code should import from
:mod:`repro.engine` directly.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.engine.chunks import MAX_CHUNK_TRIALS, chunk_bounds
from repro.fi.outcomes import Outcome, TrialRecord

if TYPE_CHECKING:  # circular at runtime: campaign dispatches into the engine
    from repro.fi.campaign import AppProtocol, Deployment
    from repro.fi.profile import InstructionProfile

__all__ = ["run_trials_parallel", "chunk_bounds", "MAX_CHUNK_TRIALS"]


def run_trials_parallel(
    app: "AppProtocol",
    deployment: "Deployment",
    profile: "InstructionProfile",
    reference: dict,
    *,
    keep_records: bool,
    jobs: int,
) -> tuple[dict[tuple[Outcome, int, bool], int], list[TrialRecord]]:
    """Fan ``deployment.trials`` out over ``jobs`` worker processes.

    Kept for backwards compatibility; delegates to
    :func:`repro.engine.run_trials` (no checkpointing).
    """
    from repro.engine import run_trials

    return run_trials(
        app, deployment, profile, reference,
        keep_records=keep_records, jobs=jobs,
    )
