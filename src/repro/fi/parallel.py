"""Trial-parallel campaign execution over a deterministic worker pool.

A fault-injection deployment is embarrassingly parallel: every trial's
decisions derive only from ``(seed, trial_index)`` (see
:func:`repro.utils.rng.trial_seed`), so trials partition freely across
processes.  This module fans a campaign's trials out over a spawn-safe
:class:`~concurrent.futures.ProcessPoolExecutor` while guaranteeing that
``run_campaign(..., jobs=N)`` is **bit-identical** to the serial path
for any ``N`` — the disk cache (:mod:`repro.fi.cache`) and every
``results/*.txt`` regression depend on that.

How determinism is preserved
----------------------------
* each trial is executed by :func:`repro.fi.campaign.run_one_trial`,
  the exact function the serial loop runs, seeded by trial index;
* trials are partitioned into contiguous chunks and results are merged
  **in chunk order** (``Executor.map`` keeps submission order), so the
  ``joint`` dict is built with the same insertion order as the serial
  loop, and ``records`` / re-emitted events keep global trial order;
* chunk boundaries affect only scheduling, never any per-trial random
  stream.

Cost model
----------
The expensive state — the application object, the profiled instruction
counts, and the fault-free reference output — is pickled **once per
worker** (pool ``initializer``), not per trial.  Each chunk returns a
compact ``(joint-delta, records, obs-snapshot)`` payload.  Workers use
the ``spawn`` start method so the engine behaves identically on Linux,
macOS and Windows and never inherits dirty interpreter state.

Observability (:mod:`repro.obs`) keeps working under parallel execution:
when the parent's recorder is enabled, each worker records counters,
histograms and spans into a chunk-local recorder (span paths prefixed
with ``campaign`` so they match serial runs) and buffers its typed
events in a :class:`~repro.obs.MemorySink`; the parent absorbs each
chunk's :class:`~repro.obs.ObsSnapshot` as it arrives, re-emitting
``TrialFinished`` / ``FaultInjected`` / ``SpanEnd`` events so
``--progress``, ``--metrics-summary`` and ``obs-report`` see every
trial exactly once.
"""

from __future__ import annotations

import math
import multiprocessing
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import WorkerCrashError
from repro.fi.outcomes import Outcome, TrialRecord
from repro.obs import MemorySink, ObsSnapshot, Recorder, get_recorder, recording

if TYPE_CHECKING:  # circular at runtime: campaign dispatches into here
    from repro.fi.campaign import AppProtocol, Deployment
    from repro.fi.profile import InstructionProfile

__all__ = ["run_trials_parallel", "chunk_bounds"]

#: Upper bound on trials per chunk: small enough that progress events
#: flow and stragglers rebalance, large enough to amortize task overhead.
MAX_CHUNK_TRIALS = 50


def chunk_bounds(trials: int, jobs: int) -> list[tuple[int, int]]:
    """Contiguous ``[start, stop)`` chunks covering ``range(trials)``.

    Aims for ~4 chunks per worker (dynamic load balancing without
    flooding the queue), capped at :data:`MAX_CHUNK_TRIALS`.  Chunking
    influences scheduling only — results are chunk-invariant.
    """
    if trials <= 0:
        return []
    size = max(1, min(MAX_CHUNK_TRIALS, math.ceil(trials / (4 * jobs))))
    return [(lo, min(lo + size, trials)) for lo in range(0, trials, size)]


@dataclass
class _ChunkResult:
    """One chunk's compact payload shipped back to the parent."""

    start: int
    joint: dict[tuple[Outcome, int, bool], int]
    records: list[TrialRecord]
    obs: ObsSnapshot | None


#: Per-worker campaign state, installed once by :func:`_init_worker`.
_WORKER_STATE: dict = {}


def _init_worker(
    app: "AppProtocol",
    deployment: "Deployment",
    profile: "InstructionProfile",
    reference: dict,
    keep_records: bool,
    obs_enabled: bool,
) -> None:
    """Pool initializer: receives the campaign state pickled once."""
    _WORKER_STATE.update(
        app=app,
        deployment=deployment,
        profile=profile,
        reference=reference,
        keep_records=keep_records,
        obs_enabled=obs_enabled,
    )


def _run_chunk(bounds: tuple[int, int]) -> _ChunkResult:
    """Execute trials ``[start, stop)`` inside a worker process."""
    from repro.fi.campaign import run_one_trial

    start, stop = bounds
    state = _WORKER_STATE
    mem: MemorySink | None = None
    if state["obs_enabled"]:
        mem = MemorySink()
        # span_prefix keeps worker span paths ("campaign/trial/...")
        # identical to the serial loop running inside the parent's span.
        rec = Recorder([mem], span_prefix=("campaign",))
    else:
        rec = Recorder(enabled=False)
    joint: dict[tuple[Outcome, int, bool], int] = {}
    records: list[TrialRecord] = []
    with recording(rec):
        for trial in range(start, stop):
            record = run_one_trial(
                state["app"], state["deployment"], state["profile"],
                state["reference"], trial, rec,
            )
            key = (record.outcome, record.n_contaminated, record.activated)
            joint[key] = joint.get(key, 0) + 1
            if state["keep_records"]:
                records.append(record)
    snapshot = rec.snapshot(events=mem.events) if mem is not None else None
    return _ChunkResult(start=start, joint=joint, records=records, obs=snapshot)


def run_trials_parallel(
    app: "AppProtocol",
    deployment: "Deployment",
    profile: "InstructionProfile",
    reference: dict,
    *,
    keep_records: bool,
    jobs: int,
) -> tuple[dict[tuple[Outcome, int, bool], int], list[TrialRecord]]:
    """Fan ``deployment.trials`` out over ``jobs`` worker processes.

    Returns the merged ``(joint, records)`` exactly as the serial loop
    would have produced them.  Worker exceptions propagate unchanged; a
    worker that dies without reporting (hard crash, OOM kill) raises
    :class:`~repro.errors.WorkerCrashError` instead of hanging.
    """
    obs = get_recorder()
    chunks = chunk_bounds(deployment.trials, jobs)
    joint: dict[tuple[Outcome, int, bool], int] = {}
    records: list[TrialRecord] = []
    context = multiprocessing.get_context("spawn")
    try:
        with ProcessPoolExecutor(
            max_workers=min(jobs, len(chunks)),
            mp_context=context,
            initializer=_init_worker,
            initargs=(app, deployment, profile, reference,
                      keep_records, obs.enabled),
        ) as pool:
            # Executor.map yields in submission order: the merge below is
            # serial-identical no matter which worker finished first.
            for chunk in pool.map(_run_chunk, chunks):
                for key, count in chunk.joint.items():
                    joint[key] = joint.get(key, 0) + count
                records.extend(chunk.records)
                if chunk.obs is not None:
                    obs.absorb(chunk.obs)
    except BrokenProcessPool as exc:
        raise WorkerCrashError(
            f"a worker process died while running {app.name!r} trials "
            f"(hard crash or external kill before reporting its chunk); "
            f"rerun with jobs=1 to reproduce the failing trial in-process"
        ) from exc
    return joint, records
