"""Application-level fault injection (the F-SEFI / P-FSEFI analogue).

The package implements the paper's fault-injection methodology (§2):

* :mod:`repro.fi.profile` — dynamic-instruction accounting per rank,
  region and instruction kind (profiling pass);
* :mod:`repro.fi.plan` — sampling of injection plans: a uniformly random
  dynamic FP add/multiply instruction, a random operand, a random bit;
* :mod:`repro.fi.tracer` — the :class:`~repro.taint.tracer_api.TraceSink`
  that counts instructions and fires planned flips during execution;
* :mod:`repro.fi.outcomes` — the three-way outcome classification
  (Success / SDC / Failure) of §2;
* :mod:`repro.fi.scenarios` — pluggable fault-scenario families: the
  default transient bit flips plus rank fail-stop and in-transit
  message corruption (see ``docs/scenarios.md``);
* :mod:`repro.fi.campaign` — fault-injection *deployments*: many trials
  with a fixed configuration, aggregated into rates and propagation
  histograms.
"""

from repro.fi.profile import InstructionProfile
from repro.fi.plan import PlannedFlip, InjectionPlan, sample_plan
from repro.fi.tracer import Tracer, TracerMode
from repro.fi.outcomes import Outcome, TrialRecord, classify_outcome
from repro.fi.scenarios import (
    SCENARIOS,
    BitFlipModel,
    FaultModel,
    MessageCorruptionModel,
    RankKillModel,
    canonical_scenario,
    resolve_model,
)
from repro.fi.campaign import Deployment, CampaignResult, run_campaign

__all__ = [
    "InstructionProfile",
    "PlannedFlip",
    "InjectionPlan",
    "sample_plan",
    "Tracer",
    "TracerMode",
    "Outcome",
    "TrialRecord",
    "classify_outcome",
    "SCENARIOS",
    "FaultModel",
    "BitFlipModel",
    "RankKillModel",
    "MessageCorruptionModel",
    "canonical_scenario",
    "resolve_model",
    "Deployment",
    "CampaignResult",
    "run_campaign",
]
