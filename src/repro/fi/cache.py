"""Disk cache for campaign results.

Campaigns are deterministic given (app configuration, deployment), so
their aggregate results can be cached and shared across experiment
harnesses and repeated benchmark runs.  The cache stores only the
aggregate joint distribution and profile summary — everything
downstream analyses consume — as JSON under ``REPRO_CACHE_DIR``
(default ``.repro-cache/`` in the working directory).

Persistence goes through the :class:`~repro.engine.store.ResultStore`
abstraction (a :class:`~repro.engine.store.LocalDirStore` rooted at
:func:`cache_dir`), the same layer the engine's checkpoint store uses —
one place owns atomic write-then-rename and corrupt-entry deletion.
The on-disk layout is unchanged from the pre-store versions.

Set ``REPRO_CACHE=0`` to disable, e.g. while modifying the substrate.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import TYPE_CHECKING

from repro.fi.campaign import (
    AppProtocol,
    CampaignResult,
    Deployment,
    run_campaign,
    with_resolved_ci,
    with_resolved_scenario,
)
from repro.fi.outcomes import Outcome
from repro.obs import CacheCorrupt, CacheHit, CacheMiss, CacheWrite, get_recorder

if TYPE_CHECKING:
    from repro.engine.store import ResultStore

__all__ = [
    "cached_campaign", "cache_dir", "cache_enabled", "deployment_key",
    "load_unique_fraction", "load_unique_fraction_stats",
    "store_unique_fraction",
]

_CACHE_VERSION = "v1"


def cache_enabled() -> bool:
    """Is disk caching active? (disable with ``REPRO_CACHE=0``)."""
    return os.environ.get("REPRO_CACHE", "1") != "0"


def cache_dir() -> Path:
    """Cache directory (``REPRO_CACHE_DIR``, default ``.repro-cache``)."""
    return Path(os.environ.get("REPRO_CACHE_DIR", ".repro-cache"))


def deployment_key(deployment: Deployment) -> str:
    """Stable identity string for a deployment's *result*.

    Execution knobs that cannot change the outcome — ``jobs``,
    ``lanes``, ``checkpoint_every`` — are deliberately excluded: the
    same string
    keys both the result cache and the engine's checkpoint store
    (:mod:`repro.engine.checkpoint`), so a campaign interrupted under
    one worker count can resume under another.
    """
    key = (
        f"p={deployment.nprocs},t={deployment.trials},e={deployment.n_errors},"
        f"r={deployment.region.value if deployment.region else None},"
        f"tr={deployment.target_rank},s={deployment.seed}"
    )
    if deployment.bits_per_error != 1:  # appended only when set: keeps
        key += f",b={deployment.bits_per_error}"  # single-bit keys stable
    if deployment.max_steps is not None:  # same trick: the runaway guard
        key += f",ms={deployment.max_steps}"  # changes outcomes when set
    if deployment.ci_halfwidth is not None:  # adaptive stopping changes
        key += f",ci={deployment.ci_halfwidth!r}"  # the executed trial set
    if deployment.scenario is not None:  # non-default fault family: the
        key += f",sc={deployment.scenario}"  # canonical default is None
    return key


#: Backwards-compatible alias (the helper predates the public name).
_deployment_key = deployment_key


def _store() -> "ResultStore":
    # local import: repro.engine imports this module during package init
    # (checkpoint keying), so the reverse import must not run at load time
    from repro.engine.store import LocalDirStore

    return LocalDirStore(cache_dir())


def _cache_key(app: AppProtocol, deployment: Deployment) -> str:
    key = f"{_CACHE_VERSION}|{app.cache_key()}|{deployment_key(deployment)}"
    digest = hashlib.sha256(key.encode()).hexdigest()[:24]
    return f"{app.name}-{digest}.json"


def _serialize(result: CampaignResult) -> dict:
    return {
        "version": _CACHE_VERSION,
        "app_name": result.app_name,
        "joint": [
            [outcome.value, ncont, activated, count]
            for (outcome, ncont, activated), count in sorted(
                result.joint.items(), key=lambda kv: (kv[0][0].value, kv[0][1], kv[0][2])
            )
        ],
        "parallel_unique_fraction": result.parallel_unique_fraction,
        "total_instructions": result.total_instructions,
        "candidate_instructions": result.candidate_instructions,
        "profile_time": result.profile_time,
        "injection_time": result.injection_time,
    }


def _deserialize(blob: dict, deployment: Deployment) -> CampaignResult:
    joint = {
        (Outcome(o), int(n), bool(a)): int(c) for o, n, a, c in blob["joint"]
    }
    return CampaignResult(
        app_name=blob["app_name"],
        deployment=deployment,
        joint=joint,
        parallel_unique_fraction=blob["parallel_unique_fraction"],
        total_instructions=blob["total_instructions"],
        candidate_instructions=blob["candidate_instructions"],
        profile_time=blob["profile_time"],
        injection_time=blob["injection_time"],
    )


# ----------------------------------------------------------------------
# parallel-unique profile fractions (one fault-free run per (app, p))
# ----------------------------------------------------------------------
_FRACTIONS_KEY = "unique_fractions.json"


def _fraction_key(app: AppProtocol, nprocs: int) -> str:
    return f"{_CACHE_VERSION}|{app.cache_key()}|p={nprocs}"


def _read_fractions(store: "ResultStore") -> dict:
    raw = store.get(_FRACTIONS_KEY)
    if raw is None:
        return {}
    try:
        blob = json.loads(raw)
    except (json.JSONDecodeError, UnicodeDecodeError):
        store.delete(_FRACTIONS_KEY)  # corrupt: recompute and rewrite
        return {}
    return blob if isinstance(blob, dict) else {}


def load_unique_fraction(app: AppProtocol, nprocs: int) -> float | None:
    """Disk-cached parallel-unique fraction for ``(app, nprocs)``, if any.

    Target-scale profiling runs (p=64/128) are the costliest fault-free
    executions of the pipeline; persisting their one-number result means
    a fresh process never redoes them.  Accepts both the legacy bare
    float entries and the current ``{"fraction", "candidates"}`` records.
    """
    stats = load_unique_fraction_stats(app, nprocs)
    if stats is not None:
        return stats[0]
    if not cache_enabled():
        return None
    value = _read_fractions(_store()).get(_fraction_key(app, nprocs))
    return float(value) if isinstance(value, (int, float)) else None


def load_unique_fraction_stats(
    app: AppProtocol, nprocs: int
) -> tuple[float, int] | None:
    """Cached ``(fraction, candidate_instructions)`` for ``(app, nprocs)``.

    The candidate count is the denominator behind the fraction, needed
    for confidence intervals on the share.  Legacy bare-float cache
    entries (pre-count schema) return None so callers re-profile once
    and rewrite the entry in the current format.
    """
    if not cache_enabled():
        return None
    value = _read_fractions(_store()).get(_fraction_key(app, nprocs))
    if isinstance(value, dict) and "fraction" in value:
        return float(value["fraction"]), int(value.get("candidates", 0))
    return None


def store_unique_fraction(
    app: AppProtocol, nprocs: int, value: float, candidates: int = 0
) -> None:
    """Persist a measured parallel-unique fraction (atomic rewrite)."""
    if not cache_enabled():
        return
    store = _store()
    blob = _read_fractions(store)
    blob[_fraction_key(app, nprocs)] = {
        "fraction": float(value), "candidates": int(candidates),
    }
    store.put(_FRACTIONS_KEY, json.dumps(blob, sort_keys=True).encode())


def cached_campaign(app: AppProtocol, deployment: Deployment) -> CampaignResult:
    """Run (or load) a campaign; results persist across processes.

    A cache file that no longer parses as JSON (truncated by a killed
    process, disk corruption) is deleted immediately and the campaign
    recomputed; a :class:`~repro.obs.CacheCorrupt` event records the
    incident.  Hits, misses and writes are counted with byte sizes when
    observability is enabled.
    """
    # pin the effective precision target and fault scenario before
    # keying: both change what the trials execute, so they must never
    # share a cache entry (or checkpoint identity) with other settings
    deployment = with_resolved_scenario(with_resolved_ci(deployment))
    if not cache_enabled():
        return run_campaign(app, deployment)
    obs = get_recorder()
    store = _store()
    key = _cache_key(app, deployment)
    path = store.describe(key)
    raw = store.get(key)
    if raw is not None:
        try:
            text = raw.decode()
            blob = json.loads(text)
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            # delete-and-recompute: never leave a known-bad file behind
            store.delete(key)
            if obs.enabled:
                obs.counter("cache.corrupt")
                obs.emit(CacheCorrupt(path=path, reason=str(exc)))
        else:
            try:
                if blob.get("version") == _CACHE_VERSION:
                    result = _deserialize(blob, deployment)
                    if obs.enabled:
                        obs.counter("cache.hits")
                        obs.counter("cache.hit_bytes", len(text))
                        obs.emit(CacheHit(path=path, size_bytes=len(text)))
                    return result
            except (KeyError, ValueError, TypeError):
                pass  # stale schema: recompute below (overwrites entry)
    if obs.enabled:
        obs.counter("cache.misses")
        obs.emit(CacheMiss(path=path))
    result = run_campaign(app, deployment)
    payload = json.dumps(_serialize(result))
    size = store.put(key, payload.encode())
    if obs.enabled:
        obs.counter("cache.writes")
        obs.counter("cache.write_bytes", size)
        obs.emit(CacheWrite(path=path, size_bytes=size))
    return result
