"""Fault-injection deployments: many randomized tests, one configuration.

A *deployment* (paper §2) fixes the execution scale (number of MPI
processes), the fault pattern (number of errors per test, target
region), and the number of tests.  Running one yields a
:class:`CampaignResult`: outcome rates (success / SDC / failure), the
joint distribution of (outcome, contaminated-process count), the
dynamic-instruction profile, and wall-clock fault-injection time — the
raw material for every model input and every figure of the paper.
"""

from __future__ import annotations

import os
import sys
import time
from dataclasses import dataclass, field, replace
from typing import Generator, Protocol

from repro.errors import ConfigurationError
from repro.fi.outcomes import Outcome, TrialRecord
from repro.fi.profile import InstructionProfile
from repro.fi.scenarios import canonical_scenario, resolve_model
from repro.fi.tracer import Tracer, TracerMode
from repro.mpisim.runner import execute_spmd
from repro.obs import (
    CampaignFinished,
    CampaignStarted,
    ProfileScope,
    get_recorder,
)
from repro.obs.trace import (
    TraceContext,
    TraceScope,
    make_span,
    span_id_from,
    trace_id_from,
)
from repro.taint.region import Region
from repro.utils.validation import check_positive_int

__all__ = [
    "Deployment", "CampaignResult", "run_campaign", "run_one_trial",
    "default_jobs", "default_lanes", "default_checkpoint_every",
    "default_resume", "default_ci_halfwidth", "default_scenario",
    "default_backend",
    "with_resolved_ci", "with_resolved_scenario",
    "AppProtocol",
]


def default_jobs() -> int:
    """Worker processes per campaign: ``$REPRO_JOBS``, falling back to 1.

    1 means the classic in-process serial loop.  Any value produces a
    bit-identical ``joint`` distribution (see :mod:`repro.engine`), so
    this only trades wall-clock for cores.
    """
    try:
        return max(1, int(os.environ.get("REPRO_JOBS", "1")))
    except ValueError:
        return 1


def default_lanes() -> int:
    """Shadow-execution lanes per pass: ``$REPRO_LANES``, falling back to 1.

    1 means the classic one-trial-per-execution loop.  Any value
    produces bit-identical records, events, and provenance (see
    ``docs/performance.md``), so — like ``jobs`` — this only trades
    wall-clock for memory.  A malformed or non-positive value warns once
    on stderr and leaves lane batching off rather than aborting an
    otherwise valid run.
    """
    raw = os.environ.get("REPRO_LANES")
    if raw is None or raw == "":
        return 1
    try:
        value = int(raw)
    except ValueError:
        print(
            f"repro: warning: malformed REPRO_LANES={raw!r}; "
            f"lane batching disabled",
            file=sys.stderr,
        )
        return 1
    if value < 1:
        print(
            f"repro: warning: REPRO_LANES={value} is not positive; "
            f"lane batching disabled",
            file=sys.stderr,
        )
        return 1
    return value


def default_checkpoint_every() -> int | None:
    """Checkpoint interval: ``$REPRO_CHECKPOINT_EVERY`` trials, else off.

    None disables checkpointing (the classic fire-and-forget campaign).
    A malformed or non-positive value warns once on stderr and leaves
    checkpointing off rather than aborting an otherwise valid run.
    """
    raw = os.environ.get("REPRO_CHECKPOINT_EVERY")
    if raw is None or raw == "":
        return None
    try:
        value = int(raw)
    except ValueError:
        print(
            f"repro: warning: malformed REPRO_CHECKPOINT_EVERY={raw!r}; "
            f"checkpointing disabled",
            file=sys.stderr,
        )
        return None
    if value < 1:
        print(
            f"repro: warning: REPRO_CHECKPOINT_EVERY={value} is not "
            f"positive; checkpointing disabled",
            file=sys.stderr,
        )
        return None
    return value


def default_resume() -> bool:
    """Resume from checkpoints by default? (``$REPRO_RESUME``, off unless set)."""
    return os.environ.get("REPRO_RESUME", "0").lower() not in ("0", "", "false", "no")


def default_ci_halfwidth() -> float | None:
    """Adaptive precision target: ``$REPRO_CI_HALFWIDTH``, else fixed-N.

    None keeps the classic fixed-trial-count campaign.  A malformed or
    out-of-range value warns once on stderr and leaves adaptive stopping
    off rather than aborting an otherwise valid run.
    """
    raw = os.environ.get("REPRO_CI_HALFWIDTH")
    if raw is None or raw == "":
        return None
    try:
        value = float(raw)
    except ValueError:
        print(
            f"repro: warning: malformed REPRO_CI_HALFWIDTH={raw!r}; "
            f"adaptive stopping disabled",
            file=sys.stderr,
        )
        return None
    if not 0.0 < value < 0.5:
        print(
            f"repro: warning: REPRO_CI_HALFWIDTH={value} outside (0, 0.5); "
            f"adaptive stopping disabled",
            file=sys.stderr,
        )
        return None
    return value


def default_scenario() -> str | None:
    """Fault-scenario family: ``$REPRO_SCENARIO``, falling back to bit flips.

    None means the classic transient bit-flip pipeline.  Specs are
    ``name[:k=v,...]`` (see :mod:`repro.fi.scenarios`); a malformed or
    unknown spec warns once on stderr and leaves the default family in
    place rather than aborting an otherwise valid run.
    """
    raw = os.environ.get("REPRO_SCENARIO")
    if raw is None or raw.strip() == "":
        return None
    try:
        return canonical_scenario(raw)
    except ConfigurationError as exc:
        print(
            f"repro: warning: ignoring REPRO_SCENARIO={raw!r}: {exc}",
            file=sys.stderr,
        )
        return None


def default_backend() -> str | None:
    """Execution backend: ``$REPRO_BACKEND``, falling back to auto-select.

    None lets :func:`~repro.engine.core.select_backend` pick from
    ``jobs`` (the classic heuristic).  Specs are ``inline``, ``process``,
    or ``distributed:host:port`` (see :mod:`repro.engine.distributed`);
    a malformed spec warns once on stderr and leaves auto-selection in
    place rather than aborting an otherwise valid run.
    """
    raw = os.environ.get("REPRO_BACKEND")
    if raw is None or raw.strip() == "":
        return None
    from repro.engine.backends import canonical_backend  # circular at import

    try:
        return canonical_backend(raw)
    except ConfigurationError as exc:
        print(
            f"repro: warning: ignoring REPRO_BACKEND={raw!r}: {exc}",
            file=sys.stderr,
        )
        return None


class AppProtocol(Protocol):
    """What the campaign driver needs from an application."""

    name: str

    def program(self, rank: int, size: int, comm, fp) -> Generator:
        """The SPMD rank program (generator; see :mod:`repro.mpisim`)."""
        ...

    def verify(self, output: dict, reference: dict) -> bool:
        """The application's correctness checker (paper §2 'checkers')."""
        ...

    def cache_key(self) -> str:
        """Stable string identifying the app's parameters."""
        ...


@dataclass(frozen=True)
class Deployment:
    """One fault-injection configuration (paper: 'fault injection deployment')."""

    nprocs: int
    trials: int
    n_errors: int = 1
    region: Region | None = None        # None = sample by candidate share
    target_rank: int | None = None      # None = uniform victim per test
    seed: int = 0
    max_steps: int | None = None        # scheduler runaway guard
    bits_per_error: int = 1             # >1 = multi-bit fault pattern
    jobs: int | None = None             # worker processes; None = $REPRO_JOBS
    lanes: int | None = None            # trials batched per execution pass;
                                        # None = $REPRO_LANES
    checkpoint_every: int | None = None  # trials per durable checkpoint;
                                         # None = $REPRO_CHECKPOINT_EVERY
    ci_halfwidth: float | None = None   # adaptive precision target; None =
                                        # $REPRO_CI_HALFWIDTH, else fixed-N
    scenario: str | None = None         # fault-scenario spec (see
                                        # repro.fi.scenarios); None =
                                        # $REPRO_SCENARIO, else bit flips
    backend: str | None = None          # execution backend spec (inline /
                                        # process / distributed:host:port);
                                        # None = $REPRO_BACKEND, else
                                        # auto-select from jobs

    def __post_init__(self) -> None:
        check_positive_int(self.nprocs, "nprocs")
        check_positive_int(self.trials, "trials")
        check_positive_int(self.n_errors, "n_errors")
        check_positive_int(self.bits_per_error, "bits_per_error")
        if self.jobs is not None:
            check_positive_int(self.jobs, "jobs")
        if self.lanes is not None:
            check_positive_int(self.lanes, "lanes")
        if self.checkpoint_every is not None:
            check_positive_int(self.checkpoint_every, "checkpoint_every")
        if self.ci_halfwidth is not None and not 0.0 < self.ci_halfwidth < 0.5:
            raise ConfigurationError(
                f"ci_halfwidth must be in (0, 0.5), got {self.ci_halfwidth}"
            )
        if self.n_errors > 1 and self.target_rank is None and self.nprocs > 1:
            raise ConfigurationError(
                "multi-error deployments on parallel executions must pin target_rank"
            )
        if self.scenario is not None:
            # validate and canonicalize eagerly (parameterless bit flips
            # normalize to None) so equal configurations compare equal
            # and derive identical cache/checkpoint identities
            object.__setattr__(self, "scenario", canonical_scenario(self.scenario))
        if self.backend is not None:
            # validate eagerly so a bad spec fails at construction, not
            # mid-campaign; lazy import — the engine imports this module
            from repro.engine.backends import canonical_backend

            object.__setattr__(self, "backend", canonical_backend(self.backend))

    @property
    def effective_target_rank(self) -> int | None:
        """Serial multi-error emulation implicitly targets rank 0."""
        if self.target_rank is not None:
            return self.target_rank
        return 0 if self.n_errors > 1 else None


@dataclass
class CampaignResult:
    """Aggregated result of one deployment.

    ``joint`` maps ``(outcome, n_contaminated, activated)`` to trial
    counts — sufficient for outcome rates, propagation histograms, and
    the conditional success rates of the paper's Fig. 3.
    """

    app_name: str
    deployment: Deployment
    joint: dict[tuple[Outcome, int, bool], int]
    parallel_unique_fraction: float
    total_instructions: int
    candidate_instructions: int
    profile_time: float
    injection_time: float
    records: list[TrialRecord] = field(default_factory=list)

    # ------------------------------------------------------------------
    @property
    def n_trials(self) -> int:
        """Total fault-injection tests aggregated in this result."""
        return sum(self.joint.values())

    def outcome_count(self, outcome: Outcome) -> int:
        """Number of tests that ended with ``outcome``."""
        return sum(c for (o, _, _), c in self.joint.items() if o == outcome)

    def rate(self, outcome: Outcome) -> float:
        """Fraction of tests with ``outcome`` (the paper's FI result)."""
        n = self.n_trials
        return self.outcome_count(outcome) / n if n else float("nan")

    @property
    def success_rate(self) -> float:
        return self.rate(Outcome.SUCCESS)

    @property
    def sdc_rate(self) -> float:
        return self.rate(Outcome.SDC)

    @property
    def failure_rate(self) -> float:
        return self.rate(Outcome.FAILURE)

    # ------------------------------------------------------------------
    def propagation_counts(self) -> dict[int, int]:
        """Trials per contaminated-process count (activated trials only)."""
        out: dict[int, int] = {}
        for (_, ncont, activated), c in self.joint.items():
            if activated and ncont >= 1:
                out[ncont] = out.get(ncont, 0) + c
        return out

    def success_rate_given_contaminated(self, n: int) -> float | None:
        """Success rate among activated trials with ``n`` ranks contaminated.

        Returns None when no such trial occurred (the paper's "missing
        bars" in Fig. 3).
        """
        total = succ = 0
        for (o, ncont, activated), c in self.joint.items():
            if activated and ncont == n:
                total += c
                if o == Outcome.SUCCESS:
                    succ += c
        return succ / total if total else None

    def activation_rate(self) -> float:
        """Share of tests whose planned flips all actually fired."""
        n = self.n_trials
        act = sum(c for (_, _, a), c in self.joint.items() if a)
        return act / n if n else float("nan")


def run_one_trial(
    app: AppProtocol,
    deployment: Deployment,
    profile: InstructionProfile,
    reference: dict,
    trial: int,
    obs,
) -> TrialRecord:
    """Execute fault-injection test ``trial`` of ``deployment``.

    Dispatches to the deployment's fault-scenario family
    (:mod:`repro.fi.scenarios`; ``None`` = the default transient bit
    flips).  Every family guarantees that per-trial decisions depend
    only on ``(deployment.seed, trial)`` via
    :func:`~repro.utils.rng.trial_seed`, so trials can run in any order
    — or in any process — and produce identical records.  Both the
    serial campaign loop and the parallel workers
    (:mod:`repro.engine`) call this one function.
    """
    model = resolve_model(deployment.scenario)
    return model.run_trial(app, deployment, profile, reference, trial, obs)


def _resolve_jobs(jobs: int | None, deployment: Deployment) -> int:
    """Worker count precedence: call arg > ``Deployment.jobs`` > env."""
    if jobs is None:
        jobs = deployment.jobs
    if jobs is None:
        return default_jobs()
    return check_positive_int(jobs, "jobs")


def _resolve_lanes(lanes: int | None, deployment: Deployment) -> int:
    """Lane count precedence: call arg > ``Deployment.lanes`` > env."""
    if lanes is None:
        lanes = deployment.lanes
    if lanes is None:
        return default_lanes()
    return check_positive_int(lanes, "lanes")


def _resolve_checkpoint_every(
    checkpoint_every: int | None, deployment: Deployment
) -> int | None:
    """Checkpoint interval precedence: call arg > deployment > env > off."""
    if checkpoint_every is None:
        checkpoint_every = deployment.checkpoint_every
    if checkpoint_every is None:
        return default_checkpoint_every()
    return check_positive_int(checkpoint_every, "checkpoint_every")


def _resolve_backend(backend: str | None, deployment: Deployment) -> str | None:
    """Backend spec precedence: call arg > ``Deployment.backend`` > env.

    Purely an execution knob — like ``jobs`` it never changes results,
    so (unlike the precision target and the scenario) it stays out of
    cache keys and checkpoint identities.
    """
    if backend is not None:
        from repro.engine.backends import canonical_backend

        return canonical_backend(backend)
    if deployment.backend is not None:
        return deployment.backend  # canonicalized at construction
    return default_backend()


def with_resolved_ci(
    deployment: Deployment, ci_halfwidth: float | None = None
) -> Deployment:
    """Materialize the effective precision target into the deployment.

    Precedence: call arg > ``Deployment.ci_halfwidth`` >
    ``$REPRO_CI_HALFWIDTH`` > None (fixed-N).  Unlike execution knobs
    (``jobs``, ``checkpoint_every``), the target *changes the executed
    trial set*, so it must be pinned into the deployment before cache
    keys or checkpoint identities are derived — both
    :func:`run_campaign` and :func:`repro.fi.cache.cached_campaign`
    resolve through here so the three always agree.
    """
    if ci_halfwidth is None:
        ci_halfwidth = deployment.ci_halfwidth
    if ci_halfwidth is None:
        ci_halfwidth = default_ci_halfwidth()
    if ci_halfwidth == deployment.ci_halfwidth:
        return deployment
    return replace(deployment, ci_halfwidth=ci_halfwidth)


def with_resolved_scenario(
    deployment: Deployment, scenario: str | None = None
) -> Deployment:
    """Materialize the effective fault scenario into the deployment.

    Precedence: call arg > ``Deployment.scenario`` > ``$REPRO_SCENARIO``
    > bit flips.  Like the precision target — and unlike pure execution
    knobs — the scenario *changes what each trial does*, so it must be
    pinned into the deployment before cache keys or checkpoint
    identities are derived; both :func:`run_campaign` and
    :func:`repro.fi.cache.cached_campaign` resolve through here.  The
    canonical form of the parameterless default family is ``None``, so
    deployments that never mention scenarios keep their pre-scenario
    cache entries and checkpoint directories.
    """
    if scenario is not None:
        scenario = canonical_scenario(scenario)
    elif deployment.scenario is not None:
        scenario = deployment.scenario
    else:
        scenario = default_scenario()
    if scenario == deployment.scenario:
        return deployment
    return replace(deployment, scenario=scenario)


def run_campaign(
    app: AppProtocol,
    deployment: Deployment,
    keep_records: bool = False,
    jobs: int | None = None,
    lanes: int | None = None,
    checkpoint_every: int | None = None,
    resume: bool | None = None,
    ci_halfwidth: float | None = None,
    scenario: str | None = None,
    backend: str | None = None,
) -> CampaignResult:
    """Run a full fault-injection deployment for ``app``.

    A fault-free profiling pass first records the reference output and
    the per-rank dynamic-instruction profile; trial execution is then
    handed to the campaign engine (:mod:`repro.engine`), which samples
    an injection plan per trial from the profile and re-executes the
    application with the tracer armed.  Crashes
    (:class:`FaultActivatedError`), hangs (deadlocks) and communicator
    breakdown caused by fault-perturbed control flow are classified as
    ``FAILURE``.

    ``jobs`` > 1 fans the trials out over a spawn-safe worker pool; the
    result — including the ``joint`` distribution the disk cache
    persists — is bit-identical to the serial path for any worker
    count.  ``lanes=N`` batches N trials into one lane-vectorized pass
    through the application (see ``docs/performance.md``) — records,
    events, and provenance stay bit-identical to ``lanes=1``, and the
    knob composes freely with ``jobs`` and checkpoint/resume.
    ``checkpoint_every=N`` persists completed trial chunks as
    they finish, and ``resume=True`` recovers an interrupted campaign's
    durable chunks and re-runs only the missing ones — still
    bit-identical to an uninterrupted serial run (see ``docs/engine.md``).

    ``ci_halfwidth=H`` switches the deployment to adaptive precision
    targeting: ``deployment.trials`` becomes a *cap*, and trials stop as
    soon as every outcome rate's 95% Wilson half-width is at or below H
    (see ``docs/adaptive.md``) — still bit-identical for any ``jobs``
    and across interrupt/resume.

    ``scenario`` selects the fault-scenario family executed per trial
    (``"bitflip"`` — the default — ``"rankkill"``, ``"msgcorrupt"``;
    see ``docs/scenarios.md``).  Scenarios compose with every knob
    above, except that only the bit-flip family supports lane batching
    — other families fall back to the scalar path with a one-line
    warning.

    ``backend`` pins *where* chunks execute — ``"inline"``,
    ``"process"``, or ``"distributed:host:port"`` (a controller socket
    that warm worker processes connect to; see ``docs/distributed.md``)
    — overriding the jobs-based auto-selection.  Another pure execution
    knob: results stay bit-identical across backends, worker counts and
    worker churn.
    """
    deployment = with_resolved_scenario(
        with_resolved_ci(deployment, ci_halfwidth), scenario
    )
    n_jobs = _resolve_jobs(jobs, deployment)
    n_lanes = _resolve_lanes(lanes, deployment)
    model = resolve_model(deployment.scenario)
    if n_lanes > 1 and not model.supports_lanes:
        print(
            f"repro: warning: scenario {model.name!r} does not support "
            f"lane batching; running trials on the scalar path",
            file=sys.stderr,
        )
        n_lanes = 1
    ckpt_every = _resolve_checkpoint_every(checkpoint_every, deployment)
    do_resume = default_resume() if resume is None else resume
    backend_spec = _resolve_backend(backend, deployment)
    obs = get_recorder()
    # the recorder accumulates across campaigns, so the profiler scopes
    # this campaign's span/op deltas (emitted as one CampaignProfile)
    prof_scope = (
        ProfileScope(obs) if obs.enabled and obs.profiling else None
    )
    # Like the profiler, tracing scopes this campaign's slice of the
    # recorder's cumulative span list.  Trace/span ids hash logical
    # identity only (app cache key + deployment key), never the clock,
    # so the same deployment traces to the same ids in every run.
    tracing = obs.enabled and obs.tracing
    trace_scope = None
    prev_trace_ctx = obs.trace_ctx
    if tracing:
        from repro.fi.cache import deployment_key  # circular at import time

        trace_id = trace_id_from(app.cache_key(), deployment_key(deployment))
        trace_ctx = TraceContext(trace_id, span_id_from(trace_id, "campaign"))
        obs.trace_ctx = trace_ctx
        trace_scope = TraceScope(obs)
        campaign_w0 = time.time()
        campaign_p0 = time.perf_counter()
    obs.emit(CampaignStarted(
        app=app.name, nprocs=deployment.nprocs, trials=deployment.trials,
        n_errors=deployment.n_errors, seed=deployment.seed,
    ))
    try:
        with obs.span("campaign"):
            t0 = time.perf_counter()
            prof_w0 = time.time() if tracing else 0.0
            with obs.span("profile"):
                profile_tracer = Tracer(TracerMode.PROFILE)
                outputs = execute_spmd(
                    app.program, deployment.nprocs, sink=profile_tracer,
                    max_steps=deployment.max_steps,
                )
            reference = outputs[0]
            if reference is None:
                raise ConfigurationError(
                    f"app {app.name!r} returned no output at rank 0"
                )
            profile: InstructionProfile = profile_tracer.profile
            profile_time = time.perf_counter() - t0
            if tracing:
                obs.add_trace_span(make_span(
                    "profile", "phase", trace_ctx.derive("phase", "profile"),
                    trace_ctx.span_id, prof_w0, profile_time,
                ))

            t1 = time.perf_counter()
            # imported lazily: the engine imports this module in turn
            if deployment.ci_halfwidth is not None:
                from repro.engine.adaptive import run_adaptive_trials

                joint, records = run_adaptive_trials(
                    app, deployment, profile, reference,
                    target=deployment.ci_halfwidth,
                    keep_records=keep_records, jobs=n_jobs, lanes=n_lanes,
                    checkpoint_every=ckpt_every, resume=do_resume,
                    backend=backend_spec,
                )
            else:
                from repro.engine import run_trials

                joint, records = run_trials(
                    app, deployment, profile, reference,
                    keep_records=keep_records, jobs=n_jobs, lanes=n_lanes,
                    checkpoint_every=ckpt_every, resume=do_resume,
                    backend=backend_spec,
                )
            injection_time = time.perf_counter() - t1
    finally:
        obs.trace_ctx = prev_trace_ctx

    if prof_scope is not None:
        # after the campaign span closes, so the delta includes its total
        obs.emit(prof_scope.to_event(app.name))
    if tracing:
        # the campaign span closes the tree; emitted as one event so
        # sinks can route it (obs.configure sends it to the timeline
        # sidecar, never the main trace)
        obs.add_trace_span(make_span(
            f"campaign {app.name}", "campaign", trace_ctx, "",
            campaign_w0, time.perf_counter() - campaign_p0,
            args={"app": app.name, "nprocs": deployment.nprocs,
                  "trials": deployment.trials, "seed": deployment.seed},
        ))
        obs.emit(trace_scope.to_event(app.name, trace_id))
    result = CampaignResult(
        app_name=app.name,
        deployment=deployment,
        joint=joint,
        parallel_unique_fraction=profile.parallel_unique_fraction(),
        total_instructions=profile.total_instructions(),
        candidate_instructions=sum(profile.candidates(r) for r in profile.ranks),
        profile_time=profile_time,
        injection_time=injection_time,
        records=records,
    )
    obs.emit(CampaignFinished(
        app=app.name, trials=result.n_trials,
        success_rate=result.success_rate, sdc_rate=result.sdc_rate,
        failure_rate=result.failure_rate,
        profile_time=profile_time, injection_time=injection_time,
    ))
    return result
