"""NPB MG: V-cycle multigrid on a 3-D periodic Poisson problem.

Numerics (as in NAS MG): a fixed number of V-cycles on ``-lap(u) = v``
with a sparse random right-hand side; weighted-Jacobi smoothing,
8-point-average restriction, piecewise-constant prolongation, and the
L2 residual norm after each cycle as the verified output (NAS's
``rnm2``).

Parallelization: 3-D block decomposition with 6-neighbour periodic halo
exchange at every stencil application, on every level.  Like NAS MG,
**all** computation is common — halo exchange is pure communication —
so MG's parallel-unique share is zero (paper Table 1: "No parallel-
unique comp").

The contamination dynamics this produces match the paper's MG story:
errors creep to face neighbours through halos and jump to every rank
through the per-cycle residual allreduce.
"""

from __future__ import annotations

import math

import numpy as np

from repro.apps.base import AppSpec
from repro.errors import ConfigurationError
from repro.taint.tarray import TArray
from repro.utils.rng import spawn_rng

__all__ = ["MGApp"]


def _factor_grid(size: int) -> tuple[int, int, int]:
    """Split a power-of-two process count over (z, y, x), largest first."""
    dims = [1, 1, 1]
    axis = 0
    while size > 1:
        dims[axis] *= 2
        size //= 2
        axis = (axis + 1) % 3
    return tuple(dims)  # type: ignore[return-value]


class MGApp(AppSpec):
    """The MG benchmark.  See module docstring."""

    name = "mg"

    def __init__(
        self,
        n: int = 32,
        cycles: int = 2,
        levels: int = 4,
        omega: float = 2.0 / 3.0,
        coarse_sweeps: int = 4,
        epsilon: float = 1e-9,
        seed: int = 777,
    ):
        if n & (n - 1) or n < (1 << (levels - 1)) * 4:
            raise ConfigurationError(
                f"MG grid n={n} must be a power of two with >= 4 points at the "
                f"coarsest of {levels} levels"
            )
        self.n = n
        self.cycles = cycles
        self.levels = levels
        self.omega = omega
        self.coarse_sweeps = coarse_sweeps
        self.epsilon = epsilon
        self.seed = seed
        rng = spawn_rng(seed, "mg-rhs")
        v = np.zeros((n, n, n))
        # NAS-style sparse +/-1 charges, then zero mean (periodic solvability)
        points = rng.choice(n**3, size=2 * n, replace=False)
        signs = np.where(np.arange(points.size) % 2 == 0, 1.0, -1.0)
        v.reshape(-1)[points] = signs
        v -= v.mean()
        self._rhs = v

    # ------------------------------------------------------------------
    def program(self, rank, size, comm, fp):
        """Fixed V-cycles on the periodic Poisson problem; verified rnm2."""
        self.check_nprocs(size, limit=(self.n // (1 << (self.levels - 1))) ** 3)
        dims = _factor_grid(size)
        coarsest = self.n >> (self.levels - 1)
        for d in dims:
            if coarsest % d:
                raise ConfigurationError(
                    f"MG coarsest grid {coarsest} not divisible by process grid {dims}"
                )
        coords = self._coords(rank, dims)
        lz, ly, lx = (self.n // d for d in dims)
        z0, y0, x0 = coords[0] * lz, coords[1] * ly, coords[2] * lx
        v = fp.asarray(self._rhs[z0 : z0 + lz, y0 : y0 + ly, x0 : x0 + lx])
        u = fp.asarray(np.zeros((lz, ly, lx)))

        rnm2 = fp.asarray(0.0)
        for _ in range(self.cycles):
            u = yield from self._vcycle(fp, comm, rank, size, dims, coords, u, v, level=0)
            r = yield from self._residual(fp, comm, rank, size, dims, coords, u, v, level=0)
            local = fp.dot(r.ravel(), r.ravel())
            total = yield comm.allreduce(local, op="sum")
            rnm2 = fp.sqrt(total)
        if rank == 0:
            return self._as_output(rnm2=rnm2)
        return None

    # ------------------------------------------------------------------
    @staticmethod
    def _coords(rank: int, dims: tuple[int, int, int]) -> tuple[int, int, int]:
        dz, dy, dx = dims
        return (rank // (dy * dx), (rank // dx) % dy, rank % dx)

    @staticmethod
    def _rank_of(coords: tuple[int, int, int], dims: tuple[int, int, int]) -> int:
        dz, dy, dx = dims
        cz, cy, cx = (c % d for c, d in zip(coords, dims))
        return (cz * dy + cy) * dx + cx

    def _neighbor(self, coords, dims, axis: int, step: int) -> int:
        shifted = list(coords)
        shifted[axis] += step
        return self._rank_of(tuple(shifted), dims)

    # ------------------------------------------------------------------
    def _shifted_sum(self, fp, comm, rank, dims, coords, x: TArray, tag: int):
        """Sum of the six periodic face-neighbour shifts of ``x``.

        Generator: performs one sendrecv per direction when the
        neighbouring block lives on another rank; pure local slicing when
        this rank is its own neighbour along an axis.
        """
        total = None
        for axis in range(3):
            for step, grab in ((+1, 0), (-1, -1)):
                # shift by +1 along `axis` needs the *next* block's first
                # plane; we send our first plane to the *previous* block.
                nbr_src = self._neighbor(coords, dims, axis, step)
                nbr_dst = self._neighbor(coords, dims, axis, -step)
                sl = [slice(None)] * 3
                sl[axis] = slice(0, 1) if step == +1 else slice(-1, None)
                my_edge = x[tuple(sl)]
                if nbr_src == rank:
                    edge = my_edge
                else:
                    edge = yield comm.sendrecv(
                        nbr_dst, my_edge, source=nbr_src,
                        send_tag=tag + 2 * axis + (0 if step == +1 else 1),
                    )
                body = [slice(None)] * 3
                body[axis] = slice(1, None) if step == +1 else slice(0, -1)
                parts = [x[tuple(body)], edge] if step == +1 else [edge, x[tuple(body)]]
                shifted = TArray.concatenate(parts, axis=axis)
                total = shifted if total is None else fp.add(total, shifted)
        return total

    def _residual(self, fp, comm, rank, size, dims, coords, u, v, level):
        """r = v - A u with A = 6u - sum(face neighbours) (generator)."""
        nb_sum = yield from self._shifted_sum(fp, comm, rank, dims, coords, u, tag=500 + 20 * level)
        au = fp.sub(fp.mul(u, 6.0), nb_sum)
        return fp.sub(v, au)

    def _smooth(self, fp, comm, rank, size, dims, coords, u, v, level, sweeps):
        """Weighted-Jacobi sweeps (generator)."""
        for _ in range(sweeps):
            r = yield from self._residual(fp, comm, rank, size, dims, coords, u, v, level)
            u = fp.add(u, fp.mul(r, self.omega / 6.0))
        return u

    # ------------------------------------------------------------------
    @staticmethod
    def _restrict(fp, r: TArray) -> TArray:
        """Average 2x2x2 children onto the coarse grid (3 adds + 1 mul)."""
        lz, ly, lx = r.shape
        v = r.reshape(lz // 2, 2, ly // 2, 2, lx // 2, 2)
        v = fp.add(v[:, 0], v[:, 1])            # (lz/2, ly/2, 2, lx/2, 2)
        v = fp.add(v[:, :, 0], v[:, :, 1])      # (lz/2, ly/2, lx/2, 2)
        v = fp.add(v[..., 0], v[..., 1])        # (lz/2, ly/2, lx/2)
        return fp.mul(v, 0.125)

    @staticmethod
    def _prolong(e: TArray) -> TArray:
        """Piecewise-constant interpolation (pure data movement)."""
        lz, ly, lx = e.shape
        out = TArray.stack([e, e], axis=1).reshape(2 * lz, ly, lx)
        out = TArray.stack([out, out], axis=2).reshape(2 * lz, 2 * ly, lx)
        out = TArray.stack([out, out], axis=3).reshape(2 * lz, 2 * ly, 2 * lx)
        return out

    # ------------------------------------------------------------------
    def _vcycle(self, fp, comm, rank, size, dims, coords, u, v, level):
        """One V-cycle recursion (generator)."""
        if level == self.levels - 1:
            u = yield from self._smooth(
                fp, comm, rank, size, dims, coords, u, v, level, self.coarse_sweeps
            )
            return u
        u = yield from self._smooth(fp, comm, rank, size, dims, coords, u, v, level, 1)
        r = yield from self._residual(fp, comm, rank, size, dims, coords, u, v, level)
        rc = self._restrict(fp, r)
        zero = fp.asarray(np.zeros(rc.shape))
        ec = yield from self._vcycle(fp, comm, rank, size, dims, coords, zero, rc, level + 1)
        u = fp.add(u, self._prolong(ec))
        u = yield from self._smooth(fp, comm, rank, size, dims, coords, u, v, level, 1)
        return u

    # ------------------------------------------------------------------
    def verify(self, output, reference):
        """NAS-style check: the residual norm matches within epsilon."""
        got, ref = output["rnm2"], reference["rnm2"]
        if not (math.isfinite(got) and math.isfinite(ref)):
            return False
        return abs(got - ref) <= self.epsilon * max(abs(ref), 1.0)
