"""Base class and shared helpers for the mini-applications."""

from __future__ import annotations

import abc
import math
from typing import Generator

import numpy as np

from repro.errors import ConfigurationError
from repro.mpisim.communicator import Communicator
from repro.taint.ops import FPOps

__all__ = ["AppSpec", "relative_error", "block_bounds"]


def relative_error(value: float, reference: float) -> float:
    """|value - reference| scaled by max(|reference|, 1).

    NaN/Inf values map to +inf so they always fail tolerance checks.
    """
    if not (math.isfinite(value) and math.isfinite(reference)):
        return math.inf
    return abs(value - reference) / max(abs(reference), 1.0)


def block_bounds(n: int, size: int, rank: int) -> tuple[int, int]:
    """[lo, hi) bounds of ``rank``'s block in a balanced 1-D partition."""
    base, extra = divmod(n, size)
    lo = rank * base + min(rank, extra)
    hi = lo + base + (1 if rank < extra else 0)
    return lo, hi


class AppSpec(abc.ABC):
    """One benchmark: an SPMD program plus its verification checker.

    Subclasses set :attr:`name`, build any constant problem data in
    ``__init__`` (matrix structure, meshes, twiddle tables — setup is
    untraced, mirroring how the paper's injections target the timed main
    computation), implement :meth:`program` as an SPMD generator, and
    implement :meth:`verify`.
    """

    name: str = "app"

    @abc.abstractmethod
    def program(
        self, rank: int, size: int, comm: Communicator, fp: FPOps
    ) -> Generator:
        """The rank program.  Must return an output dict at rank 0."""

    @abc.abstractmethod
    def verify(self, output: dict, reference: dict) -> bool:
        """The application's checker (paper §2): is ``output`` acceptable?"""

    def cache_key(self) -> str:
        """Stable identifier of this app's parameters for result caching."""
        params = ",".join(
            f"{k}={v!r}" for k, v in sorted(vars(self).items()) if not k.startswith("_")
        )
        return f"{self.name}({params})"

    # ------------------------------------------------------------------
    def check_nprocs(self, size: int, limit: int) -> None:
        """Validate a process count for this app's decomposition."""
        if size < 1 or (size & (size - 1)):
            raise ConfigurationError(
                f"{self.name} requires a power-of-two process count, got {size}"
            )
        if size > limit:
            raise ConfigurationError(
                f"{self.name} supports at most {limit} processes for this "
                f"problem size, got {size}"
            )

    # ------------------------------------------------------------------
    def reference_output(self, nprocs: int = 1) -> dict:
        """Convenience: fault-free output at ``nprocs`` (for tests/examples)."""
        from repro.mpisim.runner import execute_spmd

        return execute_spmd(self.program, nprocs)[0]

    @staticmethod
    def _as_output(**values) -> dict:
        """Build the rank-0 output dict.

        TArray values pass through untouched: the runner normalizes them
        to plain faulty-path floats on the scalar path, and the lane
        batcher extracts one float per lane — returning the TArray (via
        :meth:`~repro.taint.tarray.TArray.scalar_map` for guarded math
        like sqrt) instead of reading ``.value`` keeps all lanes alive
        through the final reduction.
        """
        from repro.taint.tarray import TArray

        return {
            k: v if isinstance(v, TArray) else float(v)
            for k, v in values.items()
        }
