"""NPB CG: conjugate-gradient kernel with power iteration (paper's CG).

Algorithm (as in NAS CG): ``niter`` outer power iterations estimate the
largest eigenvalue shift of a sparse symmetric positive-definite matrix;
each outer iteration runs a fixed number of inner CG steps to apply
``A^{-1}`` approximately, then reports ``zeta = shift + 1 / (x·z)``.

Parallelization (as in NAS CG): the matrix is partitioned by *columns*;
each rank computes a full-length partial product ``w = A[:, cols] @
p_local`` and the partial results are combined with a recursive-halving
reduce-scatter — log2(p) exchange stages, each adding the partner's
partial half.  Those combination adds exist **only in parallel
execution**: they are the CG's parallel-unique computation (paper
Table 1; a small share that shrinks for larger problem classes).
Vector dot products use local dots + allreduce.

Verification (paper §2 'checkers'): ``zeta`` must match the fault-free
value within ``epsilon`` — the analogue of NAS CG's comparison of zeta
against the class reference value.
"""

from __future__ import annotations

import math

import numpy as np
import scipy.sparse as sp

from repro.apps.base import AppSpec
from repro.errors import ConfigurationError
from repro.taint.region import Region
from repro.utils.rng import spawn_rng

__all__ = ["CGApp"]


def _make_spd_matrix(n: int, nnz_per_row: int, seed: int) -> sp.csr_matrix:
    """Random sparse SPD matrix with a controlled spectrum.

    Symmetric pattern with strict diagonal dominance — guarantees SPD and
    fast CG convergence, standing in for NAS CG's `makea` generator.
    """
    rng = spawn_rng(seed, "cg-matrix")
    half = max(nnz_per_row // 2, 1)
    rows = np.repeat(np.arange(n), half)
    cols = rng.integers(0, n, size=rows.size)
    vals = rng.uniform(-1.0, 1.0, size=rows.size)
    b = sp.coo_matrix((vals, (rows, cols)), shape=(n, n)).tocsr()
    a = (b + b.T) * 0.5
    a.setdiag(0.0)
    a.eliminate_zeros()
    row_abs = np.abs(a).sum(axis=1).A1 if hasattr(np.abs(a).sum(axis=1), "A1") else np.asarray(np.abs(a).sum(axis=1)).ravel()
    a = a + sp.diags(row_abs + 2.0)
    return a.tocsr()


class CGApp(AppSpec):
    """The CG benchmark.  See module docstring."""

    name = "cg"

    def __init__(
        self,
        n: int = 256,
        nnz_per_row: int = 48,
        niter: int = 2,
        cg_iters: int = 5,
        shift: float = 10.0,
        epsilon: float = 1e-9,
        seed: int = 1234,
    ):
        if n % 128:
            raise ConfigurationError("CG problem size must be a multiple of 128")
        self.n = n
        self.nnz_per_row = nnz_per_row
        self.niter = niter
        self.cg_iters = cg_iters
        self.shift = shift
        self.epsilon = epsilon
        self.seed = seed
        self._matrix = _make_spd_matrix(n, nnz_per_row, seed)
        self._blocks: dict[tuple[int, int], tuple[np.ndarray, np.ndarray, np.ndarray]] = {}

    # ------------------------------------------------------------------
    def _column_block(self, size: int, rank: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """CSR arrays of this rank's column block (all ``n`` rows kept)."""
        key = (size, rank)
        if key not in self._blocks:
            nb = self.n // size
            block = self._matrix[:, rank * nb : (rank + 1) * nb].tocsr()
            self._blocks[key] = (
                np.asarray(block.data, dtype=np.float64),
                np.asarray(block.indices),
                np.asarray(block.indptr),
            )
        return self._blocks[key]

    # ------------------------------------------------------------------
    def program(self, rank, size, comm, fp):
        """Power iteration with truncated-CG inner solves (NAS CG)."""
        self.check_nprocs(size, limit=self.n)
        if self.n % size:
            raise ConfigurationError(f"CG n={self.n} not divisible by {size} ranks")
        data, indices, indptr = self._column_block(size, rank)
        nb = self.n // size

        x = fp.asarray(np.ones(nb))
        zeta = fp.asarray(0.0)
        rnorm2 = fp.asarray(0.0)
        for _ in range(self.niter):
            z = fp.asarray(np.zeros(nb))
            r = x
            p_vec = x
            rho = yield from self._pdot(comm, fp, r, r)
            for _ in range(self.cg_iters):
                q = yield from self._matvec(comm, fp, rank, size, data, indices, indptr, p_vec)
                pq = yield from self._pdot(comm, fp, p_vec, q)
                alpha = fp.div(rho, pq)
                z = fp.add(z, fp.mul(alpha, p_vec))
                r = fp.sub(r, fp.mul(alpha, q))
                rho0 = rho
                rho = yield from self._pdot(comm, fp, r, r)
                beta = fp.div(rho, rho0)
                p_vec = fp.add(r, fp.mul(beta, p_vec))
            az = yield from self._matvec(comm, fp, rank, size, data, indices, indptr, z)
            diff = fp.sub(x, az)
            rnorm2 = yield from self._pdot(comm, fp, diff, diff)
            xz = yield from self._pdot(comm, fp, x, z)
            zeta = fp.add(self.shift, fp.div(1.0, xz))
            znorm2 = yield from self._pdot(comm, fp, z, z)
            inv_norm = fp.div(1.0, fp.sqrt(znorm2))
            x = fp.mul(z, inv_norm)
        if rank == 0:
            return self._as_output(
                zeta=zeta,
                rnorm=rnorm2.scalar_map(
                    lambda rn: math.sqrt(rn) if rn >= 0 else math.nan
                ),
            )
        return None

    # ------------------------------------------------------------------
    def _pdot(self, comm, fp, a, b):
        """Distributed dot product: local dot + allreduce."""
        local = fp.dot(a, b)
        total = yield comm.allreduce(local, op="sum")
        return total

    def _matvec(self, comm, fp, rank, size, data, indices, indptr, p_local):
        """Column-block matvec + recursive-halving reduce-scatter.

        Returns this rank's segment of ``q = A @ p``.  The combination
        adds of the halving stages are tagged parallel-unique: they have
        no counterpart in serial execution.
        """
        w = fp.csr_matvec(data, indices, indptr, p_local)  # full-length partial
        nb = self.n // size
        lo_b, hi_b = 0, size  # block range w currently covers
        step = size >> 1
        stage = 0
        while step >= 1:
            partner = rank ^ step
            mid_b = (lo_b + hi_b) // 2
            if rank & step:
                keep_lo, keep_hi = mid_b, hi_b
                give_lo, give_hi = lo_b, mid_b
            else:
                keep_lo, keep_hi = lo_b, mid_b
                give_lo, give_hi = mid_b, hi_b
            base = lo_b  # w[0] corresponds to block `lo_b`
            send_part = w[(give_lo - base) * nb : (give_hi - base) * nb]
            received = yield comm.sendrecv(partner, send_part, send_tag=100 + stage)
            kept = w[(keep_lo - base) * nb : (keep_hi - base) * nb]
            with fp.region(Region.PARALLEL_UNIQUE):
                w = fp.add(kept, received)
            lo_b, hi_b = keep_lo, keep_hi
            step >>= 1
            stage += 1
        return w

    # ------------------------------------------------------------------
    def verify(self, output, reference):
        """NAS-style check: zeta within epsilon of the accepted value."""
        got, ref = output["zeta"], reference["zeta"]
        if not (math.isfinite(got) and math.isfinite(ref)):
            return False
        return abs(got - ref) <= self.epsilon * max(abs(ref), 1.0)
