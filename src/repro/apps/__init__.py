"""Mini-applications: the paper's six benchmarks, rebuilt on the substrate.

Each module implements one benchmark as an SPMD generator program over
the simulated MPI runtime and the traced FP layer, preserving the
original's numerical algorithm, communication pattern, verification
test and common/parallel-unique code structure:

* :mod:`repro.apps.cg` — NPB CG: power iteration with a conjugate-
  gradient inner solve; column-block matvec with recursive-halving
  partial-sum exchange (the exchange adds are parallel-unique).
* :mod:`repro.apps.ft` — NPB FT: 3-D FFT spectral solver; slab
  decomposition whose z transform runs cross-rank binary-exchange
  butterfly stages — the parallel-unique computation (the analogue of
  NPB FT's transpose machinery).
* :mod:`repro.apps.mg` — NPB MG: V-cycle multigrid on a 3-D Poisson
  problem; slab halo exchange, no parallel-unique computation.
* :mod:`repro.apps.lu` — NPB LU: SSOR-style sweeps with a pipelined
  wavefront dependence; neighbour pipeline, no parallel-unique
  computation.
* :mod:`repro.apps.minife` — MiniFE: FE stiffness assembly + CG solve;
  ghost-contribution assembly at partition boundaries is
  parallel-unique.
* :mod:`repro.apps.pennant` — PENNANT: staggered-grid compressible
  Lagrangian hydrodynamics on the Leblanc shock-tube problem; halo
  exchange, no parallel-unique computation.

The problem sizes are scaled down (Class-S-like) so a 128-rank
simulated execution with thousands of injection trials is tractable on
one machine; all executions of an app share one global problem
(strong scaling, paper §2).
"""

from repro.apps.base import AppSpec, relative_error
from repro.apps.registry import get_app, available_apps, paper_apps

__all__ = ["AppSpec", "relative_error", "get_app", "available_apps", "paper_apps"]
