"""Benchmark registry: canonical paper configurations by name.

``get_app`` resolves the configuration names used throughout the
experiment harnesses.  The canonical six are the paper's evaluation set
(§5.1): CG/FT/MG Class-S-like, LU Class-W-like, MiniFE default-input,
PENNANT leblanc.  Larger "Class B-like" variants back Table 1's second
rows.  Sizes are scaled to keep a 128-rank simulated campaign tractable
(see DESIGN.md's substitution table).
"""

from __future__ import annotations

from typing import Callable

from repro.apps.base import AppSpec
from repro.errors import ConfigurationError

__all__ = ["get_app", "available_apps", "paper_apps"]

_FACTORIES: dict[str, Callable[[], AppSpec]] = {}


def _register(name: str):
    def deco(factory: Callable[[], AppSpec]):
        _FACTORIES[name] = factory
        return factory

    return deco


@_register("cg")
def _cg() -> AppSpec:
    from repro.apps.cg import CGApp

    return CGApp()


@_register("cg.classb")
def _cg_b() -> AppSpec:
    from repro.apps.cg import CGApp

    # Larger, denser problem: the Class-B-like configuration of Table 1.
    return CGApp(n=512, nnz_per_row=128, niter=1, cg_iters=8)


@_register("ft")
def _ft() -> AppSpec:
    from repro.apps.ft import FTApp

    return FTApp()


@_register("ft.classb")
def _ft_b() -> AppSpec:
    from repro.apps.ft import FTApp

    # NAS FT grows the distributed (z) axis from class S to B
    # (64^3 -> 512x256x256); deepening z raises the transpose share,
    # matching Table 1's FT direction (B > S).
    return FTApp(shape=(256, 8, 8), steps=2)


@_register("mg")
def _mg() -> AppSpec:
    from repro.apps.mg import MGApp

    return MGApp()


@_register("lu")
def _lu() -> AppSpec:
    from repro.apps.lu import LUApp

    return LUApp()


@_register("minife")
def _minife() -> AppSpec:
    from repro.apps.minife import MiniFEApp

    return MiniFEApp()


@_register("minife.large")
def _minife_large() -> AppSpec:
    from repro.apps.minife import MiniFEApp

    # The paper's second MiniFE row (nx=ny=nz=300), scaled: a bigger
    # problem with a longer solve, shrinking the ghost-merge share.
    return MiniFEApp(nz=64, ny=10, nx=10, cg_iters=25)


@_register("pennant")
def _pennant() -> AppSpec:
    from repro.apps.pennant import PennantApp

    return PennantApp()


def available_apps() -> list[str]:
    """All registered configuration names."""
    return sorted(_FACTORIES)


def paper_apps() -> list[str]:
    """The paper's six-benchmark evaluation set (§5.1)."""
    return ["cg", "ft", "mg", "lu", "minife", "pennant"]


def get_app(name: str) -> AppSpec:
    """Instantiate the named benchmark configuration."""
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown app {name!r}; available: {', '.join(available_apps())}"
        ) from None
    return factory()
