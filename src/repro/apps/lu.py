"""NPB LU: SSOR sweeps with a pipelined wavefront dependence.

Numerics: symmetric successive over-relaxation on a 3-D 7-point Poisson
system with Dirichlet boundaries.  The z direction is Gauss-Seidel
(each plane update consumes the *new* previous plane — forward sweep —
or the new next plane — backward sweep); the in-plane terms are Jacobi.
A fixed number of SSOR iterations runs, with the residual norm computed
each iteration (NAS LU's RSDNM) and verified at the end.

Parallelization (as in NAS LU): the z planes are block-distributed; the
new-plane dependence across the partition boundary makes each sweep a
*pipeline* — rank r blocks on the boundary plane from rank r-1 (forward)
or r+1 (backward) before updating its own planes.  All computation is
common: LU has no parallel-unique computation (paper Table 1), and the
downstream/upstream pipeline plus the per-iteration norm allreduce give
LU its characteristic all-or-one propagation profile (paper Fig. 3's
missing middle cases).
"""

from __future__ import annotations

import math

import numpy as np

from repro.apps.base import AppSpec
from repro.errors import ConfigurationError
from repro.taint.tarray import TArray
from repro.utils.rng import spawn_rng

__all__ = ["LUApp"]


class LUApp(AppSpec):
    """The LU benchmark.  See module docstring."""

    name = "lu"

    def __init__(
        self,
        nz: int = 64,
        ny: int = 12,
        nx: int = 12,
        itmax: int = 2,
        omega: float = 1.2,
        epsilon: float = 1e-9,
        seed: int = 999,
    ):
        if nz & (nz - 1):
            raise ConfigurationError(f"LU nz={nz} must be a power of two")
        self.nz, self.ny, self.nx = nz, ny, nx
        self.itmax = itmax
        self.omega = omega
        self.epsilon = epsilon
        self.seed = seed
        rng = spawn_rng(seed, "lu-rhs")
        self._rhs = rng.standard_normal((nz, ny, nx))

    # ------------------------------------------------------------------
    @staticmethod
    def _plane_lap(fp, plane: TArray) -> TArray:
        """In-plane neighbour sum with Dirichlet-zero boundaries.

        ``plane`` has shape (1, ny, nx); returns the sum of the four
        in-plane shifts (zero padding at the walls).
        """
        _, ny, nx = plane.shape
        zrow = TArray(np.zeros((1, 1, nx)))
        zcol = TArray(np.zeros((1, ny, 1)))
        up = TArray.concatenate([plane[:, 1:, :], zrow], axis=1)
        down = TArray.concatenate([zrow, plane[:, :-1, :]], axis=1)
        left = TArray.concatenate([plane[:, :, 1:], zcol], axis=2)
        right = TArray.concatenate([zcol, plane[:, :, :-1]], axis=2)
        return fp.add(fp.add(up, down), fp.add(left, right))

    def _sweep(self, fp, comm, rank, size, planes, v, forward: bool):
        """One pipelined Gauss-Seidel sweep over the local z planes.

        ``planes`` is a list of (1, ny, nx) TArrays (this rank's block).
        Generator: blocks on the upstream boundary plane, then sends its
        own boundary plane downstream.
        """
        nloc = len(planes)
        zeros = TArray(np.zeros((1, self.ny, self.nx)))
        tag = 700 if forward else 701
        if forward:
            upstream, downstream = rank - 1, rank + 1
            order = range(nloc)
        else:
            upstream, downstream = rank + 1, rank - 1
            order = range(nloc - 1, -1, -1)
        # The Jacobi-side z neighbour of this rank's last-updated plane
        # holds *old* values owned by the downstream rank: every rank
        # sends its own old edge plane upstream and receives the
        # downstream rank's old edge (chain, reverse of the pipeline).
        old_other = zeros
        if 0 <= upstream < size:
            my_old_edge = planes[0] if forward else planes[-1]
            yield comm.send(upstream, my_old_edge, tag=tag + 10)
        if 0 <= downstream < size:
            old_other = yield comm.recv(source=downstream, tag=tag + 10)
        if 0 <= upstream < size:
            boundary = yield comm.recv(source=upstream, tag=tag)
        else:
            boundary = zeros
        new_planes = list(planes)
        prev_new = boundary
        for k in order:
            # z-neighbour terms: `prev_new` is Gauss-Seidel (already
            # updated), the other side is the old value (Jacobi).
            if forward:
                other = new_planes[k + 1] if k + 1 < nloc else old_other
            else:
                other = new_planes[k - 1] if k - 1 >= 0 else old_other
            znbr = fp.add(prev_new, other)
            lap = fp.add(self._plane_lap(fp, new_planes[k]), znbr)
            r = fp.sub(v[k], fp.sub(fp.mul(new_planes[k], 6.0), lap))
            new_planes[k] = fp.add(new_planes[k], fp.mul(r, self.omega / 6.0))
            prev_new = new_planes[k]
        if 0 <= downstream < size:
            yield comm.send(downstream, prev_new, tag=tag)
        return new_planes

    # ------------------------------------------------------------------
    def program(self, rank, size, comm, fp):
        """SSOR iterations (pipelined forward/backward z sweeps); verified RSDNM."""
        self.check_nprocs(size, limit=self.nz)
        nloc = self.nz // size
        z0 = rank * nloc
        v = [fp.asarray(self._rhs[z0 + k : z0 + k + 1]) for k in range(nloc)]
        planes = [fp.asarray(np.zeros((1, self.ny, self.nx))) for _ in range(nloc)]

        rsdnm = fp.asarray(0.0)
        for _ in range(self.itmax):
            planes = yield from self._sweep(fp, comm, rank, size, planes, v, forward=True)
            planes = yield from self._sweep(fp, comm, rank, size, planes, v, forward=False)
            # residual norm (needs old-style neighbour planes: halo exchange)
            local = fp.asarray(0.0)
            halo_lo, halo_hi = yield from self._halo(comm, rank, size, planes)
            for k in range(nloc):
                lower = planes[k - 1] if k > 0 else halo_lo
                upper = planes[k + 1] if k + 1 < nloc else halo_hi
                lap = fp.add(self._plane_lap(fp, planes[k]), fp.add(lower, upper))
                r = fp.sub(v[k], fp.sub(fp.mul(planes[k], 6.0), lap))
                local = fp.add(local, fp.dot(r.ravel(), r.ravel()))
            total = yield comm.allreduce(local, op="sum")
            rsdnm = fp.sqrt(total)
        if rank == 0:
            return self._as_output(rsdnm=rsdnm)
        return None

    def _halo(self, comm, rank, size, planes):
        """Exchange boundary planes with both z neighbours (generator)."""
        zeros = TArray(np.zeros((1, self.ny, self.nx)))
        halo_lo = halo_hi = zeros
        if size > 1:
            if rank > 0 and rank < size - 1:
                halo_lo = yield comm.sendrecv(rank - 1, planes[0], send_tag=710)
                halo_hi = yield comm.sendrecv(rank + 1, planes[-1], send_tag=710)
            elif rank > 0:
                halo_lo = yield comm.sendrecv(rank - 1, planes[0], send_tag=710)
            elif rank < size - 1:
                halo_hi = yield comm.sendrecv(rank + 1, planes[-1], send_tag=710)
        return halo_lo, halo_hi

    # ------------------------------------------------------------------
    def verify(self, output, reference):
        """NAS-style check: the residual norm matches within epsilon."""
        got, ref = output["rsdnm"], reference["rsdnm"]
        if not (math.isfinite(got) and math.isfinite(ref)):
            return False
        return abs(got - ref) <= self.epsilon * max(abs(ref), 1.0)
