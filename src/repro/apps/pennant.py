"""PENNANT: staggered-grid compressible Lagrangian hydrodynamics.

Numerics: an explicit staggered-mesh Lagrangian scheme (velocities on
nodes, thermodynamics in cells) with von Neumann–Richtmyer artificial
viscosity and a CFL-driven global timestep — the 1-D core of LANL's
PENNANT mini-app, run on the Leblanc-style shock-tube input the paper
uses (a strong density/energy jump).  A fixed number of cycles runs;
the verified outputs are the conserved-energy totals and a mass-weighted
profile checksum.

Like the real PENNANT, the simulation carries *error detectors*: an
inverted cell (non-positive volume), a non-positive energy/density, or a
non-finite timestep aborts the run — giving this benchmark a genuine
crash (FAILURE) outcome under fault injection, unlike the NPB kernels
whose FP corruption mostly stays silent.

Parallelization: cells are block-partitioned; each step exchanges one
boundary cell of (P + q) downstream, one boundary node of (u, x)
upstream, and allreduces the timestep minimum.  All computation is
common — PENNANT has no parallel-unique computation (paper Table 1).
"""

from __future__ import annotations

import math

import numpy as np

from repro.apps.base import AppSpec, block_bounds
from repro.errors import SimulatedCrashError
from repro.taint.tarray import TArray

__all__ = ["PennantApp"]


class PennantApp(AppSpec):
    """The PENNANT benchmark (1-D Leblanc-like tube).  See module docstring."""

    name = "pennant"

    def __init__(
        self,
        n_cells: int = 128,
        steps: int = 24,
        gamma: float = 5.0 / 3.0,
        cfl: float = 0.3,
        q_coef: float = 2.0,
        rho_left: float = 1.0,
        rho_right: float = 0.01,
        e_left: float = 0.1,
        e_right: float = 1e-5,
        epsilon: float = 1e-9,
    ):
        self.n_cells = n_cells
        self.steps = steps
        self.gamma = gamma
        self.cfl = cfl
        self.q_coef = q_coef
        self.rho_left, self.rho_right = rho_left, rho_right
        self.e_left, self.e_right = e_left, e_right
        self.epsilon = epsilon

        # initial mesh and state (setup, untraced)
        xn = np.linspace(0.0, 1.0, n_cells + 1)
        mid = n_cells // 2
        rho = np.where(np.arange(n_cells) < mid, rho_left, rho_right)
        e = np.where(np.arange(n_cells) < mid, e_left, e_right)
        dx = np.diff(xn)
        self._x0 = xn
        self._rho0 = rho
        self._e0 = e
        self._mass = rho * dx  # Lagrangian cell mass, constant forever
        # node mass: half of each adjacent cell (walls get one half)
        mn = np.zeros(n_cells + 1)
        mn[:-1] += 0.5 * self._mass
        mn[1:] += 0.5 * self._mass
        self._node_mass = mn

    # ------------------------------------------------------------------
    def program(self, rank, size, comm, fp):
        """Staggered-grid Lagrangian hydro cycles on the shock tube."""
        self.check_nprocs(size, limit=self.n_cells // 2)
        c0, c1 = block_bounds(self.n_cells, size, rank)
        ncell = c1 - c0
        last = rank == size - 1
        # this rank owns nodes c0..c1-1; the last rank also owns node n
        nnode = ncell + (1 if last else 0)

        x = fp.asarray(self._x0[c0 : c0 + nnode])
        u = fp.asarray(np.zeros(nnode))
        e = fp.asarray(self._e0[c0:c1])
        rho = fp.asarray(self._rho0[c0:c1])
        m = fp.asarray(self._mass[c0:c1])
        mn = fp.asarray(self._node_mass[c0 : c0 + nnode])
        # interior mask pins the wall nodes (u = 0 at both ends)
        mask = np.ones(nnode)
        if rank == 0:
            mask[0] = 0.0
        if last:
            mask[-1] = 0.0
        wall_x = self._x0[-1]

        for _ in range(self.steps):
            # -- upstream halo: node u,x of cell c1 (next rank's first node)
            if size > 1:
                if rank > 0:
                    yield comm.send(rank - 1, (u[:1], x[:1]), tag=900)
                if not last:
                    u_hi, x_hi = yield comm.recv(source=rank + 1, tag=900)
                else:
                    u_hi = x_hi = None
            else:
                u_hi = x_hi = None
            if u_hi is None:
                u_full = u
                x_full = x
            else:
                u_full = TArray.concatenate([u, u_hi])
                x_full = TArray.concatenate([x, x_hi])

            # -- EOS, sound speed, CFL timestep
            p = fp.mul(fp.mul(rho, e), self.gamma - 1.0)
            self._guard_positive(rho, "density")
            self._guard_positive(e, "energy")
            cs2 = fp.div(fp.mul(p, self.gamma), rho)
            cs = fp.sqrt(cs2)
            dx = fp.sub(x_full[1:], x_full[:-1])
            self._guard_positive(dx, "cell volume")
            rate = fp.div(dx, cs)
            local_dt = fp.mul(fp.min(rate), self.cfl)
            dt = yield comm.allreduce(local_dt, op="min")
            dt_val = dt.value
            if not math.isfinite(dt_val) or dt_val <= 0.0:
                raise SimulatedCrashError(f"pennant: bad timestep {dt_val}")

            # -- artificial viscosity (compression only)
            du = fp.sub(u_full[1:], u_full[:-1])
            q_full = fp.mul(fp.mul(fp.mul(du, du), rho), self.q_coef)
            q = fp.where(fp.less(du, 0.0), q_full, 0.0)
            ptot = fp.add(p, q)

            # -- downstream halo: boundary cell's (P+q)
            if size > 1:
                if not last:
                    yield comm.send(rank + 1, ptot[-1:], tag=901)
                if rank > 0:
                    ptot_lo = yield comm.recv(source=rank - 1, tag=901)
                else:
                    ptot_lo = ptot[:1]  # reflective wall: zero gradient
            else:
                ptot_lo = ptot[:1]
            ptot_ext = TArray.concatenate([ptot_lo, ptot])
            if last:
                ptot_ext = TArray.concatenate([ptot_ext, ptot[-1:]])

            # -- momentum update on owned nodes
            force = fp.sub(ptot_ext[:nnode], ptot_ext[1 : nnode + 1])
            accel = fp.div(force, mn)
            u = fp.mul(fp.add(u, fp.mul(accel, dt)), mask)
            x = fp.add(x, fp.mul(u, dt))

            # -- new geometry (needs the updated next node)
            if size > 1:
                if rank > 0:
                    yield comm.send(rank - 1, (u[:1], x[:1]), tag=902)
                if not last:
                    u_hi2, x_hi2 = yield comm.recv(source=rank + 1, tag=902)
                    u_new_full = TArray.concatenate([u, u_hi2])
                    x_new_full = TArray.concatenate([x, x_hi2])
                else:
                    u_new_full = u
                    x_new_full = x
            else:
                u_new_full = u
                x_new_full = x
            vol = fp.sub(x_new_full[1:], x_new_full[:-1])
            self._guard_positive(vol, "cell volume")
            rho = fp.div(m, vol)

            # -- energy update (pdV work with the new velocity field)
            du_new = fp.sub(u_new_full[1:], u_new_full[:-1])
            work = fp.div(fp.mul(fp.mul(ptot, du_new), dt), m)
            e = fp.sub(e, work)
            self._guard_positive(e, "energy")

        # -- conserved totals and profile checksum (final geometry)
        ke_local = fp.mul(fp.sum(fp.mul(fp.mul(u, u), mn)), 0.5)
        ie_local = fp.sum(fp.mul(m, e))
        xc = fp.mul(fp.add(x_new_full[1:], x_new_full[:-1]), 0.5)
        prof_local = fp.sum(fp.mul(fp.mul(rho, xc), m))
        ke = yield comm.allreduce(ke_local, op="sum")
        ie = yield comm.allreduce(ie_local, op="sum")
        prof = yield comm.allreduce(prof_local, op="sum")
        if rank == 0:
            return self._as_output(
                kinetic=ke.value, internal=ie.value, profile=prof.value
            )
        return None

    # ------------------------------------------------------------------
    @staticmethod
    def _guard_positive(t: TArray, what: str) -> None:
        """PENNANT-style error detector: abort on unphysical state."""
        vals = t.to_numpy()
        if not np.all(np.isfinite(vals)) or np.any(vals <= 0.0):
            raise SimulatedCrashError(f"pennant: non-positive {what}")

    # ------------------------------------------------------------------
    def verify(self, output, reference):
        """Energy-conservation and profile check against the accepted run."""
        for key in ("kinetic", "internal", "profile"):
            got, ref = output[key], reference[key]
            if not (math.isfinite(got) and math.isfinite(ref)):
                return False
            if abs(got - ref) > self.epsilon * max(abs(ref), 1e-12):
                return False
        return True
