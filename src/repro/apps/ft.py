"""NPB FT: 3-D FFT spectral solver (paper's FT).

Numerics (as in NAS FT): an initial complex field is transformed to
frequency space once; each time step applies the analytic evolution
factor ``exp(-4 pi^2 alpha t |k|^2)`` and inverse-transforms to compute a
checksum.  All FFTs are radix-2: decimation-in-frequency forward and
decimation-in-time inverse with conjugate twiddles, so no bit-reversal
permutation is ever materialized (frequencies live in bit-reversed
order; the evolution-factor tables are built in that order).

Parallelization: the grid is block-distributed along z.  The x and y
transforms are local; the z transform runs its top ``log2(p)`` stages as
cross-rank *binary-exchange* butterflies (pairwise sendrecv of the whole
local block, then a vectorized butterfly), and the remaining stages
locally.  The cross-rank butterfly code exists only in the parallel
build — it is FT's **parallel-unique computation**, the analogue of the
NPB transpose machinery whose time share the paper's Table 1 reports as
the largest of all six benchmarks (10-18 %).

Verification: the per-step checksums (global sums of the field and of
its squared magnitude) must match the fault-free run within ``epsilon``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.apps.base import AppSpec
from repro.errors import ConfigurationError
from repro.taint.region import Region
from repro.taint.tarray import TArray
from repro.utils.rng import spawn_rng

__all__ = ["FTApp"]


def _bitrev_indices(n: int) -> np.ndarray:
    """Bit-reversal permutation of range(n) (n a power of two)."""
    bits = n.bit_length() - 1
    idx = np.arange(n)
    rev = np.zeros(n, dtype=np.int64)
    for b in range(bits):
        rev |= ((idx >> b) & 1) << (bits - 1 - b)
    return rev


def _signed_freq(k: np.ndarray, n: int) -> np.ndarray:
    """Map frequency index to the signed frequency (NAS 'k-bar')."""
    return np.where(k > n // 2, k - n, k)


@dataclass
class _Complex:
    """A complex field as a (re, im) pair of TArrays."""

    re: TArray
    im: TArray

    def __getitem__(self, key) -> "_Complex":
        return _Complex(self.re[key], self.im[key])

    def reshape(self, *shape) -> "_Complex":
        return _Complex(self.re.reshape(*shape), self.im.reshape(*shape))

    def transpose(self, *axes) -> "_Complex":
        return _Complex(self.re.transpose(*axes), self.im.transpose(*axes))

    @staticmethod
    def concatenate(parts, axis=0) -> "_Complex":
        return _Complex(
            TArray.concatenate([p.re for p in parts], axis=axis),
            TArray.concatenate([p.im for p in parts], axis=axis),
        )

    @property
    def diverged(self) -> bool:
        return self.re.diverged or self.im.diverged


def _cadd(fp, a: _Complex, b: _Complex) -> _Complex:
    return _Complex(fp.add(a.re, b.re), fp.add(a.im, b.im))


def _csub(fp, a: _Complex, b: _Complex) -> _Complex:
    return _Complex(fp.sub(a.re, b.re), fp.sub(a.im, b.im))


def _cmul_const(fp, a: _Complex, wr: np.ndarray, wi: np.ndarray) -> _Complex:
    """Multiply a complex field by constant complex factors (4 mul + 2 add)."""
    re = fp.sub(fp.mul(a.re, wr), fp.mul(a.im, wi))
    im = fp.add(fp.mul(a.re, wi), fp.mul(a.im, wr))
    return _Complex(re, im)


class FTApp(AppSpec):
    """The FT benchmark.  See module docstring."""

    name = "ft"

    def __init__(
        self,
        shape: tuple[int, int, int] = (128, 16, 16),
        steps: int = 2,
        alpha: float = 1e-4,
        epsilon: float = 1e-9,
        seed: int = 4321,
    ):
        nz, ny, nx = shape
        for n, label in ((nz, "nz"), (ny, "ny"), (nx, "nx")):
            if n < 2 or (n & (n - 1)):
                raise ConfigurationError(f"FT {label}={n} must be a power of two >= 2")
        self.shape = (nz, ny, nx)
        self.steps = steps
        self.alpha = alpha
        self.epsilon = epsilon
        self.seed = seed
        rng = spawn_rng(seed, "ft-init")
        self._u0_re = rng.standard_normal(self.shape)
        self._u0_im = rng.standard_normal(self.shape)
        self._factor = self._evolution_factor()
        self._local_tables: dict[tuple[int, bool], list[tuple[np.ndarray, np.ndarray]]] = {}
        self._cross_tables: dict[tuple[int, int, int], tuple[np.ndarray, np.ndarray]] = {}

    # ------------------------------------------------------------------
    # constant tables (setup, untraced)
    # ------------------------------------------------------------------
    def _evolution_factor(self) -> np.ndarray:
        """Per-point evolve factor, in the bit-reversed frequency layout."""
        nz, ny, nx = self.shape
        kz = _signed_freq(_bitrev_indices(nz), nz).astype(np.float64)
        ky = _signed_freq(_bitrev_indices(ny), ny).astype(np.float64)
        kx = _signed_freq(_bitrev_indices(nx), nx).astype(np.float64)
        k2 = (
            kz[:, None, None] ** 2
            + ky[None, :, None] ** 2
            + kx[None, None, :] ** 2
        )
        return np.exp(-4.0 * math.pi**2 * self.alpha * k2)

    def _stage_table(self, axis_len: int, inverse: bool) -> list[tuple[np.ndarray, np.ndarray]]:
        """DIF twiddles per local stage: stage with group G has W_G^h, h<G/2."""
        key = (axis_len, inverse)
        if key not in self._local_tables:
            tables = []
            g = axis_len
            while g >= 2:
                h = g // 2
                ang = -2.0 * math.pi * np.arange(h) / g
                if inverse:
                    ang = -ang
                tables.append((np.cos(ang), np.sin(ang)))
                g //= 2
            self._local_tables[key] = tables
        return self._local_tables[key]

    def _cross_table(self, size: int, rank: int, stage: int) -> tuple[np.ndarray, np.ndarray]:
        """Twiddles of cross-rank z stage ``stage`` for the upper partner.

        Exponent for local plane ``i``: ``((r mod (p/2^s)) - p/2^(s+1)) *
        n2 + i) * 2^s`` in units of ``W_nz`` (see DIF butterfly algebra).
        """
        key = (size, rank, stage)
        if key not in self._cross_tables:
            nz = self.shape[0]
            n2 = nz // size
            group_blocks = size >> stage
            half_blocks = group_blocks >> 1
            pos = (rank % group_blocks) - half_blocks
            exps = (pos * n2 + np.arange(n2)) * (1 << stage)
            ang = -2.0 * math.pi * exps / nz
            self._cross_tables[key] = (np.cos(ang), np.sin(ang))
        return self._cross_tables[key]

    # ------------------------------------------------------------------
    # FFT building blocks (traced)
    # ------------------------------------------------------------------
    def _fft_last_axis(self, fp, u: _Complex, axis_len: int, inverse: bool) -> _Complex:
        """Full local radix-2 transform along the last axis.

        Forward: DIF stages from the largest group down (natural in,
        bit-reversed out).  Inverse: the same stages in reverse order
        with conjugate twiddles (bit-reversed in, natural out; the 1/n
        scale is applied by the caller once for the 3-D transform).
        """
        tables = self._stage_table(axis_len, inverse)
        stages = list(enumerate(tables))
        if inverse:
            stages.reverse()
        lead = u.re.shape[:-1]
        for s, (wr, wi) in stages:
            g = axis_len >> s
            h = g // 2
            v = u.reshape(*lead, axis_len // g, g)
            a, b = v[..., :h], v[..., h:]
            if inverse:
                t = _cmul_const(fp, b, wr, wi)
                lower = _cadd(fp, a, t)
                upper = _csub(fp, a, t)
            else:
                lower = _cadd(fp, a, b)
                upper = _cmul_const(fp, _csub(fp, a, b), wr, wi)
            u = _Complex.concatenate([lower, upper], axis=-1).reshape(*lead, axis_len)
        return u

    def _fft_z(self, fp, comm, rank, size, u: _Complex, inverse: bool):
        """Distributed z transform: cross-rank binary exchange + local FFT.

        The cross-rank butterflies are parallel-unique computation.
        Generator (yields sendrecv requests).
        """
        nz = self.shape[0]
        n2 = nz // size
        n_cross = size.bit_length() - 1  # log2(p) cross-rank stages

        def cross_stage(u: _Complex, s: int, tag: int):
            """One cross-rank DIF/DIT butterfly stage (generator)."""
            partner = rank ^ (size >> (s + 1))
            upper = bool(rank & (size >> (s + 1)))
            # The twiddles belong to the upper half's positions; the lower
            # rank applying conj(W) to the partner's block in the inverse
            # butterfly must therefore use the partner's table.
            wr, wi = self._cross_table(size, rank if upper else partner, s)
            wr3, wi3 = wr[:, None, None], wi[:, None, None]
            if inverse:
                wi3 = -wi3  # conjugate twiddles
            payload = (u.re, u.im)
            theirs_re, theirs_im = yield comm.sendrecv(partner, payload, send_tag=tag)
            theirs = _Complex(theirs_re, theirs_im)
            with fp.region(Region.PARALLEL_UNIQUE):
                if inverse:
                    # t = (upper block) * conj(W); lower: mine + t, upper: theirs_lower - t
                    if upper:
                        t = _cmul_const(fp, u, wr3, wi3)
                        return _csub(fp, theirs, t)
                    t = _cmul_const(fp, theirs, wr3, wi3)
                    return _cadd(fp, u, t)
                if upper:
                    return _cmul_const(fp, _csub(fp, theirs, u), wr3, wi3)
                return _cadd(fp, u, theirs)

        if inverse:
            # local DIT stages first, then cross-rank stages in reverse
            u = self._fft_first_axis_local(fp, u, n2, inverse=True)
            for s in range(n_cross - 1, -1, -1):
                u = yield from cross_stage(u, s, tag=400 + s)
        else:
            for s in range(n_cross):
                u = yield from cross_stage(u, s, tag=300 + s)
            u = self._fft_first_axis_local(fp, u, n2, inverse=False)
        return u

    def _fft_first_axis_local(self, fp, u: _Complex, axis_len: int, inverse: bool) -> _Complex:
        """Local transform along axis 0 (via transpose to last axis)."""
        if axis_len == 1:
            return u
        v = u.transpose(1, 2, 0)
        v = self._fft_last_axis(fp, v, axis_len, inverse)
        return v.transpose(2, 0, 1)

    # ------------------------------------------------------------------
    def _fft3d(self, fp, comm, rank, size, u: _Complex, inverse: bool):
        """Distributed 3-D transform (generator)."""
        nz, ny, nx = self.shape
        if inverse:
            u = self._fft_last_axis(fp, u, nx, inverse=True)
            v = u.transpose(0, 2, 1)
            v = self._fft_last_axis(fp, v, ny, inverse=True)
            u = v.transpose(0, 2, 1)
            u = yield from self._fft_z(fp, comm, rank, size, u, inverse=True)
        else:
            u = yield from self._fft_z(fp, comm, rank, size, u, inverse=False)
            v = u.transpose(0, 2, 1)
            v = self._fft_last_axis(fp, v, ny, inverse=False)
            u = v.transpose(0, 2, 1)
            u = self._fft_last_axis(fp, u, nx, inverse=False)
        return u

    # ------------------------------------------------------------------
    def program(self, rank, size, comm, fp):
        """Forward 3-D FFT once, then evolve + inverse + checksum per step."""
        nz, ny, nx = self.shape
        self.check_nprocs(size, limit=nz)
        n2 = nz // size
        z0 = rank * n2
        u = _Complex(
            fp.asarray(self._u0_re[z0 : z0 + n2]),
            fp.asarray(self._u0_im[z0 : z0 + n2]),
        )
        u_hat = yield from self._fft3d(fp, comm, rank, size, u, inverse=False)
        factor = self._factor[z0 : z0 + n2]
        inv_scale = 1.0 / (nz * ny * nx)
        # Checksums stay TArrays: the runner flattens them to floats on
        # the scalar path, and reading .value here would collapse lane
        # batches every step.
        checksums = []
        for _ in range(self.steps):
            u_hat = _Complex(fp.mul(u_hat.re, factor), fp.mul(u_hat.im, factor))
            w = yield from self._fft3d(fp, comm, rank, size, u_hat, inverse=True)
            w = _Complex(fp.mul(w.re, inv_scale), fp.mul(w.im, inv_scale))
            s_re = fp.sum(w.re)
            s_im = fp.sum(w.im)
            s_mag = fp.add(fp.dot(w.re, w.re), fp.dot(w.im, w.im))
            tot_re = yield comm.allreduce(s_re, op="sum")
            tot_im = yield comm.allreduce(s_im, op="sum")
            tot_mag = yield comm.allreduce(s_mag, op="sum")
            checksums.extend([tot_re, tot_im, tot_mag])
        if rank == 0:
            return {f"checksum_{i}": c for i, c in enumerate(checksums)}
        return None

    # ------------------------------------------------------------------
    def verify(self, output, reference):
        """NAS-style check: every per-step checksum within epsilon."""
        for key, ref in reference.items():
            got = output.get(key)
            if got is None or not (math.isfinite(got) and math.isfinite(ref)):
                return False
            if abs(got - ref) > self.epsilon * max(abs(ref), 1.0):
                return False
        return True
