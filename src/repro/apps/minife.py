"""MiniFE: finite-element stiffness assembly plus a CG solve.

Numerics (as in Mantevo MiniFE): trilinear hexahedral elements on a
structured brick mesh, one Laplace stiffness matrix assembled from
per-element contributions (reference element matrix from 2-point Gauss
quadrature, scaled by a per-element material coefficient), then a fixed
number of conjugate-gradient iterations on ``A x = b``.  The mesh is
periodic along z so that every rank owns the same amount of work (the
paper's assumption that all MPI processes perform the same
computation).

Parallelization (as in MiniFE): nodes are partitioned into z slabs;
each rank assembles the rows it owns from its own element layers.  The
top element layer also produces contributions to the *next* rank's
bottom node plane; those are packed, sent, and **merged into the
receiver's rows** — that ghost-contribution merge exists only in
parallel execution and is MiniFE's parallel-unique computation (paper
Table 1 reports a small share that shrinks as the mesh grows).  The CG
matvec exchanges single halo node-planes with both z neighbours.

Verification (as in MiniFE): the final residual norm must stay within a
small factor of the fault-free residual — a genuinely self-validating
checker, so outputs that differ from the reference can still "pass the
application checkers" (paper §2).
"""

from __future__ import annotations

import math

import numpy as np
import scipy.sparse as sp

from repro.apps.base import AppSpec
from repro.errors import ConfigurationError
from repro.taint.region import Region
from repro.taint.tarray import TArray
from repro.utils.rng import spawn_rng

__all__ = ["MiniFEApp"]


def _hex_stiffness() -> np.ndarray:
    """8x8 trilinear hexahedron Laplace stiffness (2-point Gauss rule)."""
    gauss = np.array([-1.0, 1.0]) / math.sqrt(3.0)
    corners = np.array(
        [[sz, sy, sx] for sz in (0, 1) for sy in (0, 1) for sx in (0, 1)],
        dtype=np.float64,
    )
    k = np.zeros((8, 8))
    for gz in gauss:
        for gy in gauss:
            for gx in gauss:
                # gradients of the 8 trilinear shape functions at (gz,gy,gx)
                pt = np.array([gz, gy, gx])
                grads = np.empty((8, 3))
                for a in range(8):
                    signs = 2.0 * corners[a] - 1.0  # map {0,1} -> {-1,+1}
                    vals = 0.5 * (1.0 + signs * pt)
                    for d in range(3):
                        g = 0.5 * signs[d]
                        for o in range(3):
                            if o != d:
                                g *= vals[o]
                        grads[a, d] = g
                k += grads @ grads.T
    return k  # weights are 1 for the 2-point rule; unit jacobian


class MiniFEApp(AppSpec):
    """The MiniFE benchmark.  See module docstring."""

    name = "minife"

    def __init__(
        self,
        nz: int = 64,
        ny: int = 6,
        nx: int = 6,
        cg_iters: int = 10,
        accept_factor: float = 5.0,
        xnorm_rtol: float = 1e-7,
        seed: int = 2468,
    ):
        if nz & (nz - 1):
            raise ConfigurationError(f"MiniFE nz={nz} must be a power of two")
        self.nz, self.ny, self.nx = nz, ny, nx
        self.cg_iters = cg_iters
        self.accept_factor = accept_factor
        self.xnorm_rtol = xnorm_rtol
        self.seed = seed

        self._plane = ny * nx
        n_nodes = nz * self._plane
        rng = spawn_rng(seed, "minife")
        self._coef = rng.uniform(0.5, 2.0, size=(nz, ny - 1, nx - 1))
        b = rng.standard_normal(n_nodes)
        self._b = b - b.mean()  # orthogonal to the periodic nullspace
        self._kref = _hex_stiffness()
        self._pattern = self._build_pattern()
        self._rank_data: dict[tuple[int, int], dict] = {}

    # ------------------------------------------------------------------
    # mesh / pattern construction (setup, untraced)
    # ------------------------------------------------------------------
    def _node_id(self, z, y, x):
        return (z % self.nz) * self._plane + y * self.nx + x

    def _element_nodes(self, ez: np.ndarray, ey: np.ndarray, ex: np.ndarray) -> np.ndarray:
        """Global node ids of each element's 8 corners, shape (nelem, 8)."""
        out = np.empty((ez.size, 8), dtype=np.int64)
        c = 0
        for dz in (0, 1):
            for dy in (0, 1):
                for dx in (0, 1):
                    out[:, c] = self._node_id(ez + dz, ey + dy, ex + dx)
                    c += 1
        return out

    def _all_elements(self):
        ez, ey, ex = np.meshgrid(
            np.arange(self.nz), np.arange(self.ny - 1), np.arange(self.nx - 1),
            indexing="ij",
        )
        return ez.ravel(), ey.ravel(), ex.ravel()

    def _build_pattern(self) -> sp.csr_matrix:
        ez, ey, ex = self._all_elements()
        nodes = self._element_nodes(ez, ey, ex)  # (nelem, 8)
        gi = np.repeat(nodes, 8, axis=1).ravel()
        gj = np.tile(nodes, (1, 8)).ravel()
        n = self.nz * self._plane
        pat = sp.coo_matrix((np.ones(gi.size), (gi, gj)), shape=(n, n)).tocsr()
        pat.sum_duplicates()
        pat.sort_indices()
        return pat

    def _slot_of(self, gi: np.ndarray, gj: np.ndarray) -> np.ndarray:
        """CSR data index of each (row, col) pair in the global pattern.

        Vectorized via the row-major key trick: CSR entries sorted by
        (row, col) are exactly the sorted sequence of ``row * n + col``.
        """
        n = self._pattern.shape[0]
        rows = np.repeat(
            np.arange(n, dtype=np.int64), np.diff(self._pattern.indptr)
        )
        pattern_keys = rows * n + self._pattern.indices
        return np.searchsorted(pattern_keys, gi.astype(np.int64) * n + gj)

    # ------------------------------------------------------------------
    def _setup_rank(self, size: int, rank: int) -> dict:
        """Per-rank constant assembly/solve data (cached)."""
        key = (size, rank)
        if key in self._rank_data:
            return self._rank_data[key]
        nz, plane = self.nz, self._plane
        nloc_z = nz // size
        z0 = rank * nloc_z
        r0, r1 = z0 * plane, (z0 + nloc_z) * plane
        indptr, indices = self._pattern.indptr, self._pattern.indices

        # --- assembly: contributions of this rank's element layers
        ez, ey, ex = np.meshgrid(
            np.arange(z0, z0 + nloc_z), np.arange(self.ny - 1), np.arange(self.nx - 1),
            indexing="ij",
        )
        ez, ey, ex = ez.ravel(), ey.ravel(), ex.ravel()
        nodes = self._element_nodes(ez, ey, ex)
        elem_idx = np.arange(ez.size)
        gi = np.repeat(nodes, 8, axis=1).ravel()
        gj = np.tile(nodes, (1, 8)).ravel()
        kvals = np.tile(self._kref.ravel(), ez.size)
        celem = np.repeat(elem_idx, 64)
        slots = self._slot_of(gi, gj)
        owned = (gi >= r0) & (gi < r1)

        # owned contributions: sort by slot, build segment boundaries per
        # local slot (local slot = global slot - indptr[r0])
        base = indptr[r0]
        nnz_local = indptr[r1] - base
        o_slots = slots[owned] - base
        order = np.argsort(o_slots, kind="stable")
        o_slots, o_elem, o_kv = o_slots[order], celem[owned][order], kvals[owned][order]
        seg_indptr = np.searchsorted(o_slots, np.arange(nnz_local + 1))

        # ghost contributions: rows of the next rank's first plane
        next_rank = (rank + 1) % size
        nr0 = ((z0 + nloc_z) % nz) * plane
        g_rows_lo, g_rows_hi = nr0, nr0 + plane
        ghost = (gi >= g_rows_lo) & (gi < g_rows_hi) & ~owned if size > 1 else np.zeros(gi.size, bool)
        nbase = indptr[nr0]
        prefix_nnz = indptr[nr0 + plane] - nbase
        gh_slots = slots[ghost] - nbase
        gorder = np.argsort(gh_slots, kind="stable")
        gh_slots, gh_elem, gh_kv = gh_slots[gorder], celem[ghost][gorder], kvals[ghost][gorder]
        gh_unique, gh_starts = np.unique(gh_slots, return_index=True)
        gh_indptr = np.append(gh_starts, gh_slots.size)

        # --- solve: remap local CSR columns into the extended vector
        # layout [prev plane | own rows | next plane]
        l_indptr = indptr[r0 : r1 + 1] - base
        l_cols = indices[base : indptr[r1]].copy()
        prev_lo = ((z0 - 1) % nz) * plane
        next_lo = ((z0 + nloc_z) % nz) * plane
        nloc = r1 - r0
        remap = np.empty_like(l_cols)
        in_own = (l_cols >= r0) & (l_cols < r1)
        in_prev = (l_cols >= prev_lo) & (l_cols < prev_lo + plane)
        in_next = (l_cols >= next_lo) & (l_cols < next_lo + plane)
        if not np.all(in_own | in_prev | in_next):
            raise ConfigurationError(
                "MiniFE slab too thin: matrix couples non-adjacent planes"
            )
        remap[in_own] = l_cols[in_own] - r0 + plane
        remap[in_prev] = l_cols[in_prev] - prev_lo
        remap[in_next] = l_cols[in_next] - next_lo + plane + nloc
        # when nloc_z == 1 and size == 2, prev and next planes coincide
        # with each other only if size == 1; handled by the same remap.

        data = {
            "z0": z0, "nloc": nloc, "plane": plane,
            "o_elem": o_elem, "o_kv": o_kv, "seg_indptr": seg_indptr,
            "gh_elem": gh_elem, "gh_kv": gh_kv, "gh_indptr": gh_indptr,
            "gh_positions": gh_unique, "prefix_nnz": int(prefix_nnz),
            "l_indptr": l_indptr, "l_cols_ext": remap,
            "coef_local": self._coef[z0 : z0 + nloc_z].ravel(),
            "b_local": self._b[r0:r1],
        }
        self._rank_data[key] = data
        return data

    # ------------------------------------------------------------------
    def program(self, rank, size, comm, fp):
        """Traced FE assembly (with ghost merge), then a fixed-iteration CG solve."""
        self.check_nprocs(size, limit=self.nz)
        d = self._setup_rank(size, rank)
        plane, nloc = d["plane"], d["nloc"]

        # ---------------- assembly (traced) ----------------
        coef = fp.asarray(d["coef_local"])
        own_contrib = fp.mul(coef[d["o_elem"]], d["o_kv"])
        data = fp.segment_sum(own_contrib, d["seg_indptr"])
        if size > 1:
            ghost_contrib = fp.mul(coef[d["gh_elem"]], d["gh_kv"])
            ghost_sums = fp.segment_sum(ghost_contrib, d["gh_indptr"])
            ghost_dense = TArray.scatter(ghost_sums, d["gh_positions"], d["prefix_nnz"])
            received = yield comm.sendrecv(
                (rank + 1) % size, ghost_dense, source=(rank - 1) % size, send_tag=810,
            )
            with fp.region(Region.PARALLEL_UNIQUE):
                merged = fp.add(data[: received.size], received)
            data = TArray.concatenate([merged, data[received.size :]])

        # ---------------- CG solve (traced) ----------------
        b = fp.asarray(d["b_local"])
        x = fp.asarray(np.zeros(nloc))
        r = b
        p_vec = r
        rho = yield from self._pdot(comm, fp, r, r)
        for _ in range(self.cg_iters):
            q = yield from self._matvec(comm, fp, rank, size, d, data, p_vec)
            pq = yield from self._pdot(comm, fp, p_vec, q)
            alpha = fp.div(rho, pq)
            x = fp.add(x, fp.mul(alpha, p_vec))
            r = fp.sub(r, fp.mul(alpha, q))
            rho0 = rho
            rho = yield from self._pdot(comm, fp, r, r)
            beta = fp.div(rho, rho0)
            p_vec = fp.add(r, fp.mul(beta, p_vec))
        rnorm2 = yield from self._pdot(comm, fp, r, r)
        xnorm2 = yield from self._pdot(comm, fp, x, x)
        if rank == 0:
            guarded_sqrt = lambda v: math.sqrt(v) if v >= 0 else math.nan
            return self._as_output(
                rnorm=rnorm2.scalar_map(guarded_sqrt),
                xnorm=xnorm2.scalar_map(guarded_sqrt),
            )
        return None

    # ------------------------------------------------------------------
    def _pdot(self, comm, fp, a, b):
        local = fp.dot(a, b)
        total = yield comm.allreduce(local, op="sum")
        return total

    def _matvec(self, comm, fp, rank, size, d, data, x):
        """y = A x with halo exchange of single node planes (generator)."""
        plane = d["plane"]
        if size == 1:
            prev_plane = x[-plane:]
            next_plane = x[:plane]
        else:
            # send my top plane downstream, receive my predecessor's top
            prev_plane = yield comm.sendrecv(
                (rank + 1) % size, x[-plane:], source=(rank - 1) % size, send_tag=820,
            )
            # send my bottom plane upstream, receive my successor's bottom
            next_plane = yield comm.sendrecv(
                (rank - 1) % size, x[:plane], source=(rank + 1) % size, send_tag=821,
            )
        x_ext = TArray.concatenate([prev_plane, x, next_plane])
        return fp.csr_matvec(data, d["l_cols_ext"], d["l_indptr"], x_ext)

    # ------------------------------------------------------------------
    def verify(self, output, reference):
        """MiniFE-style check: converged residual plus a sane solution norm."""
        got, ref = output["rnorm"], reference["rnorm"]
        xn, xref = output["xnorm"], reference["xnorm"]
        if not (math.isfinite(got) and math.isfinite(xn)):
            return False
        if got > self.accept_factor * max(ref, 1e-300):
            return False
        return abs(xn - xref) <= self.xnorm_rtol * max(abs(xref), 1.0)
