"""Typed structured events emitted by the instrumented layers.

Every event is a frozen dataclass with a stable ``type`` tag; sinks
serialize events as flat dicts (``{"type": ..., **fields}``), and
:func:`load_trace` reconstructs the typed objects from a JSONL trace so
analyses can replay a run.  Events carry only plain JSON-serializable
payloads (strings, numbers, bools, and lists/dicts thereof) by
construction.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, fields
from typing import Any, ClassVar, Iterable

__all__ = [
    "Event",
    "CampaignStarted",
    "CampaignFinished",
    "CampaignResumed",
    "CampaignConverged",
    "CampaignPlanRevised",
    "CampaignProfile",
    "CampaignTrace",
    "CheckpointWritten",
    "TrialFinished",
    "FaultInjected",
    "RankKilled",
    "MessageCorrupted",
    "TrialProvenance",
    "CacheHit",
    "CacheMiss",
    "CacheWrite",
    "CacheCorrupt",
    "SchedulerDeadlock",
    "SpanEnd",
    "WorkerJoined",
    "WorkerLost",
    "ChunkRequeued",
    "EVENT_TYPES",
    "event_from_dict",
]


@dataclass(frozen=True)
class Event:
    """Base class: subclasses set ``type`` and declare payload fields."""

    type: ClassVar[str] = "event"

    def to_dict(self) -> dict[str, Any]:
        """Flat JSON-ready representation (``type`` tag + payload)."""
        return {"type": self.type, **asdict(self)}


@dataclass(frozen=True)
class CampaignStarted(Event):
    """A fault-injection deployment began executing trials."""

    type: ClassVar[str] = "campaign_started"

    app: str
    nprocs: int
    trials: int
    n_errors: int
    seed: int


@dataclass(frozen=True)
class CampaignFinished(Event):
    """A deployment completed; rates mirror :class:`CampaignResult`."""

    type: ClassVar[str] = "campaign_finished"

    app: str
    trials: int
    success_rate: float
    sdc_rate: float
    failure_rate: float
    profile_time: float
    injection_time: float


@dataclass(frozen=True)
class CampaignResumed(Event):
    """A deployment picked up from a crash-safe checkpoint.

    Emitted by the engine (:mod:`repro.engine`) right after
    ``CampaignStarted`` when completed-chunk results were recovered from
    a previous, interrupted process; the recovered trials' events are
    replayed to the sinks immediately after, so traces and progress see
    every trial exactly once.
    """

    type: ClassVar[str] = "campaign_resumed"

    app: str
    trials_done: int      # trials recovered from the checkpoint
    trials_total: int
    chunks_done: int
    chunks_total: int
    path: str             # checkpoint directory


@dataclass(frozen=True)
class CampaignConverged(Event):
    """An adaptive deployment hit (or missed) its precision target.

    Emitted once per adaptive campaign by
    :func:`repro.engine.adaptive.run_adaptive_trials` after the last
    wave: ``converged`` says whether every tracked outcome's Wilson
    half-width reached ``target`` before the ``trials_cap`` ran out, and
    ``halfwidths`` records the achieved half-width per outcome value.
    """

    type: ClassVar[str] = "campaign_converged"

    app: str
    nprocs: int
    n_errors: int
    target: float               # requested CI half-width
    trials_used: int
    trials_cap: int
    waves: int
    converged: bool
    halfwidths: dict[str, float]   # Outcome.value -> achieved half-width


@dataclass(frozen=True)
class CampaignPlanRevised(Event):
    """An adaptive campaign revised its projected total trial count.

    Emitted once per wave by
    :func:`repro.engine.adaptive.run_adaptive_trials` with the next
    convergence-check boundary — the driver's current best estimate of
    the campaign's final size.  Progress consumers
    (:class:`~repro.obs.sinks.ProgressSink`, the live ``/metrics``
    endpoint) use it to tighten their denominator and wall-clock ETA as
    waves converge.
    """

    type: ClassVar[str] = "campaign_plan_revised"

    app: str
    planned: int          # projected total trials at this revision
    done: int             # trials folded when the projection was made


@dataclass(frozen=True)
class CampaignProfile(Event):
    """Hot-path profile of one campaign (see :mod:`repro.obs.profiler`).

    Emitted by :func:`repro.fi.campaign.run_campaign` when profiling is
    enabled, after the campaign span closes.  ``spans`` holds the
    campaign's span-path deltas (``path -> [count, seconds]``); ``ops``
    holds one row per (phase path, op kind, rank) with the attributed
    FP-instruction count, call count and wall seconds.  Rendered by the
    ``obs-profile`` CLI and the dashboard's flamegraph section.
    """

    type: ClassVar[str] = "campaign_profile"

    app: str
    wall_s: float                   # campaign span wall time
    spans: dict[str, list[float]]   # span path -> [count, seconds]
    ops: list[dict]                 # {"phase","kind","rank","ops","calls","seconds"}


@dataclass(frozen=True)
class CampaignTrace(Event):
    """Causal spans of one campaign (see :mod:`repro.obs.trace`).

    Emitted by :func:`repro.fi.campaign.run_campaign` when tracing is
    enabled, after the campaign span closes.  ``spans`` holds one dict
    per recorded span — ``name``, ``cat`` (campaign / phase / wave /
    chunk / lanes / trial / checkpoint), deterministic W3C-style
    ``trace_id``/``span_id``/``parent_id``, wall-clock ``t0``/``dur``
    seconds and the recording process's ``pid``.
    :func:`repro.obs.configure` routes this event to the
    ``*.timeline.jsonl`` sidecar (never the main trace), so the main
    event stream is identical with tracing on or off.  Rendered by the
    ``obs-timeline`` CLI and the dashboards' worker-timeline section
    via :mod:`repro.obs.timeline`.
    """

    type: ClassVar[str] = "campaign_trace"

    app: str
    trace_id: str
    spans: list[dict]


@dataclass(frozen=True)
class CheckpointWritten(Event):
    """One completed chunk's results were durably persisted."""

    type: ClassVar[str] = "checkpoint_written"

    path: str             # chunk file
    chunk_start: int      # [start, stop) trial range of the chunk
    chunk_stop: int
    trials_done: int      # cumulative trials checkpointed so far
    size_bytes: int


@dataclass(frozen=True)
class TrialFinished(Event):
    """One fault-injection test finished (any outcome)."""

    type: ClassVar[str] = "trial_finished"

    trial: int
    outcome: str          # Outcome.value: "success" | "sdc" | "failure"
    n_contaminated: int
    activated: bool
    duration_s: float


@dataclass(frozen=True)
class FaultInjected(Event):
    """A planned bit flip actually fired during a trial."""

    type: ClassVar[str] = "fault_injected"

    trial: int
    rank: int
    region: str           # Region.value
    index: int            # global candidate-stream index
    bit: int


@dataclass(frozen=True)
class RankKilled(Event):
    """An armed fail-stop fired: ``rank`` was killed at scheduler ``step``.

    Emitted by the rank-kill scenario family
    (:mod:`repro.fi.scenarios.rankkill`); ``step`` is the deterministic
    scheduler step at which the kill actually happened, which can trail
    the sampled step when the victim was parked on communication.
    """

    type: ClassVar[str] = "rank_killed"

    trial: int
    rank: int
    step: int


@dataclass(frozen=True)
class MessageCorrupted(Event):
    """An in-transit payload corruption fired during a trial.

    Emitted by the message-corruption scenario family
    (:mod:`repro.fi.scenarios.msgcorrupt`).  ``kind`` is ``"p2p"`` or
    the collective kind (``"allreduce"``, ``"bcast"``, ...); ``src`` is
    the sending rank (-1 for collectives, whose results come from the
    scheduler); ``dest`` the receiving rank; ``element``/``bit`` locate
    the flipped bit inside the delivered payload.
    """

    type: ClassVar[str] = "message_corrupted"

    trial: int
    kind: str
    src: int
    dest: int
    element: int
    bit: int


@dataclass(frozen=True)
class TrialProvenance(Event):
    """Full fault provenance of one trial (site → spread → outcome).

    The bulky sibling of :class:`TrialFinished`: links the sampled fault
    site(s) to what actually happened.  ``planned`` lists every flip of
    the injection plan (``rank``/``region``/``index``/``operand``/
    ``bit``); ``fired`` lists the flips that actually landed, enriched
    with the dynamic op kind and the operand value before/after
    corruption; ``timeline`` records ``[step, rank]`` pairs — the
    scheduler step at which each rank was first contaminated, in
    contamination order.  All payloads are deterministic functions of
    ``(deployment, trial)``, so provenance files are bit-identical for
    any worker count (see :mod:`repro.obs.provenance`).
    """

    type: ClassVar[str] = "trial_provenance"

    trial: int
    outcome: str          # Outcome.value: "success" | "sdc" | "failure"
    n_contaminated: int
    activated: bool
    detail: str
    planned: list[dict]   # one entry per planned flip
    fired: list[dict]     # one entry per applied (instruction, operand) group
    timeline: list[list[int]]   # [scheduler step, rank], first-touch order


@dataclass(frozen=True)
class CacheHit(Event):
    """A campaign was served from the disk cache."""

    type: ClassVar[str] = "cache_hit"

    path: str
    size_bytes: int


@dataclass(frozen=True)
class CacheMiss(Event):
    """No usable cache entry; the campaign will be recomputed."""

    type: ClassVar[str] = "cache_miss"

    path: str


@dataclass(frozen=True)
class CacheWrite(Event):
    """A freshly computed campaign result was persisted."""

    type: ClassVar[str] = "cache_write"

    path: str
    size_bytes: int


@dataclass(frozen=True)
class CacheCorrupt(Event):
    """A cache file failed to parse and was deleted for recompute."""

    type: ClassVar[str] = "cache_corrupt"

    path: str
    reason: str


@dataclass(frozen=True)
class SchedulerDeadlock(Event):
    """Every unfinished rank is blocked on unmatchable communication."""

    type: ClassVar[str] = "scheduler_deadlock"

    blocked_ranks: list[int]
    pending_ops: list[str]    # one human-readable entry per blocked rank
    steps: int


@dataclass(frozen=True)
class SpanEnd(Event):
    """A timing span closed; ``path`` is the slash-joined nesting."""

    type: ClassVar[str] = "span_end"

    path: str
    duration_s: float


@dataclass(frozen=True)
class WorkerJoined(Event):
    """A remote campaign worker connected and initialized.

    Emitted by the distributed backend's controller
    (:mod:`repro.engine.distributed`) once a worker finishes its
    handshake.  ``warm`` says whether the worker already held this
    campaign's initialized state from a previous campaign (warm pool
    hit) or had to unpickle it cold; ``init_s`` is the worker-reported
    initialization time.  Worker-lifecycle events describe *where* work
    ran, never *what* it computed — they carry pids and wall-clock
    durations and are deliberately outside the byte-identity contract
    (see docs/distributed.md).
    """

    type: ClassVar[str] = "worker_joined"

    worker: int           # controller-assigned id, stable for the session
    pid: int              # worker process id (0 when unreported)
    addr: str             # remote address, host:port
    warm: bool
    init_s: float


@dataclass(frozen=True)
class WorkerLost(Event):
    """A remote campaign worker left the pool.

    ``reason`` is ``"released"`` for a graceful end-of-campaign release,
    otherwise the failure class: ``"disconnect"`` (EOF / connection
    reset — e.g. a SIGKILLed worker), ``"timeout"`` (missed its chunk
    deadline), or ``"protocol"`` (sent a garbage frame).
    """

    type: ClassVar[str] = "worker_lost"

    worker: int
    reason: str
    chunks_done: int      # chunks this worker completed before leaving


@dataclass(frozen=True)
class ChunkRequeued(Event):
    """A dispatched chunk was returned to the work queue.

    Emitted when the worker holding the chunk was lost before reporting
    it.  Dispatch is at-least-once; the aggregator's duplicate guard
    makes folding exactly-once, so a requeue can never double-count.
    """

    type: ClassVar[str] = "chunk_requeued"

    chunk_start: int
    chunk_stop: int
    worker: int           # the worker that lost it
    reason: str           # same classes as WorkerLost.reason


#: type tag -> event class, for trace replay.
EVENT_TYPES: dict[str, type[Event]] = {
    cls.type: cls
    for cls in (
        CampaignStarted, CampaignFinished, CampaignResumed, CampaignConverged,
        CampaignPlanRevised, CampaignProfile, CampaignTrace,
        CheckpointWritten, TrialFinished, FaultInjected, RankKilled,
        MessageCorrupted, TrialProvenance,
        CacheHit, CacheMiss, CacheWrite, CacheCorrupt, SchedulerDeadlock,
        SpanEnd, WorkerJoined, WorkerLost, ChunkRequeued,
    )
}


def event_from_dict(blob: dict[str, Any]) -> Event | None:
    """Rebuild a typed event from its serialized dict.

    Returns None for unknown types (forward compatibility: readers skip
    events written by newer code).  Extra keys — e.g. the ``ts``
    timestamp sinks add — are ignored.
    """
    cls = EVENT_TYPES.get(blob.get("type", ""))
    if cls is None:
        return None
    names = {f.name for f in fields(cls)}
    return cls(**{k: v for k, v in blob.items() if k in names})


def events_of(events: Iterable[Event], cls: type[Event]) -> list[Event]:
    """Filter a replayed trace down to one event class."""
    return [e for e in events if isinstance(e, cls)]
