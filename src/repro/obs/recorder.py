"""The process-wide recorder: counters, histograms, spans, event fan-out.

One :class:`Recorder` instance is installed per process (see
:func:`get_recorder` / :func:`set_recorder`).  The default instance is
**disabled**: every instrumentation site either checks
:attr:`Recorder.enabled` or goes through methods that return
immediately, so the fault-injection hot path (per-vectorized-op
accounting in :mod:`repro.taint.ops`) pays one attribute test and
nothing else.

Cross-process aggregation
-------------------------
Campaign workers (:mod:`repro.fi.parallel`) cannot share the parent's
recorder, so each worker records into a local recorder and ships an
:class:`ObsSnapshot` — a picklable bundle of counters, histograms, span
totals and buffered events — back with its results.  The parent calls
:meth:`Recorder.absorb` to merge the aggregates and re-emit the events
to its own sinks, preserving serial-run semantics (progress lines,
traces and metric summaries see every trial exactly once).  A worker
recorder built with ``span_prefix=("campaign",)`` nests its trial spans
under the parent's campaign span, keeping span paths identical to a
serial run.

Metrics model
-------------
* **counters** — monotonically increasing totals (``fp.add.rank0``,
  ``cache.hit``), integer or float;
* **histograms** — lists of observed samples
  (``taint.contamination_spread``, ``scheduler.blocked_ranks``);
* **spans** — nested wall-clock phases.  ``span("campaign")`` /
  ``span("trial")`` / ``span("inject")`` nest into slash-joined paths
  (``campaign/trial/inject``); each close accumulates (count, total
  seconds) per path and emits a :class:`~repro.obs.events.SpanEnd`.
"""

from __future__ import annotations

import contextlib
import time
from dataclasses import dataclass, field
from typing import Callable, ContextManager, Iterator, Sequence

from repro.obs.events import Event, SpanEnd
from repro.obs.sinks import Sink

__all__ = [
    "ObsSnapshot", "Recorder", "get_recorder", "set_recorder", "recording",
    "reset",
]


@dataclass
class ObsSnapshot:
    """Picklable aggregate of one recorder's state (plus buffered events).

    Produced by :meth:`Recorder.snapshot` in a worker process and merged
    into the parent's recorder with :meth:`Recorder.absorb`.
    """

    counters: dict[str, float] = field(default_factory=dict)
    histograms: dict[str, list[float]] = field(default_factory=dict)
    span_totals: dict[str, list[float]] = field(default_factory=dict)
    events: list[Event] = field(default_factory=list)


class _NullSpan:
    """Shared no-op span: the disabled path allocates nothing per call."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class Recorder:
    """Counters, histograms and nested timing spans for one process."""

    def __init__(
        self,
        sinks: Sequence[Sink] = (),
        enabled: bool | None = None,
        clock: Callable[[], float] = time.perf_counter,
        span_prefix: Sequence[str] = (),
    ):
        self.sinks: list[Sink] = list(sinks)
        #: master switch — instrumentation sites test this one attribute.
        self.enabled: bool = bool(self.sinks) if enabled is None else enabled
        self.counters: dict[str, float] = {}
        self.histograms: dict[str, list[float]] = {}
        #: span path -> [count, total_seconds]
        self.span_totals: dict[str, list[float]] = {}
        #: ``span_prefix`` seeds the nesting so a worker's trial spans
        #: report the same paths as the parent's (never closed here).
        self._span_stack: list[str] = list(span_prefix)
        self._clock = clock

    # ------------------------------------------------------------------
    # metrics
    # ------------------------------------------------------------------
    def counter(self, name: str, value: float = 1) -> None:
        """Add ``value`` to counter ``name`` (no-op while disabled)."""
        if not self.enabled:
            return
        self.counters[name] = self.counters.get(name, 0) + value

    def observe(self, name: str, value: float) -> None:
        """Append ``value`` to histogram ``name`` (no-op while disabled)."""
        if not self.enabled:
            return
        self.histograms.setdefault(name, []).append(value)

    # ------------------------------------------------------------------
    # spans
    # ------------------------------------------------------------------
    def span(self, name: str) -> ContextManager:
        """Time a phase; nesting builds slash-joined paths.

        While disabled this returns a shared no-op context manager, so
        per-trial spans in the campaign loop cost one call and no
        allocation.
        """
        if not self.enabled:
            return _NULL_SPAN
        if "/" in name:
            raise ValueError(f"span name may not contain '/': {name!r}")
        return self._live_span(name)

    @contextlib.contextmanager
    def _live_span(self, name: str) -> Iterator["Recorder"]:
        self._span_stack.append(name)
        path = "/".join(self._span_stack)
        t0 = self._clock()
        try:
            yield self
        finally:
            duration = self._clock() - t0
            self._span_stack.pop()
            agg = self.span_totals.setdefault(path, [0, 0.0])
            agg[0] += 1
            agg[1] += duration
            self.emit(SpanEnd(path=path, duration_s=duration))

    # ------------------------------------------------------------------
    # events
    # ------------------------------------------------------------------
    def emit(self, event: Event) -> None:
        """Fan ``event`` out to every sink (no-op while disabled)."""
        if not self.enabled:
            return
        for sink in self.sinks:
            sink.write(event)

    def close(self) -> None:
        """Close all sinks (flushes the JSONL trace, finishes progress)."""
        for sink in self.sinks:
            sink.close()

    # ------------------------------------------------------------------
    # cross-process aggregation
    # ------------------------------------------------------------------
    def snapshot(self, events: Sequence[Event] = ()) -> ObsSnapshot:
        """Copy this recorder's aggregates into a picklable bundle.

        ``events`` lets the caller attach the buffered event stream of a
        :class:`~repro.obs.sinks.MemorySink` so the parent can re-emit
        it in order.
        """
        return ObsSnapshot(
            counters=dict(self.counters),
            histograms={k: list(v) for k, v in self.histograms.items()},
            span_totals={k: list(v) for k, v in self.span_totals.items()},
            events=list(events),
        )

    def absorb(self, snapshot: ObsSnapshot, emit_events: bool = True) -> None:
        """Merge a worker's :class:`ObsSnapshot` into this recorder.

        Counters add, histograms extend, span totals accumulate, and the
        snapshot's events are re-emitted to this recorder's sinks in
        their original order.  No-op while disabled.
        """
        if not self.enabled:
            return
        for name, value in snapshot.counters.items():
            self.counters[name] = self.counters.get(name, 0) + value
        for name, values in snapshot.histograms.items():
            self.histograms.setdefault(name, []).extend(values)
        for path, (count, total) in snapshot.span_totals.items():
            agg = self.span_totals.setdefault(path, [0, 0.0])
            agg[0] += count
            agg[1] += total
        if emit_events:
            for event in snapshot.events:
                self.emit(event)


#: The process-wide recorder; disabled until something installs sinks.
_RECORDER = Recorder()


def get_recorder() -> Recorder:
    """The currently installed process-wide recorder."""
    return _RECORDER


def set_recorder(recorder: Recorder) -> Recorder:
    """Install ``recorder`` globally; returns the previous one."""
    global _RECORDER
    previous, _RECORDER = _RECORDER, recorder
    return previous


def reset() -> Recorder:
    """Reinstall the default disabled recorder; returns the previous one.

    Instrumented objects resolve the recorder once per instance (e.g.
    :class:`repro.taint.ops.FPOps` per execution), so a reset takes
    effect for everything constructed afterwards.
    """
    return set_recorder(Recorder())


@contextlib.contextmanager
def recording(recorder: Recorder) -> Iterator[Recorder]:
    """Temporarily install ``recorder`` (tests, scoped instrumentation)."""
    previous = set_recorder(recorder)
    try:
        yield recorder
    finally:
        set_recorder(previous)
