"""The process-wide recorder: counters, histograms, spans, event fan-out.

One :class:`Recorder` instance is installed per process (see
:func:`get_recorder` / :func:`set_recorder`).  The default instance is
**disabled**: every instrumentation site either checks
:attr:`Recorder.enabled` or goes through methods that return
immediately, so the fault-injection hot path (per-vectorized-op
accounting in :mod:`repro.taint.ops`) pays one attribute test and
nothing else.

Cross-process aggregation
-------------------------
Campaign workers (:mod:`repro.engine`) cannot share the parent's
recorder, so each worker records into a local recorder and ships an
:class:`ObsSnapshot` — a picklable bundle of counters, histograms, span
totals and buffered events — back with its results.  The parent calls
:meth:`Recorder.absorb` to merge the aggregates and re-emit the events
to its own sinks, preserving serial-run semantics (progress lines,
traces and metric summaries see every trial exactly once).  A worker
recorder built with ``span_prefix=("campaign",)`` nests its trial spans
under the parent's campaign span, keeping span paths identical to a
serial run.

Metrics model
-------------
* **counters** — monotonically increasing totals (``fp.add.rank0``,
  ``cache.hit``), integer or float;
* **gauges** — last-write-wins values (``campaign.trials_planned``,
  ``campaign.trials_done``), the live-telemetry view of "where is the
  run right now";
* **histograms** — lists of observed samples
  (``taint.contamination_spread``, ``scheduler.blocked_ranks``);
* **spans** — nested wall-clock phases.  ``span("campaign")`` /
  ``span("trial")`` / ``span("inject")`` nest into slash-joined paths
  (``campaign/trial/inject``); each close accumulates (count, total
  seconds) per path and emits a :class:`~repro.obs.events.SpanEnd`;
* **profile** — the hot-path profiler's attribution table, keyed
  ``(path, op kind, rank) -> [ops, calls, seconds]``.  Populated only
  while :attr:`Recorder.profiling` is set (see
  :mod:`repro.obs.profiler`); ``path`` extends the span path with
  lightweight *profiler frames* (:meth:`Recorder.push_frame`) that cost
  a list append and emit no events.

Thread safety
-------------
The live telemetry server (:mod:`repro.obs.live`) reads a recorder from
its own thread while a campaign writes.  The hot path stays lock-free;
:meth:`snapshot` instead retries the rare ``RuntimeError`` CPython
raises when a dict or deque is resized mid-copy, so readers always get
a consistent-enough copy without the writers paying anything.
"""

from __future__ import annotations

import contextlib
import time
from dataclasses import dataclass, field
from typing import Callable, ContextManager, Iterator, Sequence

from repro.obs.events import Event, SpanEnd
from repro.obs.sinks import Sink

__all__ = [
    "ObsSnapshot", "Recorder", "get_recorder", "set_recorder", "recording",
    "reset",
]


def _copy_racing(mapping: dict, value_copy: Callable | None = None) -> dict:
    """Copy a dict that another thread may be resizing concurrently.

    CPython raises ``RuntimeError`` when a dict grows during iteration;
    a bounded retry loop is cheaper (and hot-path-free) than locking
    every counter increment.  Falls back to a key-by-key copy if the
    writer outruns every retry.
    """
    for _ in range(64):
        try:
            if value_copy is None:
                return dict(mapping)
            return {k: value_copy(v) for k, v in mapping.items()}
        except RuntimeError:
            continue
    out: dict = {}
    for key in list(mapping):
        value = mapping.get(key)
        if value is not None:
            out[key] = value_copy(value) if value_copy else value
    return out


@dataclass
class ObsSnapshot:
    """Picklable aggregate of one recorder's state (plus buffered events).

    Produced by :meth:`Recorder.snapshot` in a worker process and merged
    into the parent's recorder with :meth:`Recorder.absorb`.  ``profile``
    carries the hot-path profiler's attribution rows so per-(phase, op
    kind, rank) data survives worker aggregation exactly like counters
    do; ``trace`` carries the causal spans collected while
    :attr:`Recorder.tracing` was set (see :mod:`repro.obs.trace`).
    Both stay out of checkpoint files (wall times are not deterministic,
    and checkpoint bytes must not depend on whether profiling or tracing
    was on) — ``trace`` defaults to empty so old checkpoints still
    deserialize.
    """

    counters: dict[str, float] = field(default_factory=dict)
    histograms: dict[str, list[float]] = field(default_factory=dict)
    span_totals: dict[str, list[float]] = field(default_factory=dict)
    events: list[Event] = field(default_factory=list)
    profile: dict[tuple[str, str, int], list[float]] = field(
        default_factory=dict
    )
    trace: list[dict] = field(default_factory=list)


class _NullSpan:
    """Shared no-op span: the disabled path allocates nothing per call."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class Recorder:
    """Counters, histograms and nested timing spans for one process."""

    def __init__(
        self,
        sinks: Sequence[Sink] = (),
        enabled: bool | None = None,
        clock: Callable[[], float] = time.perf_counter,
        span_prefix: Sequence[str] = (),
        profiling: bool = False,
        tracing: bool = False,
    ):
        self.sinks: list[Sink] = list(sinks)
        #: master switch — instrumentation sites test this one attribute.
        self.enabled: bool = bool(self.sinks) if enabled is None else enabled
        #: hot-path profiler switch; meaningful only while ``enabled``.
        #: Profiled objects (FPOps, the scheduler) resolve it once per
        #: instance, so the disabled path stays one attribute test.
        self.profiling: bool = profiling
        #: causal-tracing switch (see :mod:`repro.obs.trace`); like
        #: ``profiling``, meaningful only while ``enabled``, and the
        #: disabled path costs callers one attribute test.
        self.tracing: bool = tracing
        #: collected span dicts (cumulative across campaigns, like
        #: ``profile``); scoped per campaign by ``obs.trace.TraceScope``.
        self.trace_spans: list[dict] = []
        #: the driver/worker's current ``obs.trace.TraceContext`` (kept
        #: untyped: the recorder never imports the tracing module).
        self.trace_ctx = None
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, float] = {}
        self.histograms: dict[str, list[float]] = {}
        #: span path -> [count, total_seconds]
        self.span_totals: dict[str, list[float]] = {}
        #: (path, op kind, rank) -> [ops, calls, seconds]
        self.profile: dict[tuple[str, str, int], list[float]] = {}
        #: ``span_prefix`` seeds the nesting so a worker's trial spans
        #: report the same paths as the parent's (never closed here).
        self._span_stack: list[str] = list(span_prefix)
        #: profiler frames nested below the span stack (no events).
        self._prof_stack: list[str] = []
        self._clock = clock

    # ------------------------------------------------------------------
    # metrics
    # ------------------------------------------------------------------
    def counter(self, name: str, value: float = 1) -> None:
        """Add ``value`` to counter ``name`` (no-op while disabled)."""
        if not self.enabled:
            return
        self.counters[name] = self.counters.get(name, 0) + value

    def gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to ``value`` (no-op while disabled)."""
        if not self.enabled:
            return
        self.gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        """Append ``value`` to histogram ``name`` (no-op while disabled)."""
        if not self.enabled:
            return
        self.histograms.setdefault(name, []).append(value)

    # ------------------------------------------------------------------
    # hot-path profiling
    # ------------------------------------------------------------------
    def push_frame(self, name: str) -> None:
        """Enter a profiler frame: extends the attribution path only.

        Unlike :meth:`span`, a frame emits no event and touches no
        aggregate on exit — it exists so :meth:`profile_op` calls made
        inside it attribute to a deeper path (e.g. the scheduler's
        ``advance`` frame under ``campaign/trial/inject``).  Callers
        must pair it with :meth:`pop_frame` in a ``finally``.
        """
        self._prof_stack.append(name)

    def pop_frame(self) -> None:
        """Leave the innermost profiler frame."""
        self._prof_stack.pop()

    def profile_op(self, kind: str, rank: int, ops: float, seconds: float) -> None:
        """Attribute ``ops`` instructions / ``seconds`` wall time.

        The attribution path is the current span path extended by any
        profiler frames; one row accumulates per ``(path, kind, rank)``.
        No-op unless :attr:`profiling` is set (hot callers cache the
        check per instance and never reach here while off).
        """
        if not self.profiling:
            return
        path = "/".join((*self._span_stack, *self._prof_stack))
        agg = self.profile.get((path, kind, rank))
        if agg is None:
            agg = self.profile.setdefault((path, kind, rank), [0.0, 0, 0.0])
        agg[0] += ops
        agg[1] += 1
        agg[2] += seconds

    # ------------------------------------------------------------------
    # causal tracing
    # ------------------------------------------------------------------
    def add_trace_span(self, span: dict) -> None:
        """Collect one causal span dict (no-op unless tracing is on).

        Spans are built by :func:`repro.obs.trace.make_span`; they are
        exported by :mod:`repro.obs.timeline` and never feed back into
        execution, so recording them cannot perturb results.
        """
        if self.enabled and self.tracing:
            self.trace_spans.append(span)

    # ------------------------------------------------------------------
    # spans
    # ------------------------------------------------------------------
    def span(self, name: str) -> ContextManager:
        """Time a phase; nesting builds slash-joined paths.

        While disabled this returns a shared no-op context manager, so
        per-trial spans in the campaign loop cost one call and no
        allocation.
        """
        if not self.enabled:
            return _NULL_SPAN
        if "/" in name:
            raise ValueError(f"span name may not contain '/': {name!r}")
        return self._live_span(name)

    @contextlib.contextmanager
    def _live_span(self, name: str) -> Iterator["Recorder"]:
        self._span_stack.append(name)
        path = "/".join(self._span_stack)
        t0 = self._clock()
        try:
            yield self
        finally:
            duration = self._clock() - t0
            self._span_stack.pop()
            agg = self.span_totals.setdefault(path, [0, 0.0])
            agg[0] += 1
            agg[1] += duration
            self.emit(SpanEnd(path=path, duration_s=duration))

    # ------------------------------------------------------------------
    # events
    # ------------------------------------------------------------------
    def emit(self, event: Event) -> None:
        """Fan ``event`` out to every sink (no-op while disabled)."""
        if not self.enabled:
            return
        for sink in self.sinks:
            sink.write(event)

    def close(self) -> None:
        """Close all sinks (flushes the JSONL trace, finishes progress)."""
        for sink in self.sinks:
            sink.close()

    # ------------------------------------------------------------------
    # cross-process aggregation
    # ------------------------------------------------------------------
    def snapshot(self, events: Sequence[Event] = ()) -> ObsSnapshot:
        """Copy this recorder's aggregates into a picklable bundle.

        ``events`` lets the caller attach the buffered event stream of a
        :class:`~repro.obs.sinks.MemorySink` so the parent can re-emit
        it in order.  Safe to call from another thread while this
        recorder is being written (see *Thread safety* above).
        """
        return ObsSnapshot(
            counters=_copy_racing(self.counters),
            histograms=_copy_racing(self.histograms, list),
            span_totals=_copy_racing(self.span_totals, list),
            events=list(events),
            profile=_copy_racing(self.profile, list),
            trace=list(self.trace_spans),
        )

    def absorb(self, snapshot: ObsSnapshot, emit_events: bool = True) -> None:
        """Merge a worker's :class:`ObsSnapshot` into this recorder.

        Counters add, histograms extend, span totals and profile rows
        accumulate, trace spans append, and the snapshot's events are
        re-emitted to this recorder's sinks in their original order.
        No-op while disabled.
        """
        if not self.enabled:
            return
        for name, value in snapshot.counters.items():
            self.counters[name] = self.counters.get(name, 0) + value
        for name, values in snapshot.histograms.items():
            self.histograms.setdefault(name, []).extend(values)
        for path, (count, total) in snapshot.span_totals.items():
            agg = self.span_totals.setdefault(path, [0, 0.0])
            agg[0] += count
            agg[1] += total
        for key, (ops, calls, seconds) in snapshot.profile.items():
            agg = self.profile.setdefault(key, [0.0, 0, 0.0])
            agg[0] += ops
            agg[1] += calls
            agg[2] += seconds
        self.trace_spans.extend(snapshot.trace)
        if emit_events:
            for event in snapshot.events:
                self.emit(event)


#: The process-wide recorder; disabled until something installs sinks.
_RECORDER = Recorder()


def get_recorder() -> Recorder:
    """The currently installed process-wide recorder."""
    return _RECORDER


def set_recorder(recorder: Recorder) -> Recorder:
    """Install ``recorder`` globally; returns the previous one."""
    global _RECORDER
    previous, _RECORDER = _RECORDER, recorder
    return previous


def reset() -> Recorder:
    """Reinstall the default disabled recorder; returns the previous one.

    Instrumented objects resolve the recorder once per instance (e.g.
    :class:`repro.taint.ops.FPOps` per execution), so a reset takes
    effect for everything constructed afterwards.
    """
    return set_recorder(Recorder())


@contextlib.contextmanager
def recording(recorder: Recorder) -> Iterator[Recorder]:
    """Temporarily install ``recorder`` (tests, scoped instrumentation)."""
    previous = set_recorder(recorder)
    try:
        yield recorder
    finally:
        set_recorder(previous)
