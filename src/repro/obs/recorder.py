"""The process-wide recorder: counters, histograms, spans, event fan-out.

One :class:`Recorder` instance is installed per process (see
:func:`get_recorder` / :func:`set_recorder`).  The default instance is
**disabled**: every instrumentation site either checks
:attr:`Recorder.enabled` or goes through methods that return
immediately, so the fault-injection hot path (per-vectorized-op
accounting in :mod:`repro.taint.ops`) pays one attribute test and
nothing else.

Metrics model
-------------
* **counters** — monotonically increasing totals (``fp.add.rank0``,
  ``cache.hit``), integer or float;
* **histograms** — lists of observed samples
  (``taint.contamination_spread``, ``scheduler.blocked_ranks``);
* **spans** — nested wall-clock phases.  ``span("campaign")`` /
  ``span("trial")`` / ``span("inject")`` nest into slash-joined paths
  (``campaign/trial/inject``); each close accumulates (count, total
  seconds) per path and emits a :class:`~repro.obs.events.SpanEnd`.
"""

from __future__ import annotations

import contextlib
import time
from typing import Callable, ContextManager, Iterator, Sequence

from repro.obs.events import Event, SpanEnd
from repro.obs.sinks import Sink

__all__ = ["Recorder", "get_recorder", "set_recorder", "recording"]


class _NullSpan:
    """Shared no-op span: the disabled path allocates nothing per call."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class Recorder:
    """Counters, histograms and nested timing spans for one process."""

    def __init__(
        self,
        sinks: Sequence[Sink] = (),
        enabled: bool | None = None,
        clock: Callable[[], float] = time.perf_counter,
    ):
        self.sinks: list[Sink] = list(sinks)
        #: master switch — instrumentation sites test this one attribute.
        self.enabled: bool = bool(self.sinks) if enabled is None else enabled
        self.counters: dict[str, float] = {}
        self.histograms: dict[str, list[float]] = {}
        #: span path -> [count, total_seconds]
        self.span_totals: dict[str, list[float]] = {}
        self._span_stack: list[str] = []
        self._clock = clock

    # ------------------------------------------------------------------
    # metrics
    # ------------------------------------------------------------------
    def counter(self, name: str, value: float = 1) -> None:
        """Add ``value`` to counter ``name`` (no-op while disabled)."""
        if not self.enabled:
            return
        self.counters[name] = self.counters.get(name, 0) + value

    def observe(self, name: str, value: float) -> None:
        """Append ``value`` to histogram ``name`` (no-op while disabled)."""
        if not self.enabled:
            return
        self.histograms.setdefault(name, []).append(value)

    # ------------------------------------------------------------------
    # spans
    # ------------------------------------------------------------------
    def span(self, name: str) -> ContextManager:
        """Time a phase; nesting builds slash-joined paths.

        While disabled this returns a shared no-op context manager, so
        per-trial spans in the campaign loop cost one call and no
        allocation.
        """
        if not self.enabled:
            return _NULL_SPAN
        if "/" in name:
            raise ValueError(f"span name may not contain '/': {name!r}")
        return self._live_span(name)

    @contextlib.contextmanager
    def _live_span(self, name: str) -> Iterator["Recorder"]:
        self._span_stack.append(name)
        path = "/".join(self._span_stack)
        t0 = self._clock()
        try:
            yield self
        finally:
            duration = self._clock() - t0
            self._span_stack.pop()
            agg = self.span_totals.setdefault(path, [0, 0.0])
            agg[0] += 1
            agg[1] += duration
            self.emit(SpanEnd(path=path, duration_s=duration))

    # ------------------------------------------------------------------
    # events
    # ------------------------------------------------------------------
    def emit(self, event: Event) -> None:
        """Fan ``event`` out to every sink (no-op while disabled)."""
        if not self.enabled:
            return
        for sink in self.sinks:
            sink.write(event)

    def close(self) -> None:
        """Close all sinks (flushes the JSONL trace, finishes progress)."""
        for sink in self.sinks:
            sink.close()


#: The process-wide recorder; disabled until something installs sinks.
_RECORDER = Recorder()


def get_recorder() -> Recorder:
    """The currently installed process-wide recorder."""
    return _RECORDER


def set_recorder(recorder: Recorder) -> Recorder:
    """Install ``recorder`` globally; returns the previous one."""
    global _RECORDER
    previous, _RECORDER = _RECORDER, recorder
    return previous


@contextlib.contextmanager
def recording(recorder: Recorder) -> Iterator[Recorder]:
    """Temporarily install ``recorder`` (tests, scoped instrumentation)."""
    previous = set_recorder(recorder)
    try:
        yield recorder
    finally:
        set_recorder(previous)
