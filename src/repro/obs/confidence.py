"""Wilson score confidence intervals for measured outcome rates.

Every rate the reproduction reports is an estimate from a finite number
of fault-injection tests; a 3.1% SDC rate from 64 trials and one from
10,000 trials are very different claims.  This module attaches that
uncertainty: the Wilson score interval (Wilson 1927), which — unlike the
textbook normal approximation — stays inside [0, 1], has sane coverage
at small ``n``, and degrades gracefully at p = 0 or 1 where the Wald
interval collapses to a point.

For a measured proportion ``p = k/n`` and normal quantile ``z``::

    center = (p + z^2 / 2n) / (1 + z^2 / n)
    half   = z * sqrt(p (1 - p) / n + z^2 / 4 n^2) / (1 + z^2 / n)

``n = 0`` yields the non-informative interval (0, 1) — no data, no
claim.  The default ``z = 1.96`` gives the usual 95% level.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["ConfidenceInterval", "wilson_interval", "Z_95"]

#: normal quantile for a two-sided 95% interval.
Z_95 = 1.959963984540054


@dataclass(frozen=True)
class ConfidenceInterval:
    """A two-sided confidence interval for a proportion."""

    low: float
    high: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.low <= self.high <= 1.0:
            raise ValueError(
                f"invalid proportion interval [{self.low}, {self.high}]"
            )

    @property
    def width(self) -> float:
        return self.high - self.low

    def contains(self, p: float) -> bool:
        return self.low <= p <= self.high

    def format(self, as_percent: bool = False) -> str:
        """Render as ``[lo, hi]``, optionally in percent."""
        if as_percent:
            return f"[{100.0 * self.low:.1f}%, {100.0 * self.high:.1f}%]"
        return f"[{self.low:.4f}, {self.high:.4f}]"


def wilson_interval(successes: int, n: int, z: float = Z_95) -> ConfidenceInterval:
    """Wilson score interval for ``successes`` hits out of ``n`` tests.

    ``n = 0`` returns the non-informative (0, 1).  Raises ``ValueError``
    on negative counts, ``successes > n``, or non-positive ``z``.
    """
    if n < 0 or successes < 0:
        raise ValueError(f"negative counts: successes={successes}, n={n}")
    if successes > n:
        raise ValueError(f"successes={successes} exceeds n={n}")
    if z <= 0:
        raise ValueError(f"z must be positive, got {z}")
    if n == 0:
        return ConfidenceInterval(0.0, 1.0)
    p = successes / n
    z2 = z * z
    denom = 1.0 + z2 / n
    center = (p + z2 / (2.0 * n)) / denom
    half = z * math.sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n)) / denom
    # at p = 0 (resp. 1) the exact bound is 0 (resp. 1); rounding noise
    # in center ∓ half must not push it past the point estimate.
    low = 0.0 if successes == 0 else max(0.0, center - half)
    high = 1.0 if successes == n else min(1.0, center + half)
    return ConfidenceInterval(low, high)
