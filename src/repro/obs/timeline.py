"""Span timelines: Chrome/OTLP trace export and worker utilization.

Consumes the causal spans produced by :mod:`repro.obs.trace` (shipped
as :class:`~repro.obs.events.CampaignTrace` events, normally in a
``*.timeline.jsonl`` sidecar next to the main trace) and renders them
three ways:

* :func:`chrome_trace` — Chrome trace-event JSON, loadable in Perfetto
  or ``chrome://tracing``: one lane per worker pid, chunk / trial /
  lanes / checkpoint / wave spans nested as B/E pairs;
* :func:`otlp_trace` — OTLP-shaped JSON (``resourceSpans`` →
  ``scopeSpans`` → spans with hex ids and UnixNano timestamps) for
  future collector integration;
* :func:`worker_utilization` / :func:`render_timeline_report` /
  :func:`timeline_swimlane_svg` — per-worker busy / idle / queue-wait
  fractions, straggler detection (chunks whose duration exceeds
  k·median), and the dashboard's SVG swimlane.

Chrome's validator wants per-tid timestamps monotone and B/E strictly
nested, but span starts are wall-clock (``time.time``) while durations
come from the monotonic clock — the two can disagree by more than a
short span's length.  :func:`chrome_trace` therefore rebuilds each
pid's span forest from the recorded ``parent_id`` links and emits it
depth-first with a running per-tid cursor that clamps every timestamp
forward, so exported nesting always matches the recorded causality.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable

from repro.obs.events import CampaignTrace, Event
from repro.utils.tables import format_table
from repro.viz.svg import SvgCanvas, swimlane

__all__ = [
    "STRAGGLER_K",
    "chrome_trace",
    "otlp_trace",
    "render_timeline_report",
    "spans_of",
    "timeline_path",
    "timeline_swimlane_svg",
    "traces_of",
    "validate_chrome_trace",
    "worker_utilization",
]

#: A chunk is flagged a straggler when its duration exceeds this
#: multiple of the median chunk duration.
STRAGGLER_K = 2.0

#: span category -> swimlane palette index (repro.viz.svg.PALETTE).
_LANE_CATS = {
    "campaign": 3, "wave": 4, "chunk": 0, "checkpoint": 1, "lanes": 2,
}


def timeline_path(trace_path: str | Path) -> Path:
    """The timeline sidecar next to a trace: ``run.jsonl`` → ``run.timeline.jsonl``."""
    path = Path(trace_path)
    return path.with_name(path.stem + ".timeline.jsonl")


def traces_of(events: Iterable[Event]) -> list[CampaignTrace]:
    """Filter a replayed event stream down to its trace events."""
    return [e for e in events if isinstance(e, CampaignTrace)]


def spans_of(events: Iterable[Event]) -> list[dict]:
    """All spans of a stream's trace events, deduplicated.

    The live server synthesizes a mid-run :class:`CampaignTrace` whose
    spans reappear verbatim in the final event, so identity is
    ``(span_id, t0)``: re-runs of the same deployment keep distinct
    wall-clock starts while duplicates of one run collapse.
    """
    seen: set[tuple] = set()
    spans: list[dict] = []
    for event in traces_of(events):
        for span in event.spans:
            key = (span.get("span_id"), span.get("t0"))
            if key in seen:
                continue
            seen.add(key)
            spans.append(span)
    return spans


def _span_end(span: dict) -> float:
    return span["t0"] + max(span.get("dur", 0.0), 0.0)


def chrome_trace(spans: Iterable[dict]) -> dict:
    """Render spans as a Chrome trace-event JSON object.

    One ``tid`` per recording pid (the worker lanes), B/E event pairs
    per span, metadata events naming each lane.  Timestamps are
    microseconds relative to the earliest span start, globally sorted
    and monotone per tid; begin/end events balance by construction (see
    the module docstring for the clock-reconciliation scheme).
    """
    spans = list(spans)
    if not spans:
        return {"traceEvents": [], "displayTimeUnit": "ms", "otherData": {}}
    t_base = min(s["t0"] for s in spans)
    driver_pids = sorted(
        {s["pid"] for s in spans if s.get("cat") in ("campaign", "wave")}
    )
    by_pid: dict[int, list[dict]] = {}
    for span in spans:
        by_pid.setdefault(span["pid"], []).append(span)

    meta: list[dict] = []
    body: list[dict] = []
    for pid in sorted(by_pid):
        role = "driver" if pid in driver_pids or not driver_pids else "worker"
        for field, name in (("process_name", f"repro {role}"),
                            ("thread_name", f"{role} {pid}")):
            meta.append({
                "ph": "M", "name": field, "pid": pid, "tid": pid,
                "args": {"name": name},
            })
        plist = by_pid[pid]
        ids = {s["span_id"] for s in plist}
        children: dict[str, list[dict]] = {}
        roots: list[dict] = []
        for span in plist:
            parent = span.get("parent_id", "")
            # a cross-pid parent (chunk under the driver's campaign)
            # roots its own lane — Chrome nesting is per-thread
            if parent in ids and parent != span["span_id"]:
                children.setdefault(parent, []).append(span)
            else:
                roots.append(span)

        def order(sp: dict) -> tuple:
            return (sp["t0"], -_span_end(sp), sp["span_id"])

        cursor = [0.0]  # running per-tid timestamp floor, microseconds

        def emit(span: dict, lo: float, hi: float) -> None:
            t0 = min(max(span["t0"], lo), hi)
            t1 = min(max(_span_end(span), t0), hi)
            ts_b = max(round((t0 - t_base) * 1e6, 3), cursor[0])
            cursor[0] = ts_b
            args = {"span_id": span["span_id"],
                    "parent_id": span.get("parent_id", ""),
                    **span.get("args", {})}
            body.append({
                "name": span["name"], "cat": span.get("cat", ""),
                "ph": "B", "ts": ts_b, "pid": span["pid"],
                "tid": span["pid"], "args": args,
            })
            for child in sorted(children.get(span["span_id"], ()), key=order):
                emit(child, t0, t1)
            ts_e = max(round((t1 - t_base) * 1e6, 3), cursor[0])
            cursor[0] = ts_e
            body.append({
                "name": span["name"], "cat": span.get("cat", ""),
                "ph": "E", "ts": ts_e, "pid": span["pid"],
                "tid": span["pid"],
            })

        for root in sorted(roots, key=order):
            emit(root, root["t0"], _span_end(root))

    # a stable sort keeps each tid's (already monotone) relative order
    body.sort(key=lambda e: e["ts"])
    return {
        "traceEvents": meta + body,
        "displayTimeUnit": "ms",
        "otherData": {
            "generator": "repro.obs.timeline",
            "trace_ids": sorted({s.get("trace_id", "") for s in spans}),
        },
    }


def validate_chrome_trace(blob: dict) -> int:
    """Check a Chrome trace blob; returns the number of B/E pairs.

    Raises ``ValueError`` on the defects the trace-event schema rejects:
    missing required keys, globally unsorted ``ts``, non-monotone
    timestamps within a tid, or unbalanced/mismatched begin-end pairs.
    Shared by the test suite and the CI ``timeline-smoke`` job.
    """
    events = blob.get("traceEvents")
    if not isinstance(events, list) or not events:
        raise ValueError("traceEvents missing or empty")
    body_ts = [e["ts"] for e in events if e.get("ph") in ("B", "E")]
    if body_ts != sorted(body_ts):
        raise ValueError("trace events are not sorted by ts")
    stacks: dict[tuple, list[str]] = {}
    last_ts: dict[tuple, float] = {}
    pairs = 0
    for event in events:
        ph = event.get("ph")
        if ph == "M":
            continue
        if ph not in ("B", "E"):
            raise ValueError(f"unsupported phase {ph!r}")
        for key in ("name", "ts", "pid", "tid"):
            if key not in event:
                raise ValueError(f"event missing {key!r}: {event}")
        tid = (event["pid"], event["tid"])
        if event["ts"] < last_ts.get(tid, float("-inf")):
            raise ValueError(f"timestamps not monotone within tid {tid}")
        last_ts[tid] = event["ts"]
        stack = stacks.setdefault(tid, [])
        if ph == "B":
            stack.append(event["name"])
        else:
            if not stack or stack[-1] != event["name"]:
                raise ValueError(
                    f"unbalanced 'E' event {event['name']!r} on tid {tid}"
                )
            stack.pop()
            pairs += 1
    unclosed = {tid: stack for tid, stack in stacks.items() if stack}
    if unclosed:
        raise ValueError(f"unclosed 'B' events: {unclosed}")
    if pairs == 0:
        raise ValueError("no B/E span pairs in trace")
    return pairs


def _otlp_value(value) -> dict:
    if isinstance(value, bool):
        return {"boolValue": value}
    if isinstance(value, int):
        return {"intValue": str(value)}  # int64 maps to string in OTLP JSON
    if isinstance(value, float):
        return {"doubleValue": value}
    return {"stringValue": str(value)}


def otlp_trace(spans: Iterable[dict]) -> dict:
    """Render spans as OTLP-shaped JSON (one resource, one scope)."""
    rendered = []
    for span in sorted(spans, key=lambda s: (s["t0"], s.get("span_id", ""))):
        attributes = [
            {"key": "repro.cat", "value": _otlp_value(span.get("cat", ""))},
            {"key": "repro.pid", "value": _otlp_value(int(span.get("pid", 0)))},
        ]
        for key in sorted(span.get("args", {})):
            attributes.append(
                {"key": f"repro.{key}", "value": _otlp_value(span["args"][key])}
            )
        rendered.append({
            "traceId": span.get("trace_id", ""),
            "spanId": span.get("span_id", ""),
            "parentSpanId": span.get("parent_id", ""),
            "name": span.get("name", ""),
            "kind": 1,  # SPAN_KIND_INTERNAL
            "startTimeUnixNano": str(int(round(span["t0"] * 1e9))),
            "endTimeUnixNano": str(int(round(_span_end(span) * 1e9))),
            "attributes": attributes,
        })
    return {
        "resourceSpans": [{
            "resource": {"attributes": [{
                "key": "service.name",
                "value": {"stringValue": "repro-campaign"},
            }]},
            "scopeSpans": [{
                "scope": {"name": "repro.obs.timeline"},
                "spans": rendered,
            }],
        }],
    }


def _median(values: list[float]) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def worker_utilization(spans: Iterable[dict], k: float = STRAGGLER_K) -> dict:
    """Per-worker busy/idle/queue-wait fractions plus straggler chunks.

    The utilization window is the campaign span (falling back to the
    overall span extent).  Per worker pid: *busy* sums its chunk
    durations, *queue wait* is the gap between the window start and its
    first chunk (spawn/pickle cost before useful work), *idle* is the
    clamped remainder.  A chunk is a straggler when its duration exceeds
    ``k`` times the median chunk duration.
    """
    spans = list(spans)
    empty = {"window_s": 0.0, "workers": {}, "stragglers": [],
             "chunk_median_s": 0.0}
    if not spans:
        return empty
    campaigns = [s for s in spans if s.get("cat") == "campaign"]
    window_spans = campaigns or spans
    window_t0 = min(s["t0"] for s in window_spans)
    window_t1 = max(_span_end(s) for s in window_spans)
    window = max(window_t1 - window_t0, 0.0)

    chunks = [s for s in spans if s.get("cat") == "chunk"]
    workers: dict[int, dict] = {}
    for pid in sorted({s["pid"] for s in chunks}):
        mine = [s for s in chunks if s["pid"] == pid]
        busy = sum(max(s.get("dur", 0.0), 0.0) for s in mine)
        queue_wait = min(max(min(s["t0"] for s in mine) - window_t0, 0.0),
                         window)
        idle = max(window - busy - queue_wait, 0.0)
        workers[pid] = {
            "chunks": len(mine),
            "trials": sum(
                int(s.get("args", {}).get("trials", 0)) for s in mine
            ),
            "busy_s": busy,
            "queue_wait_s": queue_wait,
            "idle_s": idle,
            "busy_frac": busy / window if window else 0.0,
            "queue_wait_frac": queue_wait / window if window else 0.0,
            "idle_frac": idle / window if window else 0.0,
        }

    durations = [max(s.get("dur", 0.0), 0.0) for s in chunks]
    median = _median(durations)
    stragglers = [
        {
            "name": s["name"],
            "pid": s["pid"],
            "dur_s": max(s.get("dur", 0.0), 0.0),
            "ratio": (max(s.get("dur", 0.0), 0.0) / median) if median else 0.0,
        }
        for s in chunks
        if median > 0.0 and max(s.get("dur", 0.0), 0.0) > k * median
    ]
    return {
        "window_s": window,
        "workers": workers,
        "stragglers": sorted(stragglers, key=lambda s: -s["ratio"]),
        "chunk_median_s": median,
    }


def render_timeline_report(
    spans: Iterable[dict], k: float = STRAGGLER_K
) -> str:
    """Text report: span census, per-worker utilization, stragglers."""
    spans = list(spans)
    if not spans:
        return "(no spans recorded)"
    by_cat: dict[str, list[float]] = {}
    for span in spans:
        by_cat.setdefault(span.get("cat", "?"), []).append(
            max(span.get("dur", 0.0), 0.0)
        )
    census = format_table(
        ["category", "spans", "total s"],
        [(cat, len(durs), round(sum(durs), 3))
         for cat, durs in sorted(by_cat.items())],
        title="Span census",
    )
    util = worker_utilization(spans, k)
    sections = [census]
    if util["workers"]:
        rows = [
            (pid, w["chunks"], w["trials"], round(w["busy_s"], 3),
             f"{100 * w['busy_frac']:.0f}%",
             f"{100 * w['queue_wait_frac']:.0f}%",
             f"{100 * w['idle_frac']:.0f}%")
            for pid, w in util["workers"].items()
        ]
        sections.append(format_table(
            ["worker pid", "chunks", "trials", "busy s", "busy",
             "queue-wait", "idle"],
            rows,
            title=f"Worker utilization ({util['window_s']:.2f}s window)",
        ))
    if util["stragglers"]:
        rows = [
            (s["name"], s["pid"], round(s["dur_s"], 3),
             f"{s['ratio']:.1f}x median")
            for s in util["stragglers"]
        ]
        sections.append(format_table(
            ["straggler chunk", "pid", "duration s", "vs median"], rows,
            title=f"Stragglers (> {k:g}x median chunk)",
        ))
    else:
        sections.append(
            f"(no straggler chunks: none exceeded {k:g}x the "
            f"{util['chunk_median_s']:.3f}s median)"
        )
    return "\n\n".join(sections)


def timeline_swimlane_svg(
    spans: Iterable[dict],
    title: str = "Worker timeline",
    width: int = 920,
) -> SvgCanvas:
    """The worker-timeline swimlane: one lane per pid, driver first.

    Driver lanes show the campaign span with wave/checkpoint spans on
    top; worker lanes show their chunks (and lanes blocks).  Trial
    spans are omitted — at campaign scale they are sub-pixel noise.
    """
    spans = [s for s in spans if s.get("cat") in _LANE_CATS]
    if not spans:
        return swimlane([], title=title, width=width)
    t_base = min(s["t0"] for s in spans)
    driver_pids = {
        s["pid"] for s in spans
        if s["cat"] in ("campaign", "wave", "checkpoint")
    }
    rows = []
    for pid in sorted({s["pid"] for s in spans},
                      key=lambda p: (p not in driver_pids, p)):
        role = "driver" if pid in driver_pids else "worker"
        boxes = [
            (s["t0"] - t_base, _span_end(s) - t_base, s["name"],
             _LANE_CATS[s["cat"]])
            for s in spans if s["pid"] == pid
        ]
        rows.append((f"{role} {pid}", boxes))
    return swimlane(rows, title=title, width=width)
