"""Deterministic causal tracing for campaign execution.

Every traced campaign gets a W3C-style 128-bit trace id hashed from the
app cache key and the deployment key, and every span (campaign, profile
phase, wave, chunk, lanes block, trial, checkpoint write) gets a 64-bit
span id hashed from the trace id plus the span's *logical* coordinates
— chunk bounds, trial index, wave number.  Wall-clock never enters an
id, so ids are bit-identical across runs, ``--jobs``/``--lanes``
settings, and interrupt/resume; only the recorded ``t0``/``dur``
readings differ.

Like the hot-path profiler, tracing reads clocks but never touches
program state: records, the main event stream, and the provenance
sidecar stay byte-identical with tracing on or off.  Collected spans
ride :class:`~repro.obs.recorder.ObsSnapshot` back from worker
processes (exactly like profiler frames do), and the driver emits one
:class:`~repro.obs.events.CampaignTrace` event per campaign, routed by
:func:`repro.obs.configure` to a ``*.timeline.jsonl`` sidecar so the
main trace's event stream is unaffected.

Span dicts are plain JSON: ``{name, cat, trace_id, span_id, parent_id,
t0, dur, pid, args}`` with ``t0`` in wall-clock epoch seconds and
``dur`` measured on the monotonic clock.  Exporters live in
:mod:`repro.obs.timeline`.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass

from repro.obs.events import CampaignTrace

__all__ = [
    "TraceContext",
    "TraceScope",
    "live_trace_event",
    "make_span",
    "span_id_from",
    "trace_id_from",
    "tracing_active",
]


def trace_id_from(*parts: object) -> str:
    """32-hex-digit trace id hashed from logical identifiers only."""
    blob = "|".join(str(part) for part in parts)
    return hashlib.sha256(f"trace|{blob}".encode()).hexdigest()[:32]


def span_id_from(trace_id: str, *parts: object) -> str:
    """16-hex-digit span id, deterministic within one trace."""
    blob = "|".join((trace_id, *(str(part) for part in parts)))
    return hashlib.sha256(f"span|{blob}".encode()).hexdigest()[:16]


@dataclass(frozen=True)
class TraceContext:
    """The current position in a campaign's causal tree.

    Frozen and string-only, so it pickles to worker processes on
    :class:`~repro.engine.chunks.EngineContext` unchanged.
    """

    trace_id: str
    span_id: str

    def derive(self, *parts: object) -> "TraceContext":
        """Child context whose span id is keyed by logical ``parts``."""
        return TraceContext(self.trace_id, span_id_from(self.trace_id, *parts))


def make_span(
    name: str,
    cat: str,
    ctx: TraceContext,
    parent_id: str,
    t0: float,
    dur: float,
    args: dict | None = None,
) -> dict:
    """One exportable span record (see module docstring for the schema)."""
    span = {
        "name": name,
        "cat": cat,
        "trace_id": ctx.trace_id,
        "span_id": ctx.span_id,
        "parent_id": parent_id,
        "t0": t0,
        "dur": dur,
        "pid": os.getpid(),
    }
    if args:
        span["args"] = dict(args)
    return span


def tracing_active(recorder) -> bool:
    """True when ``recorder`` should record spans for the current campaign."""
    return bool(
        recorder.enabled and recorder.tracing and recorder.trace_ctx is not None
    )


class TraceScope:
    """One campaign's slice of a recorder's cumulative span list.

    The recorder accumulates spans across campaigns (mirroring how the
    profiler accumulates op counters); the scope remembers where this
    campaign started so ``finish()`` returns only its spans.
    """

    def __init__(self, recorder) -> None:
        self._recorder = recorder
        self._base = len(recorder.trace_spans)

    def finish(self) -> list[dict]:
        return list(self._recorder.trace_spans[self._base:])

    def to_event(self, app: str, trace_id: str) -> CampaignTrace:
        return CampaignTrace(app=app, trace_id=trace_id, spans=self.finish())


def live_trace_event(recorder, app: str = "live") -> CampaignTrace:
    """Synthesize a trace event from spans collected so far (mid-run).

    Used by the live telemetry server to render a worker timeline while
    the campaign is still executing; span dicts are shared verbatim with
    the final :class:`CampaignTrace`, so timeline readers that dedup by
    ``(span_id, t0)`` merge the two views losslessly.
    """
    spans = list(recorder.trace_spans)
    if recorder.trace_ctx is not None:
        trace_id = recorder.trace_ctx.trace_id
    else:
        trace_id = spans[0]["trace_id"] if spans else ""
    return CampaignTrace(app=app, trace_id=trace_id, spans=spans)
