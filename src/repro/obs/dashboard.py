"""Campaign dashboard: one self-contained HTML page per trace.

Takes the two files an instrumented campaign leaves behind — the JSONL
event trace (``--trace-out``) and its sibling ``*.provenance.jsonl`` —
and renders a single static HTML file with every chart inlined as SVG
(:mod:`repro.viz.svg`): outcome rates with 95% Wilson whiskers, a
bit-position × outcome heatmap, a contamination-spread histogram,
injection-latency percentiles, and the per-phase timing table.  No
JavaScript, no external stylesheets, fonts, or images — the file can be
attached to a CI run or an email and opened anywhere.

Build one with ``python -m repro.experiments obs-dashboard TRACE`` or
programmatically via :func:`write_dashboard`.
"""

from __future__ import annotations

import html
from pathlib import Path
from typing import Callable, Iterable

import numpy as np

from repro.numerics.bits import bit_width
from repro.obs.confidence import wilson_interval
from repro.obs.events import (
    CampaignConverged,
    CampaignProfile,
    CampaignResumed,
    CampaignStarted,
    CheckpointWritten,
    Event,
    SpanEnd,
    TrialFinished,
)
from repro.obs.profiler import (
    coverage,
    merge_profile_events,
    render_profile_svg,
    traced_op_share,
)
from repro.obs.provenance import FaultProvenance, load_provenance, provenance_path
from repro.obs.sinks import load_trace
from repro.obs.timeline import (
    STRAGGLER_K,
    spans_of,
    timeline_path,
    timeline_swimlane_svg,
    worker_utilization,
)
from repro.viz.svg import bar_chart, bar_chart_with_ci, heatmap

__all__ = [
    "render_dashboard", "render_dashboard_html", "write_dashboard",
    "dashboard_path",
]

#: canonical outcome order for every chart (matches the paper's figures).
_OUTCOMES = ["success", "sdc", "failure"]

_STYLE = """
body { font-family: Helvetica, Arial, sans-serif; margin: 2em auto;
       max-width: 960px; color: #222; }
h1 { font-size: 1.5em; } h2 { font-size: 1.15em; margin-top: 2em; }
table { border-collapse: collapse; margin: 1em 0; }
th, td { border: 1px solid #ccc; padding: 4px 10px; text-align: left;
         font-size: 0.9em; }
th { background: #f0f3f7; }
section { margin-bottom: 1.5em; }
.meta { color: #666; font-size: 0.85em; }
"""


def dashboard_path(trace_path: str | Path) -> Path:
    """Default output path: ``run.jsonl`` → ``run.dashboard.html``."""
    path = Path(trace_path)
    return path.with_name(path.stem + ".dashboard.html")


# ----------------------------------------------------------------------
# section builders
# ----------------------------------------------------------------------
def _esc(value) -> str:
    return html.escape(str(value))


def _html_table(headers: list[str], rows: Iterable[tuple]) -> str:
    head = "".join(f"<th>{_esc(h)}</th>" for h in headers)
    body = "".join(
        "<tr>" + "".join(f"<td>{_esc(c)}</td>" for c in row) + "</tr>"
        for row in rows
    )
    return f"<table><tr>{head}</tr>{body}</table>"


def _campaign_section(events: list[Event]) -> str:
    starts = [e for e in events if isinstance(e, CampaignStarted)]
    if not starts:
        return "<p class='meta'>(no campaign metadata in trace)</p>"
    rows = [
        (e.app, e.nprocs, e.trials, e.n_errors, e.seed) for e in starts
    ]
    return _html_table(["app", "nprocs", "trials", "errors/test", "seed"], rows)


def _outcome_section(events: list[Event]) -> str:
    trials = [e for e in events if isinstance(e, TrialFinished)]
    if not trials:
        return "<p class='meta'>(no finished trials in trace)</p>"
    n = len(trials)
    counts = {oc: 0 for oc in _OUTCOMES}
    for t in trials:
        counts[t.outcome] = counts.get(t.outcome, 0) + 1
    values, intervals, rows = [], [], []
    for oc in _OUTCOMES:
        k = counts.get(oc, 0)
        ci = wilson_interval(k, n)
        values.append(k / n)
        intervals.append((ci.low, ci.high))
        rows.append((oc, k, f"{100 * k / n:.1f}%", ci.format(as_percent=True)))
    svg = bar_chart_with_ci(
        [oc.upper() for oc in _OUTCOMES], values, intervals,
        title=f"Outcome rates with 95% Wilson intervals ({n} trials)",
        ylabel="rate",
    ).render()
    return svg + _html_table(["outcome", "trials", "rate", "95% CI"], rows)


def _bit_heatmap_section(records: list[FaultProvenance]) -> str:
    n_bits = bit_width(np.dtype(np.float64))
    fired = [r for r in records if r.fired]
    if not fired:
        return "<p class='meta'>(no fired flips in provenance)</p>"
    grid = [[0] * n_bits for _ in _OUTCOMES]
    row_of = {oc: i for i, oc in enumerate(_OUTCOMES)}
    for r in fired:
        ri = row_of.get(r.outcome)
        if ri is None:
            continue
        for bit in r.bits:
            grid[ri][bit] += 1
    svg = heatmap(
        [oc.upper() for oc in _OUTCOMES],
        list(range(n_bits)),
        grid,
        title=f"Outcome by corrupted bit position ({len(fired)} trials with fired flips)",
        col_label_every=8,
    ).render()
    return svg + (
        "<p class='meta'>Bit 0 = mantissa LSB; "
        f"bit {n_bits - 1} = sign. Cell colour ∝ trial count.</p>"
    )


def _spread_section(records: list[FaultProvenance]) -> str:
    activated = [r for r in records if r.activated and r.n_contaminated >= 1]
    if not activated:
        return "<p class='meta'>(no activated trials in provenance)</p>"
    counts: dict[int, int] = {}
    for r in activated:
        counts[r.n_contaminated] = counts.get(r.n_contaminated, 0) + 1
    cats = list(range(1, max(counts) + 1))
    svg = bar_chart(
        cats, [counts.get(c, 0) for c in cats],
        title=f"Contamination spread ({len(activated)} activated trials)",
        ylabel="trials", percent=False,
    ).render()
    return svg


def _checkpoint_section(events: list[Event]) -> str | None:
    """Checkpoint/resume summary; None when the run never checkpointed."""
    writes = [e for e in events if isinstance(e, CheckpointWritten)]
    resumes = [e for e in events if isinstance(e, CampaignResumed)]
    if not writes and not resumes:
        return None
    parts = []
    if resumes:
        rows = [
            (e.app, f"{e.trials_done}/{e.trials_total}",
             f"{e.chunks_done}/{e.chunks_total}", e.path)
            for e in resumes
        ]
        parts.append(_html_table(
            ["resumed app", "trials recovered", "chunks recovered", "store"],
            rows,
        ))
    if writes:
        total_bytes = sum(e.size_bytes for e in writes)
        parts.append(
            f"<p class='meta'>{len(writes)} chunk checkpoints written "
            f"({total_bytes} bytes); {max(e.trials_done for e in writes)} "
            f"trials durable at the last write.</p>"
        )
    return "\n".join(parts)


def _convergence_section(events: list[Event]) -> str | None:
    """Adaptive precision summary; None when every campaign was fixed-N.

    Shows where the precision budget actually went: a bar per deployment
    with the trials it spent (against its cap), plus a table with waves,
    the target and the worst achieved half-width.
    """
    converged = [e for e in events if isinstance(e, CampaignConverged)]
    if not converged:
        return None
    labels, rows = [], []
    for e in converged:
        # serial multi-error sweeps vary x, parallel campaigns vary p
        label = f"x={e.n_errors}" if e.nprocs == 1 else f"p={e.nprocs}"
        if sum(1 for c in converged if c.app == e.app) != len(converged):
            label = f"{e.app} {label}"
        labels.append(label)
        worst = max(e.halfwidths.values()) if e.halfwidths else float("nan")
        rows.append((
            e.app, label, f"{e.trials_used}/{e.trials_cap}", e.waves,
            f"{e.target:.4f}", f"{worst:.4f}",
            "yes" if e.converged else "CAP HIT",
        ))
    svg = bar_chart(
        labels, [e.trials_used for e in converged],
        title="Trials spent per deployment (adaptive stopping)",
        ylabel="trials", percent=False,
    ).render()
    return svg + _html_table(
        ["app", "deployment", "trials", "waves", "target ±", "achieved ±",
         "converged"],
        rows,
    )


def _profile_section(events: list[Event]) -> str | None:
    """Hot-path flamegraph; None when the run was not profiled."""
    profiles = [e for e in events if isinstance(e, CampaignProfile)]
    if not profiles:
        return None
    merged = merge_profile_events(profiles)
    svg = render_profile_svg(merged).render()
    note = (
        f"<p class='meta'>{len(profiles)} profiled campaign(s); "
        f"wall-time coverage {100 * coverage(merged):.1f}%, "
        f"traced binary ops cover {100 * traced_op_share(merged):.1f}% of "
        f"injection time. Full per-(phase, op, rank) table: "
        f"<code>obs-profile TRACE</code>.</p>"
    )
    return svg + note


def _timeline_section(events: list[Event]) -> str | None:
    """Worker swimlane + utilization; None when the run was not traced."""
    spans = spans_of(events)
    if not spans:
        return None
    svg = timeline_swimlane_svg(spans).render()
    util = worker_utilization(spans)
    parts = [svg]
    if util["workers"]:
        rows = [
            (pid, w["chunks"], w["trials"], f"{w['busy_s']:.3f}",
             f"{100 * w['busy_frac']:.0f}%",
             f"{100 * w['queue_wait_frac']:.0f}%",
             f"{100 * w['idle_frac']:.0f}%")
            for pid, w in util["workers"].items()
        ]
        parts.append(_html_table(
            ["worker pid", "chunks", "trials", "busy s", "busy",
             "queue-wait", "idle"],
            rows,
        ))
    if util["stragglers"]:
        worst = util["stragglers"][0]
        parts.append(
            f"<p class='meta'>{len(util['stragglers'])} straggler "
            f"chunk(s) exceeded {STRAGGLER_K:g}× the "
            f"{util['chunk_median_s']:.3f}s median — worst: "
            f"{_esc(worst['name'])} on pid {worst['pid']} at "
            f"{worst['ratio']:.1f}×.</p>"
        )
    else:
        parts.append(
            "<p class='meta'>No straggler chunks (none exceeded "
            f"{STRAGGLER_K:g}× the median). Export this timeline with "
            "<code>obs-timeline TRACE --chrome out.json</code>.</p>"
        )
    return "\n".join(parts)


def _phase_section(events: list[Event]) -> str:
    totals: dict[str, list[float]] = {}
    for e in events:
        if isinstance(e, SpanEnd):
            agg = totals.setdefault(e.path, [0, 0.0])
            agg[0] += 1
            agg[1] += e.duration_s
    if not totals:
        return "<p class='meta'>(no timing spans in trace)</p>"
    rows = []
    for path in sorted(totals):
        count, total = totals[path]
        count = int(count)
        mean_ms = 1000.0 * total / count if count else 0.0
        rows.append((path, count, f"{total:.3f}", f"{mean_ms:.3f}"))
    return _html_table(["phase", "count", "total s", "mean ms"], rows)


# ----------------------------------------------------------------------
def render_dashboard_html(
    events: list[Event],
    records: list[FaultProvenance],
    title: str = "Campaign dashboard",
    source_note: str = "",
    refresh_s: float | None = None,
    extra_sections: Iterable[tuple[str, str]] = (),
) -> str:
    """The dashboard page for an in-memory event stream.

    The shared core behind the file-based :func:`render_dashboard` and
    the live telemetry server's ``/`` endpoint (:mod:`repro.obs.live`),
    which rebuilds the page on demand from its ring buffer.
    ``refresh_s`` adds a ``<meta http-equiv="refresh">`` tag so a
    browser watching a running campaign updates itself;
    ``extra_sections`` prepends ``(heading, html)`` pairs (the live
    server's status block).  Still zero JavaScript either way.
    """
    sections = list(extra_sections) + [
        ("Campaigns", _campaign_section(events)),
        ("Outcome rates", _outcome_section(events)),
        ("Fault sites", _bit_heatmap_section(records)),
        ("Contamination spread", _spread_section(records)),
        ("Phase timing", _phase_section(events)),
    ]
    for heading, builder in (
        ("Hot-path profile", _profile_section),
        ("Worker timeline", _timeline_section),
        ("Checkpoint / resume", _checkpoint_section),
        ("Adaptive convergence", _convergence_section),
    ):
        content = builder(events)
        if content is not None:
            sections.append((heading, content))
    body = "\n".join(
        f"<section><h2>{_esc(heading)}</h2>\n{content}</section>"
        for heading, content in sections
    )
    refresh = (
        f"<meta http-equiv=\"refresh\" content=\"{refresh_s:g}\">\n"
        if refresh_s else ""
    )
    note = f"<p class='meta'>{source_note}</p>\n" if source_note else ""
    return (
        "<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n"
        "<meta charset=\"utf-8\">\n"
        f"{refresh}"
        f"<title>{_esc(title)}</title>\n"
        f"<style>{_STYLE}</style>\n</head>\n<body>\n"
        f"<h1>{_esc(title)}</h1>\n"
        f"{note}"
        f"{body}\n</body>\n</html>\n"
    )


def render_dashboard(
    trace_path: str | Path,
    provenance: str | Path | None = None,
    on_skip: Callable[[str], None] | None = None,
) -> str:
    """Render the dashboard HTML for one trace (+ optional provenance).

    ``provenance`` defaults to the trace's sibling
    ``*.provenance.jsonl`` when that file exists.  Raises
    ``FileNotFoundError`` for a missing trace and ``ValueError`` for a
    trace with no decodable events — callers (the CLI) turn both into
    one-line errors.
    """
    trace_path = Path(trace_path)
    events = load_trace(trace_path, on_skip=on_skip)
    if not events:
        raise ValueError(f"trace {trace_path} contains no decodable events")
    sidecar = timeline_path(trace_path)
    if sidecar.exists():
        events = events + load_trace(sidecar, on_skip=on_skip)
    if provenance is None:
        candidate = provenance_path(trace_path)
        provenance = candidate if candidate.exists() else None
    records: list[FaultProvenance] = []
    if provenance is not None:
        records = load_provenance(provenance, on_skip=on_skip)
    prov_note = (
        f"provenance: <code>{_esc(provenance)}</code>" if provenance else
        "no provenance file found"
    )
    return render_dashboard_html(
        events, records,
        title="Campaign dashboard",
        source_note=f"trace: <code>{_esc(trace_path)}</code> · {prov_note}",
    )


def write_dashboard(
    trace_path: str | Path,
    out_path: str | Path | None = None,
    provenance: str | Path | None = None,
    on_skip: Callable[[str], None] | None = None,
) -> Path:
    """Render and write the dashboard; returns the output path."""
    out = Path(out_path) if out_path is not None else dashboard_path(trace_path)
    text = render_dashboard(trace_path, provenance=provenance, on_skip=on_skip)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(text)
    return out
