"""Render a JSONL trace (or a live recorder) into summary tables.

Backs the ``python -m repro.experiments obs-report PATH`` subcommand and
the ``--metrics-summary`` CLI flag.  The phase table aggregates
:class:`~repro.obs.events.SpanEnd` events per slash-joined path:
count, total seconds, mean, and throughput (closes per second of total
span time); the outcome table tallies
:class:`~repro.obs.events.TrialFinished` events.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Sequence

from repro.obs.confidence import wilson_interval
from repro.obs.events import (
    CampaignConverged,
    CampaignResumed,
    CheckpointWritten,
    ChunkRequeued,
    Event,
    SpanEnd,
    TrialFinished,
    WorkerJoined,
    WorkerLost,
)
from repro.obs.recorder import Recorder
from repro.obs.sinks import load_trace
from repro.utils.tables import format_table

__all__ = [
    "phase_table",
    "outcome_counts",
    "checkpoint_summary",
    "convergence_summary",
    "trial_latency_table",
    "failure_mode_summary",
    "worker_summary",
    "render_trace_report",
    "render_metrics_summary",
]


def _percentile(ordered: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of an already-sorted sample."""
    if not ordered:
        return 0.0
    rank = max(int(-(-q * len(ordered) // 100)), 1)  # ceil(q/100 * n)
    return ordered[rank - 1]


def _aggregate_spans(events: Iterable[Event]) -> dict[str, list[float]]:
    totals: dict[str, list[float]] = {}
    for event in events:
        if isinstance(event, SpanEnd):
            agg = totals.setdefault(event.path, [0, 0.0])
            agg[0] += 1
            agg[1] += event.duration_s
    return totals


def phase_table(span_totals: dict[str, Sequence[float]], title: str) -> str:
    """Per-phase time/throughput table from ``path -> (count, seconds)``."""
    rows = []
    for path in sorted(span_totals):
        count, total = span_totals[path]
        count = int(count)
        mean_ms = 1000.0 * total / count if count else 0.0
        throughput = count / total if total > 0 else float("nan")
        rows.append((path, count, round(total, 3), round(mean_ms, 3), round(throughput, 1)))
    return format_table(
        ["phase", "count", "total s", "mean ms", "per s"], rows, title=title
    )


def outcome_counts(events: Iterable[Event]) -> dict[str, int]:
    """Per-outcome trial tallies from the trace's TrialFinished events."""
    out: dict[str, int] = {}
    for event in events:
        if isinstance(event, TrialFinished):
            out[event.outcome] = out.get(event.outcome, 0) + 1
    return out


def checkpoint_summary(events: Iterable[Event]) -> str | None:
    """Checkpoint/resume table, or None when the trace has neither."""
    writes = [e for e in events if isinstance(e, CheckpointWritten)]
    resumes = [e for e in events if isinstance(e, CampaignResumed)]
    if not writes and not resumes:
        return None
    rows: list[tuple] = [
        ("chunks checkpointed", len(writes)),
        ("bytes written", sum(e.size_bytes for e in writes)),
    ]
    if writes:
        rows.append(("trials made durable", max(e.trials_done for e in writes)))
    for e in resumes:
        rows.append((
            f"resumed {e.app}",
            f"{e.trials_done}/{e.trials_total} trials recovered "
            f"({e.chunks_done}/{e.chunks_total} chunks)",
        ))
    return format_table(["checkpointing", "value"], rows, title="Checkpointing")


def convergence_summary(events: Iterable[Event]) -> str | None:
    """Adaptive-campaign convergence table, or None for fixed-N traces.

    One row per :class:`~repro.obs.events.CampaignConverged` event:
    trials spent against the cap, waves, the worst outcome's achieved
    half-width against the target, and whether the deployment converged
    before the cap ran out.
    """
    converged = [e for e in events if isinstance(e, CampaignConverged)]
    if not converged:
        return None
    rows = []
    for e in converged:
        label = f"{e.app} p={e.nprocs}"
        if e.n_errors != 1:
            label += f" x={e.n_errors}"
        worst = max(e.halfwidths.values()) if e.halfwidths else float("nan")
        rows.append((
            label,
            f"{e.trials_used}/{e.trials_cap}",
            e.waves,
            round(e.target, 4),
            round(worst, 4),
            "yes" if e.converged else "CAP HIT",
        ))
    return format_table(
        ["deployment", "trials", "waves", "target ±", "achieved ±", "converged"],
        rows, title="Convergence",
    )


def trial_latency_table(events: Iterable[Event]) -> str | None:
    """Per-trial wall-time percentiles, or None when no trials finished.

    Nearest-rank p50/p95/p99 over :class:`TrialFinished.duration_s` —
    the tail percentiles are what stragglers and injection-path
    slowdowns show up in, long before the mean moves.
    """
    durations = sorted(
        e.duration_s for e in events if isinstance(e, TrialFinished)
    )
    if not durations:
        return None
    n = len(durations)
    row = (
        n,
        round(1000.0 * sum(durations) / n, 3),
        round(1000.0 * _percentile(durations, 50), 3),
        round(1000.0 * _percentile(durations, 95), 3),
        round(1000.0 * _percentile(durations, 99), 3),
        round(1000.0 * durations[-1], 3),
    )
    return format_table(
        ["trials", "mean ms", "p50 ms", "p95 ms", "p99 ms", "max ms"],
        [row], title="Trial wall time",
    )


def failure_mode_summary(path: str | Path) -> str | None:
    """Failure-mode table from the trace's provenance sidecar, or None.

    Tallies the machine-readable prefix of each failed trial's
    ``detail`` — ``crash`` / ``hang`` (bit flips, message corruption),
    ``abort`` / ``deadlock`` / ``lost`` (rank fail-stop) — so scenario
    campaigns report *how* the application died, not just that it did.
    Returns None when the sidecar is missing or records no failures.
    """
    from repro.obs.provenance import load_provenance, provenance_path

    sidecar = provenance_path(path)
    if not sidecar.exists():
        return None
    modes: dict[str, int] = {}
    for record in load_provenance(sidecar):
        if record.outcome != "failure":
            continue
        mode = record.detail.split(":", 1)[0] if record.detail else "(unspecified)"
        modes[mode] = modes.get(mode, 0) + 1
    if not modes:
        return None
    total = sum(modes.values())
    rows = [
        (mode, count, round(count / total, 3))
        for mode, count in sorted(modes.items(), key=lambda kv: (-kv[1], kv[0]))
    ]
    return format_table(
        ["failure mode", "trials", "share"], rows,
        title=f"Failure modes ({total} failed trials)",
    )


def worker_summary(events: Iterable[Event]) -> str | None:
    """Distributed-worker lifecycle table, or None for local traces.

    One row per worker the controller ever admitted
    (:class:`~repro.obs.events.WorkerJoined`): pid, whether its
    initialization was a warm-pool hit, chunks completed, chunks
    requeued after losing it, and how it left — ``released`` for a
    graceful end-of-campaign goodbye, or the loss reason
    (``disconnect`` / ``timeout`` / ``protocol``) in upper case.
    """
    joined = [e for e in events if isinstance(e, WorkerJoined)]
    if not joined:
        return None
    lost = {e.worker: e for e in events if isinstance(e, WorkerLost)}
    requeues: dict[int, int] = {}
    for e in events:
        if isinstance(e, ChunkRequeued):
            requeues[e.worker] = requeues.get(e.worker, 0) + 1
    rows = []
    for e in joined:
        exit_event = lost.get(e.worker)
        if exit_event is None:
            status = "active"
        elif exit_event.reason == "released":
            status = "released"
        else:
            status = exit_event.reason.upper()
        rows.append((
            e.worker,
            e.pid,
            "warm" if e.warm else f"cold ({1000.0 * e.init_s:.0f} ms)",
            exit_event.chunks_done if exit_event is not None else "",
            requeues.get(e.worker, 0),
            status,
        ))
    return format_table(
        ["worker", "pid", "init", "chunks", "requeued", "status"],
        rows, title=f"Workers ({len(joined)} joined)",
    )


def render_trace_report(path: str | Path, on_skip=None) -> str:
    """Full obs-report text for one JSONL trace file."""
    events = load_trace(path, on_skip=on_skip)
    sections = [
        phase_table(_aggregate_spans(events), title=f"Phases — {path}")
    ]
    outcomes = outcome_counts(events)
    if outcomes:
        n = sum(outcomes.values())
        rows = [
            (name, count, round(count / n, 3),
             wilson_interval(count, n).format(as_percent=True))
            for name, count in sorted(outcomes.items())
        ]
        sections.append(
            format_table(
                ["outcome", "trials", "rate", "95% CI"], rows,
                title=f"Trial outcomes ({n} trials)",
            )
        )
    failure_modes = failure_mode_summary(path)
    if failure_modes is not None:
        sections.append(failure_modes)
    latency = trial_latency_table(events)
    if latency is not None:
        sections.append(latency)
    workers = worker_summary(events)
    if workers is not None:
        sections.append(workers)
    checkpoints = checkpoint_summary(events)
    if checkpoints is not None:
        sections.append(checkpoints)
    convergence = convergence_summary(events)
    if convergence is not None:
        sections.append(convergence)
    if not events:
        sections.append(f"(trace {path} contains no known events)")
    return "\n\n".join(sections)


def render_metrics_summary(recorder: Recorder) -> str:
    """Counters + histogram stats + span totals of a live recorder."""
    sections = []
    if recorder.counters:
        rows = [(k, recorder.counters[k]) for k in sorted(recorder.counters)]
        sections.append(format_table(["counter", "value"], rows, title="Counters"))
    if recorder.gauges:
        rows = [(k, recorder.gauges[k]) for k in sorted(recorder.gauges)]
        sections.append(format_table(["gauge", "value"], rows, title="Gauges"))
    if recorder.histograms:
        rows = []
        for name in sorted(recorder.histograms):
            values = recorder.histograms[name]
            rows.append(
                (name, len(values), round(min(values), 3),
                 round(sum(values) / len(values), 3), round(max(values), 3))
            )
        sections.append(
            format_table(["histogram", "n", "min", "mean", "max"], rows,
                         title="Histograms")
        )
    if recorder.span_totals:
        sections.append(phase_table(recorder.span_totals, title="Spans"))
    if not sections:
        return "(no metrics recorded)"
    return "\n\n".join(sections)
