"""Fault provenance: which fault hit where, how it spread, what it did.

Aggregate campaign counters answer *how often* an injected flip causes
SDC; they cannot answer *which* instruction/bit/rank a flip hit or how
contamination spread before the outcome materialized — the per-fault
feature data that makes injection experiments interpretable (cf. PARIS,
Guo et al., and the Cielo field study, Formicola et al.).  This module
turns the enriched signals collected by :class:`repro.fi.tracer.Tracer`
into one :class:`FaultProvenance` record per trial:

* the **planned** fault sites sampled by :mod:`repro.fi.plan`;
* the **fired** flips, each with the dynamic op kind and the operand
  value immediately before and after corruption (reported by
  :mod:`repro.taint.ops` through :meth:`TraceSink.record_flip`);
* the **contamination timeline** — the scheduler step at which each
  rank first diverged from the fault-free shadow, in spread order;
* the trial's final outcome.

Records travel as :class:`~repro.obs.events.TrialProvenance` events, so
they survive worker aggregation (:mod:`repro.engine` re-emits them
in trial order) and land in a ``*.provenance.jsonl`` file next to the
``--trace-out`` trace.  Every field is a deterministic function of
``(deployment, trial)`` — no timestamps, no durations — so provenance
files are **bit-identical** for any ``jobs`` count.

System-level scenario families (:mod:`repro.fi.scenarios`) reuse the
same event with scenario payloads — dicts carrying a ``"scenario"``
key — in ``planned``/``fired``; loaders wrap those as
:class:`ScenarioObservation` instead of :class:`FlipObservation`.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any, Callable

from repro.obs.events import TrialProvenance

if TYPE_CHECKING:  # avoid a runtime obs -> fi import cycle
    from repro.fi.outcomes import TrialRecord
    from repro.fi.plan import InjectionPlan
    from repro.fi.tracer import Tracer

__all__ = [
    "FlipObservation",
    "ScenarioObservation",
    "FaultProvenance",
    "build_trial_provenance",
    "provenance_path",
    "load_provenance",
]


@dataclass(frozen=True)
class FlipObservation:
    """One applied fault: a (dynamic instruction, operand) corruption.

    A multi-bit fault pattern targeting one operand of one dynamic
    instruction is a single observation with several ``bits``.  ``pre``
    is the value the corrupted instruction would have read, ``post`` the
    value it actually read (may be ``nan``/``inf`` — that is the point).
    """

    rank: int
    region: str          # Region.value
    op: str              # OpKind.value ("add" | "mul")
    index: int           # global candidate-stream index in (rank, region)
    operand: str         # Operand.name ("A" | "B" | "OUT")
    bits: tuple[int, ...]
    pre: float
    post: float

    def to_payload(self) -> dict[str, Any]:
        return {
            "rank": self.rank, "region": self.region, "op": self.op,
            "index": self.index, "operand": self.operand,
            "bits": list(self.bits), "pre": self.pre, "post": self.post,
        }

    @classmethod
    def from_payload(cls, blob: dict[str, Any]) -> "FlipObservation":
        return cls(
            rank=blob["rank"], region=blob["region"], op=blob["op"],
            index=blob["index"], operand=blob["operand"],
            bits=tuple(blob["bits"]), pre=blob["pre"], post=blob["post"],
        )


@dataclass(frozen=True)
class ScenarioObservation:
    """One fired system-level fault (rank kill, message corruption, ...).

    Scenario payloads are open dictionaries — each family records its
    own fields (see :mod:`repro.fi.scenarios`) — distinguished from
    bit-flip observations by their ``"scenario"`` key.  ``bits`` is
    empty so bit-position analyses (dashboard heatmaps) skip these
    records transparently.
    """

    payload: dict[str, Any]

    @property
    def scenario(self) -> str:
        """The family that produced this observation."""
        return str(self.payload.get("scenario", ""))

    @property
    def bits(self) -> tuple[int, ...]:
        return ()

    def to_payload(self) -> dict[str, Any]:
        return dict(self.payload)


@dataclass(frozen=True)
class FaultProvenance:
    """Everything known about one fault-injection trial, linked end to end."""

    trial: int
    outcome: str
    n_contaminated: int
    activated: bool
    detail: str
    planned: tuple[dict, ...]            # sampled sites (plan payload)
    #: applied corruptions — FlipObservation for bit flips,
    #: ScenarioObservation for system-level scenario faults
    fired: tuple[FlipObservation | ScenarioObservation, ...]
    timeline: tuple[tuple[int, int], ...]  # (scheduler step, rank)

    # ------------------------------------------------------------------
    @property
    def bits(self) -> tuple[int, ...]:
        """All corrupted bit positions of this trial, in plan order."""
        return tuple(b for obs in self.fired for b in obs.bits)

    @property
    def spread_ranks(self) -> tuple[int, ...]:
        """Ranks in contamination order (injected rank first)."""
        return tuple(rank for _, rank in self.timeline)

    def to_event(self) -> TrialProvenance:
        return TrialProvenance(
            trial=self.trial,
            outcome=self.outcome,
            n_contaminated=self.n_contaminated,
            activated=self.activated,
            detail=self.detail,
            planned=[dict(p) for p in self.planned],
            fired=[obs.to_payload() for obs in self.fired],
            timeline=[[step, rank] for step, rank in self.timeline],
        )

    @classmethod
    def from_event(cls, event: TrialProvenance) -> "FaultProvenance":
        return cls(
            trial=event.trial,
            outcome=event.outcome,
            n_contaminated=event.n_contaminated,
            activated=event.activated,
            detail=event.detail,
            planned=tuple(event.planned),
            fired=tuple(
                ScenarioObservation(dict(b)) if "scenario" in b
                else FlipObservation.from_payload(b)
                for b in event.fired
            ),
            timeline=tuple((step, rank) for step, rank in event.timeline),
        )


def build_trial_provenance(
    trial: int,
    plan: "InjectionPlan",
    tracer: "Tracer",
    record: "TrialRecord",
) -> TrialProvenance:
    """Assemble the provenance event for one finished trial.

    Called by :func:`repro.fi.campaign.run_one_trial` after outcome
    classification, while the trial's tracer still holds the flip
    observations and contamination timeline.
    """
    return FaultProvenance(
        trial=trial,
        outcome=record.outcome.value,
        n_contaminated=record.n_contaminated,
        activated=record.activated,
        detail=record.detail,
        planned=tuple(plan.to_payload()),
        fired=tuple(tracer.flip_observations),
        timeline=tuple(tracer.contamination_timeline),
    ).to_event()


# ----------------------------------------------------------------------
# persistence
# ----------------------------------------------------------------------
def provenance_path(trace_path: str | Path) -> Path:
    """The provenance file written alongside a ``--trace-out`` trace.

    ``run.jsonl`` → ``run.provenance.jsonl`` (any other extension is
    replaced the same way; an extensionless path gains the suffix).
    """
    path = Path(trace_path)
    return path.with_name(path.stem + ".provenance.jsonl")


def load_provenance(
    path: str | Path, on_skip: Callable[[str], None] | None = None
) -> list[FaultProvenance]:
    """Replay a ``provenance.jsonl`` file into typed records.

    Partial trailing lines are skipped (reported through ``on_skip``,
    like :func:`repro.obs.sinks.load_trace`); unknown event types are
    ignored for forward compatibility.
    """
    from repro.obs.sinks import load_trace  # deferred: sinks import events only

    return [
        FaultProvenance.from_event(event)
        for event in load_trace(path, on_skip=on_skip)
        if isinstance(event, TrialProvenance)
    ]
