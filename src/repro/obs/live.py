"""Live campaign telemetry over a zero-dependency stdlib HTTP server.

FINJ (Netti et al. 2018) treats live workload monitoring as part of the
fault-injection framework itself; this module closes that gap for the
reproduction without adding a dependency.  A campaign started with
``--serve-obs PORT`` (or ``$REPRO_OBS_PORT``) gets a daemon-thread
:class:`~http.server.ThreadingHTTPServer` bound to localhost that
exposes the process-wide :class:`~repro.obs.recorder.Recorder` while
trials execute — serial, process-pool, checkpointed and adaptive runs
alike, since workers fold into the parent recorder through the existing
ObsSnapshot/absorb path:

* ``GET /metrics`` — counters, gauges, histogram stats, span totals and
  profile rows in Prometheus text exposition format, or as one JSON
  object with ``?format=json``.  Includes ``repro_campaign_eta_seconds``
  derived from successive scrapes of the progress gauges.
* ``GET /events`` — JSON tail of the bounded
  :class:`~repro.obs.sinks.RingBufferSink` (``?n=`` limits the count).
* ``GET /`` — the campaign dashboard rebuilt on demand from the ring
  buffer, auto-refreshing via a ``<meta>`` tag (still no JavaScript).
* ``GET /healthz`` — liveness probe.

Reads are lock-free snapshots (see *Thread safety* in
:mod:`repro.obs.recorder`); the campaign thread never blocks on a
scrape, and the server never writes to recorder state, so campaign
outputs are byte-identical with the server on or off.  The endpoint
shape is deliberately small and stable — the seed of the future
``repro.serve`` campaign-as-a-service API.
"""

from __future__ import annotations

import json
import os
import re
import threading
import time
from collections import deque
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable
from urllib.parse import parse_qs, urlsplit

from repro.obs.dashboard import render_dashboard_html
from repro.obs.events import TrialProvenance
from repro.obs.profiler import live_profile_event, profile_rows
from repro.obs.provenance import FaultProvenance
from repro.obs.recorder import Recorder, _copy_racing
from repro.obs.sinks import RingBufferSink
from repro.obs.trace import live_trace_event

__all__ = [
    "OBS_PORT_ENV",
    "OBS_URL_FILE_ENV",
    "LiveObsServer",
    "render_metrics_json",
    "render_prometheus",
    "start_live_server",
]

#: Environment fallback for ``--serve-obs`` (same semantics: 0 = ephemeral).
OBS_PORT_ENV = "REPRO_OBS_PORT"
#: When set, the server writes its base URL to this file on start — how
#: scripts (the CI smoke job) discover an ephemeral port.
OBS_URL_FILE_ENV = "REPRO_OBS_URL_FILE"


def _metric_name(name: str) -> str:
    """``campaign.trials_done`` → ``repro_campaign_trials_done``."""
    return "repro_" + re.sub(r"[^a-zA-Z0-9_]", "_", name)


def _label(value: str) -> str:
    escaped = value.replace("\\", "\\\\").replace('"', '\\"')
    return f'"{escaped}"'


def render_prometheus(
    recorder: Recorder, eta_s: float | None = None
) -> str:
    """One Prometheus text-exposition page for a recorder's live state."""
    snap = recorder.snapshot()
    gauges = _copy_racing(recorder.gauges)
    lines: list[str] = []
    for name in sorted(snap.counters):
        metric = _metric_name(name) + "_total"
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {snap.counters[name]:g}")
    for name in sorted(gauges):
        metric = _metric_name(name)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {gauges[name]:g}")
    if eta_s is not None:
        lines.append("# TYPE repro_campaign_eta_seconds gauge")
        lines.append(f"repro_campaign_eta_seconds {eta_s:g}")
    for name in sorted(snap.histograms):
        metric = _metric_name(name)
        values = snap.histograms[name]
        lines.append(f"# TYPE {metric} summary")
        lines.append(f"{metric}_count {len(values)}")
        lines.append(f"{metric}_sum {sum(values):g}")
        if values:
            lines.append(f"{metric}_min {min(values):g}")
            lines.append(f"{metric}_max {max(values):g}")
    if snap.span_totals:
        lines.append("# TYPE repro_span_seconds_total counter")
        lines.append("# TYPE repro_span_count_total counter")
        for path in sorted(snap.span_totals):
            count, seconds = snap.span_totals[path]
            label = f"{{path={_label(path)}}}"
            lines.append(f"repro_span_seconds_total{label} {seconds:g}")
            lines.append(f"repro_span_count_total{label} {int(count)}")
    if snap.profile:
        lines.append("# TYPE repro_profile_ops_total counter")
        lines.append("# TYPE repro_profile_seconds_total counter")
        for row in profile_rows(snap.profile):
            label = (
                f"{{phase={_label(row['phase'])},op={_label(row['kind'])},"
                f"rank=\"{row['rank']}\"}}"
            )
            lines.append(f"repro_profile_ops_total{label} {row['ops']:g}")
            lines.append(
                f"repro_profile_seconds_total{label} {row['seconds']:g}"
            )
    return "\n".join(lines) + "\n"


def render_metrics_json(
    recorder: Recorder, eta_s: float | None = None
) -> str:
    """The same live state as one JSON object (``/metrics?format=json``)."""
    snap = recorder.snapshot()
    blob = {
        "counters": dict(snap.counters),
        "gauges": _copy_racing(recorder.gauges),
        "histograms": {
            name: {
                "count": len(values),
                "sum": sum(values),
                "min": min(values) if values else None,
                "max": max(values) if values else None,
            }
            for name, values in snap.histograms.items()
        },
        "spans": {
            path: {"count": int(count), "seconds": seconds}
            for path, (count, seconds) in snap.span_totals.items()
        },
        "profile": profile_rows(snap.profile),
        "eta_seconds": eta_s,
    }
    return json.dumps(blob, sort_keys=True) + "\n"


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-obs"

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        return None  # scrapes must not pollute the campaign's stderr

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        try:
            status, ctype, body = self.server.live.handle(self.path)
        except Exception as exc:  # a broken page must not kill the server
            status = 500
            ctype = "text/plain; charset=utf-8"
            body = f"internal error: {exc}\n"
        payload = body.encode("utf-8")
        try:
            self.send_response(status)
            self.send_header("Content-Type", ctype)
            self.send_header("Content-Length", str(len(payload)))
            self.end_headers()
            self.wfile.write(payload)
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away mid-response


class _Server(ThreadingHTTPServer):
    daemon_threads = True       # scrape threads never outlive the process
    allow_reuse_address = True
    live: "LiveObsServer"


class LiveObsServer:
    """Serves a recorder's live state on localhost from a daemon thread."""

    def __init__(
        self,
        recorder: Recorder,
        ring: RingBufferSink,
        host: str = "127.0.0.1",
        port: int = 0,
        refresh_s: float = 2.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.recorder = recorder
        self.ring = ring
        self.refresh_s = refresh_s
        self._clock = clock
        #: (monotonic t, trials done) scrape observations for the ETA.
        self._eta_obs: deque[tuple[float, float]] = deque(maxlen=64)
        self._httpd = _Server((host, port), _Handler)
        self._httpd.live = self
        self._thread: threading.Thread | None = None

    # ------------------------------------------------------------------
    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        host = self._httpd.server_address[0]
        return f"http://{host}:{self.port}"

    def start(self) -> "LiveObsServer":
        """Bind was done in ``__init__``; this starts the serving thread.

        If :data:`OBS_URL_FILE_ENV` is set, the resolved base URL is
        written there so scripts can find an ephemeral port.
        """
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-obs-live",
            daemon=True,
        )
        self._thread.start()
        url_file = os.environ.get(OBS_URL_FILE_ENV)
        if url_file:
            with open(url_file, "w") as fh:
                fh.write(self.url + "\n")
        return self

    def close(self) -> None:
        if self._thread is not None:
            self._httpd.shutdown()
            self._thread.join(timeout=5)
            self._thread = None
        self._httpd.server_close()

    # ------------------------------------------------------------------
    def _eta_seconds(self) -> float | None:
        """Wall-clock remaining, from successive progress-gauge scrapes.

        The campaign drivers maintain ``campaign.trials_planned`` /
        ``campaign.trials_done`` gauges (adaptive runs re-pin *planned*
        each wave); the server differentiates *done* across its own
        scrape history, so the rate reflects actual recent throughput.
        """
        gauges = _copy_racing(self.recorder.gauges)
        planned = gauges.get("campaign.trials_planned")
        done = gauges.get("campaign.trials_done")
        if not planned or done is None:
            return None
        if not self._eta_obs or self._eta_obs[-1][1] != done:
            self._eta_obs.append((self._clock(), done))
        if done >= planned:
            return 0.0
        if len(self._eta_obs) < 2:
            return None
        t0, d0 = self._eta_obs[0]
        t1, d1 = self._eta_obs[-1]
        if d1 <= d0 or t1 <= t0:
            return None
        rate = (d1 - d0) / (t1 - t0)
        return (planned - done) / rate

    def _status_section(self) -> tuple[str, str]:
        gauges = _copy_racing(self.recorder.gauges)
        eta = self._eta_seconds()
        rows = [
            f"<tr><td>{k}</td><td>{v:g}</td></tr>"
            for k, v in sorted(gauges.items())
        ]
        rows.append(
            f"<tr><td>events buffered</td><td>{len(self.ring.tail())} "
            f"(of {self.ring.written} written, {self.ring.dropped} "
            f"dropped)</td></tr>"
        )
        if eta is not None:
            rows.append(f"<tr><td>eta</td><td>{eta:.0f} s</td></tr>")
        table = "<table><tr><th>live</th><th>value</th></tr>" + "".join(rows) + "</table>"
        return ("Live status", table)

    def handle(self, path: str) -> tuple[int, str, str]:
        """Route one GET; returns ``(status, content type, body)``."""
        split = urlsplit(path)
        query = parse_qs(split.query)
        route = split.path.rstrip("/") or "/"
        if route == "/metrics":
            eta = self._eta_seconds()
            if query.get("format", [""])[0] == "json":
                return (200, "application/json", render_metrics_json(self.recorder, eta))
            return (
                200,
                "text/plain; version=0.0.4; charset=utf-8",
                render_prometheus(self.recorder, eta),
            )
        if route == "/events":
            try:
                n = int(query["n"][0]) if "n" in query else None
            except ValueError:
                return (400, "text/plain; charset=utf-8", "bad ?n= value\n")
            events = self.ring.tail(n)
            body = json.dumps([e.to_dict() for e in events]) + "\n"
            return (200, "application/json", body)
        if route == "/healthz":
            return (200, "text/plain; charset=utf-8", "ok\n")
        if route == "/":
            return (200, "text/html; charset=utf-8", self._dashboard())
        return (404, "text/plain; charset=utf-8", f"no route {route}\n")

    def _dashboard(self) -> str:
        """The dashboard page, rebuilt from in-memory state on demand."""
        events = self.ring.tail()
        records = [
            FaultProvenance.from_event(e)
            for e in events
            if isinstance(e, TrialProvenance)
        ]
        if self.recorder.profiling:
            # synthesize a profile event from the recorder's live tables
            # so the flamegraph renders mid-campaign
            events = events + [live_profile_event(self.recorder)]
        if self.recorder.tracing and self.recorder.trace_spans:
            # likewise for the worker-timeline swimlane
            events = events + [live_trace_event(self.recorder)]
        return render_dashboard_html(
            events,
            records,
            title="Live campaign telemetry",
            source_note=(
                f"live from pid {os.getpid()} · {self.url} · ring holds the "
                f"most recent {self.ring.capacity} events"
            ),
            refresh_s=self.refresh_s,
            extra_sections=[self._status_section()],
        )


def start_live_server(
    recorder: Recorder,
    port: int = 0,
    host: str = "127.0.0.1",
    capacity: int = 2048,
    refresh_s: float = 2.0,
) -> LiveObsServer:
    """Attach a ring buffer to ``recorder`` and serve it; returns the server.

    ``port=0`` binds an ephemeral port (read it back from ``.port`` /
    ``.url``).  The recorder is force-enabled — a telemetry server over
    a disabled recorder would serve permanently empty pages — but
    *profiling* stays as configured, and nothing here mutates campaign
    state, so outputs remain byte-identical with the server on or off.
    Events falling off the ring's head increment the recorder's
    ``events.dropped`` counter, exported as ``repro_events_dropped_total``
    on ``/metrics`` and listed by ``--metrics-summary``.
    """
    ring = RingBufferSink(
        capacity, on_drop=lambda: recorder.counter("events.dropped")
    )
    recorder.sinks.append(ring)
    recorder.enabled = True
    recorder.counter("events.dropped", 0)  # visible on /metrics from scrape 1
    server = LiveObsServer(
        recorder, ring, host=host, port=port, refresh_s=refresh_s
    )
    return server.start()
