"""Deterministic hot-path profiler: where does campaign time actually go?

The ROADMAP's lane-vectorization work needs a measured baseline — what
fraction of trial time is spent inside the traced binary operations of
:mod:`repro.taint.ops` versus scheduler bookkeeping and outcome
classification — and the existing span totals are too coarse to answer
that.  This module turns the :class:`~repro.obs.recorder.Recorder`'s
profile table (populated when ``Recorder.profiling`` is set) into:

* per-campaign **deltas** (:class:`ProfileScope` — recorder state is
  cumulative across the campaigns of one experiment run);
* a :class:`~repro.obs.events.CampaignProfile` event, so profiles land
  in the JSONL trace and survive worker aggregation like everything
  else;
* a **span tree** (:func:`build_tree`) feeding the flamegraph-style SVG
  in the dashboard (:func:`render_profile_svg`);
* the ``obs-profile PATH`` CLI report (:func:`render_profile_report`)
  with per-(phase, op kind, rank) attribution, wall-time coverage, and
  the headline traced-op share.

Attribution paths are span paths (``campaign/trial/inject``) optionally
extended by profiler *frames* — e.g. the scheduler pushes an ``advance``
frame so FP ops attribute to ``campaign/trial/inject/advance``.  The
scheduler's own advance totals are recorded under the reserved op kind
:data:`FRAME_TOTAL_KIND`; they represent a frame's *total* time (FP ops
included), so share computations must not add them to the per-kind rows.

Determinism: profiling never changes what is computed — it only reads
clocks and sizes — so campaign outputs, provenance bytes and checkpoint
files are byte-identical with profiling on or off.  The instruction
*counts* are fully deterministic; only the attributed wall seconds vary
run to run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.obs.events import CampaignProfile, Event
from repro.obs.recorder import Recorder
from repro.utils.tables import format_table
from repro.viz.svg import SvgCanvas, flamegraph

__all__ = [
    "FRAME_TOTAL_KIND",
    "OP_KINDS",
    "ProfileScope",
    "SpanNode",
    "build_tree",
    "coverage",
    "flamegraph_frames",
    "live_profile_event",
    "merge_profile_events",
    "profile_rows",
    "render_profile_report",
    "render_profile_svg",
    "traced_op_share",
]

#: Reserved op kind for a profiler frame's total wall time (e.g. the
#: scheduler's ``advance``).  A frame total *contains* the FP-op rows at
#: the same path, so it is displayed as the node's time, never summed
#: with the per-kind rows.
FRAME_TOTAL_KIND = "step"

#: The traced binary-op kinds of :class:`repro.taint.tracer_api.OpKind`.
OP_KINDS = ("add", "mul", "div", "other")


# ----------------------------------------------------------------------
# deltas: one campaign's slice of a cumulative recorder
# ----------------------------------------------------------------------
def _delta(current: dict, baseline: dict) -> dict:
    """Per-key element-wise difference of two ``key -> [numbers]`` maps."""
    out: dict = {}
    for key, values in current.items():
        base = baseline.get(key)
        if base is None:
            diff = list(values)
        else:
            diff = [v - b for v, b in zip(values, base)]
        if any(diff):
            out[key] = diff
    return out


def profile_rows(
    profile: dict[tuple[str, str, int], Sequence[float]],
) -> list[dict]:
    """Flatten a recorder profile table into sorted JSON-ready rows."""
    rows = []
    for (path, kind, rank), (ops, calls, seconds) in profile.items():
        rows.append({
            "phase": path, "kind": kind, "rank": rank,
            "ops": ops, "calls": int(calls), "seconds": seconds,
        })
    rows.sort(key=lambda r: (r["phase"], r["kind"], r["rank"]))
    return rows


class ProfileScope:
    """Span/profile deltas for one campaign.

    The recorder accumulates across every campaign of an experiment run,
    so :func:`repro.fi.campaign.run_campaign` opens a scope before its
    campaign span and converts the delta into a
    :class:`~repro.obs.events.CampaignProfile` event afterwards.
    """

    def __init__(self, recorder: Recorder):
        self._rec = recorder
        self._spans0 = {
            k: tuple(v) for k, v in recorder.span_totals.items()
        }
        self._profile0 = {k: tuple(v) for k, v in recorder.profile.items()}

    def finish(self) -> tuple[dict[str, list[float]], dict]:
        """``(span deltas, profile deltas)`` accumulated since creation."""
        spans = _delta(self._rec.span_totals, self._spans0)
        profile = _delta(self._rec.profile, self._profile0)
        return spans, profile

    def to_event(self, app: str) -> CampaignProfile:
        spans, profile = self.finish()
        wall = spans.get("campaign", [0, 0.0])[1]
        return CampaignProfile(
            app=app,
            wall_s=float(wall),
            spans={k: [int(c), float(s)] for k, (c, s) in spans.items()},
            ops=profile_rows(profile),
        )


def live_profile_event(recorder: Recorder, app: str = "live") -> CampaignProfile:
    """A profile event from a recorder's *absolute* state (live server)."""
    spans = {
        k: [int(c), float(s)]
        for k, (c, s) in recorder.snapshot().span_totals.items()
    }
    wall = spans.get("campaign", [0, 0.0])[1]
    return CampaignProfile(
        app=app, wall_s=float(wall), spans=spans,
        ops=profile_rows(recorder.snapshot().profile),
    )


def merge_profile_events(events: Iterable[CampaignProfile]) -> CampaignProfile:
    """Sum several campaigns' profiles into one (whole-run flamegraph)."""
    events = list(events)
    if not events:
        raise ValueError("no CampaignProfile events to merge")
    if len(events) == 1:
        return events[0]
    spans: dict[str, list[float]] = {}
    ops: dict[tuple[str, str, int], list[float]] = {}
    apps: list[str] = []
    for e in events:
        if e.app not in apps:
            apps.append(e.app)
        for path, (count, secs) in e.spans.items():
            agg = spans.setdefault(path, [0, 0.0])
            agg[0] += count
            agg[1] += secs
        for r in e.ops:
            agg = ops.setdefault((r["phase"], r["kind"], r["rank"]), [0.0, 0, 0.0])
            agg[0] += r["ops"]
            agg[1] += r["calls"]
            agg[2] += r["seconds"]
    return CampaignProfile(
        app=", ".join(apps),
        wall_s=sum(e.wall_s for e in events),
        spans=spans,
        ops=profile_rows(ops),
    )


# ----------------------------------------------------------------------
# span tree and flamegraph layout
# ----------------------------------------------------------------------
@dataclass
class SpanNode:
    """One node of the profile tree: a span path or profiler frame."""

    name: str
    path: str
    count: int = 0
    seconds: float = 0.0
    children: dict[str, "SpanNode"] = field(default_factory=dict)
    #: op kind -> [ops, calls, seconds], summed over ranks.
    ops: dict[str, list[float]] = field(default_factory=dict)

    @property
    def ops_seconds(self) -> float:
        """Attributed per-kind seconds (frame totals excluded)."""
        return sum(
            v[2] for k, v in self.ops.items() if k != FRAME_TOTAL_KIND
        )

    @property
    def total_seconds(self) -> float:
        """Best estimate of this node's wall time.

        A span node measured its own time; a frame node's total lives in
        its :data:`FRAME_TOTAL_KIND` row; a synthesized intermediate
        falls back to whatever its children attribute.
        """
        if self.seconds > 0:
            return self.seconds
        frame = self.ops.get(FRAME_TOTAL_KIND)
        if frame is not None:
            return frame[2]
        child = sum(c.total_seconds for c in self.children.values())
        return child + self.ops_seconds


def build_tree(event: CampaignProfile) -> SpanNode:
    """The span/frame tree of one profile event (virtual root node)."""
    root = SpanNode(name="", path="")

    def node_at(path: str) -> SpanNode:
        if not path:
            return root
        node = root
        for part in path.split("/"):
            child = node.children.get(part)
            if child is None:
                child_path = f"{node.path}/{part}" if node.path else part
                child = SpanNode(name=part, path=child_path)
                node.children[part] = child
            node = child
        return node

    for path, (count, seconds) in event.spans.items():
        node = node_at(path)
        node.count = int(count)
        node.seconds += float(seconds)
    for row in event.ops:
        node = node_at(row["phase"])
        agg = node.ops.setdefault(row["kind"], [0.0, 0, 0.0])
        agg[0] += row["ops"]
        agg[1] += row["calls"]
        agg[2] += row["seconds"]
    return root


def flamegraph_frames(
    root: SpanNode,
) -> list[tuple[int, float, float, str]]:
    """Flamegraph layout ``(depth, x0, width, label)`` with x in [0, 1].

    Children are scaled to fit inside their parent even when their
    summed time exceeds the parent's wall time (parallel workers report
    more trial-seconds than the campaign's wall clock).
    """
    frames: list[tuple[int, float, float, str]] = []

    def walk(node: SpanNode, depth: int, x0: float, width: float) -> None:
        if width <= 0:
            return
        frames.append((depth, x0, width, f"{node.name} {node.total_seconds:.2f}s"))
        parts: list[tuple[float, SpanNode | str]] = [
            (child.total_seconds, child) for child in node.children.values()
        ]
        parts.extend(
            (values[2], kind)
            for kind, values in sorted(node.ops.items())
            if kind != FRAME_TOTAL_KIND
        )
        total = sum(secs for secs, _ in parts)
        if total <= 0:
            return
        scale = width / max(node.total_seconds, total)
        x = x0
        for secs, part in parts:
            w = secs * scale
            if isinstance(part, SpanNode):
                walk(part, depth + 1, x, w)
            elif w > 0:
                frames.append((depth + 1, x, w, f"{part} {secs:.2f}s"))
            x += w

    top = list(root.children.values())
    top_total = sum(n.total_seconds for n in top)
    if top_total <= 0:
        return frames
    x = 0.0
    for node in top:
        w = node.total_seconds / top_total
        walk(node, 0, x, w)
        x += w
    return frames


def render_profile_svg(event: CampaignProfile, width: int = 920) -> SvgCanvas:
    """The flamegraph-style span-tree SVG for one profile event."""
    frames = flamegraph_frames(build_tree(event))
    return flamegraph(
        frames,
        title=f"Campaign span tree — {event.app} ({event.wall_s:.2f}s)",
        width=width,
    )


# ----------------------------------------------------------------------
# headline numbers
# ----------------------------------------------------------------------
def coverage(event: CampaignProfile) -> float:
    """Fraction of campaign wall time attributed to its direct phases.

    Sums the spans nested directly under ``campaign`` (``profile``,
    ``trial``, …) against the campaign span itself.  Can exceed 1.0 for
    parallel runs, where workers report more phase-seconds than wall
    time elapses in the parent.
    """
    campaign = event.spans.get("campaign")
    if not campaign or campaign[1] <= 0:
        return 0.0
    attributed = sum(
        seconds for path, (_, seconds) in event.spans.items()
        if path.startswith("campaign/") and "/" not in path[len("campaign/"):]
    )
    return attributed / campaign[1]


def traced_op_share(event: CampaignProfile) -> float:
    """Share of injection (trial-execution) time inside traced FP ops.

    *The* lane-vectorization baseline: how much of
    ``campaign/trial/inject`` is spent in the binary operations that a
    vectorized shadow executor would accelerate.
    """
    inject = event.spans.get("campaign/trial/inject")
    if not inject or inject[1] <= 0:
        return 0.0
    traced = sum(
        r["seconds"] for r in event.ops
        if r["phase"].startswith("campaign/trial/inject")
        and r["kind"] in OP_KINDS
    )
    return traced / inject[1]


# ----------------------------------------------------------------------
# CLI report
# ----------------------------------------------------------------------
def render_profile_report(event: CampaignProfile) -> str:
    """The ``obs-profile`` text report for one campaign's profile."""
    from repro.obs.report import phase_table  # report imports nothing of ours

    sections = [
        phase_table(
            event.spans,
            title=f"Phases — {event.app} ({event.wall_s:.2f}s campaign)",
        )
    ]
    if event.ops:
        rows = []
        for r in event.ops:
            mops = (
                r["ops"] / r["seconds"] / 1e6 if r["seconds"] > 0
                else float("nan")
            )
            rows.append((
                r["phase"], r["kind"], r["rank"], int(r["ops"]), r["calls"],
                round(r["seconds"], 3), round(mops, 2),
            ))
        sections.append(format_table(
            ["phase", "op", "rank", "ops", "calls", "seconds", "Mops/s"],
            rows, title="Hot-path attribution",
        ))
    cov = coverage(event)
    share = traced_op_share(event)
    sections.append(
        f"wall-time coverage: {100 * cov:.1f}% of the campaign span is "
        f"attributed to its phases\n"
        f"traced-op share:    {100 * share:.1f}% of injection time is in "
        f"traced binary ops (lane-vectorization ceiling)"
    )
    return "\n\n".join(sections)


def profiles_of(events: Iterable[Event]) -> list[CampaignProfile]:
    """The :class:`CampaignProfile` events of a replayed trace."""
    return [e for e in events if isinstance(e, CampaignProfile)]
