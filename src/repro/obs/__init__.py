"""``repro.obs`` — zero-dependency tracing, metrics and progress.

The observability layer that turns the fault injector into a research
instrument (cf. FINJ, Netti et al. 2018): a process-wide
:class:`Recorder` holds counters, histograms and nested timing spans,
and fans typed structured events out to pluggable sinks — a JSONL file
trace, an in-memory list for tests, and a throttled stderr progress
line.  Everything is a no-op by default so instrumented hot paths
(per-op accounting in :mod:`repro.taint.ops`, the scheduler loop) stay
fast; enabling costs one :func:`configure` call.

Typical use::

    from repro import obs

    recorder = obs.configure(trace_path="run.jsonl", progress=True)
    try:
        run_campaign(app, deployment)
    finally:
        recorder.close()

or, via the CLI: ``python -m repro.experiments table1 --trace-out
run.jsonl --progress`` then ``python -m repro.experiments obs-report
run.jsonl``.
"""

from __future__ import annotations

from pathlib import Path

from repro.obs.confidence import ConfidenceInterval, wilson_interval
from repro.obs.events import (
    CacheCorrupt,
    CacheHit,
    CacheMiss,
    CacheWrite,
    CampaignConverged,
    CampaignFinished,
    CampaignPlanRevised,
    CampaignProfile,
    CampaignResumed,
    CampaignTrace,
    CampaignStarted,
    CheckpointWritten,
    Event,
    FaultInjected,
    MessageCorrupted,
    RankKilled,
    SchedulerDeadlock,
    SpanEnd,
    TrialFinished,
    TrialProvenance,
    WorkerJoined,
    WorkerLost,
    ChunkRequeued,
    event_from_dict,
)
from repro.obs.live import (
    LiveObsServer,
    render_metrics_json,
    render_prometheus,
    start_live_server,
)
from repro.obs.profiler import (
    ProfileScope,
    live_profile_event,
    merge_profile_events,
    render_profile_report,
    render_profile_svg,
)
from repro.obs.provenance import (
    FaultProvenance,
    FlipObservation,
    load_provenance,
    provenance_path,
)
from repro.obs.recorder import (
    ObsSnapshot,
    Recorder,
    get_recorder,
    recording,
    reset,
    set_recorder,
)
from repro.obs.report import render_metrics_summary, render_trace_report
from repro.obs.sinks import (
    JsonlSink,
    MemorySink,
    ProgressSink,
    RingBufferSink,
    Sink,
    load_trace,
)
from repro.obs.timeline import (
    chrome_trace,
    otlp_trace,
    render_timeline_report,
    spans_of,
    timeline_path,
    timeline_swimlane_svg,
    validate_chrome_trace,
    worker_utilization,
)
from repro.obs.trace import (
    TraceContext,
    TraceScope,
    live_trace_event,
    make_span,
    span_id_from,
    trace_id_from,
)

__all__ = [
    # recorder
    "Recorder", "ObsSnapshot", "get_recorder", "set_recorder", "recording",
    "reset", "configure",
    # sinks
    "Sink", "JsonlSink", "MemorySink", "ProgressSink", "RingBufferSink",
    "load_trace",
    # events
    "Event", "CampaignStarted", "CampaignFinished", "CampaignResumed",
    "CampaignConverged", "CampaignPlanRevised", "CampaignProfile",
    "CampaignTrace", "CheckpointWritten", "TrialFinished",
    "FaultInjected", "RankKilled", "MessageCorrupted",
    "CacheHit", "CacheMiss", "CacheWrite", "CacheCorrupt",
    "SchedulerDeadlock", "SpanEnd", "TrialProvenance",
    "WorkerJoined", "WorkerLost", "ChunkRequeued", "event_from_dict",
    # provenance
    "FaultProvenance", "FlipObservation", "load_provenance", "provenance_path",
    # confidence
    "ConfidenceInterval", "wilson_interval",
    # reports
    "render_trace_report", "render_metrics_summary",
    # live telemetry
    "LiveObsServer", "start_live_server", "render_prometheus",
    "render_metrics_json",
    # profiler
    "ProfileScope", "live_profile_event", "merge_profile_events",
    "render_profile_report", "render_profile_svg",
    # causal tracing + timelines
    "TraceContext", "TraceScope", "live_trace_event", "make_span",
    "span_id_from", "trace_id_from",
    "chrome_trace", "otlp_trace", "render_timeline_report", "spans_of",
    "timeline_path", "timeline_swimlane_svg", "validate_chrome_trace",
    "worker_utilization",
]


def configure(
    trace_path: str | Path | None = None,
    progress: bool = False,
    metrics: bool = False,
    provenance: bool = True,
    profile: bool = False,
    timeline: bool = False,
) -> Recorder:
    """Build and globally install a recorder for this process.

    ``trace_path`` attaches a :class:`JsonlSink`, ``progress`` a stderr
    :class:`ProgressSink`; ``metrics`` enables counter/histogram/span
    collection even with no sink attached (for ``--metrics-summary``);
    ``profile`` additionally turns on the hot-path profiler
    (:mod:`repro.obs.profiler`), which implies collection; ``timeline``
    turns on causal tracing (:mod:`repro.obs.trace`) for the
    ``obs-timeline`` exporters.
    With ``trace_path`` set and ``provenance`` left on, bulky
    :class:`TrialProvenance` events are routed to a second, timestamp-free
    sink at :func:`provenance_path` instead of the main trace, keeping
    the provenance file bit-identical across worker counts.  Bulky
    :class:`CampaignTrace` events likewise go to a timestamp-free
    ``*.timeline.jsonl`` sidecar (:func:`timeline_path`) when
    ``timeline`` is set, and are excluded from the main trace either
    way, so the main trace's bytes do not depend on the tracing switch.
    Returns the installed recorder — call ``close()`` on it when done.
    """
    sinks: list[Sink] = []
    if trace_path is not None:
        sinks.append(JsonlSink(
            trace_path, exclude=(TrialProvenance, CampaignTrace),
        ))
        if provenance:
            sinks.append(JsonlSink(
                provenance_path(trace_path), only=(TrialProvenance,),
                stamp_ts=False,
            ))
        if timeline:
            sinks.append(JsonlSink(
                timeline_path(trace_path), only=(CampaignTrace,),
                stamp_ts=False,
            ))
    if progress:
        sinks.append(ProgressSink())
    recorder = Recorder(
        sinks,
        enabled=bool(sinks) or metrics or profile or timeline,
        profiling=profile,
        tracing=timeline,
    )
    set_recorder(recorder)
    return recorder
