"""Event sinks: where emitted observability events go.

Four implementations cover the paper-reproduction workflow:

* :class:`JsonlSink` — one JSON object per line, replayable with
  :func:`load_trace` and renderable with ``obs-report``;
* :class:`MemorySink` — in-process list, for tests and programmatic use;
* :class:`RingBufferSink` — bounded in-memory tail, backing the live
  telemetry server's ``/events`` endpoint and on-demand dashboard;
* :class:`ProgressSink` — throttled single-line stderr progress
  (``trial 512/2000 · sdc=3.1% · 41 trials/s · eta 0:12``).

A sink is anything with ``write(event)`` and ``close()``; the recorder
never interprets events itself.
"""

from __future__ import annotations

import json
import sys
import time
from collections import deque
from pathlib import Path
from typing import Callable, Protocol, TextIO

from repro.obs.events import (
    CampaignPlanRevised,
    CampaignStarted,
    Event,
    TrialFinished,
    event_from_dict,
)

__all__ = [
    "Sink", "JsonlSink", "MemorySink", "ProgressSink", "RingBufferSink",
    "load_trace",
]


class Sink(Protocol):
    """Consumer of emitted events."""

    def write(self, event: Event) -> None: ...

    def close(self) -> None: ...


class MemorySink:
    """Collects events in a list (test/programmatic sink)."""

    def __init__(self) -> None:
        self.events: list[Event] = []

    def write(self, event: Event) -> None:
        self.events.append(event)

    def close(self) -> None:
        return None

    def of(self, cls: type[Event]) -> list[Event]:
        """Events of one class, in emission order."""
        return [e for e in self.events if isinstance(e, cls)]


class RingBufferSink:
    """Keeps the last ``capacity`` events in memory (live-telemetry tail).

    The campaign thread appends lock-free — ``deque.append`` with a
    ``maxlen`` is atomic under CPython — while the telemetry server's
    handler threads read via :meth:`tail`, which retries the rare
    ``RuntimeError`` raised when an append lands mid-iteration.  Bounded
    by construction, so bulky event streams (per-trial provenance) can
    be buffered for a live dashboard without growing with campaign size.

    ``on_drop`` (if given) is called once per event that falls off the
    ring's head — the live server counts these as
    ``repro_events_dropped_total`` so silent tail loss is observable.
    """

    def __init__(
        self,
        capacity: int = 2048,
        on_drop: Callable[[], None] | None = None,
    ):
        if capacity < 1:
            raise ValueError(f"ring capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._buf: deque[Event] = deque(maxlen=capacity)
        self._written = 0
        self._on_drop = on_drop

    def write(self, event: Event) -> None:
        self._written += 1
        if self._on_drop is not None and len(self._buf) == self.capacity:
            self._on_drop()
        self._buf.append(event)

    def close(self) -> None:
        return None

    @property
    def written(self) -> int:
        """Total events ever written (dropped = written - len(tail))."""
        return self._written

    @property
    def dropped(self) -> int:
        """Events that fell off the ring's head."""
        return max(0, self._written - len(self._buf))

    def tail(self, n: int | None = None) -> list[Event]:
        """The most recent events, oldest first (all kept when n=None)."""
        events: list[Event] = []
        for _ in range(64):
            try:
                events = list(self._buf)
                break
            except RuntimeError:  # appended to while copying — retry
                continue
        if n is not None:
            events = events[-n:] if n > 0 else []
        return events


class JsonlSink:
    """Appends events to ``path`` as JSON lines with a wall-clock ``ts``.

    ``only`` / ``exclude`` restrict which event classes the sink accepts
    (the CLI routes bulky :class:`~repro.obs.events.TrialProvenance`
    events to their own file this way).  ``stamp_ts=False`` omits the
    wall-clock field, making the file a deterministic function of the
    event stream — required for provenance files, which must be
    bit-identical across worker counts.
    """

    def __init__(
        self,
        path: str | Path,
        clock: Callable[[], float] = time.time,
        only: tuple[type[Event], ...] | None = None,
        exclude: tuple[type[Event], ...] = (),
        stamp_ts: bool = True,
    ):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh: TextIO | None = self.path.open("w")
        self._clock = clock
        self._only = only
        self._exclude = exclude
        self._stamp_ts = stamp_ts

    def write(self, event: Event) -> None:
        if self._fh is None:
            raise RuntimeError(f"JsonlSink({self.path}) written after close()")
        if self._only is not None and not isinstance(event, self._only):
            return
        if self._exclude and isinstance(event, self._exclude):
            return
        blob = event.to_dict()
        if self._stamp_ts:
            blob["ts"] = self._clock()
        self._fh.write(json.dumps(blob) + "\n")

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None


def load_trace(
    path: str | Path, on_skip: Callable[[str], None] | None = None
) -> list[Event]:
    """Replay a JSONL trace into typed events (unknown types skipped).

    Truncated final lines — a process killed mid-write — are tolerated;
    ``on_skip`` (if given) receives one message per undecodable line so
    callers can surface a warning instead of silently dropping data.
    """
    events: list[Event] = []
    with Path(path).open() as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                blob = json.loads(line)
            except json.JSONDecodeError:
                # partial trailing line from an interrupted run
                if on_skip is not None:
                    on_skip(f"{path}:{lineno}: skipping partial/corrupt line")
                continue
            event = event_from_dict(blob)
            if event is not None:
                events.append(event)
    return events


def _format_eta(seconds: float) -> str:
    """``m:ss`` (or ``h:mm:ss``) wall-clock remaining, rounded to 1 s."""
    total = max(0, int(round(seconds)))
    hours, rem = divmod(total, 3600)
    minutes, secs = divmod(rem, 60)
    if hours:
        return f"{hours}:{minutes:02d}:{secs:02d}"
    return f"{minutes}:{secs:02d}"


class ProgressSink:
    """Single-line live progress on stderr, throttled to ``min_interval``.

    Tracks :class:`CampaignStarted` (total trials) and
    :class:`TrialFinished` (outcome tallies + rate); repaints at most
    once per interval, except the final trial, which always paints so
    the line ends accurate.  A wall-clock ETA is appended while trials
    remain; :class:`CampaignPlanRevised` events (adaptive campaigns)
    re-pin the denominator to the driver's current projection, so the
    estimate tightens wave by wave instead of assuming the cap.
    """

    def __init__(
        self,
        stream: TextIO | None = None,
        min_interval: float = 0.2,
        clock: Callable[[], float] = time.monotonic,
    ):
        self._stream = stream if stream is not None else sys.stderr
        self._min_interval = min_interval
        self._clock = clock
        self._total = 0
        self._done = 0
        self._outcomes: dict[str, int] = {}
        self._t_start = 0.0
        self._t_last_paint = float("-inf")
        self._len_last = 0
        self.paints = 0  # repaint count (observable for throttle tests)

    def write(self, event: Event) -> None:
        if isinstance(event, CampaignStarted):
            self._total = event.trials
            self._done = 0
            self._outcomes = {}
            self._t_start = self._clock()
            return
        if isinstance(event, CampaignPlanRevised):
            # adaptive campaigns: the projected final size replaces the
            # cap, so done/total and the ETA track the real finish line
            self._total = event.planned
            return
        if not isinstance(event, TrialFinished):
            return
        self._done += 1
        self._outcomes[event.outcome] = self._outcomes.get(event.outcome, 0) + 1
        now = self._clock()
        final = self._total and self._done >= self._total
        if not final and now - self._t_last_paint < self._min_interval:
            return
        self._t_last_paint = now
        self._paint(now, newline=bool(final))

    def _paint(self, now: float, newline: bool) -> None:
        self.paints += 1
        sdc = self._outcomes.get("sdc", 0)
        sdc_pct = 100.0 * sdc / self._done if self._done else 0.0
        dt = now - self._t_start
        rate = self._done / dt if dt > 0 else 0.0
        total = self._total if self._total else "?"
        eta = ""
        if self._total and 0 < self._done < self._total and rate > 0:
            remaining = (self._total - self._done) / rate
            eta = f" · eta {_format_eta(remaining)}"
        line = (
            f"\rtrial {self._done}/{total} · sdc={sdc_pct:.1f}% · "
            f"{rate:.0f} trials/s{eta}"
        )
        # pad over any longer previous paint (the ETA segment shrinks)
        pad = " " * max(0, self._len_last - len(line))
        self._len_last = len(line)
        self._stream.write(line + pad + ("\n" if newline else ""))
        self._stream.flush()

    def close(self) -> None:
        # leave a clean line if a campaign ended without its final paint
        if self._done and (not self._total or self._done < self._total):
            self._paint(self._clock(), newline=True)
