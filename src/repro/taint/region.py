"""Computation-region tags (paper §3.1).

The paper splits parallel execution into *common computation* (also
present in serial execution) and *parallel-unique computation* (present
only in parallel execution, e.g. the twiddle stage of a distributed FFT
transpose or ghost-contribution assembly in FE codes).  Applications tag
the latter with ``with fp.region(Region.PARALLEL_UNIQUE): ...``; the
tracer accounts candidate instructions per region, which yields Table 1
and the ``prob1``/``prob2`` weights of the model's Eq. 1.
"""

from __future__ import annotations

import enum

__all__ = ["Region"]


class Region(enum.Enum):
    """Which of the paper's two computation classes an instruction is in."""

    COMMON = "common"
    PARALLEL_UNIQUE = "parallel_unique"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value
