"""The dual-value array type carried through every traced computation.

A :class:`TArray` pairs the fault-free (*golden*) value of a datum with
the value the actual, possibly fault-injected, execution holds
(*faulty*).  The two references are **the same ndarray object** until an
injected bit flip makes them differ; traced operations re-share them
whenever the results compare equal again (rounding absorbed the
perturbation).

Design rules
------------
* TArrays are immutable: both payload arrays are frozen
  (``writeable=False``) at construction.  Operations always allocate
  outputs.  This makes sharing safe — a collective can hand the same
  TArray to every rank.
* ``diverged`` is an identity check (``faulty is not golden``), never a
  value scan, so the fault-free fast path costs nothing.
* Application *control flow* must read :attr:`value` /
  :meth:`to_numpy`, which expose the faulty path — the injected run is
  the real execution; the golden path is only a shadow for
  contamination tracking and outcome classification.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

__all__ = ["TArray", "arrays_equal", "as_tarray"]


def arrays_equal(a: np.ndarray, b: np.ndarray) -> bool:
    """Bitwise-meaningful value equality used for taint collapse.

    NaNs compare equal to NaNs (a flipped NaN payload is still "no
    visible corruption" for downstream consumers), and ``-0.0`` equals
    ``+0.0`` — matching how corrupted values behave arithmetically.
    """
    if a is b:
        return True
    if a.shape != b.shape:
        return False
    return bool(np.array_equal(a, b, equal_nan=True))


def _freeze(arr: np.ndarray) -> np.ndarray:
    arr.flags.writeable = False
    return arr


class TArray:
    """A dual-value (golden, faulty) array.  See module docstring."""

    __slots__ = ("golden", "faulty")

    def __init__(self, golden: np.ndarray, faulty: np.ndarray | None = None):
        golden = np.asarray(golden)
        if golden.dtype.kind != "f":
            golden = golden.astype(np.float64)
        if faulty is None or faulty is golden:
            golden = _freeze(golden)
            faulty = golden
        else:
            faulty = np.asarray(faulty)
            if faulty.dtype != golden.dtype:
                faulty = faulty.astype(golden.dtype)
            if faulty.shape != golden.shape:
                raise ValueError(
                    f"golden/faulty shape mismatch: {golden.shape} vs {faulty.shape}"
                )
            # Re-share when the faulty path produced identical values.
            if arrays_equal(golden, faulty):
                golden = _freeze(golden)
                faulty = golden
            else:
                golden = _freeze(golden)
                faulty = _freeze(faulty)
        self.golden = golden
        self.faulty = faulty

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def fresh(cls, data: np.ndarray | float | Iterable) -> "TArray":
        """Wrap uncorrupted initial data (golden == faulty, shared)."""
        return cls(np.array(data, dtype=np.float64))

    # ------------------------------------------------------------------
    # status
    # ------------------------------------------------------------------
    @property
    def diverged(self) -> bool:
        """True when the faulty execution's value differs from fault-free."""
        return self.faulty is not self.golden

    @property
    def shape(self) -> tuple[int, ...]:
        return self.golden.shape

    @property
    def size(self) -> int:
        return self.golden.size

    @property
    def dtype(self) -> np.dtype:
        return self.golden.dtype

    # ------------------------------------------------------------------
    # faulty-path accessors (application control flow / output)
    # ------------------------------------------------------------------
    @property
    def value(self) -> float:
        """The faulty-path scalar value (for control flow and output)."""
        if self.faulty.size != 1:
            raise ValueError(f"value requires a single-element TArray, shape {self.shape}")
        return float(self.faulty.reshape(()))

    @property
    def golden_value(self) -> float:
        """The fault-free scalar value (shadow; not for control flow)."""
        if self.golden.size != 1:
            raise ValueError(f"golden_value requires a single-element TArray, shape {self.shape}")
        return float(self.golden.reshape(()))

    def to_numpy(self) -> np.ndarray:
        """Read-only view of the faulty-path array."""
        return self.faulty

    def golden_numpy(self) -> np.ndarray:
        """Read-only view of the golden-path array."""
        return self.golden

    # ------------------------------------------------------------------
    # shape/data-movement operations (no FP instructions => untraced)
    # ------------------------------------------------------------------
    def __getitem__(self, key) -> "TArray":
        g = self.golden[key]
        f = g if self.faulty is self.golden else self.faulty[key]
        # Slices of diverged arrays may be clean; the constructor re-shares.
        return TArray(np.asarray(g), None if f is g else np.asarray(f))

    def reshape(self, *shape) -> "TArray":
        g = self.golden.reshape(*shape)
        f = g if self.faulty is self.golden else self.faulty.reshape(*shape)
        return TArray(g, None if f is g else f)

    def ravel(self) -> "TArray":
        return self.reshape(-1)

    def transpose(self, *axes) -> "TArray":
        g = np.ascontiguousarray(self.golden.transpose(*axes))
        if self.faulty is self.golden:
            return TArray(g)
        return TArray(g, np.ascontiguousarray(self.faulty.transpose(*axes)))

    @staticmethod
    def concatenate(parts: Iterable["TArray"], axis: int = 0) -> "TArray":
        """Concatenate TArrays (pure data movement, untraced)."""
        parts = list(parts)
        g = np.concatenate([p.golden for p in parts], axis=axis)
        if all(not p.diverged for p in parts):
            return TArray(g)
        return TArray(g, np.concatenate([p.faulty for p in parts], axis=axis))

    @staticmethod
    def scatter(values: "TArray", positions: np.ndarray, size: int) -> "TArray":
        """Dense array of ``size`` zeros with ``values`` at ``positions``.

        Pure data movement (untraced); positions must be unique.
        """
        g = np.zeros(size)
        g[positions] = values.golden
        if not values.diverged:
            return TArray(g)
        f = np.zeros(size)
        f[positions] = values.faulty
        return TArray(g, f)

    @staticmethod
    def stack(parts: Iterable["TArray"], axis: int = 0) -> "TArray":
        parts = list(parts)
        g = np.stack([p.golden for p in parts], axis=axis)
        if all(not p.diverged for p in parts):
            return TArray(g)
        return TArray(g, np.stack([p.faulty for p in parts], axis=axis))

    def copy(self) -> "TArray":
        """TArrays are immutable; copy returns self."""
        return self

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        tag = "diverged" if self.diverged else "clean"
        return f"TArray(shape={self.shape}, {tag})"


def as_tarray(x: "TArray | np.ndarray | float | int") -> TArray:
    """Coerce constants / plain arrays into (clean) TArrays."""
    if isinstance(x, TArray):
        return x
    return TArray.fresh(x)
