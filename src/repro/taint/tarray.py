"""The dual-value array type carried through every traced computation.

A :class:`TArray` pairs the fault-free (*golden*) value of a datum with
the value the actual, possibly fault-injected, execution holds
(*faulty*).  The two references are **the same ndarray object** until an
injected bit flip makes them differ; traced operations re-share them
whenever the results compare equal again (rounding absorbed the
perturbation).

Design rules
------------
* TArrays are immutable: both payload arrays are frozen
  (``writeable=False``) at construction.  Operations always allocate
  outputs.  This makes sharing safe — a collective can hand the same
  TArray to every rank.
* ``diverged`` is an identity check (``faulty is not golden``), never a
  value scan, so the fault-free fast path costs nothing.
* Application *control flow* must read :attr:`value` /
  :meth:`to_numpy`, which expose the faulty path — the injected run is
  the real execution; the golden path is only a shadow for
  contamination tracking and outcome classification.

Lane batching
-------------
A TArray may additionally carry a :class:`LaneSet`: a stack of per-lane
shadows, one lane per concurrently executing fault-injection trial
(docs/performance.md, "Lane vectorization").  The batch TArray's own
``golden``/``faulty`` pair stays shared (``diverged`` is ``False``) —
the batch follows the fault-free execution, and each lane's divergence
lives in the stack.  ``LaneSet.div[lane]`` reproduces exactly what the
scalar path's ``diverged`` flag would be for that lane's trial.  Reads
that steer application control flow (:attr:`value`, :meth:`to_numpy`)
*eject* lanes whose faulty value disagrees with the golden one back to
the batch tracer, which replays them on the scalar path — so every lane
that stays in the batch shares the golden control flow exactly.
"""

from __future__ import annotations

import math
from typing import Callable, Iterable

import numpy as np

__all__ = ["LaneSet", "TArray", "arrays_equal", "as_tarray", "lane_rows_differ"]


def arrays_equal(a: np.ndarray, b: np.ndarray) -> bool:
    """Bitwise-meaningful value equality used for taint collapse.

    NaNs compare equal to NaNs (a flipped NaN payload is still "no
    visible corruption" for downstream consumers), and ``-0.0`` equals
    ``+0.0`` — matching how corrupted values behave arithmetically.
    """
    if a is b:
        return True
    if a.shape != b.shape:
        return False
    return bool(np.array_equal(a, b, equal_nan=True))


def _freeze(arr: np.ndarray) -> np.ndarray:
    arr.flags.writeable = False
    return arr


def lane_rows_differ(stack: np.ndarray, ref: np.ndarray) -> np.ndarray:
    """Per-lane NaN-aware inequality of ``(k,)+shape`` rows vs a reference.

    ``ref`` is either a single row (``shape``) or a stack of the same
    shape as ``stack``.  Mirrors :func:`arrays_equal` per row: NaN
    compares equal to NaN and ``-0.0`` equals ``+0.0``, so a lane counts
    as divergent exactly when the scalar path's constructor would have
    kept its faulty array separate.
    """
    if ref.ndim == stack.ndim - 1:
        ref = ref[np.newaxis]
    # Cheap first pass: plain != (NaN != NaN flags spuriously).  Only
    # rows it flags pay the NaN-aware recheck — NaNs are rare, so the
    # common case is a single comparison sweep.
    rough = (stack != ref).reshape(stack.shape[0], -1).any(axis=1)
    if not rough.any():
        return rough
    # A spurious flag needs NaN in *both* arrays at one position, so a
    # NaN-free reference (one golden row in the common case) proves
    # every flag genuine without rescanning the whole stack.
    if not np.issubdtype(ref.dtype, np.inexact) or not np.isnan(ref).any():
        return rough
    with np.errstate(invalid="ignore"):
        idx = np.nonzero(rough)[0]
        s = stack[idx]
        r = ref if ref.shape[0] == 1 else ref[idx]
        differ = s != r
        differ &= ~(np.isnan(s) & np.isnan(r))
        rough[idx] = differ.reshape(differ.shape[0], -1).any(axis=1)
    return rough


def _union_active(k: int, parts) -> np.ndarray | None:
    """Union of every part's active lanes, for multi-input movement ops.

    Returns None (no candidates guarantee) when any non-lane part is
    itself diverged — its faulty row broadcasts to *every* lane.
    """
    mask = np.zeros(k, dtype=bool)
    for p in parts:
        ls = p.lanes
        if ls is None:
            if p.diverged:
                return None
            continue
        mask |= ls.div
        if ls.gdrift is not None:
            mask |= ls.gdrift
    return np.nonzero(mask)[0]


def _rows_bitwise_equal(stack: np.ndarray, ref: np.ndarray) -> np.ndarray:
    """Per-lane *bit-exact* equality (distinguishes -0.0 and NaN payloads)."""
    iview = f"u{stack.dtype.itemsize}"
    s = stack.view(iview)
    r = ref.view(iview)
    if r.ndim == s.ndim - 1:
        r = r[np.newaxis]
    eq = s == r
    return eq.reshape(eq.shape[0], -1).all(axis=1)


class LaneSet:
    """Per-lane shadow stacks attached to a batch TArray.

    ``fstack[(lane,) + idx]`` is ``lane``'s faulty value of element
    ``idx``.  ``gstack`` is ``None`` while every lane's golden shadow
    still equals the batch golden array — the common case, since golden
    drift only arises from reductions whose *golden* accumulation order
    an injection perturbed — otherwise a per-lane golden stack of the
    same shape, with ``gdrift`` caching which rows actually differ
    (bitwise) from the batch golden so ops can treat drift sparsely.
    ``div`` caches the per-lane divergence flag (lane faulty != lane
    golden, NaN-aware): exactly the scalar path's ``TArray.diverged``
    for that lane's trial.  ``tracer`` is the batch tracer coordinating
    the lanes (duck-typed: needs ``eject``); lanes whose control flow
    leaves the golden path are handed back to it.
    """

    __slots__ = ("tracer", "fstack", "gstack", "div", "gdrift", "_div_idx")

    def __init__(self, tracer, fstack: np.ndarray,
                 gstack: np.ndarray | None, div: np.ndarray,
                 gdrift: np.ndarray | None = None):
        self.tracer = tracer
        self.fstack = _freeze(fstack)
        self.gstack = None if gstack is None else _freeze(gstack)
        self.div = div
        self.gdrift = None if gstack is None else gdrift
        self._div_idx: np.ndarray | None = None

    @property
    def k(self) -> int:
        return self.fstack.shape[0]

    def div_lanes(self) -> np.ndarray:
        """Sorted indices of diverged lanes (``np.nonzero(div)``, cached —
        divergence is immutable once the set is built, and both the
        contamination mark after every op and the next op's candidate
        union want the same vector)."""
        if self._div_idx is None:
            self._div_idx = np.nonzero(self.div)[0]
        return self._div_idx

    def active_lanes(self) -> np.ndarray:
        """Sorted indices of lanes diverged or golden-drifted.

        Every lane *not* listed has both rows bit-identical to the
        batch golden array — the invariant pure data-movement ops pass
        down as ``TArray.batched``'s ``candidates``.
        """
        if self.gdrift is None:
            return self.div_lanes()
        return np.nonzero(self.div | self.gdrift)[0]

    def golden_rows(self, golden: np.ndarray) -> np.ndarray:
        """``(k,)+shape`` view of the per-lane golden values."""
        if self.gstack is not None:
            return self.gstack
        return np.broadcast_to(golden, self.fstack.shape)

    def eject(self, mask: np.ndarray, reason: str) -> None:
        """Hand every lane set in ``mask`` back to the scalar path."""
        lanes = np.nonzero(mask)[0]
        if not lanes.size:
            return
        if self.tracer is None:
            raise RuntimeError(
                f"lane control-flow divergence ({reason}) with no batch "
                f"tracer attached"
            )
        self.tracer.eject([int(i) for i in lanes], reason)


class TArray:
    """A dual-value (golden, faulty) array.  See module docstring."""

    __slots__ = ("golden", "faulty", "lanes")

    def __init__(self, golden: np.ndarray, faulty: np.ndarray | None = None):
        golden = np.asarray(golden)
        if golden.dtype.kind != "f":
            golden = golden.astype(np.float64)
        if faulty is None or faulty is golden:
            golden = _freeze(golden)
            faulty = golden
        else:
            faulty = np.asarray(faulty)
            if faulty.dtype != golden.dtype:
                faulty = faulty.astype(golden.dtype)
            if faulty.shape != golden.shape:
                raise ValueError(
                    f"golden/faulty shape mismatch: {golden.shape} vs {faulty.shape}"
                )
            # Re-share when the faulty path produced identical values.
            if arrays_equal(golden, faulty):
                golden = _freeze(golden)
                faulty = golden
            else:
                golden = _freeze(golden)
                faulty = _freeze(faulty)
        self.golden = golden
        self.faulty = faulty
        self.lanes: LaneSet | None = None

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def fresh(cls, data: np.ndarray | float | Iterable) -> "TArray":
        """Wrap uncorrupted initial data (golden == faulty, shared)."""
        return cls(np.array(data, dtype=np.float64))

    @classmethod
    def batched(cls, golden: np.ndarray, fstack: np.ndarray,
                gstack: np.ndarray | None = None, tracer=None,
                candidates: np.ndarray | None = None) -> "TArray":
        """Build a batch TArray from per-lane stacks.

        Applies the same re-sharing the scalar constructor does, per
        lane: a lane whose faulty row equals its golden row (NaN-aware)
        has the row reset to the golden bits, and when no lane diverges
        and no golden drift remains the stacks are dropped entirely —
        the result is a plain clean TArray, so batches stay cheap once
        rounding absorbs every lane's perturbation.

        ``candidates`` (sorted lane indices) is the caller's guarantee
        that every row *not* listed is already bit-identical to
        ``golden`` — in ``fstack`` *and* ``gstack`` alike.  Traced ops
        derive it from the union of their inputs' diverged and
        golden-drifted lanes plus this op's injections, so divergence
        and drift checks and re-sharing touch only the active lanes
        instead of the whole stack.
        """
        out = cls(golden)
        golden = out.golden
        fstack = np.asarray(fstack)
        if fstack.dtype != golden.dtype:
            fstack = fstack.astype(golden.dtype)
        expect = (fstack.shape[0],) + golden.shape
        if fstack.shape != expect:
            raise ValueError(
                f"lane stack shape mismatch: {fstack.shape} vs {expect}"
            )
        k = fstack.shape[0]
        gdrift = None
        if gstack is not None:
            gstack = np.asarray(gstack)
            if gstack.dtype != golden.dtype:
                gstack = gstack.astype(golden.dtype)
            if gstack.shape != expect:
                raise ValueError(
                    f"lane golden stack shape mismatch: {gstack.shape} vs {expect}"
                )
            # Golden drift healed bit-exactly: fold the stack away.  The
            # check must be bitwise — replacing a lane's -0.0 golden with
            # the batch's +0.0 would poison later re-shares.
            if candidates is None or candidates.size == k:
                eq = _rows_bitwise_equal(gstack, golden)
            else:
                eq = np.ones(k, dtype=bool)
                if candidates.size:
                    eq[candidates] = _rows_bitwise_equal(
                        gstack[candidates], golden
                    )
            if eq.all():
                gstack = None
            else:
                gdrift = ~eq
        if candidates is not None:
            ref = gstack if gstack is not None else golden
            if candidates.size == k:  # saturated: skip the gather copy
                div = lane_rows_differ(fstack, ref)
            else:
                div = np.zeros(k, dtype=bool)
                if candidates.size:
                    rsub = ref[candidates] if gstack is not None else ref
                    div[candidates] = lane_rows_differ(
                        fstack[candidates], rsub
                    )
            div_idx = np.nonzero(div)[0]
            if gstack is None and div_idx.size == 0:
                return out
            # Re-share candidate rows that came out clean (NaN payloads,
            # -0.0) onto their golden bits; non-candidate rows already
            # hold them by the caller's guarantee.  div never leaves the
            # candidate set, so equal sizes mean nothing to fix.
            if div_idx.size < candidates.size:
                fix = candidates[~div[candidates]]
                if not fstack.flags.writeable:
                    fstack = fstack.copy()
                fstack[fix] = gstack[fix] if gstack is not None else golden
            lanes = LaneSet(tracer, fstack, gstack, div, gdrift)
            lanes._div_idx = div_idx
            out.lanes = lanes
            return out
        ref = gstack if gstack is not None else golden
        div = lane_rows_differ(fstack, ref)
        div_idx = np.nonzero(div)[0]
        if gstack is None and div_idx.size == 0:
            return out
        if div_idx.size < k:
            # Re-share clean lanes onto their golden bits, dropping the
            # bitwise differences arrays_equal ignores (NaN payloads,
            # -0.0) — exactly what the scalar constructor's faulty-is-
            # golden sharing does.
            clean = ~div
            if not fstack.flags.writeable:
                fstack = fstack.copy()
            fstack[clean] = gstack[clean] if gstack is not None else golden
        lanes = LaneSet(tracer, fstack, gstack, div, gdrift)
        lanes._div_idx = div_idx
        out.lanes = lanes
        return out

    # ------------------------------------------------------------------
    # status
    # ------------------------------------------------------------------
    @property
    def diverged(self) -> bool:
        """True when the faulty execution's value differs from fault-free."""
        return self.faulty is not self.golden

    @property
    def shape(self) -> tuple[int, ...]:
        return self.golden.shape

    @property
    def size(self) -> int:
        return self.golden.size

    @property
    def dtype(self) -> np.dtype:
        return self.golden.dtype

    # ------------------------------------------------------------------
    # faulty-path accessors (application control flow / output)
    # ------------------------------------------------------------------
    def _vs_golden_mask(self, ls: "LaneSet") -> np.ndarray:
        """Per-lane faulty-vs-*batch*-golden divergence (NaN-aware).

        With no golden drift, ``div`` IS that mask; drifted rows need a
        value compare against the batch golden (their ``div`` is
        relative to their own drifted golden).
        """
        if ls.gstack is None:
            return ls.div
        mask = ls.div
        gd = (
            np.nonzero(ls.gdrift)[0] if ls.gdrift is not None
            else np.arange(ls.k)
        )
        if gd.size:
            mask = mask.copy()
            mask[gd] = lane_rows_differ(ls.fstack[gd], self.golden)
        return mask

    @property
    def value(self) -> float:
        """The faulty-path scalar value (for control flow and output)."""
        if self.faulty.size != 1:
            raise ValueError(f"value requires a single-element TArray, shape {self.shape}")
        if self.lanes is not None:
            ls = self.lanes
            ls.eject(self._vs_golden_mask(ls), "value read")
        return float(self.faulty.reshape(()))

    @property
    def golden_value(self) -> float:
        """The fault-free scalar value (shadow; not for control flow)."""
        if self.golden.size != 1:
            raise ValueError(f"golden_value requires a single-element TArray, shape {self.shape}")
        if self.lanes is not None and self.lanes.gstack is not None:
            ls = self.lanes
            ls.eject(
                lane_rows_differ(ls.gstack, self.golden), "golden_value read"
            )
        return float(self.golden.reshape(()))

    def to_numpy(self) -> np.ndarray:
        """Read-only view of the faulty-path array."""
        if self.lanes is not None:
            ls = self.lanes
            ls.eject(self._vs_golden_mask(ls), "to_numpy read")
        return self.faulty

    def golden_numpy(self) -> np.ndarray:
        """Read-only view of the golden-path array."""
        if self.lanes is not None and self.lanes.gstack is not None:
            ls = self.lanes
            ls.eject(
                lane_rows_differ(ls.gstack, self.golden), "golden_numpy read"
            )
        return self.golden

    def scalar_map(self, func: Callable[[float], float]) -> "TArray":
        """Apply a pure ``float -> float`` function to every scalar view.

        Size-1 TArrays only.  Maps the golden scalar, the faulty scalar
        and each lane shadow independently, so branches *inside*
        ``func`` (e.g. guarding ``sqrt`` of a negative residual)
        evaluate per lane exactly as they would at lanes=1 — no lane
        ejection needed.  This is how apps express output
        transformations that would otherwise force a ``.value`` read.
        """
        if self.golden.size != 1:
            raise ValueError(
                f"scalar_map requires a single-element TArray, shape {self.shape}"
            )
        shape = self.golden.shape
        g = np.array(func(float(self.golden.reshape(())))).reshape(shape)
        if self.lanes is not None:
            ls = self.lanes
            ejected = getattr(ls.tracer, "ejected", ())
            flat_f = ls.fstack.reshape(ls.k)
            fstack = np.array([
                math.nan if i in ejected else func(float(v))
                for i, v in enumerate(flat_f)
            ]).reshape((ls.k,) + shape)
            gstack = None
            if ls.gstack is not None:
                flat_g = ls.gstack.reshape(ls.k)
                gstack = np.array([
                    math.nan if i in ejected else func(float(v))
                    for i, v in enumerate(flat_g)
                ]).reshape((ls.k,) + shape)
            return TArray.batched(g, fstack, gstack, ls.tracer)
        if not self.diverged:
            return TArray(g)
        f = np.array(func(float(self.faulty.reshape(())))).reshape(shape)
        return TArray(g, f)

    # ------------------------------------------------------------------
    # shape/data-movement operations (no FP instructions => untraced)
    # ------------------------------------------------------------------
    def __getitem__(self, key) -> "TArray":
        g = self.golden[key]
        if self.lanes is not None:
            ls = self.lanes
            skey = (slice(None),) + (key if isinstance(key, tuple) else (key,))
            gstack = None if ls.gstack is None else np.asarray(ls.gstack[skey])
            return TArray.batched(
                np.asarray(g), np.asarray(ls.fstack[skey]), gstack, ls.tracer,
                candidates=ls.active_lanes(),
            )
        f = g if self.faulty is self.golden else self.faulty[key]
        # Slices of diverged arrays may be clean; the constructor re-shares.
        return TArray(np.asarray(g), None if f is g else np.asarray(f))

    def reshape(self, *shape) -> "TArray":
        g = self.golden.reshape(*shape)
        if self.lanes is not None:
            ls = self.lanes
            fstack = ls.fstack.reshape((ls.k,) + g.shape)
            gstack = (
                None if ls.gstack is None
                else ls.gstack.reshape((ls.k,) + g.shape)
            )
            return TArray.batched(
                g, fstack, gstack, ls.tracer, candidates=ls.active_lanes()
            )
        f = g if self.faulty is self.golden else self.faulty.reshape(*shape)
        return TArray(g, None if f is g else f)

    def ravel(self) -> "TArray":
        return self.reshape(-1)

    def transpose(self, *axes) -> "TArray":
        g = np.ascontiguousarray(self.golden.transpose(*axes))
        if self.lanes is not None:
            ls = self.lanes
            if not axes:
                row_axes = tuple(range(self.golden.ndim - 1, -1, -1))
            elif len(axes) == 1 and isinstance(axes[0], (tuple, list)):
                row_axes = tuple(axes[0])
            else:
                row_axes = tuple(axes)
            # Lane axis 0 stays put; non-negative row axes shift by one,
            # negative ones already count from the (unchanged) end.
            sax = (0,) + tuple(a + 1 if a >= 0 else a for a in row_axes)
            fstack = np.ascontiguousarray(ls.fstack.transpose(sax))
            gstack = (
                None if ls.gstack is None
                else np.ascontiguousarray(ls.gstack.transpose(sax))
            )
            return TArray.batched(
                g, fstack, gstack, ls.tracer, candidates=ls.active_lanes()
            )
        if self.faulty is self.golden:
            return TArray(g)
        return TArray(g, np.ascontiguousarray(self.faulty.transpose(*axes)))

    @staticmethod
    def concatenate(parts: Iterable["TArray"], axis: int = 0) -> "TArray":
        """Concatenate TArrays (pure data movement, untraced)."""
        parts = list(parts)
        g = np.concatenate([p.golden for p in parts], axis=axis)
        lane_parts = [p for p in parts if p.lanes is not None]
        if lane_parts:
            ls0 = lane_parts[0].lanes
            k = ls0.k
            sax = axis + 1 if axis >= 0 else axis
            fstack = np.concatenate([
                p.lanes.fstack if p.lanes is not None
                else np.broadcast_to(p.faulty, (k,) + p.faulty.shape)
                for p in parts
            ], axis=sax)
            gstack = None
            if any(p.lanes is not None and p.lanes.gstack is not None
                   for p in parts):
                gstack = np.concatenate([
                    p.lanes.gstack
                    if p.lanes is not None and p.lanes.gstack is not None
                    else np.broadcast_to(p.golden, (k,) + p.golden.shape)
                    for p in parts
                ], axis=sax)
            return TArray.batched(
                g, fstack, gstack, ls0.tracer,
                candidates=_union_active(k, parts),
            )
        if all(not p.diverged for p in parts):
            return TArray(g)
        return TArray(g, np.concatenate([p.faulty for p in parts], axis=axis))

    @staticmethod
    def scatter(values: "TArray", positions: np.ndarray, size: int) -> "TArray":
        """Dense array of ``size`` zeros with ``values`` at ``positions``.

        Pure data movement (untraced); positions must be unique.  The
        output keeps ``values``' dtype.
        """
        dtype = values.golden.dtype
        g = np.zeros(size, dtype=dtype)
        g[positions] = values.golden
        if values.lanes is not None:
            ls = values.lanes
            fstack = np.zeros((ls.k, size), dtype=dtype)
            fstack[:, positions] = ls.fstack
            gstack = None
            if ls.gstack is not None:
                gstack = np.zeros((ls.k, size), dtype=dtype)
                gstack[:, positions] = ls.gstack
            return TArray.batched(
                g, fstack, gstack, ls.tracer, candidates=ls.active_lanes()
            )
        if not values.diverged:
            return TArray(g)
        f = np.zeros(size, dtype=dtype)
        f[positions] = values.faulty
        return TArray(g, f)

    @staticmethod
    def stack(parts: Iterable["TArray"], axis: int = 0) -> "TArray":
        parts = list(parts)
        g = np.stack([p.golden for p in parts], axis=axis)
        lane_parts = [p for p in parts if p.lanes is not None]
        if lane_parts:
            ls0 = lane_parts[0].lanes
            k = ls0.k
            sax = axis + 1 if axis >= 0 else axis
            fstack = np.stack([
                p.lanes.fstack if p.lanes is not None
                else np.broadcast_to(p.faulty, (k,) + p.faulty.shape)
                for p in parts
            ], axis=sax)
            gstack = None
            if any(p.lanes is not None and p.lanes.gstack is not None
                   for p in parts):
                gstack = np.stack([
                    p.lanes.gstack
                    if p.lanes is not None and p.lanes.gstack is not None
                    else np.broadcast_to(p.golden, (k,) + p.golden.shape)
                    for p in parts
                ], axis=sax)
            return TArray.batched(
                g, fstack, gstack, ls0.tracer,
                candidates=_union_active(k, parts),
            )
        if all(not p.diverged for p in parts):
            return TArray(g)
        return TArray(g, np.stack([p.faulty for p in parts], axis=axis))

    def copy(self) -> "TArray":
        """TArrays are immutable; copy returns self."""
        return self

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.lanes is not None:
            tag = f"lanes={self.lanes.k}, {int(self.lanes.div.sum())} diverged"
        else:
            tag = "diverged" if self.diverged else "clean"
        return f"TArray(shape={self.shape}, {tag})"


def as_tarray(x: "TArray | np.ndarray | float | int") -> TArray:
    """Coerce constants / plain arrays into (clean) TArrays."""
    if isinstance(x, TArray):
        return x
    return TArray.fresh(x)
