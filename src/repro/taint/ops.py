"""Traced floating-point operations over :class:`TArray` values.

Every mini-app performs its arithmetic through an :class:`FPOps` handle,
which

1. executes the operation on the golden and faulty paths (sharing the
   result object while they agree),
2. reports the operation's dynamic scalar instructions to the
   fault-injection tracer (`FP adds` and `multiplies` are the
   *candidate* instructions of the paper's fault model, §2), and
3. applies any bit flips the injection plan scheduled inside this very
   operation.

Injection semantics — transient operand corruption
---------------------------------------------------
A flip corrupts **one dynamic scalar instruction's view of one
operand** (or its result register), exactly like a register-level flip
under F-SEFI: the stored input arrays are never modified, only the
output lane produced by the corrupted instruction differs.  For
reductions, the corrupted accumulator state propagates into the rest of
the reduction chain (emulated with a sequential-order decomposition).

Rounding parity
---------------
Whenever an injection forces a lane or a reduction to be recomputed in
a different association order, the golden shadow is recomputed with the
*same* order, so golden-vs-faulty divergence reflects only the injected
flip — never our decomposition's rounding noise.  This is what lets
low-order-mantissa flips be genuinely absorbed by rounding, the
mechanism behind the paper's single-process propagation mass (Fig. 1).
"""

from __future__ import annotations

import contextlib
from time import perf_counter
from typing import Sequence

import numpy as np

from repro.numerics.bits import flip_bit_scalar
from repro.obs import get_recorder
from repro.taint.region import Region
from repro.taint.tarray import TArray, as_tarray
from repro.taint.tracer_api import LaneInjection, NullSink, Operand, OpKind, TraceSink

__all__ = ["FPOps"]

_F64 = np.dtype(np.float64)


#: (id(arr), out_shape) -> (arr, broadcast view).  Multi-bit faults and
#: multi-operand groups hit :func:`_lane_value` several times with the
#: same operand array and output shape back to back (the profiler shows
#: it on the hot flip path); the broadcast view is a cheap strided
#: wrapper but rebuilding it per lookup still costs a numpy call.  The
#: array object itself is stored alongside the view so a recycled id()
#: can never alias a dead entry, and the cache is bounded.
_LANE_VIEW_CACHE: dict[tuple[int, tuple[int, ...]], tuple[np.ndarray, np.ndarray]] = {}
_LANE_VIEW_CACHE_MAX = 8


def _broadcast_view(arr: np.ndarray, out_shape: tuple[int, ...]) -> np.ndarray:
    key = (id(arr), out_shape)
    hit = _LANE_VIEW_CACHE.get(key)
    if hit is not None and hit[0] is arr:
        return hit[1]
    view = np.broadcast_to(arr, out_shape)
    if len(_LANE_VIEW_CACHE) >= _LANE_VIEW_CACHE_MAX:
        _LANE_VIEW_CACHE.clear()
    _LANE_VIEW_CACHE[key] = (arr, view)
    return view


def _lane_value(arr: np.ndarray, lane: int, out_shape: tuple[int, ...]) -> float:
    """Fetch the scalar the instruction at output ``lane`` reads.

    Handles numpy broadcasting: the operand is virtually expanded to the
    output shape (a cached strided view, no copy) and indexed at the
    lane (``flat`` performs the unraveling in C).
    """
    if arr.shape == out_shape:
        return float(arr.reshape(-1)[lane])
    if arr.size == 1:
        return float(arr.reshape(-1)[0])
    return float(_broadcast_view(arr, out_shape).flat[lane])


def _flip(value: float, bit: int) -> float:
    return flip_bit_scalar(value, bit, _F64)


def _group_injections(
    injections: Sequence[LaneInjection],
) -> list[tuple[int, Operand, tuple[int, ...], int]]:
    """Group same-site injections into (offset, operand, bits, index) events.

    A multi-bit fault is expressed as several planned flips sharing one
    dynamic instruction and operand; they must corrupt the *same* view
    of the operand (XOR of all bits), not be applied as independent
    recomputations.  ``index`` is the group's global candidate-stream
    index (identical for every flip in a group, since a group is one
    dynamic instruction), carried through for provenance reporting.
    """
    grouped: dict[tuple[int, Operand], tuple[list[int], int]] = {}
    for inj in injections:
        bits, _ = grouped.setdefault((inj.offset, inj.operand), ([], inj.index))
        bits.append(inj.bit)
    return sorted(
        (offset, operand, tuple(sorted(bits)), index)
        for (offset, operand), (bits, index) in grouped.items()
    )


def _flip_bits(value: float, bits: tuple[int, ...]) -> float:
    for bit in bits:
        value = _flip(value, bit)
    return value


def _sum_sequential_with_injections(
    flat: np.ndarray,
    injections: Sequence[LaneInjection],
    apply_flips: bool,
    on_flip=None,
) -> float:
    """Sum ``flat`` in sequential order, applying reduction-add flips.

    Reduction add ``i`` adds element ``i + 1`` to an accumulator holding
    the sum of elements ``0..i``.  Operand ``A`` is the accumulator,
    ``B`` the incoming element, ``OUT`` the accumulator after the add.
    With ``apply_flips=False`` the same association order is used without
    flips (golden-path rounding parity).  ``on_flip(index, operand,
    bits, pre, post)`` reports each applied corruption for provenance
    (faulty path only).
    """
    if flat.size == 0:
        return 0.0
    acc = 0.0
    prev = 0  # next un-consumed element index
    pending: dict[int, list[tuple[Operand, tuple[int, ...], int]]] = {}
    for offset, operand, bits, index in _group_injections(injections):
        pending.setdefault(offset, []).append((operand, bits, index))
    for i in sorted(pending):
        # the i-th reduction add consumes element i + 1
        acc = acc + float(np.sum(flat[prev : i + 1]))
        elem = float(flat[i + 1])
        out_entries: list[tuple[tuple[int, ...], int]] = []
        for operand, bits, index in pending[i]:
            if apply_flips and operand == Operand.A:
                flipped = _flip_bits(acc, bits)
                if on_flip is not None:
                    on_flip(index, operand, bits, acc, flipped)
                acc = flipped
            if apply_flips and operand == Operand.B:
                flipped = _flip_bits(elem, bits)
                if on_flip is not None:
                    on_flip(index, operand, bits, elem, flipped)
                elem = flipped
            if operand == Operand.OUT:
                out_entries.append((bits, index))
        acc = acc + elem
        if apply_flips and out_entries:
            for bits, index in out_entries:
                flipped = _flip_bits(acc, bits)
                if on_flip is not None:
                    on_flip(index, Operand.OUT, bits, acc, flipped)
                acc = flipped
        prev = i + 2
    return acc + float(np.sum(flat[prev:]))


def _segmented_sums(
    prod: np.ndarray, indptr: np.ndarray, empty_rows: np.ndarray
) -> np.ndarray:
    """Per-segment sums for CSR-style data; empty segments yield 0.0.

    ``reduceat`` is only given the starts of non-empty segments (strictly
    increasing, so each segment reduces exactly its own slice); empty
    segments are filled with zero by scatter.
    """
    nrows = indptr.size - 1
    if prod.size == 0:
        return np.zeros(nrows)
    if not empty_rows.any():
        return np.add.reduceat(prod, indptr[:-1])
    out = np.zeros(nrows)
    out[~empty_rows] = np.add.reduceat(prod, indptr[:-1][~empty_rows])
    return out


#: rank -> (per-kind counter names, contamination counter name).  An
#: FPOps handle is created per rank per execution — thousands of times
#: per campaign — so the key strings are interned here once per rank
#: instead of being rebuilt on every instantiation.
_METER_KEYS: dict[int, tuple[dict[OpKind, str], str]] = {}


def _meter_keys(rank: int) -> tuple[dict[OpKind, str], str]:
    keys = _METER_KEYS.get(rank)
    if keys is None:
        keys = (
            {kind: f"fp.{kind.value}.rank{rank}" for kind in OpKind},
            f"taint.contaminated_reports.rank{rank}",
        )
        _METER_KEYS[rank] = keys
    return keys


class _MeteredSink:
    """Wraps a trace sink with per-rank dynamic-instruction metering.

    Installed by :class:`FPOps` only when the process-wide observability
    recorder is enabled, so plain runs keep the original sink object and
    pay nothing.  Accounting is the single choke point every traced
    operation passes through, which makes it the one place to meter the
    taint layer: dynamic FP-instruction counters per (rank, op kind) and
    a contamination-report counter per rank.
    """

    __slots__ = ("_inner", "_rec", "_keys", "_contaminated_key")

    def __init__(self, inner: TraceSink, recorder, rank: int):
        self._inner = inner
        self._rec = recorder
        self._keys, self._contaminated_key = _meter_keys(rank)

    def account(self, rank, region, kind, count):
        self._rec.counter(self._keys[kind], count)
        return self._inner.account(rank, region, kind, count)

    def mark_contaminated(self, rank):
        self._rec.counter(self._contaminated_key)
        return self._inner.mark_contaminated(rank)

    def record_flip(self, rank, region, kind, index, operand, bits, pre, post):
        record = getattr(self._inner, "record_flip", None)
        if record is not None:
            record(rank, region, kind, index, operand, bits, pre, post)


class FPOps:
    """Per-rank handle for traced floating-point computation.

    Parameters
    ----------
    sink:
        The fault-injection tracer (or :class:`NullSink` for plain runs).
    rank:
        MPI rank this handle computes for (0 in serial execution).
    """

    def __init__(self, sink: TraceSink | None = None, rank: int = 0):
        self._sink: TraceSink = sink if sink is not None else NullSink()
        self.rank = int(rank)
        self._region = Region.COMMON
        # The recorder is resolved exactly once per FPOps instance, never
        # on the per-operation hot path; a newly installed recorder
        # (set_recorder / obs.reset) is picked up by the next execution,
        # which constructs fresh handles.
        recorder = get_recorder()
        if recorder.enabled:
            self._sink = _MeteredSink(self._sink, recorder, self.rank)
        # Hot-path profiler, also resolved once per handle: None keeps
        # every traced operation at a single attribute test; set, each
        # operation is timed and attributed per (phase, op kind, rank).
        self._prof = (
            recorder if recorder.enabled and recorder.profiling else None
        )

    # ------------------------------------------------------------------
    # provenance
    # ------------------------------------------------------------------
    def _flip_reporter(self, kind: OpKind):
        """Bound ``on_flip(index, operand, bits, pre, post)`` callback.

        Only built when injections actually landed in an operation (at
        most a handful of times per trial), so the clean path never pays
        for provenance.  Returns None for sinks without ``record_flip``
        (minimal test doubles).
        """
        record = getattr(self._sink, "record_flip", None)
        if record is None:
            return None
        rank, region = self.rank, self._region

        def on_flip(index, operand, bits, pre, post):
            record(rank, region, kind, index, operand, bits, pre, post)

        return on_flip

    # ------------------------------------------------------------------
    # regions
    # ------------------------------------------------------------------
    @contextlib.contextmanager
    def region(self, region: Region):
        """Tag enclosed operations as belonging to ``region`` (paper §3.1)."""
        prev, self._region = self._region, region
        try:
            yield self
        finally:
            self._region = prev

    @property
    def current_region(self) -> Region:
        return self._region

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @staticmethod
    def asarray(data) -> TArray:
        """Wrap uncorrupted data in a TArray."""
        return as_tarray(data)

    # ------------------------------------------------------------------
    # elementwise binary operations
    # ------------------------------------------------------------------
    def add(self, a, b) -> TArray:
        """Elementwise ``a + b`` (candidate ADD instructions)."""
        return self._ewise2(np.add, OpKind.ADD, a, b)

    def sub(self, a, b) -> TArray:
        """Elementwise ``a - b`` (FP adder, candidate ADD instructions)."""
        return self._ewise2(np.subtract, OpKind.ADD, a, b)

    def mul(self, a, b) -> TArray:
        """Elementwise ``a * b`` (candidate MUL instructions)."""
        return self._ewise2(np.multiply, OpKind.MUL, a, b)

    def div(self, a, b) -> TArray:
        """Elementwise ``a / b`` (traced, but not an injection candidate)."""
        return self._ewise2(np.divide, OpKind.DIV, a, b)

    def minimum(self, a, b) -> TArray:
        return self._ewise2(np.minimum, OpKind.OTHER, a, b)

    def maximum(self, a, b) -> TArray:
        return self._ewise2(np.maximum, OpKind.OTHER, a, b)

    # ------------------------------------------------------------------
    # elementwise unary operations (never candidates)
    # ------------------------------------------------------------------
    def neg(self, a) -> TArray:
        return self._ewise1(np.negative, a)

    def abs(self, a) -> TArray:
        return self._ewise1(np.abs, a)

    def sqrt(self, a) -> TArray:
        return self._ewise1(np.sqrt, a)

    def exp(self, a) -> TArray:
        return self._ewise1(np.exp, a)

    def log(self, a) -> TArray:
        return self._ewise1(np.log, a)

    def sin(self, a) -> TArray:
        return self._ewise1(np.sin, a)

    def cos(self, a) -> TArray:
        return self._ewise1(np.cos, a)

    def reciprocal(self, a) -> TArray:
        return self._ewise1(np.reciprocal, a)

    # ------------------------------------------------------------------
    # selection / comparison (control flow reads the faulty path)
    # ------------------------------------------------------------------
    def where(self, cond: np.ndarray, a, b) -> TArray:
        """Select lanes by a plain boolean mask.

        The mask comes from faulty-path comparisons — the injected run
        is the real execution — and is applied to *both* paths, mirroring
        how a real faulty run takes one concrete control path.
        """
        prof = self._prof
        if prof is None:
            return self._where_impl(cond, a, b)
        t0 = perf_counter()
        out = self._where_impl(cond, a, b)
        prof.profile_op(
            OpKind.OTHER.value, self.rank, out.size, perf_counter() - t0
        )
        return out

    def _where_impl(self, cond: np.ndarray, a, b) -> TArray:
        ta, tb = as_tarray(a), as_tarray(b)
        g = np.where(cond, ta.golden, tb.golden)
        self._sink.account(self.rank, self._region, OpKind.OTHER, int(g.size))
        if not ta.diverged and not tb.diverged:
            return TArray(g)
        out = TArray(g, np.where(cond, ta.faulty, tb.faulty))
        if out.diverged:
            self._sink.mark_contaminated(self.rank)
        return out

    def greater(self, a, b) -> np.ndarray:
        """Faulty-path elementwise ``a > b`` as a plain boolean array."""
        return np.asarray(as_tarray(a).faulty > as_tarray(b).faulty)

    def less(self, a, b) -> np.ndarray:
        """Faulty-path elementwise ``a < b`` as a plain boolean array."""
        return np.asarray(as_tarray(a).faulty < as_tarray(b).faulty)

    # ------------------------------------------------------------------
    # reductions
    # ------------------------------------------------------------------
    def sum(self, a) -> TArray:
        """Reduce-sum of all lanes (``n - 1`` candidate ADD instructions)."""
        prof = self._prof
        if prof is None:
            return self._sum_impl(a)
        t0 = perf_counter()
        out = self._sum_impl(a)
        ops = max(as_tarray(a).size - 1, 0)
        prof.profile_op(OpKind.ADD.value, self.rank, ops, perf_counter() - t0)
        return out

    def _sum_impl(self, a) -> TArray:
        ta = as_tarray(a)
        n = ta.size
        injections = self._sink.account(
            self.rank, self._region, OpKind.ADD, max(n - 1, 0)
        )
        g_flat = ta.golden.reshape(-1)
        if not injections:
            g = np.asarray(np.sum(g_flat))
            if not ta.diverged:
                return TArray(g)
            out = TArray(g, np.asarray(np.sum(ta.faulty.reshape(-1))))
        else:
            # Sequential decomposition on both paths (rounding parity).
            f_flat = ta.faulty.reshape(-1)
            gval = _sum_sequential_with_injections(g_flat, injections, apply_flips=False)
            fval = _sum_sequential_with_injections(
                f_flat, injections, apply_flips=True,
                on_flip=self._flip_reporter(OpKind.ADD),
            )
            out = TArray(np.asarray(gval), np.asarray(fval))
        if out.diverged:
            self._sink.mark_contaminated(self.rank)
        return out

    def dot(self, a, b) -> TArray:
        """Inner product = traced multiply stage + traced reduction."""
        return self.sum(self.mul(a, b))

    def norm2(self, a) -> TArray:
        """Euclidean norm ``sqrt(a · a)``."""
        return self.sqrt(self.dot(a, a))

    def max(self, a) -> TArray:
        """Reduce-max (comparison tree; not an injection candidate)."""
        return self._reduce_passive(np.max, a)

    def min(self, a) -> TArray:
        return self._reduce_passive(np.min, a)

    # ------------------------------------------------------------------
    # sparse matrix-vector product (CSR)
    # ------------------------------------------------------------------
    def csr_matvec(self, data, indices: np.ndarray, indptr: np.ndarray, x) -> TArray:
        """``y = A @ x`` for CSR ``A`` with per-scalar-instruction tracing.

        Candidate stream: ``nnz`` multiplies in CSR data order, then the
        row-major chain of reduction adds (``max(len(row) - 1, 0)`` per
        row).  Empty rows are allowed (column blocks of a distributed
        matrix routinely have them) and produce ``0.0``.

        ``data`` may be a TArray (e.g. a matrix assembled by traced FE
        computation in MiniFE) or a plain constant array.
        """
        prof = self._prof
        if prof is None:
            return self._csr_matvec_impl(data, indices, indptr, x)
        t0 = perf_counter()
        out = self._csr_matvec_impl(data, indices, indptr, x)
        dt = perf_counter() - t0
        indptr_arr = np.asarray(indptr)
        nnz = int(indptr_arr[-1])
        adds = int(np.maximum(np.diff(indptr_arr) - 1, 0).sum())
        total = nnz + adds
        if total:
            # one timed call, two instruction kinds: split the wall time
            # in proportion to the multiply/add instruction counts
            prof.profile_op(
                OpKind.MUL.value, self.rank, nnz, dt * nnz / total
            )
            prof.profile_op(
                OpKind.ADD.value, self.rank, adds, dt * adds / total
            )
        return out

    def _csr_matvec_impl(
        self, data, indices: np.ndarray, indptr: np.ndarray, x
    ) -> TArray:
        tdata, tx = as_tarray(data), as_tarray(x)
        indices = np.asarray(indices)
        indptr = np.asarray(indptr)
        nnz = int(indptr[-1])
        if tdata.size != nnz:
            raise ValueError(f"CSR data length {tdata.size} != indptr nnz {nnz}")
        row_lengths = np.diff(indptr)
        empty_rows = row_lengths == 0

        mul_injs = self._sink.account(self.rank, self._region, OpKind.MUL, nnz)
        add_counts = np.maximum(row_lengths - 1, 0)
        add_offsets = np.concatenate(([0], np.cumsum(add_counts)))
        add_injs = self._sink.account(
            self.rank, self._region, OpKind.ADD, int(add_offsets[-1])
        )

        prod_g = tdata.golden * tx.golden[indices]
        y_g = _segmented_sums(prod_g, indptr, empty_rows)

        diverged = tdata.diverged or tx.diverged
        if not diverged and not mul_injs and not add_injs:
            out = TArray(y_g)
        else:
            prod_f = tdata.faulty * tx.faulty[indices] if diverged else prod_g.copy()
            if not prod_f.flags.writeable:
                prod_f = prod_f.copy()
            # Multiply-stage flips corrupt single product lanes.
            mul_report = self._flip_reporter(OpKind.MUL) if mul_injs else None
            for k, operand, bits, index in _group_injections(mul_injs):
                a_val = float(tdata.faulty.reshape(-1)[k])
                b_val = float(tx.faulty[indices[k]])
                if operand == Operand.A:
                    pre, post = a_val, _flip_bits(a_val, bits)
                    prod_f[k] = post * b_val
                elif operand == Operand.B:
                    pre, post = b_val, _flip_bits(b_val, bits)
                    prod_f[k] = a_val * post
                else:
                    pre = float(prod_f[k])
                    post = _flip_bits(pre, bits)
                    prod_f[k] = post
                if mul_report is not None:
                    mul_report(index, operand, bits, pre, post)
            y_f = _segmented_sums(prod_f, indptr, empty_rows)
            # Reduction-stage flips: redo affected rows sequentially on
            # both paths (rounding parity), grouping injections per row.
            if add_injs:
                y_g = y_g.copy()
                add_report = self._flip_reporter(OpKind.ADD)
                per_row: dict[int, list[LaneInjection]] = {}
                for inj in add_injs:
                    row = int(np.searchsorted(add_offsets, inj.offset, side="right")) - 1
                    local = LaneInjection(
                        offset=inj.offset - int(add_offsets[row]),
                        operand=inj.operand,
                        bit=inj.bit,
                        index=inj.index,
                    )
                    per_row.setdefault(row, []).append(local)
                for row, local_injs in per_row.items():
                    lo, hi = int(indptr[row]), int(indptr[row + 1])
                    y_g[row] = _sum_sequential_with_injections(
                        prod_g[lo:hi], local_injs, apply_flips=False
                    )
                    y_f[row] = _sum_sequential_with_injections(
                        prod_f[lo:hi], local_injs, apply_flips=True,
                        on_flip=add_report,
                    )
            out = TArray(y_g, y_f)
        if out.diverged:
            self._sink.mark_contaminated(self.rank)
        return out

    def segment_sum(self, values, indptr: np.ndarray) -> TArray:
        """Segmented reduction: ``out[s] = sum(values[indptr[s]:indptr[s+1]])``.

        The workhorse of FE assembly (scatter-add of element
        contributions grouped by matrix slot).  Each segment contributes
        ``max(len - 1, 0)`` candidate ADD instructions, in segment-major
        order; injection semantics match :meth:`sum` (sequential-order
        decomposition with rounding parity on both paths).
        """
        prof = self._prof
        if prof is None:
            return self._segment_sum_impl(values, indptr)
        t0 = perf_counter()
        out = self._segment_sum_impl(values, indptr)
        dt = perf_counter() - t0
        indptr_arr = np.asarray(indptr)
        adds = int(np.maximum(np.diff(indptr_arr) - 1, 0).sum())
        prof.profile_op(OpKind.ADD.value, self.rank, adds, dt)
        return out

    def _segment_sum_impl(self, values, indptr: np.ndarray) -> TArray:
        tv = as_tarray(values)
        indptr = np.asarray(indptr)
        nnz = int(indptr[-1])
        if tv.size != nnz:
            raise ValueError(f"values length {tv.size} != indptr nnz {nnz}")
        row_lengths = np.diff(indptr)
        empty_rows = row_lengths == 0
        add_counts = np.maximum(row_lengths - 1, 0)
        add_offsets = np.concatenate(([0], np.cumsum(add_counts)))
        injections = self._sink.account(
            self.rank, self._region, OpKind.ADD, int(add_offsets[-1])
        )
        vg = tv.golden.reshape(-1)
        y_g = _segmented_sums(vg, indptr, empty_rows)
        if not tv.diverged and not injections:
            return TArray(y_g)
        vf = tv.faulty.reshape(-1)
        y_f = _segmented_sums(vf, indptr, empty_rows)
        if injections:
            y_g = y_g.copy()
            add_report = self._flip_reporter(OpKind.ADD)
            per_row: dict[int, list[LaneInjection]] = {}
            for inj in injections:
                row = int(np.searchsorted(add_offsets, inj.offset, side="right")) - 1
                local = LaneInjection(
                    offset=inj.offset - int(add_offsets[row]),
                    operand=inj.operand,
                    bit=inj.bit,
                    index=inj.index,
                )
                per_row.setdefault(row, []).append(local)
            for row, local_injs in per_row.items():
                lo, hi = int(indptr[row]), int(indptr[row + 1])
                y_g[row] = _sum_sequential_with_injections(
                    vg[lo:hi], local_injs, apply_flips=False
                )
                y_f[row] = _sum_sequential_with_injections(
                    vf[lo:hi], local_injs, apply_flips=True,
                    on_flip=add_report,
                )
        out = TArray(y_g, y_f)
        if out.diverged:
            self._sink.mark_contaminated(self.rank)
        return out

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _ewise2(self, ufunc, kind: OpKind, a, b) -> TArray:
        prof = self._prof
        if prof is None:
            return self._ewise2_impl(ufunc, kind, a, b)
        t0 = perf_counter()
        out = self._ewise2_impl(ufunc, kind, a, b)
        prof.profile_op(kind.value, self.rank, out.size, perf_counter() - t0)
        return out

    def _ewise2_impl(self, ufunc, kind: OpKind, a, b) -> TArray:
        ta, tb = as_tarray(a), as_tarray(b)
        g = ufunc(ta.golden, tb.golden)
        injections = self._sink.account(self.rank, self._region, kind, g.size)
        diverged = ta.diverged or tb.diverged
        if not diverged and not injections:
            return TArray(g)
        f = ufunc(ta.faulty, tb.faulty) if diverged else g.copy()
        if injections:
            on_flip = self._flip_reporter(kind)
            f = np.array(f, copy=True)  # ensure writable, drop any sharing
            f_flat = f.reshape(-1)
            out_shape = g.shape
            for lane, operand, bits, index in _group_injections(injections):
                a_val = _lane_value(ta.faulty, lane, out_shape)
                b_val = _lane_value(tb.faulty, lane, out_shape)
                if operand == Operand.A:
                    pre, post = a_val, _flip_bits(a_val, bits)
                    f_flat[lane] = ufunc(post, b_val)
                elif operand == Operand.B:
                    pre, post = b_val, _flip_bits(b_val, bits)
                    f_flat[lane] = ufunc(a_val, post)
                else:
                    pre = float(f_flat[lane])
                    post = _flip_bits(pre, bits)
                    f_flat[lane] = post
                if on_flip is not None:
                    on_flip(index, operand, bits, pre, post)
        out = TArray(g, f)
        if out.diverged:
            self._sink.mark_contaminated(self.rank)
        return out

    def _ewise1(self, ufunc, a) -> TArray:
        prof = self._prof
        if prof is None:
            return self._ewise1_impl(ufunc, a)
        t0 = perf_counter()
        out = self._ewise1_impl(ufunc, a)
        prof.profile_op(
            OpKind.OTHER.value, self.rank, out.size, perf_counter() - t0
        )
        return out

    def _ewise1_impl(self, ufunc, a) -> TArray:
        ta = as_tarray(a)
        self._sink.account(self.rank, self._region, OpKind.OTHER, ta.size)
        g = ufunc(ta.golden)
        if not ta.diverged:
            return TArray(g)
        out = TArray(g, ufunc(ta.faulty))
        if out.diverged:
            self._sink.mark_contaminated(self.rank)
        return out

    def _reduce_passive(self, reducer, a) -> TArray:
        prof = self._prof
        if prof is None:
            return self._reduce_passive_impl(reducer, a)
        t0 = perf_counter()
        out = self._reduce_passive_impl(reducer, a)
        ops = max(as_tarray(a).size - 1, 0)
        prof.profile_op(
            OpKind.OTHER.value, self.rank, ops, perf_counter() - t0
        )
        return out

    def _reduce_passive_impl(self, reducer, a) -> TArray:
        ta = as_tarray(a)
        self._sink.account(
            self.rank, self._region, OpKind.OTHER, max(ta.size - 1, 0)
        )
        g = np.asarray(reducer(ta.golden))
        if not ta.diverged:
            return TArray(g)
        out = TArray(g, np.asarray(reducer(ta.faulty)))
        if out.diverged:
            self._sink.mark_contaminated(self.rank)
        return out
