"""Protocol between traced FP operations and the fault-injection tracer.

The taint layer (low level) defines the contract; the fault injector
(:mod:`repro.fi.tracer`) implements it.  A traced vectorized operation
reports how many *candidate* scalar instructions it executes (FP adds
and multiplies — the instruction types the paper injects into, §2) and
receives back the list of injections that land inside this very
operation.  Non-candidate FP work (divides, square roots, transcendental
calls) is reported separately so total dynamic-instruction counts — used
by the paper's §1 overhead motivation — stay accurate.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Protocol, Sequence

from repro.taint.region import Region

__all__ = ["OpKind", "Operand", "LaneInjection", "TraceSink", "NullSink"]


class OpKind(enum.Enum):
    """Dynamic scalar FP instruction classes."""

    ADD = "add"          # add / subtract (FP adder) — injection candidate
    MUL = "mul"          # multiply — injection candidate
    DIV = "div"          # not a candidate (paper injects add/mul only)
    OTHER = "other"      # sqrt, exp, comparisons-with-arith, …

    @property
    def is_candidate(self) -> bool:
        return self in (OpKind.ADD, OpKind.MUL)


class Operand(enum.IntEnum):
    """Which operand of the selected dynamic instruction gets the flip.

    For an elementwise binary instruction ``out = a ⊕ b`` the operands
    are ``A`` (= a's lane), ``B`` (= b's lane) and ``OUT`` (the result
    register).  For a reduction add, ``A`` is the running accumulator,
    ``B`` the incoming element, and ``OUT`` the accumulator after the
    add.  Flips are transient: they corrupt only this instruction's view
    of the operand, never the stored input array — matching
    register-level injection in F-SEFI.
    """

    A = 0
    B = 1
    OUT = 2


@dataclass(frozen=True)
class LaneInjection:
    """One bit flip landing inside the current vectorized operation.

    ``offset`` indexes the scalar instruction within the operation's
    candidate stream (for an elementwise op: the flat output lane; for a
    reduction: the index of the reduction add).  ``index`` is the flip's
    global index in the (rank, region) candidate stream — carried along
    so the taint layer can attribute observed pre/post operand values
    back to the planned fault site (:meth:`TraceSink.record_flip`).
    ``lane`` identifies which batched trial the flip belongs to when the
    sink executes several trials per pass (see :mod:`repro.fi.lanes`);
    it is 0 for the scalar, one-trial-at-a-time tracer.
    """

    offset: int
    operand: Operand
    bit: int
    index: int = -1
    lane: int = 0


class TraceSink(Protocol):
    """What the fault injector exposes to traced operations."""

    def account(
        self, rank: int, region: Region, kind: OpKind, count: int
    ) -> Sequence[LaneInjection]:
        """Register ``count`` scalar instructions of ``kind``.

        Returns the injections whose global candidate index falls within
        the half-open interval covered by this operation (empty in
        profiling mode or when no planned flip lands here).
        """
        ...

    def mark_contaminated(self, rank: int) -> None:
        """Record that ``rank``'s state diverged from the fault-free run."""
        ...

    def record_flip(
        self,
        rank: int,
        region: Region,
        kind: OpKind,
        index: int,
        operand: Operand,
        bits: Sequence[int],
        pre: float,
        post: float,
    ) -> None:
        """Report the observed values of one applied fault.

        Called by the taint layer at the moment a planned flip (or a
        multi-bit group sharing one dynamic instruction and operand) is
        applied: ``pre`` is the operand's value as the corrupted
        instruction would have read it, ``post`` the value it actually
        read after the flip(s).  Feeds fault provenance
        (:mod:`repro.obs.provenance`); implementations may ignore it.
        """
        ...


class NullSink:
    """A sink that counts nothing and never injects (plain execution)."""

    def account(self, rank, region, kind, count):  # noqa: D102
        return ()

    def mark_contaminated(self, rank):  # noqa: D102
        return None

    def record_flip(self, rank, region, kind, index, operand, bits, pre, post):  # noqa: D102
        return None
