"""Lane-vectorized traced operations: N trials per pass through the app.

:class:`LaneFPOps` executes the batched counterpart of every
:class:`~repro.taint.ops.FPOps` operation: one golden computation plus a
``(k, ...)`` stack of per-lane faulty shadows, where lane ``i`` carries
trial ``i``'s injected execution (see :mod:`repro.fi.lanes` and
docs/performance.md, "Lane vectorization").  The contract is exact
scalar parity — every lane's faulty (and, after injected reductions,
golden) values are bit-identical to what a lanes=1 run of that trial
would hold:

* elementwise add/sub/mul/div/min/max, ``where`` selection and
  comparisons are exactly rounded per element, so one vectorized ufunc
  call over the stacks reproduces every lane's scalar bits;
* reductions only ever reduce contiguous rows — ``np.add.reduceat`` is
  sequential per segment, and a row-wise ``np.sum`` applies the same
  pairwise blocking as the scalar path's 1-D sum;
* transcendentals (exp/log/sin/cos/sqrt/...) may vary bits with SIMD
  position, so lanes whose *input* row is bit-equal to the golden array
  are forced back onto the golden output bits — exactly the sharing the
  scalar path gets for free;
* lanes hit by an injection are recomputed with the scalar path's own
  sequential decomposition (:func:`_sum_sequential_with_injections`),
  golden and faulty alike (rounding parity).

Contamination marks and flip observations route through the batch
tracer per lane; the plain ``mark_contaminated``/``record_flip`` sink
channels are never used (the batch's own golden/faulty pair never
diverges).  Comparisons whose faulty mask differs from the golden mask
for some lane *eject* those lanes: their control flow leaves the golden
path, so the batch hands them back for scalar re-execution.
"""

from __future__ import annotations

import numpy as np

from repro.taint.ops import (
    FPOps,
    _flip_bits,
    _group_injections,
    _lane_value,
    _segmented_sums,
    _sum_sequential_with_injections,
)
from repro.taint.tarray import TArray, _rows_bitwise_equal, as_tarray
from repro.taint.tracer_api import LaneInjection, Operand, OpKind

__all__ = ["LaneFPOps"]


def _pad_stack(stack: np.ndarray, out_ndim: int) -> np.ndarray:
    """Left-pad a ``(k, ...)`` stack's row axes for output broadcasting.

    numpy broadcasting right-aligns shapes, but the lane axis sits at
    position 0 — so a stack whose rows have fewer dims than the output
    needs explicit length-1 axes inserted after the lane axis.
    """
    pad = out_ndim - (stack.ndim - 1)
    if pad <= 0:
        return stack
    return stack.reshape((stack.shape[0],) + (1,) * pad + stack.shape[1:])


def _segmented_sums_stack(
    prod: np.ndarray, indptr: np.ndarray, empty_rows: np.ndarray
) -> np.ndarray:
    """Row-wise :func:`_segmented_sums` over a ``(k, nnz)`` stack.

    ``reduceat`` runs the same sequential per-segment adds along axis 1
    for every lane as the scalar path runs on its 1-D array, so the
    bits match lane for lane.
    """
    k = prod.shape[0]
    nrows = indptr.size - 1
    if prod.shape[1] == 0:
        return np.zeros((k, nrows))
    if not empty_rows.any():
        return np.add.reduceat(prod, indptr[:-1], axis=1)
    out = np.zeros((k, nrows))
    out[:, ~empty_rows] = np.add.reduceat(prod, indptr[:-1][~empty_rows], axis=1)
    return out


def _by_lane(injections) -> dict[int, list[LaneInjection]]:
    """Group account() results per lane, preserving firing order."""
    per: dict[int, list[LaneInjection]] = {}
    for inj in injections:
        per.setdefault(inj.lane, []).append(inj)
    return per


_EMPTY_LANES = np.empty(0, dtype=np.intp)


def _active_lanes(k: int, injections, *lane_sets) -> np.ndarray:
    """Sorted indices of lanes that can differ from golden after this op.

    The union of every input LaneSet's diverged lanes and the lanes this
    op injects into: all other lanes' rows are bit-identical to the
    golden array (exact ops on bit-identical inputs — the invariant
    ``TArray.batched`` maintains whenever there is no golden drift), so
    per-lane work can skip them entirely.
    """
    live = [ls for ls in lane_sets if ls is not None]
    if not injections:
        # per-op fast paths: the no-injection case runs thousands of
        # times per pass, so avoid rebuilding masks already cached
        if not live:
            return _EMPTY_LANES
        if len(live) == 1 and live[0].gdrift is None:
            return live[0].div_lanes()
    cand: np.ndarray | None = None
    for ls in live:
        mask = ls.div if ls.gdrift is None else ls.div | ls.gdrift
        cand = mask if cand is None else cand | mask
    if cand is None:
        cand = np.zeros(k, dtype=bool)
    elif injections and cand is live[0].div:
        cand = cand.copy()  # never scribble on a LaneSet's own mask
    for inj in injections:
        cand[inj.lane] = True
    return np.nonzero(cand)[0]


def _drift_lanes(k: int, *lane_sets) -> np.ndarray:
    """Sorted indices of lanes with golden drift in any input."""
    live = [ls for ls in lane_sets
            if ls is not None and ls.gdrift is not None]
    if not live:
        return _EMPTY_LANES
    if len(live) == 1:
        return np.nonzero(live[0].gdrift)[0]
    drift = live[0].gdrift | live[1].gdrift
    for ls in live[2:]:
        drift |= ls.gdrift
    return np.nonzero(drift)[0]


class LaneFPOps(FPOps):
    """Per-rank traced operations over lane-batched TArrays.

    ``batch`` is the :class:`repro.fi.lanes.BatchTracer` coordinating
    the lanes; ``sink`` is the same object in its TraceSink role (the
    base class wraps it with the observability meter exactly as the
    scalar path does, so ``fp.*`` instruction counters are recorded
    once per pass = once per trial).
    """

    def __init__(self, sink, rank: int, batch):
        super().__init__(sink, rank)
        self._batch = batch

    # ------------------------------------------------------------------
    # per-lane contamination marks
    # ------------------------------------------------------------------
    def _mark_from(self, out: TArray) -> None:
        """Mark every diverged lane of ``out`` — the scalar path's
        ``mark_contaminated``-iff-``out.diverged``, per lane."""
        ls = out.lanes
        if ls is None:
            return
        lanes = ls.div_lanes()
        if lanes.size:
            self._batch.mark_lanes_from_op(self.rank, lanes)

    # ------------------------------------------------------------------
    # elementwise binary
    # ------------------------------------------------------------------
    def _ewise2_impl(self, ufunc, kind: OpKind, a, b) -> TArray:
        ta, tb = as_tarray(a), as_tarray(b)
        lsa, lsb = ta.lanes, tb.lanes
        g = ufunc(ta.golden, tb.golden)
        injections = self._sink.account(self.rank, self._region, kind, g.size)
        if lsa is None and lsb is None and not injections:
            return TArray(g)
        k = self._batch.k
        out_shape = g.shape
        # Only active lanes can differ from golden (the other rows'
        # inputs are bit-identical to golden and these ufuncs are
        # exactly rounded per element, so their outputs land on the
        # golden bits by construction); ``candidates`` confines the
        # divergence compare in ``batched`` to those rows.
        cand = _active_lanes(k, injections, lsa, lsb)
        if lsa is None and lsb is None:
            fstack = np.repeat(g[np.newaxis], k, axis=0)
        else:
            fa = _pad_stack(lsa.fstack, g.ndim) if lsa is not None else ta.faulty
            fb = _pad_stack(lsb.fstack, g.ndim) if lsb is not None else tb.faulty
            fstack = ufunc(fa, fb)
        # Golden drift is sparse — compute drifted rows only, everyone
        # else's golden shadow is the batch golden itself.
        gd = _drift_lanes(k, lsa, lsb)
        gstack = None
        if gd.size:
            gstack = np.repeat(g[np.newaxis], k, axis=0)
            ga = (
                _pad_stack(lsa.gstack[gd], g.ndim)
                if lsa is not None and lsa.gstack is not None
                else ta.golden
            )
            gb = (
                _pad_stack(lsb.gstack[gd], g.ndim)
                if lsb is not None and lsb.gstack is not None
                else tb.golden
            )
            gstack[gd] = ufunc(ga, gb)
        per_lane = _by_lane(injections)
        if per_lane:
            # flat (k, size) view of the stack: row views stay writable
            # even for scalar-shaped outputs
            fmat = fstack.reshape(k, -1)
        for lane, lane_injs in sorted(per_lane.items()):
            fa_lane = np.asarray(lsa.fstack[lane]) if lsa is not None else ta.faulty
            fb_lane = np.asarray(lsb.fstack[lane]) if lsb is not None else tb.faulty
            row_flat = fmat[lane]
            on_flip = self._batch.lane_flip_reporter(
                lane, self.rank, self._region, kind
            )
            for off, operand, bits, index in _group_injections(lane_injs):
                a_val = _lane_value(fa_lane, off, out_shape)
                b_val = _lane_value(fb_lane, off, out_shape)
                if operand == Operand.A:
                    pre, post = a_val, _flip_bits(a_val, bits)
                    row_flat[off] = ufunc(post, b_val)
                elif operand == Operand.B:
                    pre, post = b_val, _flip_bits(b_val, bits)
                    row_flat[off] = ufunc(a_val, post)
                else:
                    pre = float(row_flat[off])
                    post = _flip_bits(pre, bits)
                    row_flat[off] = post
                on_flip(index, operand, bits, pre, post)
        out = TArray.batched(g, fstack, gstack, self._batch, candidates=cand)
        self._mark_from(out)
        return out

    # ------------------------------------------------------------------
    # elementwise unary (never a candidate, never injected)
    # ------------------------------------------------------------------
    def _ewise1_impl(self, ufunc, a) -> TArray:
        ta = as_tarray(a)
        ls = ta.lanes
        if ls is None:
            return super()._ewise1_impl(ufunc, a)
        self._sink.account(self.rank, self._region, OpKind.OTHER, ta.size)
        g = ufunc(ta.golden)
        # Non-active rows are bit-equal to the golden input, so they
        # must reproduce the golden output bits exactly — which also
        # sidesteps transcendental SIMD loops producing
        # position-dependent bits for bit-equal inputs.  Active rows
        # that still match the golden input bits are forced likewise.
        cand = _active_lanes(ls.k, (), ls)
        fstack = np.repeat(np.asarray(g)[np.newaxis], ls.k, axis=0)
        if cand.size:
            fsub = np.asarray(ufunc(ls.fstack[cand]))
            same = _rows_bitwise_equal(ls.fstack[cand], ta.golden)
            if same.any():
                fsub[same] = g
            fstack[cand] = fsub
        gd = _drift_lanes(ls.k, ls)
        gstack = None
        if gd.size:
            gstack = np.repeat(np.asarray(g)[np.newaxis], ls.k, axis=0)
            gsub = np.asarray(ufunc(ls.gstack[gd]))
            gsame = _rows_bitwise_equal(ls.gstack[gd], ta.golden)
            if gsame.any():
                gsub[gsame] = g
            gstack[gd] = gsub
        out = TArray.batched(
            np.asarray(g), fstack, gstack, self._batch, candidates=cand
        )
        self._mark_from(out)
        return out

    # ------------------------------------------------------------------
    # selection / comparison
    # ------------------------------------------------------------------
    def _where_impl(self, cond: np.ndarray, a, b) -> TArray:
        ta, tb = as_tarray(a), as_tarray(b)
        lsa, lsb = ta.lanes, tb.lanes
        if lsa is None and lsb is None:
            return super()._where_impl(cond, a, b)
        g = np.where(cond, ta.golden, tb.golden)
        self._sink.account(self.rank, self._region, OpKind.OTHER, int(g.size))
        # selection is exact, so non-active rows reproduce the golden
        # bits; ``candidates`` confines the compare
        cand = _active_lanes(self._batch.k, (), lsa, lsb)
        fa = _pad_stack(lsa.fstack, g.ndim) if lsa is not None else ta.faulty
        fb = _pad_stack(lsb.fstack, g.ndim) if lsb is not None else tb.faulty
        fstack = np.where(cond, fa, fb)
        gd = _drift_lanes(self._batch.k, lsa, lsb)
        gstack = None
        if gd.size:
            gstack = np.repeat(g[np.newaxis], self._batch.k, axis=0)
            ga = (
                _pad_stack(lsa.gstack[gd], g.ndim)
                if lsa is not None and lsa.gstack is not None
                else ta.golden
            )
            gb = (
                _pad_stack(lsb.gstack[gd], g.ndim)
                if lsb is not None and lsb.gstack is not None
                else tb.golden
            )
            gstack[gd] = np.where(cond, ga, gb)
        out = TArray.batched(g, fstack, gstack, self._batch, candidates=cand)
        self._mark_from(out)
        return out

    def _compare(self, op, a, b) -> np.ndarray:
        """Faulty-path comparison; ejects lanes whose mask disagrees.

        The returned mask is the batch (= golden-path) mask: every lane
        still in the batch branches exactly like the fault-free run, and
        lanes that would branch differently re-execute on the scalar
        path — same contract as a ``TArray.value`` control-flow read.
        """
        ta, tb = as_tarray(a), as_tarray(b)
        lsa, lsb = ta.lanes, tb.lanes
        base = np.asarray(op(ta.faulty, tb.faulty))
        if lsa is None and lsb is None:
            return base
        # Bit-identical rows compare identically — only active lanes
        # (diverged or golden-drifted) can branch differently.
        cand = _active_lanes(self._batch.k, (), lsa, lsb)
        if not cand.size:
            return base
        fa = (
            _pad_stack(lsa.fstack[cand], base.ndim)
            if lsa is not None else ta.faulty
        )
        fb = (
            _pad_stack(lsb.fstack[cand], base.ndim)
            if lsb is not None else tb.faulty
        )
        masks = op(fa, fb)
        sub = (masks != base).reshape(masks.shape[0], -1).any(axis=1)
        if sub.any():
            differ = np.zeros(self._batch.k, dtype=bool)
            differ[cand] = sub
            ls = lsa if lsa is not None else lsb
            ls.eject(differ, "comparison")
        return base

    def greater(self, a, b) -> np.ndarray:
        return self._compare(np.greater, a, b)

    def less(self, a, b) -> np.ndarray:
        return self._compare(np.less, a, b)

    # ------------------------------------------------------------------
    # reductions
    # ------------------------------------------------------------------
    def _sum_impl(self, a) -> TArray:
        ta = as_tarray(a)
        ls = ta.lanes
        n = ta.size
        injections = self._sink.account(
            self.rank, self._region, OpKind.ADD, max(n - 1, 0)
        )
        g_flat = ta.golden.reshape(-1)
        g = np.asarray(np.sum(g_flat))
        if ls is None and not injections:
            return TArray(g)
        k = self._batch.k
        gvals = np.full(k, float(g))
        if ls is not None:
            for lane in _drift_lanes(k, ls):
                gvals[lane] = np.sum(ls.gstack[lane].reshape(-1))
        fvals = gvals.copy()
        if ls is not None and ls.div.any():
            idx = np.nonzero(ls.div)[0]
            fmat = np.ascontiguousarray(ls.fstack.reshape(k, -1)[idx])
            fvals[idx] = np.sum(fmat, axis=1)
        for lane, lane_injs in sorted(_by_lane(injections).items()):
            gl = (
                ls.gstack[lane].reshape(-1)
                if ls is not None and ls.gstack is not None
                else g_flat
            )
            fl = ls.fstack[lane].reshape(-1) if ls is not None else g_flat
            gvals[lane] = _sum_sequential_with_injections(
                gl, lane_injs, apply_flips=False
            )
            fvals[lane] = _sum_sequential_with_injections(
                fl, lane_injs, apply_flips=True,
                on_flip=self._batch.lane_flip_reporter(
                    lane, self.rank, self._region, OpKind.ADD
                ),
            )
        shape = (k,) + g.shape
        out = TArray.batched(
            g, fvals.reshape(shape), gvals.reshape(shape), self._batch,
            candidates=_active_lanes(k, injections, ls),
        )
        self._mark_from(out)
        return out

    def _reduce_passive_impl(self, reducer, a) -> TArray:
        ta = as_tarray(a)
        ls = ta.lanes
        if ls is None:
            return super()._reduce_passive_impl(reducer, a)
        self._sink.account(
            self.rank, self._region, OpKind.OTHER, max(ta.size - 1, 0)
        )
        g = np.asarray(reducer(ta.golden))
        k = ls.k
        gvals = np.full(k, float(g))
        for lane in _drift_lanes(k, ls):
            gvals[lane] = reducer(ls.gstack[lane])
        fvals = gvals.copy()
        for lane in np.nonzero(ls.div)[0]:
            fvals[lane] = reducer(ls.fstack[lane])
        shape = (k,) + g.shape
        out = TArray.batched(
            g, fvals.reshape(shape), gvals.reshape(shape), self._batch,
            candidates=_active_lanes(k, (), ls),
        )
        self._mark_from(out)
        return out

    # ------------------------------------------------------------------
    # CSR matvec / segmented sums
    # ------------------------------------------------------------------
    def _csr_matvec_impl(
        self, data, indices: np.ndarray, indptr: np.ndarray, x
    ) -> TArray:
        tdata, tx = as_tarray(data), as_tarray(x)
        lsd, lsx = tdata.lanes, tx.lanes
        indices = np.asarray(indices)
        indptr = np.asarray(indptr)
        nnz = int(indptr[-1])
        if tdata.size != nnz:
            raise ValueError(f"CSR data length {tdata.size} != indptr nnz {nnz}")
        row_lengths = np.diff(indptr)
        empty_rows = row_lengths == 0

        mul_injs = self._sink.account(self.rank, self._region, OpKind.MUL, nnz)
        add_counts = np.maximum(row_lengths - 1, 0)
        add_offsets = np.concatenate(([0], np.cumsum(add_counts)))
        add_injs = self._sink.account(
            self.rank, self._region, OpKind.ADD, int(add_offsets[-1])
        )

        prod_g = tdata.golden * tx.golden[indices]
        y_g = _segmented_sums(prod_g, indptr, empty_rows)
        if lsd is None and lsx is None and not mul_injs and not add_injs:
            return TArray(y_g)

        return self._csr_matvec_lanes(
            tdata, tx, lsd, lsx, indices, indptr, empty_rows,
            mul_injs, add_injs, add_offsets, prod_g, y_g,
        )

    def _csr_matvec_lanes(
        self, tdata, tx, lsd, lsx, indices, indptr, empty_rows,
        mul_injs, add_injs, add_offsets, prod_g, y_g,
    ) -> TArray:
        """Lane-batched CSR matvec: only active lanes get real rows.

        ``prod_f`` holds one (nnz,) row per *active* lane (diverged,
        golden-drifted, or injected); every other lane's inputs are
        bit-identical to golden, so its output row is the golden result
        verbatim.  Golden drift is handled per drifted lane with the
        scalar path's own 1-D segmented sums.
        """
        k = self._batch.k
        dg_flat = tdata.golden.reshape(-1)
        cand = _active_lanes(k, [*mul_injs, *add_injs], lsd, lsx)
        pos = {int(lane): i for i, lane in enumerate(cand)}
        if cand.size:
            if lsd is None and lsx is None:
                prod_f = np.repeat(prod_g[np.newaxis], cand.size, axis=0)
            else:
                df = (
                    lsd.fstack.reshape(k, -1)[cand]
                    if lsd is not None else dg_flat[np.newaxis]
                )
                xf = (
                    lsx.fstack[cand]
                    if lsx is not None else tx.faulty[np.newaxis]
                )
                prod_f = df * xf[:, indices]
        else:
            prod_f = np.zeros((0, int(indptr[-1])))

        # per-drifted-lane golden products, with the scalar path's own
        # 1-D elementwise bits
        gd = _drift_lanes(k, lsd, lsx)
        prod_g_lane: dict[int, np.ndarray] = {}
        for lane in gd:
            dgl = (
                lsd.gstack[lane].reshape(-1)
                if lsd is not None and lsd.gstack is not None else dg_flat
            )
            xgl = (
                lsx.gstack[lane]
                if lsx is not None and lsx.gstack is not None else tx.golden
            )
            prod_g_lane[int(lane)] = dgl * xgl[indices]

        for lane, injs in sorted(_by_lane(mul_injs).items()):
            df_lane = (
                lsd.fstack[lane].reshape(-1) if lsd is not None else dg_flat
            )
            xf_lane = lsx.fstack[lane] if lsx is not None else tx.faulty
            row_f = prod_f[pos[lane]]
            report = self._batch.lane_flip_reporter(
                lane, self.rank, self._region, OpKind.MUL
            )
            for j, operand, bits, index in _group_injections(injs):
                a_val = float(df_lane[j])
                b_val = float(xf_lane[indices[j]])
                if operand == Operand.A:
                    pre, post = a_val, _flip_bits(a_val, bits)
                    row_f[j] = post * b_val
                elif operand == Operand.B:
                    pre, post = b_val, _flip_bits(b_val, bits)
                    row_f[j] = a_val * post
                else:
                    pre = float(row_f[j])
                    post = _flip_bits(pre, bits)
                    row_f[j] = post
                report(index, operand, bits, pre, post)

        y_f_stack = np.repeat(y_g[np.newaxis], k, axis=0)
        if cand.size:
            y_f_stack[cand] = _segmented_sums_stack(prod_f, indptr, empty_rows)

        add_per_lane = _by_lane(add_injs)
        y_g_stack = None
        if gd.size or add_per_lane:
            y_g_stack = np.repeat(y_g[np.newaxis], k, axis=0)
            for lane in gd:
                y_g_stack[lane] = _segmented_sums(
                    prod_g_lane[int(lane)], indptr, empty_rows
                )
        for lane, injs in sorted(add_per_lane.items()):
            report = self._batch.lane_flip_reporter(
                lane, self.rank, self._region, OpKind.ADD
            )
            per_row: dict[int, list[LaneInjection]] = {}
            for inj in injs:
                row = int(np.searchsorted(add_offsets, inj.offset, side="right")) - 1
                local = LaneInjection(
                    offset=inj.offset - int(add_offsets[row]),
                    operand=inj.operand,
                    bit=inj.bit,
                    index=inj.index,
                )
                per_row.setdefault(row, []).append(local)
            pf_lane = prod_f[pos[lane]]
            pg_lane = prod_g_lane.get(lane, prod_g)
            for row, local_injs in per_row.items():
                lo, hi = int(indptr[row]), int(indptr[row + 1])
                y_g_stack[lane, row] = _sum_sequential_with_injections(
                    pg_lane[lo:hi], local_injs, apply_flips=False
                )
                y_f_stack[lane, row] = _sum_sequential_with_injections(
                    pf_lane[lo:hi], local_injs, apply_flips=True,
                    on_flip=report,
                )
        out = TArray.batched(
            y_g, y_f_stack, y_g_stack, self._batch, candidates=cand
        )
        self._mark_from(out)
        return out

    def _segment_sum_impl(self, values, indptr: np.ndarray) -> TArray:
        tv = as_tarray(values)
        ls = tv.lanes
        indptr = np.asarray(indptr)
        nnz = int(indptr[-1])
        if tv.size != nnz:
            raise ValueError(f"values length {tv.size} != indptr nnz {nnz}")
        row_lengths = np.diff(indptr)
        empty_rows = row_lengths == 0
        add_counts = np.maximum(row_lengths - 1, 0)
        add_offsets = np.concatenate(([0], np.cumsum(add_counts)))
        injections = self._sink.account(
            self.rank, self._region, OpKind.ADD, int(add_offsets[-1])
        )
        vg = tv.golden.reshape(-1)
        y_g = _segmented_sums(vg, indptr, empty_rows)
        if ls is None and not injections:
            return TArray(y_g)
        k = self._batch.k
        cand = _active_lanes(k, injections, ls)
        vf = ls.fstack.reshape(k, -1) if ls is not None else None
        y_f_stack = np.repeat(y_g[np.newaxis], k, axis=0)
        if cand.size:
            vf_sub = (
                vf[cand] if vf is not None
                else np.repeat(vg[np.newaxis], cand.size, axis=0)
            )
            y_f_stack[cand] = _segmented_sums_stack(
                vf_sub, indptr, empty_rows
            )
        gd = _drift_lanes(k, ls)
        per_lane = _by_lane(injections)
        y_g_stack = None
        if gd.size or per_lane:
            y_g_stack = np.repeat(y_g[np.newaxis], k, axis=0)
            for lane in gd:
                y_g_stack[lane] = _segmented_sums(
                    ls.gstack[lane].reshape(-1), indptr, empty_rows
                )
        for lane, injs in sorted(per_lane.items()):
            report = self._batch.lane_flip_reporter(
                lane, self.rank, self._region, OpKind.ADD
            )
            per_row: dict[int, list[LaneInjection]] = {}
            for inj in injs:
                row = int(
                    np.searchsorted(add_offsets, inj.offset, side="right")
                ) - 1
                local = LaneInjection(
                    offset=inj.offset - int(add_offsets[row]),
                    operand=inj.operand,
                    bit=inj.bit,
                    index=inj.index,
                )
                per_row.setdefault(row, []).append(local)
            vf_lane = vf[lane] if vf is not None else vg
            vg_lane = (
                ls.gstack[lane].reshape(-1)
                if ls is not None and ls.gstack is not None else vg
            )
            for row, local_injs in per_row.items():
                lo, hi = int(indptr[row]), int(indptr[row + 1])
                y_g_stack[lane, row] = _sum_sequential_with_injections(
                    vg_lane[lo:hi], local_injs, apply_flips=False
                )
                y_f_stack[lane, row] = _sum_sequential_with_injections(
                    vf_lane[lo:hi], local_injs, apply_flips=True,
                    on_flip=report,
                )
        out = TArray.batched(
            y_g, y_f_stack, y_g_stack, self._batch, candidates=cand
        )
        self._mark_from(out)
        return out
