"""Dual-value shadow execution: the substrate under the fault injector.

Every floating-point value an application computes is carried in a
:class:`TArray`, which holds two ndarrays:

* ``golden`` — the value the fault-free execution would hold, and
* ``faulty`` — the value the (possibly fault-injected) execution holds.

While the two are bit-identical they are *the same object*, so the
fault-free path costs a single numpy call per operation.  After an
injection diverges them, every traced operation computes both paths; when
rounding re-absorbs the perturbation (the two results compare equal
again) the arrays collapse back to a shared object.  This value-equality
notion of contamination is exactly what the paper's P-FSEFI tool
measures per MPI process, and it is what produces the empirical
propagation histograms (paper Figs. 1–2).

Applications perform arithmetic through :class:`repro.taint.ops.FPOps`,
which also reports each dynamic scalar FP add/multiply to the
fault-injection tracer (the candidate-instruction stream of paper §2).
"""

from repro.taint.region import Region
from repro.taint.tarray import TArray, arrays_equal
from repro.taint.ops import FPOps

__all__ = ["TArray", "arrays_equal", "FPOps", "Region"]
