"""Figure builders: experiment result dicts -> SVG files.

Each ``render_*`` function takes the dictionary returned by the matching
``repro.experiments.<name>.run`` and produces the SVG counterpart of the
paper's figure.  ``render_all_figures`` is called by the report command
with whatever experiment results are available.
"""

from __future__ import annotations

from pathlib import Path

from repro.viz.svg import SvgCanvas, bar_chart, grouped_bar_chart, line_chart

__all__ = [
    "render_figure12",
    "render_figure3",
    "render_figure56",
    "render_figure7",
    "render_figure8",
    "render_table1",
    "render_all_figures",
]


def render_table1(result: dict) -> SvgCanvas:
    """Bar chart of the Table-1 parallel-unique shares."""
    names = list(result["fractions"])
    values = [result["fractions"][n] for n in names]
    return bar_chart(
        [n.upper() for n in names], values,
        title="Table 1 — parallel-unique computation share (4 ranks)",
        ylabel="share of traced candidate instructions",
        width=760,
    )


def render_figure12(result: dict, app: str) -> list[tuple[str, SvgCanvas]]:
    """The three panels of Fig. 1 (CG) / Fig. 2 (FT)."""
    data = result[app]
    fig = "1" if app == "cg" else "2"
    small = data["small"]
    large = data["large"]
    grouped = data["grouped"]
    panels = [
        (
            f"figure{fig}a_{app}",
            bar_chart(
                range(1, len(small) + 1), small,
                title=f"Fig {fig}a — {app.upper()} propagation, {len(small)} ranks",
                ylabel="share of tests",
            ),
        ),
        (
            f"figure{fig}b_{app}",
            bar_chart(
                range(1, len(large) + 1), large,
                title=f"Fig {fig}b — {app.upper()} propagation, {len(large)} ranks",
                ylabel="share of tests", width=900,
            ),
        ),
        (
            f"figure{fig}c_{app}",
            bar_chart(
                range(1, len(grouped) + 1), grouped,
                title=(
                    f"Fig {fig}c — {len(large)} cases grouped into "
                    f"{len(grouped)} (cosine {data['cosine']:.3f})"
                ),
                ylabel="share of tests",
            ),
        ),
    ]
    return panels


def render_figure3(result: dict) -> list[tuple[str, SvgCanvas]]:
    """Per-app grouped bars: serial multi-error vs parallel conditional."""
    out = []
    for app, curves in result.items():
        n = len(curves["serial"])
        chart = grouped_bar_chart(
            range(1, n + 1),
            {
                "serial, x errors": curves["serial"],
                "parallel, x contaminated": curves["parallel"],
            },
            title=f"Fig 3 — {app.upper()} success rates",
            ylabel="success rate",
        )
        out.append((f"figure3_{app}", chart))
    return out


def render_figure56(result: dict, figure: str) -> SvgCanvas:
    """Predicted-vs-measured bars for Fig. 5 or Fig. 6."""
    apps = list(result)
    return grouped_bar_chart(
        [a.upper() for a in apps],
        {
            "predicted": [result[a]["predicted"].success for a in apps],
            "measured": [result[a]["measured"].success for a in apps],
        },
        title=(
            f"Fig {figure[-1]} — predicting 64 ranks "
            f"(serial + {'4' if figure.endswith('5') else '8'} ranks)"
        ),
        ylabel="success rate",
    )


def render_figure7(result: dict) -> SvgCanvas:
    """Predicted-vs-measured bars at 128 ranks (CG, FT)."""
    labels = []
    predicted = []
    measured = []
    for predictor_label, res in result.items():
        for app, r in res.items():
            labels.append(f"{app.upper()}\n{predictor_label}")
            predicted.append(r["predicted"].success)
            measured.append(r["measured"].success)
    return grouped_bar_chart(
        labels, {"predicted": predicted, "measured": measured},
        title="Fig 7 — predicting 128 ranks (CG, FT)",
        ylabel="success rate", width=720,
    )


def render_figure8(result: dict) -> SvgCanvas:
    """RMSE and scaled injection-time lines over the small scale S."""
    scales = sorted(result)
    return line_chart(
        scales,
        {
            "RMSE": [result[s]["rmse"] for s in scales],
            "FI time / serial (x0.01)": [
                result[s]["normalized_time"] / 100 for s in scales
            ],
        },
        title="Fig 8 — accuracy vs fault-injection cost",
        ylabel="RMSE / scaled time",
    )


def render_all_figures(results: dict[str, dict], outdir: str | Path) -> list[Path]:
    """Render every figure whose experiment result is present.

    ``results`` maps experiment names ("table1", "figure12", "figure3",
    "figure5", "figure6", "figure7", "figure8") to their run() outputs.
    Returns the written paths.
    """
    outdir = Path(outdir)
    outdir.mkdir(parents=True, exist_ok=True)
    charts: list[tuple[str, SvgCanvas]] = []
    if "table1" in results:
        charts.append(("table1", render_table1(results["table1"])))
    if "figure12" in results:
        for app in results["figure12"]:
            charts.extend(render_figure12(results["figure12"], app))
    if "figure3" in results:
        charts.extend(render_figure3(results["figure3"]))
    for key in ("figure5", "figure6"):
        if key in results:
            charts.append((key, render_figure56(results[key], key)))
    if "figure7" in results:
        charts.append(("figure7", render_figure7(results["figure7"])))
    if "figure8" in results:
        charts.append(("figure8", render_figure8(results["figure8"])))
    written = []
    for name, canvas in charts:
        path = outdir / f"{name}.svg"
        canvas.save(path)
        written.append(path)
    return written
