"""A minimal SVG canvas plus bar/line chart primitives.

Deliberately small: enough to draw the paper's figure styles (grouped
bars with category labels, percentage axes, line charts with two
series) with no third-party dependency.  Output is plain SVG 1.1 text,
verifiable in tests with :mod:`xml.etree`.
"""

from __future__ import annotations

import html
from typing import Sequence

__all__ = [
    "SvgCanvas", "bar_chart", "grouped_bar_chart", "line_chart",
    "bar_chart_with_ci", "flamegraph", "heatmap", "swimlane", "PALETTE",
]

#: Colour cycle for series (colour-blind-safe subset).
PALETTE = ["#4477aa", "#ee6677", "#228833", "#ccbb44", "#66ccee", "#aa3377"]


class SvgCanvas:
    """Accumulates SVG elements; renders to a string or a file."""

    def __init__(self, width: int, height: int):
        self.width = width
        self.height = height
        self._parts: list[str] = []

    # ------------------------------------------------------------------
    def rect(self, x, y, w, h, fill="#000", stroke="none", opacity=1.0) -> None:
        self._parts.append(
            f'<rect x="{x:.1f}" y="{y:.1f}" width="{w:.1f}" height="{h:.1f}" '
            f'fill="{fill}" stroke="{stroke}" opacity="{opacity}"/>'
        )

    def line(self, x1, y1, x2, y2, stroke="#000", width=1.0, dash: str | None = None) -> None:
        dash_attr = f' stroke-dasharray="{dash}"' if dash else ""
        self._parts.append(
            f'<line x1="{x1:.1f}" y1="{y1:.1f}" x2="{x2:.1f}" y2="{y2:.1f}" '
            f'stroke="{stroke}" stroke-width="{width}"{dash_attr}/>'
        )

    def polyline(self, points: Sequence[tuple[float, float]], stroke="#000", width=2.0) -> None:
        pts = " ".join(f"{x:.1f},{y:.1f}" for x, y in points)
        self._parts.append(
            f'<polyline points="{pts}" fill="none" stroke="{stroke}" '
            f'stroke-width="{width}"/>'
        )

    def circle(self, x, y, r, fill="#000") -> None:
        self._parts.append(f'<circle cx="{x:.1f}" cy="{y:.1f}" r="{r:.1f}" fill="{fill}"/>')

    def text(self, x, y, content, size=12, anchor="middle", rotate: float | None = None,
             fill="#222") -> None:
        transform = f' transform="rotate({rotate} {x:.1f} {y:.1f})"' if rotate else ""
        self._parts.append(
            f'<text x="{x:.1f}" y="{y:.1f}" font-size="{size}" '
            f'font-family="Helvetica, Arial, sans-serif" text-anchor="{anchor}" '
            f'fill="{fill}"{transform}>{html.escape(str(content))}</text>'
        )

    # ------------------------------------------------------------------
    def render(self) -> str:
        body = "\n  ".join(self._parts)
        return (
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{self.width}" '
            f'height="{self.height}" viewBox="0 0 {self.width} {self.height}">\n'
            f'  <rect width="{self.width}" height="{self.height}" fill="white"/>\n'
            f"  {body}\n</svg>\n"
        )

    def save(self, path) -> None:
        with open(path, "w") as fh:
            fh.write(self.render())


# ----------------------------------------------------------------------
# chart layout helpers
# ----------------------------------------------------------------------
def _axes(canvas: SvgCanvas, title: str, x0, y0, x1, y1, ymax: float,
          ylabel: str, percent: bool) -> None:
    canvas.text(canvas.width / 2, 22, title, size=14)
    canvas.line(x0, y1, x1, y1, stroke="#333")  # x axis
    canvas.line(x0, y0, x0, y1, stroke="#333")  # y axis
    for i in range(5):
        frac = i / 4
        y = y1 - frac * (y1 - y0)
        value = frac * ymax
        label = f"{100 * value:.0f}%" if percent else f"{value:.2g}"
        canvas.line(x0 - 3, y, x0, y, stroke="#333")
        canvas.line(x0, y, x1, y, stroke="#ddd")
        canvas.text(x0 - 7, y + 4, label, size=10, anchor="end")
    canvas.text(16, (y0 + y1) / 2, ylabel, size=11, rotate=-90)


def _legend(canvas: SvgCanvas, names: Sequence[str], x: float, y: float) -> None:
    for i, name in enumerate(names):
        yy = y + 16 * i
        canvas.rect(x, yy - 8, 10, 10, fill=PALETTE[i % len(PALETTE)])
        canvas.text(x + 16, yy, name, size=10, anchor="start")


def bar_chart(
    categories: Sequence, values: Sequence[float], title: str,
    ylabel: str = "", percent: bool = True,
    width: int = 560, height: int = 320,
) -> SvgCanvas:
    """Single-series bar chart (the paper's Fig. 1a/1b style)."""
    return grouped_bar_chart(categories, {"": list(values)}, title,
                             ylabel=ylabel, percent=percent,
                             width=width, height=height, show_legend=False)


def grouped_bar_chart(
    categories: Sequence, series: dict[str, Sequence[float]], title: str,
    ylabel: str = "", percent: bool = True,
    width: int = 640, height: int = 340, show_legend: bool = True,
) -> SvgCanvas:
    """Grouped bars per category (the paper's Fig. 5/6 style)."""
    if not series:
        raise ValueError("grouped_bar_chart requires at least one series")
    n_cat = len(categories)
    lengths = {len(v) for v in series.values()}
    if lengths != {n_cat}:
        raise ValueError(f"series lengths {lengths} != {n_cat} categories")
    canvas = SvgCanvas(width, height)
    x0, y0, x1, y1 = 64, 40, width - 20, height - 50
    flat = [v for vs in series.values() for v in vs if v is not None]
    ymax = max(max(flat, default=0.0) * 1.15, 1e-9)
    if percent:
        ymax = max(min(ymax, 1.0), 0.2)
    _axes(canvas, title, x0, y0, x1, y1, ymax, ylabel, percent)
    slot = (x1 - x0) / n_cat
    n_series = len(series)
    bar_w = slot * 0.8 / n_series
    for si, (name, vals) in enumerate(series.items()):
        for ci, val in enumerate(vals):
            if val is None:
                continue
            h = (min(val, ymax) / ymax) * (y1 - y0)
            x = x0 + ci * slot + slot * 0.1 + si * bar_w
            canvas.rect(x, y1 - h, bar_w * 0.92, h, fill=PALETTE[si % len(PALETTE)])
    for ci, cat in enumerate(categories):
        canvas.text(x0 + (ci + 0.5) * slot, y1 + 16, cat, size=10)
    if show_legend:
        _legend(canvas, list(series), x1 - 130, y0 + 6)
    return canvas


def bar_chart_with_ci(
    categories: Sequence,
    values: Sequence[float],
    intervals: Sequence[tuple[float, float] | None],
    title: str,
    ylabel: str = "", percent: bool = True,
    width: int = 560, height: int = 320,
) -> SvgCanvas:
    """Single-series bars with confidence-interval whiskers.

    ``intervals[i]`` is the (low, high) band around ``values[i]``; None
    suppresses the whisker for that bar.
    """
    n_cat = len(categories)
    if len(values) != n_cat or len(intervals) != n_cat:
        raise ValueError(
            f"lengths differ: {n_cat} categories, {len(values)} values, "
            f"{len(intervals)} intervals"
        )
    canvas = SvgCanvas(width, height)
    x0, y0, x1, y1 = 64, 40, width - 20, height - 50
    tops = [hi for iv in intervals if iv is not None for _, hi in [iv]]
    ymax = max(max(list(values) + tops, default=0.0) * 1.15, 1e-9)
    if percent:
        ymax = max(min(ymax, 1.0), 0.2)
    _axes(canvas, title, x0, y0, x1, y1, ymax, ylabel, percent)
    slot = (x1 - x0) / n_cat

    def sy(v):
        return y1 - (min(v, ymax) / ymax) * (y1 - y0)

    for ci, (val, interval) in enumerate(zip(values, intervals)):
        x = x0 + ci * slot + slot * 0.15
        bw = slot * 0.7
        canvas.rect(x, sy(val), bw, y1 - sy(val), fill=PALETTE[0])
        if interval is not None:
            lo, hi = interval
            cx = x + bw / 2
            canvas.line(cx, sy(hi), cx, sy(lo), stroke="#222", width=1.5)
            canvas.line(cx - 5, sy(hi), cx + 5, sy(hi), stroke="#222", width=1.5)
            canvas.line(cx - 5, sy(lo), cx + 5, sy(lo), stroke="#222", width=1.5)
    for ci, cat in enumerate(categories):
        canvas.text(x0 + (ci + 0.5) * slot, y1 + 16, cat, size=10)
    return canvas


def _heat_colour(frac: float) -> str:
    """White → deep blue ramp for heatmap cells (frac in [0, 1])."""
    frac = min(max(frac, 0.0), 1.0)
    r = round(255 - 187 * frac)
    g = round(255 - 136 * frac)
    b = round(255 - 85 * frac)
    return f"#{r:02x}{g:02x}{b:02x}"


def heatmap(
    row_labels: Sequence, col_labels: Sequence,
    values: Sequence[Sequence[float]], title: str,
    width: int = 900, height: int | None = None,
    col_label_every: int = 1,
) -> SvgCanvas:
    """Matrix heatmap (rows × columns, colour ∝ value / matrix max).

    ``col_label_every`` thins dense column axes (e.g. 64 bit positions
    labelled every 8th).
    """
    n_rows, n_cols = len(row_labels), len(col_labels)
    if len(values) != n_rows or any(len(r) != n_cols for r in values):
        raise ValueError(f"values shape != {n_rows}x{n_cols}")
    if height is None:
        height = 70 + 28 * n_rows + 30
    canvas = SvgCanvas(width, height)
    x0, y0 = 90, 46
    cell_w = (width - x0 - 20) / max(n_cols, 1)
    cell_h = 28.0
    vmax = max((v for row in values for v in row), default=0.0)
    canvas.text(canvas.width / 2, 22, title, size=14)
    for ri, label in enumerate(row_labels):
        y = y0 + ri * cell_h
        canvas.text(x0 - 8, y + cell_h / 2 + 4, label, size=10, anchor="end")
        for ci in range(n_cols):
            v = values[ri][ci]
            canvas.rect(
                x0 + ci * cell_w, y, cell_w, cell_h,
                fill=_heat_colour(v / vmax if vmax > 0 else 0.0),
                stroke="#eee",
            )
    for ci, label in enumerate(col_labels):
        if ci % col_label_every:
            continue
        canvas.text(
            x0 + (ci + 0.5) * cell_w, y0 + n_rows * cell_h + 14, label, size=9
        )
    return canvas


def flamegraph(
    frames: Sequence[tuple[int, float, float, str]],
    title: str,
    width: int = 920,
    row_height: int = 22,
) -> SvgCanvas:
    """Flamegraph-style stacked span boxes (profiler span tree).

    Each frame is ``(depth, x0, w, label)`` with ``x0``/``w`` as
    fractions of the drawable width — layout is the caller's job
    (:func:`repro.obs.profiler.flamegraph_frames`); this draws boxes
    coloured by depth and labels the ones wide enough to hold text.
    """
    depth_max = max((d for d, *_ in frames), default=0)
    x0, y0 = 16, 46
    height = y0 + (depth_max + 1) * row_height + 16
    canvas = SvgCanvas(width, height)
    drawable = width - 2 * x0
    canvas.text(width / 2, 22, title, size=14)
    for depth, fx, fw, label in frames:
        w = fw * drawable
        if w < 0.5:
            continue
        x = x0 + fx * drawable
        y = y0 + depth * row_height
        canvas.rect(
            x, y, w, row_height - 2,
            fill=PALETTE[depth % len(PALETTE)], stroke="white", opacity=0.88,
        )
        # ~6.2 px/char at size 10; label only boxes that can fit text
        if w >= 6.2 * len(label) + 6:
            canvas.text(x + 5, y + row_height / 2 + 3, label, size=10,
                        anchor="start", fill="#fff")
    return canvas


def swimlane(
    rows: Sequence[tuple[str, Sequence[tuple[float, float, str, int]]]],
    title: str,
    width: int = 920,
    row_height: int = 26,
    xlabel: str = "seconds",
) -> SvgCanvas:
    """Timeline swimlanes: one labelled lane per row, boxes on a shared axis.

    Each row is ``(label, boxes)`` and each box ``(t0, t1, label,
    color_index)`` in seconds from the timeline origin.  Boxes in a lane
    may overlap (a wave span containing checkpoint spans); they are
    drawn longest-first so short spans stay visible on top.  Used by
    :mod:`repro.obs.timeline` for the worker-utilization view.
    """
    top, left, right, bottom = 44, 116, 16, 42
    height = top + row_height * max(len(rows), 1) + bottom
    canvas = SvgCanvas(width, height)
    canvas.text(width / 2, 22, title, size=14)
    t_max = max(
        (t1 for _, boxes in rows for _, t1, _, _ in boxes), default=0.0
    )
    t_max = max(t_max, 1e-9)
    x0, x1 = left, width - right
    scale = (x1 - x0) / t_max
    axis_y = top + row_height * max(len(rows), 1)
    for i in range(5):
        x = x0 + (i / 4) * (x1 - x0)
        canvas.line(x, top, x, axis_y, stroke="#eee")
        canvas.line(x, axis_y, x, axis_y + 4, stroke="#333")
        canvas.text(x, axis_y + 16, f"{(i / 4) * t_max:.2f}", size=10)
    canvas.line(x0, axis_y, x1, axis_y, stroke="#333")
    canvas.text((x0 + x1) / 2, axis_y + 32, xlabel, size=11)
    for i, (label, boxes) in enumerate(rows):
        y = top + i * row_height
        if i % 2:
            canvas.rect(x0, y, x1 - x0, row_height, fill="#f7f9fb")
        canvas.text(x0 - 8, y + row_height / 2 + 4, label, size=10,
                    anchor="end")
        for t0, t1, box_label, color in sorted(
            boxes, key=lambda b: b[0] - b[1]
        ):
            bx = x0 + max(t0, 0.0) * scale
            bw = max((t1 - t0) * scale, 1.0)
            canvas.rect(bx, y + 4, bw, row_height - 8,
                        fill=PALETTE[color % len(PALETTE)], stroke="white",
                        opacity=0.9)
            # ~6.2 px/char at size 9; label only boxes that can fit text
            if bw >= 6.2 * len(str(box_label)) + 6:
                canvas.text(bx + bw / 2, y + row_height / 2 + 3.5,
                            box_label, size=9, fill="#fff")
    return canvas


def line_chart(
    xs: Sequence[float], series: dict[str, Sequence[float]], title: str,
    ylabel: str = "", percent: bool = False,
    width: int = 560, height: int = 320,
) -> SvgCanvas:
    """Multi-series line chart (the paper's Fig. 8 style)."""
    if not series:
        raise ValueError("line_chart requires at least one series")
    canvas = SvgCanvas(width, height)
    x0, y0, x1, y1 = 64, 40, width - 20, height - 50
    flat = [v for vs in series.values() for v in vs]
    ymax = max(max(flat) * 1.15, 1e-9)
    _axes(canvas, title, x0, y0, x1, y1, ymax, ylabel, percent)
    xmin, xmax = min(xs), max(xs)
    span = max(xmax - xmin, 1e-9)

    def sx(x):
        return x0 + (x - xmin) / span * (x1 - x0)

    def sy(v):
        return y1 - (min(v, ymax) / ymax) * (y1 - y0)

    for si, (name, vals) in enumerate(series.items()):
        colour = PALETTE[si % len(PALETTE)]
        pts = [(sx(x), sy(v)) for x, v in zip(xs, vals)]
        canvas.polyline(pts, stroke=colour)
        for px, py in pts:
            canvas.circle(px, py, 3, fill=colour)
    for x in xs:
        canvas.text(sx(x), y1 + 16, x, size=10)
    _legend(canvas, list(series), x1 - 150, y0 + 6)
    return canvas
