"""Dependency-free SVG rendering of the paper's figures.

The environment has no plotting stack, so this package implements the
little that is needed: an SVG canvas (:mod:`repro.viz.svg`) with bar and
line charts, and figure builders (:mod:`repro.viz.figures`) that turn
the experiment harnesses' result dictionaries into SVG counterparts of
the paper's Figures 1-8.  ``python -m repro.experiments report`` writes
them under ``results/figures/``.
"""

from repro.viz.svg import SvgCanvas, bar_chart, grouped_bar_chart, line_chart
from repro.viz.figures import render_all_figures

__all__ = [
    "SvgCanvas",
    "bar_chart",
    "grouped_bar_chart",
    "line_chart",
    "render_all_figures",
]
