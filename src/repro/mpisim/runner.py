"""Glue between application specs, the taint layer and the scheduler."""

from __future__ import annotations

from typing import Any, Callable, Generator

from repro.mpisim.communicator import Communicator
from repro.mpisim.scheduler import Scheduler
from repro.taint.ops import FPOps
from repro.taint.tarray import TArray
from repro.taint.tracer_api import TraceSink

__all__ = ["execute_spmd"]

#: An SPMD program: (rank, size, comm, fp) -> generator returning rank output.
SPMDProgram = Callable[[int, int, Communicator, FPOps], Generator]


def _normalize_output(output: Any) -> Any:
    """Convert TArray outputs to the plain values apps used to return.

    Apps return TArrays (so lane batching can classify per lane without
    forcing a control-flow ``.value`` read); the scalar path flattens
    them back to the faulty-path value — bit-identical to the ``.value``
    reads the apps performed before lane batching existed.
    """
    if isinstance(output, TArray):
        faulty = output.faulty
        return float(faulty.reshape(())) if faulty.size == 1 else faulty
    if isinstance(output, dict):
        return {key: _normalize_output(val) for key, val in output.items()}
    return output


def execute_spmd(
    program: SPMDProgram,
    size: int,
    sink: TraceSink | None = None,
    max_steps: int | None = None,
    ops_factory: Callable[[TraceSink | None, int], FPOps] | None = None,
    raw_outputs: bool = False,
    fail_stop: "RankFailure | None" = None,
    transit: "TransitHook | None" = None,
) -> list[Any]:
    """Run ``program`` on ``size`` simulated ranks; return per-rank outputs.

    Each rank receives its own :class:`FPOps` bound to the shared trace
    sink, so instruction accounting and contamination reports carry the
    correct rank id.  ``ops_factory`` substitutes a different traced-ops
    implementation (lane batching passes
    :class:`repro.taint.laneops.LaneFPOps`); ``raw_outputs=True``
    returns rank outputs as the program produced them (TArrays intact)
    instead of normalizing to plain values.  ``fail_stop`` and
    ``transit`` arm the scheduler's system-level fault seams
    (:mod:`repro.mpisim.faults`): a rank fail-stop controller and an
    in-transit payload hook, used by the scenario families of
    :mod:`repro.fi.scenarios`.  A fail-stopped rank contributes ``None``
    as its output.
    """
    if ops_factory is None:
        ops_factory = FPOps

    def factory(rank: int, comm: Communicator):
        return program(rank, size, comm, ops_factory(sink, rank))

    outputs = Scheduler(
        size, factory, sink=sink, max_steps=max_steps,
        fail_stop=fail_stop, transit=transit,
    ).run()
    if raw_outputs:
        return outputs
    return [_normalize_output(output) for output in outputs]
