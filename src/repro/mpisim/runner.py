"""Glue between application specs, the taint layer and the scheduler."""

from __future__ import annotations

from typing import Any, Callable, Generator

from repro.mpisim.communicator import Communicator
from repro.mpisim.scheduler import Scheduler
from repro.taint.ops import FPOps
from repro.taint.tracer_api import TraceSink

__all__ = ["execute_spmd"]

#: An SPMD program: (rank, size, comm, fp) -> generator returning rank output.
SPMDProgram = Callable[[int, int, Communicator, FPOps], Generator]


def execute_spmd(
    program: SPMDProgram,
    size: int,
    sink: TraceSink | None = None,
    max_steps: int | None = None,
) -> list[Any]:
    """Run ``program`` on ``size`` simulated ranks; return per-rank outputs.

    Each rank receives its own :class:`FPOps` bound to the shared trace
    sink, so instruction accounting and contamination reports carry the
    correct rank id.
    """
    def factory(rank: int, comm: Communicator):
        return program(rank, size, comm, FPOps(sink, rank))

    return Scheduler(size, factory, sink=sink, max_steps=max_steps).run()
