"""The SPMD scheduler: advances rank generators and matches communication.

Determinism: ranks are advanced in a fixed round-robin order and message
queues are FIFO per destination, so a given (program, size, injection
plan) always executes identically — a requirement for reproducible
fault-injection campaigns.

Failure semantics: if every unfinished rank is blocked on communication
that can never complete (missing sends, partially-entered collectives,
or a collective some ranks exited the program without joining) the
scheduler raises :class:`~repro.errors.DeadlockError`; mismatched
collective kinds/roots/ops raise
:class:`~repro.errors.CommunicatorError`.  The fault-injection campaign
maps both onto the paper's "hang/crash" FAILURE outcome.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Callable, Generator

import numpy as np

from repro.errors import (
    CollectiveAbortError,
    CommunicatorError,
    DeadlockError,
    InjectedDeadlockError,
    SimulatedHangError,
)
from repro.mpisim.collectives import (
    payload_diverged,
    payload_lane_divergence,
    reduce_payloads,
)
from repro.mpisim.communicator import Communicator
from repro.mpisim.faults import RankFailure, TransitHook
from repro.mpisim.requests import (
    CollectiveKind,
    CollectiveRequest,
    RecvRequest,
    Request,
    SendRecvRequest,
    SendRequest,
)
from repro.obs import SchedulerDeadlock, get_recorder
from repro.taint.tracer_api import NullSink, TraceSink

__all__ = ["Scheduler"]

#: program_factory(rank, comm) -> generator yielding Requests, returning output
ProgramFactory = Callable[[int, Communicator], Generator[Request, Any, Any]]


@dataclass
class _Envelope:
    source: int
    tag: int
    payload: Any


@dataclass
class _RankState:
    generator: Generator[Request, Any, Any]
    done: bool = False
    failed: bool = False        # fail-stopped by an armed RankFailure
    result: Any = None
    blocked_on: Request | None = None
    mailbox: deque = field(default_factory=deque)


class Scheduler:
    """Runs an SPMD program on a simulated communicator of ``size`` ranks."""

    def __init__(
        self,
        size: int,
        program_factory: ProgramFactory,
        sink: TraceSink | None = None,
        max_steps: int | None = None,
        record_traffic: bool = False,
        fail_stop: RankFailure | None = None,
        transit: TransitHook | None = None,
    ):
        if size < 1:
            raise CommunicatorError(f"communicator size must be >= 1, got {size}")
        self.size = size
        self._sink: TraceSink = sink if sink is not None else NullSink()
        self._max_steps = max_steps
        self._steps = 0
        # System-level fault seams (repro.mpisim.faults): an armed rank
        # fail-stop and/or an in-transit payload hook.  Both default to
        # None so the bit-flip pipeline pays one attribute test per seam.
        if fail_stop is not None and not 0 <= fail_stop.rank < size:
            raise CommunicatorError(
                f"fail_stop rank {fail_stop.rank} outside communicator of size {size}"
            )
        self._fail_stop = fail_stop
        self._transit = transit
        # Provenance: let the sink date contamination marks with the
        # deterministic step counter (fault-spread timelines).  getattr
        # keeps minimal sinks (tests, NullSink substitutes) working.
        bind = getattr(self._sink, "bind_step_provider", None)
        if bind is not None:
            bind(lambda: self._steps)
        # Lane batching: a batched payload is golden-clean overall but may
        # carry diverged shadow rows; sinks exposing per-lane marks get
        # them at the same delivery points as scalar contamination marks.
        self._lane_mark = getattr(self._sink, "mark_lanes_contaminated", None)
        #: (src, dst) -> point-to-point message count; filled when
        #: record_traffic is set (communication-topology analysis).
        self.traffic: dict[tuple[int, int], int] | None = (
            {} if record_traffic else None
        )
        #: number of completed collectives per kind name.
        self.collective_counts: dict[str, int] | None = (
            {} if record_traffic else None
        )
        self._states = [
            _RankState(generator=program_factory(rank, Communicator(rank, size)))
            for rank in range(size)
        ]
        self._ready: deque[tuple[int, Any]] = deque((r, None) for r in range(size))
        self._collective_posts: dict[int, CollectiveRequest] = {}
        # observability: resolved once per execution; disabled recorder
        # keeps every instrumentation site to a single attribute test.
        self._obs = get_recorder()
        # hot-path profiler (repro.obs.profiler): attribute per-rank
        # compute-burst time and collective-matching time under the
        # current span path; None keeps _advance to one attribute test.
        self._prof = (
            self._obs if self._obs.enabled and self._obs.profiling else None
        )

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    @property
    def steps(self) -> int:
        """Generator resumptions executed so far (one per compute burst
        between communication events) — a proxy for the runtime events a
        binary-instrumentation injector would have to process."""
        return self._steps

    def run(self) -> list[Any]:
        """Execute all ranks to completion; return their return values.

        Floating-point warnings are suppressed for the whole execution:
        injected bit flips legitimately produce overflow/NaN/inf on the
        faulty path, and applications handle them through their own
        guards and the outcome classification, not through warnings.
        """
        with np.errstate(all="ignore"):
            return self._run()

    def _run(self) -> list[Any]:
        fail = self._fail_stop
        while True:
            while self._ready:
                rank, resume = self._ready.popleft()
                self._advance(rank, resume)
            if (
                fail is not None
                and not fail.fired
                and self._steps >= fail.step
                and not self._states[fail.rank].done
            ):
                # the victim crossed the kill step while parked on
                # communication (its own bursts are checked per step in
                # _advance_impl) — fail-stop it now, then re-evaluate.
                self._kill_rank()
                continue
            if self._obs.enabled:
                # gauge: ranks parked on communication each time the
                # ready queue drains (once per collective/quiescence).
                self._obs.observe(
                    "scheduler.blocked_ranks",
                    sum(1 for s in self._states if not s.done),
                )
            if self._try_complete_collective():
                continue
            if all(s.done or s.failed for s in self._states):
                if self._obs.enabled:
                    self._obs.counter("scheduler.steps", self._steps)
                    self._obs.counter("scheduler.runs")
                return [s.result for s in self._states]
            self._raise_deadlock()

    # ------------------------------------------------------------------
    # rank stepping
    # ------------------------------------------------------------------
    def _advance(self, rank: int, resume: Any) -> None:
        """Run ``rank`` until it blocks or finishes.

        When profiling, the whole compute burst runs inside an
        ``advance`` profiler frame: FP ops executed by the rank's
        program attribute to ``<span path>/advance``, and the burst's
        own total (steps as the op count) is recorded there under the
        reserved ``step`` kind — so the profile tree can tell traced-op
        time from scheduler bookkeeping.
        """
        prof = self._prof
        if prof is None:
            return self._advance_impl(rank, resume)
        steps0 = self._steps
        t0 = perf_counter()
        prof.push_frame("advance")
        try:
            return self._advance_impl(rank, resume)
        finally:
            prof.profile_op(
                "step", rank, self._steps - steps0, perf_counter() - t0
            )
            prof.pop_frame()

    def _advance_impl(self, rank: int, resume: Any) -> None:
        state = self._states[rank]
        state.blocked_on = None
        fail = self._fail_stop
        watch = fail is not None and not fail.fired and rank == fail.rank
        while True:
            if watch and self._steps >= fail.step:
                # the victim dies mid-burst, before executing this step
                self._kill_rank()
                return
            self._steps += 1
            if self._max_steps is not None and self._steps > self._max_steps:
                raise SimulatedHangError(
                    f"scheduler exceeded {self._max_steps} steps — runaway execution"
                )
            try:
                request = state.generator.send(resume)
            except StopIteration as stop:
                state.done = True
                state.result = stop.value
                return
            resume = None
            if isinstance(request, SendRequest):
                self._deliver_send(request)
                continue
            if isinstance(request, RecvRequest):
                matched = self._match_recv(rank, request)
                if matched is None:
                    state.blocked_on = request
                    return
                resume = matched
                continue
            if isinstance(request, SendRecvRequest):
                self._deliver_send(
                    SendRequest(
                        rank=request.rank, dest=request.dest,
                        tag=request.send_tag, payload=request.payload,
                    )
                )
                recv = request.recv_part()
                matched = self._match_recv(rank, recv)
                if matched is None:
                    state.blocked_on = recv
                    return
                resume = matched
                continue
            if isinstance(request, CollectiveRequest):
                self._collective_posts[rank] = request
                state.blocked_on = request
                return
            raise CommunicatorError(
                f"rank {rank} yielded a non-request object: {request!r}"
            )

    def _deliver_send(self, request: SendRequest) -> None:
        if self.traffic is not None:
            key = (request.rank, request.dest)
            self.traffic[key] = self.traffic.get(key, 0) + 1
        dest = self._states[request.dest]
        if dest.failed:
            # MPI's default error handler: communication with a dead
            # rank aborts the job rather than wedging the sender.
            raise CollectiveAbortError(
                f"rank {request.rank} sent to fail-stopped rank {request.dest}"
            )
        if dest.done:
            raise CommunicatorError(
                f"rank {request.rank} sent to rank {request.dest}, "
                "which already finished"
            )
        payload = request.payload
        if self._transit is not None:
            payload = self._transit.on_p2p(request.rank, request.dest, payload)
        dest.mailbox.append(
            _Envelope(source=request.rank, tag=request.tag, payload=payload)
        )
        # If the destination is parked on a matching receive, hand over now.
        blocked = dest.blocked_on
        if isinstance(blocked, RecvRequest):
            matched = self._match_recv(request.dest, blocked)
            if matched is not None:
                dest.blocked_on = None
                self._ready.append((request.dest, matched))

    def _match_recv(self, rank: int, request: RecvRequest) -> Any:
        """Pop the earliest matching envelope, or None."""
        mailbox = self._states[rank].mailbox
        for i, env in enumerate(mailbox):
            if request.matches(env.source, env.tag):
                del mailbox[i]
                if payload_diverged(env.payload):
                    self._sink.mark_contaminated(rank)
                elif self._lane_mark is not None:
                    lanes = payload_lane_divergence(env.payload)
                    if lanes:
                        self._lane_mark(rank, lanes)
                return env.payload
        return None

    # ------------------------------------------------------------------
    # collectives
    # ------------------------------------------------------------------
    def _try_complete_collective(self) -> bool:
        prof = self._prof
        if prof is None:
            return self._try_complete_collective_impl()
        t0 = perf_counter()
        completed = self._try_complete_collective_impl()
        if completed:
            # rank -1: collective matching happens in the scheduler, not
            # on behalf of any one rank
            prof.profile_op("collective", -1, 1, perf_counter() - t0)
        return completed

    def _try_complete_collective_impl(self) -> bool:
        posts = self._collective_posts
        if len(posts) != self.size:
            return False
        kinds = {p.kind for p in posts.values()}
        if len(kinds) != 1:
            raise CommunicatorError(f"mismatched collectives posted: {sorted(k.value for k in kinds)}")
        kind = kinds.pop()
        roots = {p.root for p in posts.values()}
        if kind in (CollectiveKind.BCAST, CollectiveKind.REDUCE,
                    CollectiveKind.GATHER, CollectiveKind.SCATTER) and len(roots) != 1:
            raise CommunicatorError(f"{kind.value} posted with differing roots {sorted(roots)}")
        ops = {p.op for p in posts.values()}
        if kind in (CollectiveKind.REDUCE, CollectiveKind.ALLREDUCE) and len(ops) != 1:
            raise CommunicatorError(f"{kind.value} posted with differing ops {sorted(ops)}")

        if self.collective_counts is not None:
            op = posts[0].op
            label = f"{kind.value}:{op}" if op else kind.value
            self.collective_counts[label] = self.collective_counts.get(label, 0) + 1
        results = self._collective_results(kind, posts)
        self._collective_posts = {}
        transit = self._transit
        for rank in range(self.size):
            self._states[rank].blocked_on = None
            delivered = results[rank]
            if transit is not None:
                delivered = transit.on_collective(kind.value, rank, delivered)
            # Receiving data that differs from the fault-free run
            # contaminates the receiver — except its own round-tripped
            # contribution (bcast from self, own gather slot) which it
            # already holds.
            if payload_diverged(delivered):
                self._sink.mark_contaminated(rank)
            elif self._lane_mark is not None:
                lanes = payload_lane_divergence(delivered)
                if lanes:
                    self._lane_mark(rank, lanes)
            self._ready.append((rank, delivered))
        return True

    def _collective_results(
        self, kind: CollectiveKind, posts: dict[int, CollectiveRequest]
    ) -> list[Any]:
        ordered = [posts[r].payload for r in range(self.size)]
        if kind is CollectiveKind.BARRIER:
            return [None] * self.size
        if kind is CollectiveKind.BCAST:
            root = posts[0].root
            assert root is not None
            return [ordered[root]] * self.size
        if kind is CollectiveKind.REDUCE:
            root = posts[0].root
            assert root is not None
            reduced = reduce_payloads(ordered, posts[0].op or "sum")
            return [reduced if r == root else None for r in range(self.size)]
        if kind is CollectiveKind.ALLREDUCE:
            reduced = reduce_payloads(ordered, posts[0].op or "sum")
            return [reduced] * self.size
        if kind is CollectiveKind.GATHER:
            root = posts[0].root
            assert root is not None
            return [list(ordered) if r == root else None for r in range(self.size)]
        if kind is CollectiveKind.ALLGATHER:
            return [list(ordered) for _ in range(self.size)]
        if kind is CollectiveKind.SCATTER:
            root = posts[0].root
            assert root is not None
            chunks = posts[root].payload
            if chunks is None or len(chunks) != self.size:
                raise CommunicatorError("scatter root did not provide one payload per rank")
            return list(chunks)
        if kind is CollectiveKind.ALLTOALL:
            for r, payload in enumerate(ordered):
                if not isinstance(payload, list) or len(payload) != self.size:
                    raise CommunicatorError(
                        f"alltoall rank {r} did not provide one payload per rank"
                    )
            return [[ordered[src][dst] for src in range(self.size)] for dst in range(self.size)]
        raise AssertionError(f"unhandled collective kind {kind}")  # pragma: no cover

    # ------------------------------------------------------------------
    # fail-stop
    # ------------------------------------------------------------------
    def _kill_rank(self) -> None:
        """Fail-stop the armed victim rank at the current step.

        The rank's generator is closed, any queued resumptions are
        dropped, and a pending collective post is withdrawn — from here
        on the rank neither computes nor communicates.  Surviving ranks
        either complete (the run finished without it), abort
        (:class:`CollectiveAbortError` on contact), or wedge
        (:class:`InjectedDeadlockError` from :meth:`_raise_deadlock`).
        """
        fail = self._fail_stop
        assert fail is not None
        state = self._states[fail.rank]
        fail.fired = True
        fail.fired_step = self._steps
        state.failed = True
        state.blocked_on = None
        state.generator.close()
        self._collective_posts.pop(fail.rank, None)
        if self._ready:
            self._ready = deque(
                (r, v) for r, v in self._ready if r != fail.rank
            )
        if self._obs.enabled:
            self._obs.counter("scheduler.rank_kills")

    # ------------------------------------------------------------------
    def _raise_deadlock(self) -> None:
        ranks = []
        waiting = []
        in_collective = False
        for rank, state in enumerate(self._states):
            if state.done or state.failed:
                continue
            ranks.append(rank)
            blocked = state.blocked_on
            if isinstance(blocked, RecvRequest):
                waiting.append(f"rank {rank} waiting on recv(source={blocked.source}, tag={blocked.tag})")
            elif isinstance(blocked, CollectiveRequest):
                in_collective = True
                waiting.append(f"rank {rank} waiting in {blocked.kind.value}")
            else:  # pragma: no cover - defensive
                waiting.append(f"rank {rank} blocked on {blocked!r}")
        if self._obs.enabled:
            self._obs.counter("scheduler.deadlocks")
            self._obs.emit(SchedulerDeadlock(
                blocked_ranks=ranks, pending_ops=waiting, steps=self._steps,
            ))
        fail = self._fail_stop
        if fail is not None and fail.fired:
            message = (
                f"rank {fail.rank} fail-stopped at step {fail.fired_step}: "
                + "; ".join(waiting)
            )
            if in_collective:
                # a collective over a dead participant can never
                # complete — real MPI aborts the job
                raise CollectiveAbortError(message)
            raise InjectedDeadlockError(message)
        raise DeadlockError("no runnable rank: " + "; ".join(waiting))
