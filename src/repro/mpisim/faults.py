"""System-level fault seams of the simulated MPI runtime.

The scheduler accepts two optional, orthogonal fault controllers so
scenario families (:mod:`repro.fi.scenarios`) can inject faults at the
layers a real resilience study targets — the process and the network —
without the simulator importing any fault-injection code:

* :class:`RankFailure` — a fail-stop: one rank is terminated the first
  time the scheduler's deterministic step counter reaches ``step``.
  The scheduler records what actually happened (``fired`` /
  ``fired_step``) on the controller, mirroring how a planned bit flip
  can miss when the execution ends early.
* a *transit hook* (:class:`TransitHook`) — an object whose
  ``on_p2p(src, dst, payload)`` and ``on_collective(kind, rank,
  payload)`` methods see every payload at its delivery point and return
  the (possibly corrupted) payload to deliver instead.  Delivery order
  is deterministic, so a hook that counts or targets the k-th payload
  behaves identically across runs.

Both seams cost one ``is not None`` test on their hot paths when unused,
keeping the default bit-flip pipeline byte-identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Protocol, runtime_checkable

__all__ = ["RankFailure", "TransitHook"]


@dataclass
class RankFailure:
    """One armed fail-stop: kill ``rank`` at scheduler step ``step``.

    ``fired``/``fired_step`` are written by the scheduler when the kill
    actually happens; a victim that finishes before ``step`` leaves the
    controller unfired (the scenario's ``activated=False`` analogue).
    """

    rank: int
    step: int
    fired: bool = False
    fired_step: int = -1


@runtime_checkable
class TransitHook(Protocol):
    """In-transit payload interposition (duck-typed; see module docs)."""

    def on_p2p(self, src: int, dst: int, payload: Any) -> Any:
        """Called once per point-to-point delivery; returns the payload."""
        ...

    def on_collective(self, kind: str, rank: int, payload: Any) -> Any:
        """Called once per per-rank collective delivery; returns the payload."""
        ...
