"""Collective-operation semantics over TArray / plain payloads.

Reductions over TArrays compute the golden and faulty paths with the
*same association order* (a single stacked numpy reduce per path), so
divergence of a reduced value reflects only genuinely different inputs,
never rounding noise between the two paths.  A diverged contribution
whose effect cancels in the reduction (absorbed by rounding) yields a
clean result — and therefore, per the value-based contamination model,
does *not* contaminate the receiving ranks.

Lane-batched payloads (:mod:`repro.taint.laneops`) reduce the same way
per lane: the per-rank lane stacks are stacked along a new leading rank
axis and reduced over it, so every lane sees exactly the association
order its scalar trial would have used (the lane axis rides along at
position 1 and does not participate in the reduction).
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from repro.errors import CommunicatorError
from repro.taint.tarray import TArray

__all__ = ["reduce_payloads", "payload_diverged", "payload_lane_divergence"]

_NUMPY_REDUCERS = {
    "sum": lambda stack: np.sum(stack, axis=0),
    "prod": lambda stack: np.prod(stack, axis=0),
    "max": lambda stack: np.max(stack, axis=0),
    "min": lambda stack: np.min(stack, axis=0),
}

_PYTHON_REDUCERS = {
    "sum": sum,
    "prod": lambda xs: int(np.prod(list(xs))) if all(isinstance(x, int) for x in xs) else float(np.prod(list(xs))),
    "max": max,
    "min": min,
}


def reduce_payloads(payloads: Sequence[Any], op: str) -> Any:
    """Reduce one payload per rank into a single result.

    TArray payloads reduce on both value paths; uniform plain payloads
    (ints/floats) reduce with Python semantics.
    """
    if not payloads:
        raise CommunicatorError("cannot reduce an empty payload list")
    if all(isinstance(p, TArray) for p in payloads):
        reducer = _NUMPY_REDUCERS[op]
        golden = reducer(np.stack([p.golden for p in payloads]))
        lane_sets = [p.lanes for p in payloads if p.lanes is not None]
        if lane_sets:
            ls0 = lane_sets[0]
            k = ls0.k
            fstack = reducer(np.stack([
                p.lanes.fstack if p.lanes is not None
                else np.broadcast_to(p.faulty, (k,) + p.faulty.shape)
                for p in payloads
            ]))
            gstack = None
            if any(ls.gstack is not None for ls in lane_sets):
                gstack = reducer(np.stack([
                    p.lanes.gstack
                    if p.lanes is not None and p.lanes.gstack is not None
                    else np.broadcast_to(p.golden, (k,) + p.golden.shape)
                    for p in payloads
                ]))
            return TArray.batched(golden, fstack, gstack, ls0.tracer)
        if not any(p.diverged for p in payloads):
            return TArray(golden)
        faulty = reducer(np.stack([p.faulty for p in payloads]))
        return TArray(golden, faulty)
    if any(isinstance(p, TArray) for p in payloads):
        raise CommunicatorError("reduction payloads mix TArray and plain values")
    return _PYTHON_REDUCERS[op](payloads)


def payload_diverged(payload: Any) -> bool:
    """Does ``payload`` (possibly nested) carry any diverged TArray?"""
    if isinstance(payload, TArray):
        return payload.diverged
    if isinstance(payload, dict):
        return any(payload_diverged(v) for v in payload.values())
    if isinstance(payload, (list, tuple)):
        return any(payload_diverged(v) for v in payload)
    return False


def payload_lane_divergence(payload: Any) -> list[int]:
    """Lanes for which ``payload`` carries any diverged shadow row.

    The per-lane analogue of :func:`payload_diverged`: lane ``i`` is
    listed exactly when a scalar run of trial ``i`` would have delivered
    a diverged payload here.  Divergence flags are cached per TArray at
    construction, so this is a cheap union.
    """
    lanes: set[int] = set()
    _collect_lane_divergence(payload, lanes)
    return sorted(lanes)


def _collect_lane_divergence(payload: Any, lanes: set[int]) -> None:
    if isinstance(payload, TArray):
        if payload.lanes is not None:
            ls = payload.lanes
            if ls.div.any():
                lanes.update(int(i) for i in np.nonzero(ls.div)[0])
    elif isinstance(payload, dict):
        for v in payload.values():
            _collect_lane_divergence(v, lanes)
    elif isinstance(payload, (list, tuple)):
        for v in payload:
            _collect_lane_divergence(v, lanes)
