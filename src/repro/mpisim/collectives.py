"""Collective-operation semantics over TArray / plain payloads.

Reductions over TArrays compute the golden and faulty paths with the
*same association order* (a single stacked numpy reduce per path), so
divergence of a reduced value reflects only genuinely different inputs,
never rounding noise between the two paths.  A diverged contribution
whose effect cancels in the reduction (absorbed by rounding) yields a
clean result — and therefore, per the value-based contamination model,
does *not* contaminate the receiving ranks.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from repro.errors import CommunicatorError
from repro.taint.tarray import TArray

__all__ = ["reduce_payloads", "payload_diverged"]

_NUMPY_REDUCERS = {
    "sum": lambda stack: np.sum(stack, axis=0),
    "prod": lambda stack: np.prod(stack, axis=0),
    "max": lambda stack: np.max(stack, axis=0),
    "min": lambda stack: np.min(stack, axis=0),
}

_PYTHON_REDUCERS = {
    "sum": sum,
    "prod": lambda xs: int(np.prod(list(xs))) if all(isinstance(x, int) for x in xs) else float(np.prod(list(xs))),
    "max": max,
    "min": min,
}


def reduce_payloads(payloads: Sequence[Any], op: str) -> Any:
    """Reduce one payload per rank into a single result.

    TArray payloads reduce on both value paths; uniform plain payloads
    (ints/floats) reduce with Python semantics.
    """
    if not payloads:
        raise CommunicatorError("cannot reduce an empty payload list")
    if all(isinstance(p, TArray) for p in payloads):
        reducer = _NUMPY_REDUCERS[op]
        golden = reducer(np.stack([p.golden for p in payloads]))
        if not any(p.diverged for p in payloads):
            return TArray(golden)
        faulty = reducer(np.stack([p.faulty for p in payloads]))
        return TArray(golden, faulty)
    if any(isinstance(p, TArray) for p in payloads):
        raise CommunicatorError("reduction payloads mix TArray and plain values")
    return _PYTHON_REDUCERS[op](payloads)


def payload_diverged(payload: Any) -> bool:
    """Does ``payload`` (possibly nested) carry any diverged TArray?"""
    if isinstance(payload, TArray):
        return payload.diverged
    if isinstance(payload, dict):
        return any(payload_diverged(v) for v in payload.values())
    if isinstance(payload, (list, tuple)):
        return any(payload_diverged(v) for v in payload)
    return False
