"""Per-rank communicator handle: builds requests for ``yield``."""

from __future__ import annotations

from typing import Any, Sequence

from repro.errors import CommunicatorError
from repro.mpisim.requests import (
    ANY,
    CollectiveKind,
    CollectiveRequest,
    RecvRequest,
    SendRecvRequest,
    SendRequest,
)

__all__ = ["Communicator"]

_REDUCTION_OPS = ("sum", "max", "min", "prod")


class Communicator:
    """The MPI-like API surface visible to one rank's program.

    Methods *construct request objects*; the program must ``yield`` them
    to the scheduler and read the operation's result from the yield
    expression (see :mod:`repro.mpisim`).
    """

    def __init__(self, rank: int, size: int):
        if not 0 <= rank < size:
            raise CommunicatorError(f"rank {rank} outside communicator of size {size}")
        self.rank = rank
        self.size = size

    # ------------------------------------------------------------------
    # point-to-point
    # ------------------------------------------------------------------
    def _check_peer(self, peer: int, what: str) -> int:
        if not 0 <= peer < self.size:
            raise CommunicatorError(f"{what} rank {peer} outside communicator of size {self.size}")
        return peer

    def send(self, dest: int, payload: Any, tag: int = 0) -> SendRequest:
        """Buffered send to ``dest`` (completes immediately)."""
        return SendRequest(rank=self.rank, dest=self._check_peer(dest, "destination"), tag=tag, payload=payload)

    def recv(self, source: "int | object" = ANY, tag: "int | object" = ANY) -> RecvRequest:
        """Blocking receive from ``source`` (or :data:`ANY`)."""
        if source is not ANY:
            self._check_peer(int(source), "source")  # type: ignore[arg-type]
        return RecvRequest(rank=self.rank, source=source, tag=tag)

    def sendrecv(
        self,
        dest: int,
        payload: Any,
        source: "int | object | None" = None,
        send_tag: int = 0,
        recv_tag: "int | object | None" = None,
    ) -> SendRecvRequest:
        """Fused exchange (like ``MPI_Sendrecv``); defaults to a pairwise
        swap with ``dest`` using the send tag."""
        if source is None:
            source = dest
        if recv_tag is None:
            recv_tag = send_tag
        if source is not ANY:
            self._check_peer(int(source), "source")  # type: ignore[arg-type]
        return SendRecvRequest(
            rank=self.rank,
            dest=self._check_peer(dest, "destination"),
            send_tag=send_tag,
            payload=payload,
            source=source,
            recv_tag=recv_tag,
        )

    # ------------------------------------------------------------------
    # collectives
    # ------------------------------------------------------------------
    def barrier(self) -> CollectiveRequest:
        return CollectiveRequest(rank=self.rank, kind=CollectiveKind.BARRIER)

    def bcast(self, payload: Any = None, root: int = 0) -> CollectiveRequest:
        """Broadcast ``payload`` from ``root``; non-roots pass None."""
        return CollectiveRequest(
            rank=self.rank, kind=CollectiveKind.BCAST,
            root=self._check_peer(root, "root"), payload=payload,
        )

    def reduce(self, payload: Any, op: str = "sum", root: int = 0) -> CollectiveRequest:
        """Reduce to ``root``; non-roots receive ``None``."""
        return CollectiveRequest(
            rank=self.rank, kind=CollectiveKind.REDUCE,
            root=self._check_peer(root, "root"), payload=payload, op=self._check_op(op),
        )

    def allreduce(self, payload: Any, op: str = "sum") -> CollectiveRequest:
        """Reduce and deliver the result to every rank."""
        return CollectiveRequest(
            rank=self.rank, kind=CollectiveKind.ALLREDUCE, payload=payload, op=self._check_op(op),
        )

    def gather(self, payload: Any, root: int = 0) -> CollectiveRequest:
        """Root receives the list of payloads in rank order."""
        return CollectiveRequest(
            rank=self.rank, kind=CollectiveKind.GATHER,
            root=self._check_peer(root, "root"), payload=payload,
        )

    def allgather(self, payload: Any) -> CollectiveRequest:
        """Every rank receives the list of payloads in rank order."""
        return CollectiveRequest(rank=self.rank, kind=CollectiveKind.ALLGATHER, payload=payload)

    def scatter(self, payloads: "Sequence[Any] | None" = None, root: int = 0) -> CollectiveRequest:
        """Root provides one payload per rank; each rank receives its own."""
        if self.rank == root:
            if payloads is None or len(payloads) != self.size:
                raise CommunicatorError(
                    f"scatter root must provide exactly {self.size} payloads"
                )
        return CollectiveRequest(
            rank=self.rank, kind=CollectiveKind.SCATTER,
            root=self._check_peer(root, "root"),
            payload=list(payloads) if payloads is not None else None,
        )

    def alltoall(self, payloads: Sequence[Any]) -> CollectiveRequest:
        """Each rank provides one payload per destination rank."""
        if len(payloads) != self.size:
            raise CommunicatorError(
                f"alltoall requires exactly {self.size} payloads, got {len(payloads)}"
            )
        return CollectiveRequest(
            rank=self.rank, kind=CollectiveKind.ALLTOALL, payload=list(payloads),
        )

    # ------------------------------------------------------------------
    @staticmethod
    def _check_op(op: str) -> str:
        if op not in _REDUCTION_OPS:
            raise CommunicatorError(f"unknown reduction op {op!r}; use one of {_REDUCTION_OPS}")
        return op
