"""A deterministic simulated MPI runtime for SPMD generator programs.

Each rank of an application is a Python generator that yields
*communication requests* built by its :class:`Communicator` handle and
receives the communication result at the yield point::

    def program(comm, fp):
        local_sum = fp.dot(x, x)
        total = yield comm.allreduce(local_sum, op="sum")
        ...
        return {"answer": total.value}

The :class:`Scheduler` advances all ranks, matching point-to-point
messages (eager/buffered sends, FIFO per channel, tag and source
wildcards) and collectives (bcast, reduce, allreduce, gather, allgather,
scatter, alltoall, barrier), and raises
:class:`repro.errors.DeadlockError` when no progress is possible — the
"hang" outcome of a fault-injection test.

Payloads are :class:`repro.taint.TArray` values (or plain Python data).
Whenever a delivered payload carries diverged data, the receiving rank
is reported to the tracer as *contaminated* — this implements the
paper's cross-process error-propagation profiling (Figs. 1–2): an error
spreads to another MPI process exactly when communicated values differ
from the fault-free execution.
"""

from repro.mpisim.requests import ANY, Request
from repro.mpisim.communicator import Communicator
from repro.mpisim.scheduler import Scheduler
from repro.mpisim.runner import execute_spmd

__all__ = ["ANY", "Request", "Communicator", "Scheduler", "execute_spmd"]
