"""Request objects yielded by SPMD rank generators to the scheduler."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any

__all__ = ["ANY", "CollectiveKind", "Request", "SendRequest", "RecvRequest", "CollectiveRequest"]


class _Wildcard:
    """Singleton wildcard for source/tag matching (like MPI_ANY_SOURCE)."""

    _instance: "_Wildcard | None" = None

    def __new__(cls) -> "_Wildcard":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "ANY"


ANY = _Wildcard()


class CollectiveKind(enum.Enum):
    BARRIER = "barrier"
    BCAST = "bcast"
    REDUCE = "reduce"
    ALLREDUCE = "allreduce"
    GATHER = "gather"
    ALLGATHER = "allgather"
    SCATTER = "scatter"
    ALLTOALL = "alltoall"


@dataclass
class Request:
    """Base class; the scheduler dispatches on the concrete type."""

    rank: int


@dataclass
class SendRequest(Request):
    """Eager (buffered) send: completes immediately, payload is enqueued."""

    dest: int
    tag: int
    payload: Any


@dataclass
class RecvRequest(Request):
    """Blocking receive; ``source``/``tag`` may be :data:`ANY`."""

    source: "int | _Wildcard"
    tag: "int | _Wildcard"

    def matches(self, source: int, tag: int) -> bool:
        return (self.source is ANY or self.source == source) and (
            self.tag is ANY or self.tag == tag
        )


@dataclass
class SendRecvRequest(Request):
    """Fused exchange: eager send plus blocking receive in one yield."""

    dest: int
    send_tag: int
    payload: Any
    source: "int | _Wildcard"
    recv_tag: "int | _Wildcard"

    def recv_part(self) -> RecvRequest:
        return RecvRequest(rank=self.rank, source=self.source, tag=self.recv_tag)


@dataclass
class CollectiveRequest(Request):
    """One rank's participation in a collective operation."""

    kind: CollectiveKind
    root: int | None = None
    payload: Any = None
    op: str | None = None    # reduction operator for (all)reduce
