"""IEEE-754 single-bit flips — the paper's fault model.

The fault model (paper §2) is a single bit flip in one operand of a
randomly selected dynamic floating-point instruction.  This module
implements the flip itself: reinterpret a float's storage as an unsigned
integer, XOR one bit, reinterpret back.  Flips are exact involutions
(flipping the same bit twice restores the original datum, including NaN
payloads and signed zeros), which the campaign layer relies on.

Supported dtypes are ``float64`` (the default compute type of every
mini-app) and ``float32``.
"""

from __future__ import annotations

import enum

import numpy as np

__all__ = [
    "BitField",
    "classify_bit",
    "flip_bit_array",
    "flip_bit_scalar",
    "float_to_bits",
    "bits_to_float",
    "bit_width",
]

_UINT_FOR = {
    np.dtype(np.float64): np.dtype(np.uint64),
    np.dtype(np.float32): np.dtype(np.uint32),
}

#: (mantissa bits, exponent bits) per supported float dtype.
_LAYOUT = {
    np.dtype(np.float64): (52, 11),
    np.dtype(np.float32): (23, 8),
}


class BitField(enum.Enum):
    """Which IEEE-754 field a bit position falls into."""

    MANTISSA = "mantissa"
    EXPONENT = "exponent"
    SIGN = "sign"


def _uint_dtype(dtype: np.dtype) -> np.dtype:
    try:
        return _UINT_FOR[np.dtype(dtype)]
    except KeyError:
        raise TypeError(f"unsupported float dtype for bit flips: {dtype}") from None


def bit_width(dtype: np.dtype) -> int:
    """Number of storage bits for ``dtype`` (64 or 32)."""
    return np.dtype(dtype).itemsize * 8


def classify_bit(bit: int, dtype: np.dtype = np.dtype(np.float64)) -> BitField:
    """Classify bit position ``bit`` (0 = LSB of mantissa) for ``dtype``."""
    mant, expo = _LAYOUT[np.dtype(dtype)]
    width = mant + expo + 1
    if not 0 <= bit < width:
        raise ValueError(f"bit must be in [0, {width}), got {bit}")
    if bit < mant:
        return BitField.MANTISSA
    if bit < mant + expo:
        return BitField.EXPONENT
    return BitField.SIGN


def float_to_bits(value: float, dtype: np.dtype = np.dtype(np.float64)) -> int:
    """Return the raw storage bits of ``value`` as a Python int."""
    dtype = np.dtype(dtype)
    return int(np.asarray(value, dtype=dtype).view(_uint_dtype(dtype)))


def bits_to_float(bits: int, dtype: np.dtype = np.dtype(np.float64)) -> float:
    """Inverse of :func:`float_to_bits`."""
    dtype = np.dtype(dtype)
    return float(np.asarray(bits, dtype=_uint_dtype(dtype)).view(dtype))


def flip_bit_scalar(value: float, bit: int, dtype: np.dtype = np.dtype(np.float64)) -> float:
    """Flip one bit of a scalar float and return the perturbed value.

    ``bit`` counts from 0 (mantissa LSB) to ``bit_width - 1`` (sign bit).
    """
    dtype = np.dtype(dtype)
    width = bit_width(dtype)
    if not 0 <= bit < width:
        raise ValueError(f"bit must be in [0, {width}), got {bit}")
    return bits_to_float(float_to_bits(value, dtype) ^ (1 << bit), dtype)


def flip_bit_array(array: np.ndarray, flat_index: int, bit: int) -> np.ndarray:
    """Return a copy of ``array`` with one bit flipped at ``flat_index``.

    The input is never modified; campaigns keep the golden operand intact
    and hand the perturbed copy to the faulty execution path.
    """
    arr = np.asarray(array)
    udt = _uint_dtype(arr.dtype)
    if not 0 <= flat_index < arr.size:
        raise IndexError(f"flat_index {flat_index} out of range for size {arr.size}")
    width = bit_width(arr.dtype)
    if not 0 <= bit < width:
        raise ValueError(f"bit must be in [0, {width}), got {bit}")
    out = np.array(arr, copy=True)
    flat = out.reshape(-1).view(udt)
    flat[flat_index] ^= udt.type(1) << udt.type(bit)
    return out
