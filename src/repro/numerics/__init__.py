"""Low-level numerics: IEEE-754 bit manipulation for fault injection."""

from repro.numerics.bits import (
    BitField,
    classify_bit,
    flip_bit_array,
    flip_bit_scalar,
    float_to_bits,
    bits_to_float,
)

__all__ = [
    "BitField",
    "classify_bit",
    "flip_bit_array",
    "flip_bit_scalar",
    "float_to_bits",
    "bits_to_float",
]
