"""Figures 1 and 2: error propagation across MPI processes, CG and FT.

For each app, three series:
(a) the contaminated-process histogram at the small scale (8 ranks),
(b) the histogram at the large scale (64 ranks), and
(c) the 64 cases aggregated into eight groups — the vector the paper
    compares with (a) via cosine similarity.
"""

from __future__ import annotations

from repro.apps import get_app
from repro.experiments.common import default_trials, measured_campaign, small_campaign
from repro.model.propagation import PropagationProfile, group_histogram
from repro.model.similarity import cosine_similarity
from repro.utils.tables import format_table

__all__ = ["run"]

SMALL, LARGE = 8, 64


def run(
    trials: int | None = None,
    seed: int = 0,
    quiet: bool = False,
    apps: tuple[str, ...] = ("cg", "ft"),
    small: int = SMALL,
    large: int = LARGE,
) -> dict:
    """Regenerate Fig. 1 (CG) and Fig. 2 (FT)."""
    trials = default_trials(trials)
    out: dict[str, dict] = {}
    for name in apps:
        app = get_app(name)
        small_profile = PropagationProfile.from_campaign(
            small_campaign(app, small, trials, seed)
        )
        large_profile = PropagationProfile.from_campaign(
            measured_campaign(app, large, trials, seed)
        )
        grouped = group_histogram(large_profile, small)
        cos = cosine_similarity(small_profile.as_array(), grouped)
        out[name] = {
            "small": small_profile.as_array().tolist(),
            "large": large_profile.as_array().tolist(),
            "grouped": grouped.tolist(),
            "cosine": cos,
        }
        if not quiet:
            rows = [
                (
                    g + 1,
                    small_profile.as_array()[g],
                    grouped[g],
                )
                for g in range(small)
            ]
            print(
                format_table(
                    ["group", f"(a) {small}-rank profile", f"(c) {large}->{small} grouped"],
                    rows,
                    title=(
                        f"Figure {'1' if name == 'cg' else '2'} — {name.upper()} error "
                        f"propagation (cosine similarity {cos:.3f})"
                    ),
                )
            )
            nz = {i + 1: round(float(v), 4) for i, v in enumerate(large_profile.as_array()) if v > 0}
            print(f"(b) raw {large}-rank histogram (nonzero cases): {nz}\n")
    return out
