"""Section 1 motivation: why injecting at scale is expensive.

The paper measures, for CG with four MPI processes vs serial, 74.5 %
more dynamic instructions under instrumentation and 58 % more F-SEFI
fault-injection time.  On our substrate the *application* FP work is
conserved across scales by construction (the reduce-scatter combination
adds exactly replace serial row-sum adds), so the instruction-growth
analogue is the number of runtime events the injector must process
(compute bursts between communication) — and the headline remains the
fault-injection wall-time growth, which we measure directly.
"""

from __future__ import annotations

from repro.apps import get_app
from repro.experiments.common import default_trials
from repro.fi.cache import cached_campaign
from repro.fi.campaign import Deployment
from repro.mpisim.communicator import Communicator
from repro.mpisim.scheduler import Scheduler
from repro.taint.ops import FPOps
from repro.utils.tables import format_table

__all__ = ["run"]


def _execution_events(app, nprocs: int) -> int:
    """Scheduler events of one fault-free run (instrumentation load)."""
    def factory(rank: int, comm: Communicator):
        return app.program(rank, nprocs, comm, FPOps(None, rank))

    scheduler = Scheduler(nprocs, factory)
    scheduler.run()
    return scheduler.steps


def run(trials: int | None = None, seed: int = 0, quiet: bool = False) -> dict:
    """Regenerate the CG serial-vs-4-process overhead comparison."""
    trials = default_trials(trials)
    app = get_app("cg")
    serial = cached_campaign(app, Deployment(nprocs=1, trials=trials, seed=seed + 10_001))
    par4 = cached_campaign(app, Deployment(nprocs=4, trials=trials, seed=seed + 20_004))
    ev1, ev4 = _execution_events(app, 1), _execution_events(app, 4)

    def growth(new, old):
        return new / old - 1.0 if old else float("nan")

    out = {
        "serial_instructions": serial.total_instructions,
        "par4_instructions": par4.total_instructions,
        "instruction_growth": growth(par4.total_instructions, serial.total_instructions),
        "serial_events": ev1,
        "par4_events": ev4,
        "event_growth": growth(ev4, ev1),
        "serial_injection_time": serial.injection_time,
        "par4_injection_time": par4.injection_time,
        "injection_time_growth": growth(par4.injection_time, serial.injection_time),
    }
    if not quiet:
        rows = [
            ("dynamic FP instructions", serial.total_instructions,
             par4.total_instructions,
             f"+{100 * out['instruction_growth']:.1f}%"),
            ("runtime events to instrument", ev1, ev4,
             f"+{100 * out['event_growth']:.1f}%"),
            ("fault-injection time (s)", round(serial.injection_time, 2),
             round(par4.injection_time, 2),
             f"+{100 * out['injection_time_growth']:.1f}%"),
        ]
        print(
            format_table(
                ["metric", "serial", "4 processes", "growth"],
                rows,
                title="Motivation (paper §1) — CG instrumentation overhead",
            )
        )
        print(
            "note: application FP instruction count is conserved across "
            "scales on this substrate; the paper's 74.5% instruction growth "
            "includes MPI-library/system instructions (see EXPERIMENTS.md)."
        )
    return out
