"""Table 1: share of parallel-unique computation at four MPI processes.

Paper values for orientation: CG S 1.6 % / B 0.27 %, FT S 10.4 % /
B 17.7 %, MG none, LU none, MiniFE 1.54 % / 0.68 %, PENNANT none.
Our proxy is the parallel-unique share of traced candidate instructions
(see DESIGN.md's substitution table).
"""

from __future__ import annotations

from repro.apps import get_app
from repro.experiments.common import unique_fraction_stats
from repro.obs.confidence import wilson_interval
from repro.utils.tables import format_table

__all__ = ["run", "CONFIGS"]

CONFIGS = [
    ("CG (Class S-like)", "cg"),
    ("CG (Class B-like)", "cg.classb"),
    ("FT (Class S-like)", "ft"),
    ("FT (Class B-like)", "ft.classb"),
    ("MG", "mg"),
    ("LU", "lu"),
    ("MiniFE (small)", "minife"),
    ("MiniFE (large)", "minife.large"),
    ("PENNANT (leblanc)", "pennant"),
]


def run(trials: int | None = None, seed: int = 0, quiet: bool = False) -> dict:
    """Regenerate Table 1 (profiling only — no injection trials needed)."""
    nprocs = 4
    rows = []
    fractions: dict[str, float] = {}
    for label, name in CONFIGS:
        frac, candidates = unique_fraction_stats(get_app(name), nprocs)
        fractions[name] = frac
        if frac > 0:
            share = f"{100 * frac:.2f}%"
            # uncertainty of the share seen as a sampled proportion: a
            # uniformly drawn candidate instruction is parallel-unique
            # with probability `frac` out of `candidates` draws.
            ci = (
                wilson_interval(round(frac * candidates), candidates)
                .format(as_percent=True)
                if candidates > 0 else "n/a"
            )
        else:
            share, ci = "No parallel-unique comp", "—"
        rows.append((label, share, ci))
    if not quiet:
        print(
            format_table(
                ["Benchmark", "Parallel-unique share (p=4)", "95% CI"],
                rows,
                title="Table 1 — percentage of parallel-unique computation",
            )
        )
    return {"nprocs": nprocs, "fractions": fractions}
