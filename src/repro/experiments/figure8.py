"""Figure 8: modeling accuracy vs fault-injection cost across scales.

Sweeps the small-scale size S in {4, 8, 16, 32}; for each S, predicts
all six benchmarks at 64 ranks and reports (a) the RMSE of the success-
rate predictions (Eq. 9) and (b) the fault-injection wall time of the
S-rank campaign, normalized to serial injection time.  The paper finds
accuracy improves and cost grows with S, balancing around S = 16.
"""

from __future__ import annotations

from repro.apps import get_app, paper_apps
from repro.experiments.common import (
    build_predictor,
    default_trials,
    measured_campaign,
    small_campaign,
)
from repro.fi.cache import cached_campaign
from repro.fi.campaign import Deployment
from repro.model.metrics import rmse
from repro.model.result import FaultInjectionResult
from repro.utils.tables import format_table

__all__ = ["run"]

TARGET = 64
SCALES = (4, 8, 16, 32)


def run(
    trials: int | None = None,
    seed: int = 0,
    quiet: bool = False,
    scales: tuple[int, ...] = SCALES,
    target: int = TARGET,
    apps: list[str] | None = None,
) -> dict:
    """Regenerate Fig. 8 (RMSE and normalized injection time per S)."""
    trials = default_trials(trials)
    apps = apps or paper_apps()

    # serial-injection baseline time per app (single-error deployments)
    serial_times: dict[str, float] = {}
    for name in apps:
        dep = Deployment(nprocs=1, trials=trials, seed=seed + 10_001)
        serial_times[name] = cached_campaign(get_app(name), dep).injection_time

    rows = []
    out: dict[int, dict] = {}
    for s in scales:
        pairs = []
        time_ratios = []
        for name in apps:
            predictor = build_predictor(
                name, small_nprocs=s, target_nprocs=target, trials=trials, seed=seed
            )
            predicted = predictor.predict(target)
            measured = FaultInjectionResult.from_campaign(
                measured_campaign(get_app(name), target, trials, seed)
            )
            pairs.append((predicted, measured))
            small = small_campaign(get_app(name), s, trials, seed)
            time_ratios.append(small.injection_time / max(serial_times[name], 1e-9))
        value = rmse(pairs)
        mean_ratio = sum(time_ratios) / len(time_ratios)
        out[s] = {"rmse": value, "normalized_time": mean_ratio}
        rows.append((s, value, mean_ratio))
    if not quiet:
        print(
            format_table(
                ["small scale S", "RMSE (success rate)", "FI time / serial"],
                rows,
                title="Figure 8 — accuracy vs fault-injection cost",
            )
        )
    return out
