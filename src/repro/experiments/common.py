"""Shared orchestration for the experiment harnesses.

Centralizes trial counts, seeds per campaign role, cached campaign
construction, and assembly of :class:`PredictionInputs` for an app.
"""

from __future__ import annotations

import os
import sys

from repro.apps import get_app
from repro.apps.base import AppSpec
from repro.fi.cache import (
    cached_campaign,
    load_unique_fraction_stats,
    store_unique_fraction,
)
from repro.fi.campaign import CampaignResult, Deployment
from repro.fi.tracer import Tracer, TracerMode
from repro.model.predictor import PredictionInputs, ResiliencePredictor
from repro.model.result import FaultInjectionResult
from repro.model.sampling import SerialSamplePlan
from repro.mpisim.runner import execute_spmd
from repro.taint.region import Region

__all__ = [
    "default_trials",
    "serial_sample_results",
    "small_campaign",
    "measured_campaign",
    "unique_campaign",
    "unique_fraction",
    "unique_fraction_stats",
    "build_predictor",
]

#: Seed offsets per campaign role keep random streams independent.
_SEED_SERIAL = 10_000
_SEED_SMALL = 20_000
_SEED_UNIQUE = 30_000
_SEED_MEASURED = 40_000


def default_trials(trials: int | None = None) -> int:
    """Trials per deployment: arg > $REPRO_TRIALS > 300.

    The paper runs 4000 tests per deployment; 300 keeps the full harness
    tractable on one machine while the binomial CI (about +/- 5 pp at
    300 trials) stays small against the effects being measured.  Export
    ``REPRO_TRIALS=4000`` for a paper-strength run.
    """
    if trials is not None:
        return trials
    raw = os.environ.get("REPRO_TRIALS", "300")
    try:
        return int(raw)
    except ValueError:
        print(
            f"repro: warning: malformed REPRO_TRIALS={raw!r}; "
            f"using the default of 300 trials",
            file=sys.stderr,
        )
        return 300


# ----------------------------------------------------------------------
# campaign builders (all cached)
# ----------------------------------------------------------------------
def serial_sample_results(
    app: AppSpec, target_nprocs: int, n_samples: int, trials: int, seed: int = 0,
    jobs: int | None = None, checkpoint_every: int | None = None,
    ci_halfwidth: float | None = None, scenario: str | None = None,
    backend: str | None = None,
) -> dict[int, FaultInjectionResult]:
    """FI_ser_x at the sample plan's cases (multi-error serial runs)."""
    plan = SerialSamplePlan(large_nprocs=target_nprocs, n_samples=n_samples)
    out: dict[int, FaultInjectionResult] = {}
    for x in plan.sample_cases:
        dep = Deployment(
            nprocs=1, trials=trials, n_errors=x, region=Region.COMMON,
            seed=seed + _SEED_SERIAL + x, jobs=jobs,
            checkpoint_every=checkpoint_every, ci_halfwidth=ci_halfwidth,
            scenario=scenario, backend=backend,
        )
        out[x] = FaultInjectionResult.from_campaign(cached_campaign(app, dep))
    return out


def small_campaign(
    app: AppSpec, nprocs: int, trials: int, seed: int = 0,
    jobs: int | None = None, checkpoint_every: int | None = None,
    ci_halfwidth: float | None = None, scenario: str | None = None,
    backend: str | None = None,
) -> CampaignResult:
    """Single-error campaign at a small scale (propagation + alpha input)."""
    dep = Deployment(
        nprocs=nprocs, trials=trials, seed=seed + _SEED_SMALL + nprocs,
        jobs=jobs, checkpoint_every=checkpoint_every,
        ci_halfwidth=ci_halfwidth, scenario=scenario, backend=backend,
    )
    return cached_campaign(app, dep)


def measured_campaign(
    app: AppSpec, nprocs: int, trials: int, seed: int = 0,
    jobs: int | None = None, checkpoint_every: int | None = None,
    ci_halfwidth: float | None = None, scenario: str | None = None,
    backend: str | None = None,
) -> CampaignResult:
    """Ground-truth campaign at the target scale (for accuracy figures)."""
    dep = Deployment(
        nprocs=nprocs, trials=trials, seed=seed + _SEED_MEASURED + nprocs,
        jobs=jobs, checkpoint_every=checkpoint_every,
        ci_halfwidth=ci_halfwidth, scenario=scenario, backend=backend,
    )
    return cached_campaign(app, dep)


def unique_campaign(
    app: AppSpec, nprocs: int, trials: int, seed: int = 0,
    jobs: int | None = None, checkpoint_every: int | None = None,
    ci_halfwidth: float | None = None, scenario: str | None = None,
    backend: str | None = None,
) -> CampaignResult:
    """Campaign with every error forced into the parallel-unique region."""
    dep = Deployment(
        nprocs=nprocs, trials=trials, region=Region.PARALLEL_UNIQUE,
        seed=seed + _SEED_UNIQUE + nprocs, jobs=jobs,
        checkpoint_every=checkpoint_every, ci_halfwidth=ci_halfwidth,
        scenario=scenario, backend=backend,
    )
    return cached_campaign(app, dep)


_fraction_cache: dict[tuple[str, int], tuple[float, int]] = {}


def unique_fraction_stats(app: AppSpec, nprocs: int) -> tuple[float, int]:
    """``(parallel-unique share, candidate instructions)`` at ``nprocs``.

    One fault-free profiling run — no injection, so obtaining it even at
    the target scale is cheap (the paper's hardware constraint concerns
    the thousands of injection runs, not one profile; it estimates the
    equivalent execution-time weights with a performance model).  The
    candidate count is the share's denominator, used for confidence
    intervals on the measured proportion.

    Results are memoized in-process and persisted to the disk cache, so
    target-scale profiling (p=64/128) happens once per cache lifetime,
    not once per fresh process.
    """
    key = (app.cache_key(), nprocs)
    if key not in _fraction_cache:
        stats = load_unique_fraction_stats(app, nprocs)
        if stats is None:
            tracer = Tracer(TracerMode.PROFILE)
            execute_spmd(app.program, nprocs, sink=tracer)
            profile = tracer.profile
            fraction = profile.parallel_unique_fraction()
            candidates = sum(profile.candidates(r) for r in profile.ranks)
            store_unique_fraction(app, nprocs, fraction, candidates)
            stats = (fraction, candidates)
        _fraction_cache[key] = stats
    return _fraction_cache[key]


def unique_fraction(app: AppSpec, nprocs: int) -> float:
    """Parallel-unique candidate-instruction share at ``nprocs``."""
    return unique_fraction_stats(app, nprocs)[0]


# ----------------------------------------------------------------------
def build_predictor(
    app_name: str,
    small_nprocs: int,
    target_nprocs: int,
    trials: int | None = None,
    seed: int = 0,
    n_samples: int | None = None,
    prob2_mode: str = "profile",
    unique_threshold: float = 0.02,
    jobs: int | None = None,
    checkpoint_every: int | None = None,
    ci_halfwidth: float | None = None,
    backend: str | None = None,
) -> ResiliencePredictor:
    """Assemble every model input for ``app_name`` and return a predictor.

    ``prob2_mode``:
      * ``"profile"`` (default) — measure the parallel-unique share with
        one fault-free profiling run at the target scale;
      * ``"extrapolate"`` — fit the shares measured at small scales
        against log2(p) (no run at the target scale at all).

    ``ci_halfwidth`` plans the whole sampling sweep — every serial
    multi-error case x = 1 … p plus the small-scale campaigns — as one
    precision budget: each deployment keeps ``trials`` as its cap but
    stops as soon as its outcome rates hit the target half-width, so the
    sweep's trials concentrate on whichever x values are still noisy
    (see ``docs/adaptive.md``).
    """
    app = get_app(app_name)
    trials = default_trials(trials)
    n_samples = n_samples or small_nprocs

    serial = serial_sample_results(
        app, target_nprocs, n_samples, trials, seed, jobs=jobs,
        checkpoint_every=checkpoint_every, ci_halfwidth=ci_halfwidth,
        backend=backend,
    )
    small = small_campaign(
        app, small_nprocs, trials, seed, jobs=jobs,
        checkpoint_every=checkpoint_every, ci_halfwidth=ci_halfwidth,
        backend=backend,
    )
    probe_dep = Deployment(
        nprocs=1, trials=trials, n_errors=small_nprocs, region=Region.COMMON,
        seed=seed + _SEED_SERIAL + small_nprocs, jobs=jobs,
        checkpoint_every=checkpoint_every, ci_halfwidth=ci_halfwidth,
        backend=backend,
    )
    probe = FaultInjectionResult.from_campaign(cached_campaign(app, probe_dep))

    fractions = {small_nprocs: unique_fraction(app, small_nprocs)}
    if prob2_mode == "profile":
        fractions[target_nprocs] = unique_fraction(app, target_nprocs)
    elif prob2_mode == "extrapolate":
        # a second small point anchors the log2(p) fit
        other = max(2, small_nprocs // 2)
        fractions[other] = unique_fraction(app, other)
    else:
        raise ValueError(f"unknown prob2_mode {prob2_mode!r}")

    unique_result = None
    if fractions[small_nprocs] > 0.0 and max(fractions.values()) >= unique_threshold:
        unique_result = FaultInjectionResult.from_campaign(
            unique_campaign(
                app, small_nprocs, trials, seed, jobs=jobs,
                checkpoint_every=checkpoint_every, ci_halfwidth=ci_halfwidth,
                backend=backend,
            )
        )

    inputs = PredictionInputs(
        serial_samples=serial,
        small_campaign=small,
        unique_result=unique_result,
        unique_fractions=fractions,
        serial_probe=probe,
    )
    return ResiliencePredictor(inputs, unique_ignore_below=unique_threshold)
