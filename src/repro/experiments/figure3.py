"""Figure 3: serial multi-error injection vs parallel contamination.

For each benchmark: the success rate of serial execution with x errors
injected into the common computation, against the success rate of the
8-process execution conditioned on x processes being contaminated
(x = 1..8).  Missing parallel entries mean no test contaminated exactly
x processes (the paper's missing bars, e.g. LU's cases 2-6).

This is the empirical basis of Observation 4 and the Eq. 2/4 emulation.
"""

from __future__ import annotations

from repro.apps import get_app, paper_apps
from repro.experiments.common import default_trials, small_campaign
from repro.fi.cache import cached_campaign
from repro.fi.campaign import Deployment
from repro.model.result import FaultInjectionResult, result_given_contaminated
from repro.taint.region import Region
from repro.utils.tables import format_table

__all__ = ["run"]

NPROCS = 8


def run(trials: int | None = None, seed: int = 0, quiet: bool = False) -> dict:
    """Regenerate Fig. 3 (success-rate curves, tabulated)."""
    trials = default_trials(trials)
    out: dict[str, dict] = {}
    for name in paper_apps():
        app = get_app(name)
        serial_curve: list[float] = []
        for x in range(1, NPROCS + 1):
            dep = Deployment(
                nprocs=1, trials=trials, n_errors=x, region=Region.COMMON,
                seed=seed + 10_000 + x,
            )
            serial_curve.append(
                FaultInjectionResult.from_campaign(cached_campaign(app, dep)).success
            )
        parallel = small_campaign(app, NPROCS, trials, seed)
        parallel_curve: list[float | None] = []
        for x in range(1, NPROCS + 1):
            cond = result_given_contaminated(parallel, x)
            parallel_curve.append(None if cond is None else cond.success)
        out[name] = {"serial": serial_curve, "parallel": parallel_curve}
        if not quiet:
            rows = [
                (
                    x,
                    serial_curve[x - 1],
                    "-" if parallel_curve[x - 1] is None else f"{parallel_curve[x-1]:.3f}",
                )
                for x in range(1, NPROCS + 1)
            ]
            print(
                format_table(
                    ["x", "serial, x errors", f"parallel ({NPROCS}p), x contaminated"],
                    rows,
                    title=f"Figure 3 — {name.upper()} success rates",
                )
            )
            print()
    return out
