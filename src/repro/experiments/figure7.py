"""Figure 7: modeling accuracy at 128 MPI processes (CG and FT).

The paper could not afford injection beyond 128 processes; it reports
prediction errors of at most 7 % (serial + 4 ranks) and 6 % (serial +
8 ranks) for CG and FT at 128.
"""

from __future__ import annotations

from repro.experiments.figure56 import accuracy_for_small_scale
from repro.utils.tables import format_table

__all__ = ["run"]

TARGET = 128
APPS = ["cg", "ft"]


def run(trials: int | None = None, seed: int = 0, quiet: bool = False) -> dict:
    """Regenerate Fig. 7."""
    out: dict[str, dict] = {}
    for small in (4, 8):
        out[f"serial+{small}procs"] = accuracy_for_small_scale(
            small, target_nprocs=TARGET, trials=trials, seed=seed, apps=APPS
        )
    if not quiet:
        rows = []
        for label, results in out.items():
            for name, r in results.items():
                rows.append(
                    (
                        label,
                        name.upper(),
                        r["predicted"].success,
                        r["measured"].success,
                        100 * r["error"],
                    )
                )
        print(
            format_table(
                ["predictor", "Benchmark", "predicted", "measured", "error (pp)"],
                rows,
                title=f"Figure 7 — predicting {TARGET} MPI processes",
            )
        )
    return out
