"""Table 2: cosine similarity of propagation profiles, small vs large.

"4V64" compares the 4-rank profile against the 64-rank histogram
aggregated into 4 groups; "8V64" likewise with 8.  Paper: all values
close to 1 except CG 4V64 (0.122) and LU 4V64 (0.638), where the
4-process execution propagates in almost every test while the 64-process
one often stays within one process.
"""

from __future__ import annotations

from repro.apps import get_app, paper_apps
from repro.experiments.common import default_trials, measured_campaign, small_campaign
from repro.model.propagation import PropagationProfile, group_histogram
from repro.model.similarity import cosine_similarity
from repro.utils.tables import format_table

__all__ = ["run"]

LARGE = 64


def run(
    trials: int | None = None,
    seed: int = 0,
    quiet: bool = False,
    large: int = LARGE,
    smalls: tuple[int, ...] = (4, 8),
    apps: list[str] | None = None,
) -> dict:
    """Regenerate Table 2 for the six-benchmark evaluation set."""
    trials = default_trials(trials)
    rows = []
    values: dict[str, float] = {}
    for name in apps or paper_apps():
        app = get_app(name)
        large_profile = PropagationProfile.from_campaign(
            measured_campaign(app, large, trials, seed)
        )
        for small_p in smalls:
            small = PropagationProfile.from_campaign(
                small_campaign(app, small_p, trials, seed)
            )
            cos = cosine_similarity(
                small.as_array(), group_histogram(large_profile, small_p)
            )
            key = f"{name} ({small_p}V{large})"
            values[key] = cos
            rows.append((key, cos))
    if not quiet:
        print(
            format_table(
                ["Benchmark", "Cosine similarity"],
                rows,
                title="Table 2 — propagation similarity between scales",
            )
        )
    return {"large": large, "values": values}
