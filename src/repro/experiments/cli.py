"""Command-line entry point: ``python -m repro.experiments <name>``."""

from __future__ import annotations

import argparse
import importlib
import sys
import time

from repro.experiments import EXPERIMENTS

__all__ = ["main"]


def main(argv: list[str] | None = None) -> int:
    """Entry point for ``python -m repro.experiments`` / ``repro-experiments``."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        choices=EXPERIMENTS + ["all"],
        help="which table/figure to regenerate",
    )
    parser.add_argument(
        "--trials", type=int, default=None,
        help="fault-injection tests per deployment (default: $REPRO_TRIALS or 300; "
             "the paper uses 4000)",
    )
    parser.add_argument("--seed", type=int, default=0, help="master seed")
    args = parser.parse_args(argv)

    names = EXPERIMENTS if args.experiment == "all" else [args.experiment]
    for name in names:
        module = importlib.import_module(f"repro.experiments.{name}")
        t0 = time.perf_counter()
        module.run(trials=args.trials, seed=args.seed)
        print(f"[{name} done in {time.perf_counter() - t0:.1f}s]\n")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
