"""Command-line entry point: ``python -m repro.experiments <name>``.

Besides the experiment harnesses, the CLI wires the observability layer
(:mod:`repro.obs`) into every run:

* ``--trace-out PATH`` writes a JSONL event trace of the run;
* ``--progress`` paints a throttled live progress line on stderr (with
  a wall-clock ETA once a rate is established);
* ``--metrics-summary`` prints counters/histograms/span totals at exit;
* ``--serve-obs PORT`` (or ``$REPRO_OBS_PORT``) serves live telemetry —
  ``/metrics``, ``/events``, and an auto-refreshing dashboard at ``/`` —
  while the run executes (see docs/observability.md);
* ``--profile`` turns on the deterministic hot-path profiler;
* ``obs-report PATH`` renders a previously written trace into per-phase
  time/throughput and outcome tables;
* ``obs-profile PATH`` renders the per-(phase, op, rank) hot-path
  attribution recorded by ``--profile``;
* ``--timeline`` turns on causal tracing (deterministic W3C-style
  trace/span ids over campaign → wave → chunk → trial → checkpoint);
* ``obs-timeline PATH`` reports worker utilization from a traced run and
  exports Chrome (Perfetto-loadable) and OTLP-shaped JSON timelines.

``--jobs N`` fans every campaign's trials over N worker processes
(deterministic: results are bit-identical to serial; see
docs/performance.md).  ``--lanes N`` batches N trials into each
lane-vectorized pass through the application — also bit-identical, and
freely combined with ``--jobs``.  ``--checkpoint-every N`` makes campaign progress
durable every N trials, and ``--resume`` restarts an interrupted run
from its last checkpoint (see docs/engine.md).  ``--ci-halfwidth H``
turns every campaign adaptive: ``--trials`` becomes a cap and each
deployment stops as soon as its outcome rates reach the requested 95%
Wilson half-width (see docs/adaptive.md).  ``--scenario NAME[:k=v,...]``
selects the fault-scenario family injected per trial — ``bitflip`` (the
default), ``rankkill``, or ``msgcorrupt`` (see docs/scenarios.md).
``--backend SPEC`` pins where chunks execute — ``inline``, ``process``,
or ``distributed:host:port``, a controller socket that ``repro-worker``
processes connect to (see docs/distributed.md).
"""

from __future__ import annotations

import argparse
import importlib
import os
import sys
import time
from pathlib import Path

from repro.experiments import EXPERIMENTS

__all__ = ["main"]


class _SkipCounter:
    """Deduplicates ``load_trace`` partial-line warnings per file.

    ``load_trace`` calls ``on_skip`` once per undecodable line with a
    ``{path}:{lineno}: ...`` message; a heavily truncated file would
    spray hundreds of identical warnings.  This callable tallies them
    and :meth:`flush` prints one summary line per file instead.
    """

    def __init__(self, prog: str):
        self._prog = prog
        self._counts: dict[str, int] = {}

    def __call__(self, message: str) -> None:
        path = message.rsplit(":", 2)[0]
        self._counts[path] = self._counts.get(path, 0) + 1

    def flush(self) -> None:
        for path, n in self._counts.items():
            noun = "line" if n == 1 else "lines"
            print(
                f"{self._prog}: warning: {path}: skipped {n} "
                f"partial/corrupt {noun}",
                file=sys.stderr,
            )
        self._counts.clear()


def _obs_report(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments obs-report",
        description="Render a JSONL observability trace into summary tables.",
    )
    parser.add_argument("path", help="trace file written with --trace-out")
    args = parser.parse_args(argv)
    from repro.obs import load_trace, render_trace_report

    skips = _SkipCounter("obs-report")
    try:
        events = load_trace(args.path, on_skip=skips)
    except (FileNotFoundError, IsADirectoryError):
        print(f"obs-report: no such trace file: {args.path}", file=sys.stderr)
        return 2
    skips.flush()
    if not events:
        print(
            f"obs-report: trace {args.path} contains no decodable events",
            file=sys.stderr,
        )
        return 1
    print(render_trace_report(args.path))
    return 0


def _obs_dashboard(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments obs-dashboard",
        description="Build a self-contained HTML dashboard from a JSONL "
                    "trace (and its sibling *.provenance.jsonl, if present).",
    )
    parser.add_argument("path", help="trace file written with --trace-out")
    parser.add_argument(
        "-o", "--out", metavar="HTML", default=None,
        help="output path (default: <trace>.dashboard.html)",
    )
    args = parser.parse_args(argv)
    from repro.obs.dashboard import write_dashboard

    skips = _SkipCounter("obs-dashboard")
    try:
        out = write_dashboard(args.path, out_path=args.out, on_skip=skips)
    except (FileNotFoundError, IsADirectoryError):
        print(f"obs-dashboard: no such trace file: {args.path}", file=sys.stderr)
        return 2
    except ValueError as exc:
        print(f"obs-dashboard: {exc}", file=sys.stderr)
        return 1
    finally:
        skips.flush()
    print(f"dashboard written to {out}")
    return 0


def _obs_profile(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments obs-profile",
        description="Report the hot-path profile recorded in a JSONL trace "
                    "(write one by running an experiment with --profile "
                    "--trace-out PATH).",
    )
    parser.add_argument("path", help="trace file written with --trace-out")
    parser.add_argument(
        "--svg", metavar="OUT", default=None,
        help="also write the merged span-tree flamegraph SVG to OUT",
    )
    args = parser.parse_args(argv)
    from repro.obs import load_trace
    from repro.obs.profiler import (
        merge_profile_events,
        profiles_of,
        render_profile_report,
        render_profile_svg,
    )

    skips = _SkipCounter("obs-profile")
    try:
        events = load_trace(args.path, on_skip=skips)
    except (FileNotFoundError, IsADirectoryError):
        print(f"obs-profile: no such trace file: {args.path}", file=sys.stderr)
        return 2
    skips.flush()
    profiles = profiles_of(events)
    if not profiles:
        print(
            f"obs-profile: trace {args.path} has no campaign_profile events "
            f"(rerun the experiment with --profile)",
            file=sys.stderr,
        )
        return 1
    # write the artifact before printing: the report may die on a closed
    # stdout pipe (`obs-profile ... | head`) and the SVG should survive
    if args.svg:
        render_profile_svg(merge_profile_events(profiles)).save(args.svg)
        print(f"flamegraph written to {args.svg}")
    print("\n\n".join(render_profile_report(event) for event in profiles))
    return 0


def _obs_timeline(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments obs-timeline",
        description="Report worker utilization and export span timelines "
                    "from a traced run (write one with --timeline "
                    "--trace-out PATH).",
    )
    parser.add_argument("path", help="trace file written with --trace-out")
    parser.add_argument(
        "--chrome", metavar="OUT", default=None,
        help="write a Chrome trace-event JSON timeline to OUT (load it in "
             "Perfetto or chrome://tracing)",
    )
    parser.add_argument(
        "--otlp", metavar="OUT", default=None,
        help="write an OTLP-shaped JSON span dump to OUT",
    )
    parser.add_argument(
        "--svg", metavar="OUT", default=None,
        help="also write the worker-timeline swimlane SVG to OUT",
    )
    args = parser.parse_args(argv)
    import json

    from repro.obs import load_trace
    from repro.obs.timeline import (
        chrome_trace,
        otlp_trace,
        render_timeline_report,
        spans_of,
        timeline_path,
        timeline_swimlane_svg,
        validate_chrome_trace,
    )

    skips = _SkipCounter("obs-timeline")
    try:
        events = load_trace(args.path, on_skip=skips)
    except (FileNotFoundError, IsADirectoryError):
        print(f"obs-timeline: no such trace file: {args.path}", file=sys.stderr)
        return 2
    sidecar = timeline_path(args.path)
    if sidecar != Path(args.path) and sidecar.exists():
        events.extend(load_trace(sidecar, on_skip=skips))
    skips.flush()
    spans = spans_of(events)
    if not spans:
        print(
            f"obs-timeline: trace {args.path} has no campaign_trace spans "
            f"(rerun the experiment with --timeline --trace-out)",
            file=sys.stderr,
        )
        return 1
    # write artifacts before printing: the report may die on a closed
    # stdout pipe (`obs-timeline ... | head`) and the exports should survive
    if args.chrome:
        blob = chrome_trace(spans)
        validate_chrome_trace(blob)
        with open(args.chrome, "w") as fh:
            json.dump(blob, fh)
        print(f"chrome trace written to {args.chrome}")
    if args.otlp:
        with open(args.otlp, "w") as fh:
            json.dump(otlp_trace(spans), fh)
        print(f"otlp spans written to {args.otlp}")
    if args.svg:
        timeline_swimlane_svg(spans).save(args.svg)
        print(f"swimlane written to {args.svg}")
    print(render_timeline_report(spans))
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point for ``python -m repro.experiments`` / ``repro-experiments``."""
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv[:1] == ["obs-report"]:
        return _obs_report(argv[1:])
    if argv[:1] == ["obs-dashboard"]:
        return _obs_dashboard(argv[1:])
    if argv[:1] == ["obs-profile"]:
        return _obs_profile(argv[1:])
    if argv[:1] == ["obs-timeline"]:
        return _obs_timeline(argv[1:])

    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the paper's tables and figures.",
        epilog="See also the 'obs-report PATH', 'obs-dashboard PATH', "
               "'obs-profile PATH' and 'obs-timeline PATH' subcommands, "
               "which render a trace written with --trace-out.",
    )
    parser.add_argument(
        "experiment",
        choices=EXPERIMENTS + ["all"],
        help="which table/figure to regenerate",
    )
    parser.add_argument(
        "--trials", type=int, default=None,
        help="fault-injection tests per deployment (default: $REPRO_TRIALS or 300; "
             "the paper uses 4000)",
    )
    parser.add_argument("--seed", type=int, default=0, help="master seed")
    parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes per campaign (default: $REPRO_JOBS or 1). "
             "Results are bit-identical for any N; see docs/performance.md",
    )
    parser.add_argument(
        "--lanes", type=int, default=None, metavar="N",
        help="fault-injection trials batched per lane-vectorized pass "
             "through the application (default: $REPRO_LANES or 1). "
             "Results are bit-identical for any N; see docs/performance.md",
    )
    parser.add_argument(
        "--checkpoint-every", type=int, default=None, metavar="N",
        help="persist campaign progress every N trials; an interrupted run "
             "can then be resumed with --resume (see docs/engine.md)",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="resume interrupted campaigns from their checkpoints, "
             "re-running only the missing trials",
    )
    parser.add_argument(
        "--ci-halfwidth", type=float, default=None, metavar="H",
        help="adaptive precision target in (0, 0.5): stop each deployment "
             "once every outcome rate's 95%% Wilson half-width is <= H, "
             "with --trials as the cap (e.g. 0.05 for ±5 pp; see "
             "docs/adaptive.md). Default: $REPRO_CI_HALFWIDTH or fixed-N",
    )
    parser.add_argument(
        "--scenario", metavar="NAME[:k=v,...]", default=None,
        help="fault-scenario family injected per trial: bitflip (default), "
             "rankkill (fail-stop a rank; rank=R pins the victim), or "
             "msgcorrupt (flip a bit in a message in transit; bit=B pins "
             "the bit). See docs/scenarios.md. Default: $REPRO_SCENARIO "
             "or bitflip",
    )
    parser.add_argument(
        "--backend", metavar="SPEC", default=None,
        help="execution backend for every campaign: inline, process, or "
             "distributed:host:port (a controller socket that repro-worker "
             "processes connect to; port 0 binds ephemerally — see "
             "docs/distributed.md). Results are bit-identical across "
             "backends. Default: $REPRO_BACKEND or auto-select from --jobs",
    )
    parser.add_argument(
        "--trace-out", metavar="PATH", default=None,
        help="write a JSONL observability trace (replay with obs-report)",
    )
    parser.add_argument(
        "--progress", action="store_true",
        help="live per-trial progress line on stderr",
    )
    parser.add_argument(
        "--metrics-summary", action="store_true",
        help="print counters, histograms and span totals after the run",
    )
    parser.add_argument(
        "--serve-obs", type=int, default=None, metavar="PORT",
        help="serve live telemetry on 127.0.0.1:PORT while the run "
             "executes (/metrics, /events, auto-refreshing dashboard at /; "
             "0 picks an ephemeral port). Default: $REPRO_OBS_PORT or off",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="attribute wall time and FP-instruction counts per (phase, "
             "op kind, rank); render with obs-profile or the dashboard",
    )
    parser.add_argument(
        "--timeline", action="store_true",
        help="record causal trace spans (campaign/wave/chunk/trial/"
             "checkpoint) to a *.timeline.jsonl sidecar next to "
             "--trace-out; render with obs-timeline or the dashboard",
    )
    parser.add_argument(
        "-q", "--quiet", action="store_true",
        help="suppress tables and per-experiment timing; errors still print",
    )
    args = parser.parse_args(argv)

    if args.quiet and args.progress:
        parser.error("--progress and --quiet are mutually exclusive")

    if args.jobs is not None:
        if args.jobs < 1:
            parser.error(f"--jobs must be >= 1, got {args.jobs}")
        # Campaigns resolve their worker count from $REPRO_JOBS (see
        # repro.fi.campaign.default_jobs), so one env write reaches every
        # deployment the experiment harnesses build.
        os.environ["REPRO_JOBS"] = str(args.jobs)

    if args.lanes is not None:
        if args.lanes < 1:
            parser.error(f"--lanes must be >= 1, got {args.lanes}")
        # Same env-var relay as --jobs: every campaign resolves its lane
        # count via repro.fi.campaign.default_lanes.
        os.environ["REPRO_LANES"] = str(args.lanes)

    if args.checkpoint_every is not None:
        if args.checkpoint_every < 1:
            parser.error(
                f"--checkpoint-every must be >= 1, got {args.checkpoint_every}"
            )
        # Same env-var relay as --jobs: every campaign resolves its
        # checkpoint interval via repro.fi.campaign.default_checkpoint_every.
        os.environ["REPRO_CHECKPOINT_EVERY"] = str(args.checkpoint_every)
    if args.resume:
        os.environ["REPRO_RESUME"] = "1"

    if args.ci_halfwidth is not None:
        if not 0.0 < args.ci_halfwidth < 0.5:
            parser.error(
                f"--ci-halfwidth must be in (0, 0.5), got {args.ci_halfwidth}"
            )
        # Same env-var relay as --jobs: every deployment resolves its
        # precision target via repro.fi.campaign.default_ci_halfwidth.
        os.environ["REPRO_CI_HALFWIDTH"] = repr(args.ci_halfwidth)

    if args.scenario is not None:
        from repro.errors import ConfigurationError
        from repro.fi.scenarios import canonical_scenario

        try:
            canonical = canonical_scenario(args.scenario)
        except ConfigurationError as exc:
            parser.error(str(exc))
        # Same env-var relay as --jobs: every deployment resolves its
        # fault family via repro.fi.campaign.default_scenario.  The
        # canonical default (parameterless bit flips) relays as the
        # explicit name so --scenario bitflip still overrides an
        # inherited $REPRO_SCENARIO.
        os.environ["REPRO_SCENARIO"] = canonical or "bitflip"

    if args.backend is not None:
        from repro.engine.backends import canonical_backend
        from repro.errors import ConfigurationError

        try:
            canonical = canonical_backend(args.backend)
        except ConfigurationError as exc:
            parser.error(str(exc))
        # Same env-var relay as --jobs: every deployment resolves its
        # execution backend via repro.fi.campaign.default_backend.
        os.environ["REPRO_BACKEND"] = canonical

    serve_port = args.serve_obs
    if serve_port is None:
        raw = os.environ.get("REPRO_OBS_PORT")
        if raw is not None and raw != "":
            try:
                serve_port = int(raw)
            except ValueError:
                print(
                    f"repro: warning: malformed REPRO_OBS_PORT={raw!r}; "
                    f"telemetry server disabled",
                    file=sys.stderr,
                )
    if serve_port is not None and not 0 <= serve_port <= 65535:
        parser.error(f"--serve-obs port must be in [0, 65535], got {serve_port}")

    recorder = previous = None
    server = None
    wants_obs = (
        args.trace_out or args.progress or args.metrics_summary
        or args.profile or args.timeline or serve_port is not None
    )
    if wants_obs:
        from repro import obs

        previous = obs.get_recorder()
        recorder = obs.configure(
            trace_path=args.trace_out,
            progress=args.progress,
            metrics=True,
            profile=args.profile,
            timeline=args.timeline,
        )
        if serve_port is not None:
            from repro.obs import start_live_server

            server = start_live_server(recorder, port=serve_port)
            print(
                f"repro: serving observability on {server.url}",
                file=sys.stderr,
            )

    names = EXPERIMENTS if args.experiment == "all" else [args.experiment]
    try:
        for name in names:
            module = importlib.import_module(f"repro.experiments.{name}")
            t0 = time.perf_counter()
            module.run(trials=args.trials, seed=args.seed, quiet=args.quiet)
            if not args.quiet:
                print(f"[{name} done in {time.perf_counter() - t0:.1f}s]\n")
    finally:
        if server is not None:
            server.close()
        if recorder is not None:
            from repro.obs import render_metrics_summary, set_recorder

            set_recorder(previous)
            recorder.close()
            if args.metrics_summary and not args.quiet:
                print(render_metrics_summary(recorder))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
