"""Extension experiment: where do harmful flips land?

Not a numbered table/figure of the paper, but the analysis behind its
§2 observations (outcome sensitivity to the injection site) and behind
the F-SEFI line of work: break the outcomes of single-error injections
down by IEEE-754 bit field and by corrupted operand.

Expected shape: mantissa flips (52/64 of all tests) are overwhelmingly
benign, exponent flips drive SDC and the crashes of guard-carrying
applications (PENNANT), sign flips sit in between.
"""

from __future__ import annotations

from repro.apps import get_app
from repro.experiments.common import default_trials
from repro.fi.campaign import Deployment
from repro.fi.sensitivity import run_sensitivity
from repro.numerics.bits import BitField
from repro.utils.tables import format_table

__all__ = ["run"]

APPS = ("cg", "pennant")
NPROCS = 4


def run(trials: int | None = None, seed: int = 0, quiet: bool = False) -> dict:
    """Per-bit-field and per-operand success rates for two benchmarks."""
    trials = default_trials(trials)
    out: dict[str, dict] = {}
    rows = []
    for name in APPS:
        report = run_sensitivity(
            get_app(name), Deployment(nprocs=NPROCS, trials=trials, seed=seed + 555)
        )
        by_field = report.success_rate_by_bit_field()
        fails = report.failure_rate_by_bit_field()
        by_operand = report.success_rate_by_operand()
        out[name] = {
            "bit_field": {k.value: v for k, v in by_field.items()},
            "bit_field_failure": {k.value: v for k, v in fails.items()},
            "operand": {k.name: v for k, v in by_operand.items()},
        }
        for bf in BitField:
            if bf in by_field:
                rows.append(
                    (name.upper(), bf.value, by_field[bf], fails.get(bf, 0.0))
                )
    if not quiet:
        print(
            format_table(
                ["Benchmark", "bit field", "success rate", "failure rate"],
                rows,
                title="Sensitivity — outcomes by IEEE-754 bit field "
                      f"({NPROCS} ranks, single-error)",
            )
        )
    return out
