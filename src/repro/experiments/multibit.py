"""Extension experiment: model generality beyond single-bit flips.

The paper evaluates with single-bit flips but states (§2) that the
methodology "does not make any assumption that the injected error must
be single-bit flip".  This harness exercises that claim: the entire
pipeline — serial samples, small-scale propagation, prediction — is run
under a 2-bit fault pattern (two random bits of one operand of one
dynamic instruction) and the prediction error is compared with the
single-bit case at a moderate target scale.
"""

from __future__ import annotations

from repro.apps import get_app
from repro.experiments.common import default_trials
from repro.fi.cache import cached_campaign
from repro.fi.campaign import Deployment
from repro.model.predictor import PredictionInputs, ResiliencePredictor
from repro.model.result import FaultInjectionResult
from repro.model.sampling import SerialSamplePlan
from repro.taint.region import Region
from repro.utils.tables import format_table

__all__ = ["run"]

APPS = ("cg", "mg")
SMALL, TARGET = 4, 16


def _predict(app, bits: int, trials: int, seed: int):
    plan = SerialSamplePlan(large_nprocs=TARGET, n_samples=SMALL)
    serial = {}
    for x in plan.sample_cases:
        dep = Deployment(
            nprocs=1, trials=trials, n_errors=x, region=Region.COMMON,
            seed=seed + 61_000 + x, bits_per_error=bits,
        )
        serial[x] = FaultInjectionResult.from_campaign(cached_campaign(app, dep))
    probe = FaultInjectionResult.from_campaign(
        cached_campaign(app, Deployment(
            nprocs=1, trials=trials, n_errors=SMALL, region=Region.COMMON,
            seed=seed + 61_000 + SMALL, bits_per_error=bits,
        ))
    )
    small = cached_campaign(app, Deployment(
        nprocs=SMALL, trials=trials, seed=seed + 62_000, bits_per_error=bits,
    ))
    predictor = ResiliencePredictor(PredictionInputs(
        serial_samples=serial,
        small_campaign=small,
        unique_fractions={SMALL: small.parallel_unique_fraction},
        serial_probe=probe,
    ))
    predicted = predictor.predict(TARGET)
    measured = FaultInjectionResult.from_campaign(
        cached_campaign(app, Deployment(
            nprocs=TARGET, trials=trials, seed=seed + 63_000, bits_per_error=bits,
        ))
    )
    return predicted, measured


def run(trials: int | None = None, seed: int = 0, quiet: bool = False) -> dict:
    """Prediction accuracy under 1-bit vs 2-bit fault patterns."""
    trials = default_trials(trials)
    rows = []
    out: dict[str, dict] = {}
    for name in APPS:
        app = get_app(name)
        per_app = {}
        for bits in (1, 2):
            predicted, measured = _predict(app, bits, trials, seed)
            err = abs(predicted.success - measured.success)
            per_app[bits] = {
                "predicted": predicted.success,
                "measured": measured.success,
                "error": err,
            }
            rows.append(
                (name.upper(), f"{bits}-bit", predicted.success,
                 measured.success, 100 * err)
            )
        out[name] = per_app
    if not quiet:
        print(format_table(
            ["Benchmark", "fault pattern", "predicted", "measured", "error (pp)"],
            rows,
            title=f"Extension — fault-pattern generality "
                  f"(serial + {SMALL} ranks predicting {TARGET} ranks)",
        ))
    return out
