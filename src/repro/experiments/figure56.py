"""Figures 5 and 6: modeling accuracy predicting 64 MPI processes.

Fig. 5 predicts from serial + 4-rank inputs; Fig. 6 from serial +
8-rank inputs.  The paper reports an average success-rate prediction
error of 8 % (max 27 %) for Fig. 5 and 7 % (max 19 %) for Fig. 6 —
more small-scale samples give better accuracy.
"""

from __future__ import annotations

from repro.apps import get_app, paper_apps
from repro.experiments.common import (
    build_predictor,
    default_trials,
    measured_campaign,
)
from repro.model.result import FaultInjectionResult
from repro.utils.tables import format_table

__all__ = ["run", "accuracy_for_small_scale"]

TARGET = 64


def accuracy_for_small_scale(
    small_nprocs: int,
    target_nprocs: int = TARGET,
    trials: int | None = None,
    seed: int = 0,
    apps: list[str] | None = None,
) -> dict[str, dict]:
    """Predicted vs measured success rates for each app (one figure)."""
    trials = default_trials(trials)
    out: dict[str, dict] = {}
    for name in apps or paper_apps():
        predictor = build_predictor(
            name, small_nprocs=small_nprocs, target_nprocs=target_nprocs,
            trials=trials, seed=seed,
        )
        predicted = predictor.predict(target_nprocs)
        measured = FaultInjectionResult.from_campaign(
            measured_campaign(get_app(name), target_nprocs, trials, seed)
        )
        out[name] = {
            "predicted": predicted,
            "measured": measured,
            "error": abs(predicted.success - measured.success),
            "fine_tuned": predictor.fine_tuning_active,
        }
    return out


def _print_figure(title: str, results: dict[str, dict]) -> None:
    rows = [
        (
            name.upper(),
            r["predicted"].success,
            r["predicted"].interval().format(),
            r["measured"].success,
            r["measured"].interval().format(),
            100 * r["error"],
            "yes" if r["fine_tuned"] else "no",
        )
        for name, r in results.items()
    ]
    errors = [r["error"] for r in results.values()]
    print(
        format_table(
            ["Benchmark", "predicted", "pred 95% CI", "measured",
             "meas 95% CI", "error (pp)", "fine-tuned"],
            rows,
            title=title,
        )
    )
    print(
        f"average error {100 * sum(errors) / len(errors):.1f} pp, "
        f"max {100 * max(errors):.1f} pp\n"
    )


def run(trials: int | None = None, seed: int = 0, quiet: bool = False) -> dict:
    """Regenerate Figs. 5 and 6."""
    fig5 = accuracy_for_small_scale(4, trials=trials, seed=seed)
    fig6 = accuracy_for_small_scale(8, trials=trials, seed=seed)
    if not quiet:
        _print_figure("Figure 5 — serial + 4 ranks predicting 64 ranks", fig5)
        _print_figure("Figure 6 — serial + 8 ranks predicting 64 ranks", fig6)
    return {"figure5": fig5, "figure6": fig6}
