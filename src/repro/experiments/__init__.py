"""Experiment harnesses: one module per paper table/figure.

Every module exposes ``run(trials=None, seed=0, quiet=False) -> dict``
that regenerates the corresponding table/figure rows (printing them
unless ``quiet``) and returns the underlying numbers.  Campaigns are
cached on disk (see :mod:`repro.fi.cache`), so harnesses that share
deployments — e.g. the serial samples used by Figs. 5, 6, 7 and 8 —
only pay for them once.

Run from the command line::

    python -m repro.experiments table1
    python -m repro.experiments all --trials 400
"""

from repro.experiments import common

__all__ = ["common"]

EXPERIMENTS = [
    "motivation",
    "table1",
    "figure12",
    "table2",
    "figure3",
    "figure56",
    "figure7",
    "figure8",
    "sensitivity",
    "multibit",
    "report",
]
