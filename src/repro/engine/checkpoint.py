"""Crash-safe persistence of completed chunks — checkpoint and resume.

Layered on the disk-cache conventions of :mod:`repro.fi.cache`: the
store lives under ``cache_dir()/checkpoints/``, is keyed by the same
``(app.cache_key(), deployment_key(...))`` identity as the result cache
(execution knobs like ``jobs`` excluded, so a campaign interrupted at
one worker count resumes under another), and every write is an atomic
``tmp → rename`` so a kill can never leave a half-written file under a
final name.

Layout (one directory per in-flight campaign)::

    .repro-cache/checkpoints/<app>-<digest>/
        meta.json                 # layout manifest: key, trials, chunks
        chunk-00000000-00000050.json   # one file per completed chunk
        chunk-00000050-00000100.json

A chunk file holds the chunk's :class:`~repro.engine.chunks.ChunkPayload`:
the joint-distribution delta **in first-occurrence insertion order**
(a list, not a sorted dict — insertion order is part of the engine's
bit-identical-to-serial guarantee), the trial records when requested,
and the chunk's observability snapshot (counters, histograms, span
totals, buffered events) so a resumed run replays every recovered
trial's events into its own trace and provenance files.

Corruption handling: a chunk file or manifest that fails to parse or
validate is **deleted first**, then a typed
:class:`~repro.errors.CheckpointCorruptError` is raised — rerunning the
campaign restarts cleanly, re-executing only the chunk whose checkpoint
was lost.  The campaign deletes the whole directory once it completes
(the result then lives in the ordinary result cache).
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import TYPE_CHECKING

from repro.engine.chunks import ChunkPayload
from repro.engine.store import LocalDirStore, ResultStore
from repro.errors import CheckpointCorruptError
from repro.fi.cache import cache_dir, deployment_key
from repro.fi.outcomes import Outcome, TrialRecord
from repro.obs import CacheCorrupt, ObsSnapshot, event_from_dict, get_recorder

if TYPE_CHECKING:
    from repro.fi.campaign import AppProtocol, Deployment

__all__ = ["DEFAULT_CHECKPOINT_EVERY", "CheckpointStore"]

#: Trials between durable checkpoints when ``--checkpoint-every`` is
#: requested without a value.  Matches the engine's chunk-size cap: at
#: most one chunk of work is lost to a crash, and the per-chunk JSON
#: write is far below the benchmarked 5% overhead budget.
DEFAULT_CHECKPOINT_EVERY = 50

_CKPT_VERSION = "ckpt-v1"


# ----------------------------------------------------------------------
# payload (de)serialization
# ----------------------------------------------------------------------
def _serialize_snapshot(snapshot: ObsSnapshot | None) -> dict | None:
    if snapshot is None:
        return None
    return {
        "counters": snapshot.counters,
        "histograms": snapshot.histograms,
        "span_totals": snapshot.span_totals,
        "events": [event.to_dict() for event in snapshot.events],
    }


def _deserialize_snapshot(blob: dict | None) -> ObsSnapshot | None:
    if blob is None:
        return None
    events = [event_from_dict(e) for e in blob["events"]]
    return ObsSnapshot(
        counters={str(k): v for k, v in blob["counters"].items()},
        histograms={str(k): list(v) for k, v in blob["histograms"].items()},
        span_totals={str(k): list(v) for k, v in blob["span_totals"].items()},
        # unknown event types (written by newer code) are dropped, same
        # as trace replay — forward compatibility over completeness
        events=[e for e in events if e is not None],
    )


def _serialize_chunk(payload: ChunkPayload) -> dict:
    return {
        "version": _CKPT_VERSION,
        "start": payload.start,
        "stop": payload.stop,
        # insertion order preserved: the fold replays it verbatim
        "joint": [
            [outcome.value, ncont, activated, count]
            for (outcome, ncont, activated), count in payload.joint.items()
        ],
        "records": [
            [r.outcome.value, r.n_contaminated, r.activated, r.detail]
            for r in payload.records
        ],
        "obs": _serialize_snapshot(payload.obs),
    }


def _deserialize_chunk(blob: dict, start: int, stop: int) -> ChunkPayload:
    if blob["version"] != _CKPT_VERSION:
        raise ValueError(f"unknown chunk schema {blob['version']!r}")
    if (blob["start"], blob["stop"]) != (start, stop):
        raise ValueError(
            f"chunk bounds {blob['start'], blob['stop']} do not match "
            f"file name ({start}, {stop})"
        )
    joint = {
        (Outcome(o), int(n), bool(a)): int(c) for o, n, a, c in blob["joint"]
    }
    records = [
        TrialRecord(
            outcome=Outcome(o), n_contaminated=int(n), activated=bool(a),
            detail=str(d),
        )
        for o, n, a, d in blob["records"]
    ]
    return ChunkPayload(
        start=start, stop=stop, joint=joint, records=records,
        obs=_deserialize_snapshot(blob.get("obs")),
    )


# ----------------------------------------------------------------------
class CheckpointStore:
    """Durable partial results for one campaign execution.

    Persistence goes through a :class:`~repro.engine.store.ResultStore`
    (default: a :class:`~repro.engine.store.LocalDirStore` rooted at
    ``cache_dir()``, which reproduces the historical on-disk layout
    byte-for-byte).  Point every worker of a multi-host deployment at
    one shared store and they cooperatively fill the same campaign's
    checkpoints.
    """

    def __init__(
        self,
        app: "AppProtocol",
        deployment: "Deployment",
        keep_records: bool = False,
        store: ResultStore | None = None,
    ):
        # keep_records is part of the identity: a checkpoint written
        # without records cannot serve a run that needs them.
        self.key = (
            f"{_CKPT_VERSION}|{app.cache_key()}|{deployment_key(deployment)}"
            f"|records={int(keep_records)}"
        )
        digest = hashlib.sha256(self.key.encode()).hexdigest()[:24]
        self.store: ResultStore = (
            store if store is not None else LocalDirStore(cache_dir())
        )
        self._prefix = f"checkpoints/{app.name}-{digest}"
        #: display location (a real directory for the default local store)
        self.dir = Path(self.store.describe(self._prefix))

    # ------------------------------------------------------------------
    def _meta_key(self) -> str:
        return f"{self._prefix}/meta.json"

    def _chunk_key(self, start: int, stop: int) -> str:
        return f"{self._prefix}/chunk-{start:08d}-{stop:08d}.json"

    def _corrupt(self, key: str, reason: str, wipe: bool = False) -> None:
        """Delete the damaged artifact, record the incident, and raise."""
        if wipe:
            self.clear()
        else:
            self.store.delete(key)
        path = self.store.describe(key)
        obs = get_recorder()
        if obs.enabled:
            obs.counter("checkpoint.corrupt")
            obs.emit(CacheCorrupt(path=path, reason=reason))
        raise CheckpointCorruptError(
            f"corrupt campaign checkpoint {path}: {reason} — the damaged "
            f"file was removed; rerun to restart cleanly from the "
            f"remaining checkpoints",
            path=path,
        )

    # ------------------------------------------------------------------
    def begin(
        self,
        trials: int,
        chunks: list[tuple[int, int]],
        planned: int | None = None,
    ) -> None:
        """Record the campaign's chunk layout (idempotent, atomic).

        ``planned`` marks a *partial* layout: an adaptive campaign plans
        its chunks wave by wave, so the manifest may cover only the
        first ``planned`` of up to ``trials`` trials.  Omitted (the
        fixed-N driver), the layout must tile the full trial range.
        """
        meta: dict = {
            "version": _CKPT_VERSION,
            "key": self.key,
            "trials": trials,
            "chunks": [[lo, hi] for lo, hi in chunks],
        }
        if planned is not None and planned < trials:
            meta["planned"] = planned
        self.store.put(self._meta_key(), json.dumps(meta).encode())

    def write(self, payload: ChunkPayload) -> tuple[Path, int]:
        """Persist one completed chunk; returns ``(path, bytes)``."""
        key = self._chunk_key(payload.start, payload.stop)
        size = self.store.put(key, json.dumps(_serialize_chunk(payload)).encode())
        return Path(self.store.describe(key)), size

    def load(
        self,
    ) -> tuple[list[tuple[int, int]], list[ChunkPayload]] | None:
        """Recover the chunk layout and every persisted chunk payload.

        Returns None when there is nothing usable to resume from — no
        directory, or a manifest written for a different campaign
        identity or schema (stale leftovers are wiped, not trusted).
        Damaged files raise :class:`~repro.errors.CheckpointCorruptError`
        after being deleted, so the *next* attempt restarts cleanly.
        """
        meta_key = self._meta_key()
        raw = self.store.get(meta_key)
        if raw is None:
            if self.store.keys(self._prefix):
                # chunk files with no manifest: useless
                self.clear()
            return None
        try:
            meta = json.loads(raw)
            version, key = meta["version"], meta["key"]
            trials = int(meta["trials"])
            planned = int(meta.get("planned", trials))
            chunks = [(int(lo), int(hi)) for lo, hi in meta["chunks"]]
        except (json.JSONDecodeError, UnicodeDecodeError, KeyError, TypeError,
                ValueError) as exc:
            self._corrupt(meta_key, f"unreadable manifest ({exc})", wipe=True)
        if version != _CKPT_VERSION or key != self.key:
            # a different campaign or an old schema — not corruption
            self.clear()
            return None
        covered = sorted(chunks)
        flat = [t for lo, hi in covered for t in range(lo, hi)]
        if planned > trials or flat != list(range(planned)):
            self._corrupt(
                meta_key, "manifest chunks do not tile the planned range",
                wipe=True,
            )
        payloads: list[ChunkPayload] = []
        for lo, hi in chunks:
            chunk_key = self._chunk_key(lo, hi)
            raw = self.store.get(chunk_key)
            if raw is None:
                continue
            try:
                payloads.append(
                    _deserialize_chunk(json.loads(raw), lo, hi)
                )
            except (json.JSONDecodeError, UnicodeDecodeError, KeyError,
                    TypeError, ValueError, IndexError) as exc:
                self._corrupt(chunk_key, f"unreadable chunk ({exc})")
        return chunks, payloads

    def clear(self) -> None:
        """Wipe this campaign's checkpoints (campaign done or stale)."""
        self.store.delete_prefix(self._prefix)
