"""Distributed campaign execution: a socket work queue + warm workers.

The third :class:`~repro.engine.backends.Backend`: the controller (this
process, inside the driver) listens on a TCP socket and serves chunk
work items; ``repro-worker`` processes — on this machine or any machine
that can reach it — connect, initialize once, and stream chunk payloads
back.  The driver's :class:`~repro.engine.aggregate.ChunkAggregator`
folds those payloads in strict chunk order, so joint distributions,
records, trial events and ``*.provenance.jsonl`` are byte-identical to
:class:`~repro.engine.backends.InlineBackend` for any worker count or
join/leave timing (see docs/distributed.md for the exact contract).

Wire protocol — length-prefixed JSON frames
-------------------------------------------

Every message is a 4-byte big-endian length followed by one UTF-8 JSON
object.  Binary state (the pickled :class:`EngineContext`, pickled
:class:`ChunkPayload` results) rides base64-encoded inside the JSON —
the same pickle transport the process-pool backend uses, framed so a
partial read, a truncated frame or garbage on the wire is detected
instead of misparsed.  The conversation::

    worker  -> {"op": "hello", "pid": ..., "digests": [...]}
    control -> {"op": "init", "digest": D[, "ctx": <base64 pickle>]}
    worker  -> {"op": "ready", "warm": ..., "init_s": ...}
    control -> {"op": "chunk", "start": S, "stop": E}       (repeated)
    worker  -> {"op": "result", "start": S, "stop": E,
                "payload": <base64 pickle>}                 (repeated)
    control -> {"op": "done"}

Warm pools: the ``hello`` advertises the content digests of every
campaign context the worker already holds initialized; the controller
ships the pickled context only when the worker lacks it.  A worker's
cache persists across its reconnect loop, so back-to-back campaigns
with the same identity pay the unpickle cost once per worker, not once
per campaign (cf. the modelops warm-pool design this follows).

Failure semantics: dispatch is at-least-once.  A worker that
disconnects (EOF — e.g. SIGKILL), misses its chunk deadline, or sends a
garbage frame is dropped and its in-flight chunk requeued
(:class:`~repro.obs.events.ChunkRequeued`); exactly-once *folding* is
guaranteed by the controller's completed-set and the aggregator's
duplicate guard.  If every worker is gone and work remains past
``worker_timeout``, the campaign fails with a typed
:class:`~repro.errors.WorkerCrashError` naming the first unfinished
chunk — never a hang.
"""

from __future__ import annotations

import argparse
import base64
import hashlib
import json
import os
import pickle
import selectors
import socket
import struct
import sys
import time
import traceback
from collections import deque
from pathlib import Path
from typing import Iterator, Sequence

from repro.engine.chunks import ChunkPayload, EngineContext, execute_chunk
from repro.errors import DistributedProtocolError, WorkerCrashError
from repro.obs import get_recorder
from repro.obs.events import ChunkRequeued, WorkerJoined, WorkerLost

__all__ = [
    "DistributedBackend",
    "recv_frame",
    "send_frame",
    "worker_main",
]

Bounds = tuple[int, int]

#: Hard ceiling on one frame's JSON body.  Real frames are the pickled
#: context (MBs at most); anything larger is garbage on the wire.
MAX_FRAME_BYTES = 1 << 28

#: Chunk planning under a distributed spec assumes at least this many
#: workers even when ``jobs`` was left at 1 — one giant chunk would
#: serialize the whole pool.  Safe because results are chunk-invariant.
DEFAULT_PLAN_WORKERS = 4

_LEN = struct.Struct(">I")

#: Per-socket timeout for blocking I/O (sends, worker-side receives are
#: further bounded by the worker's ``--timeout``).
_IO_TIMEOUT = 30.0


def _env_timeout(name: str, default: float) -> float:
    """A positive float from the environment, or ``default``."""
    raw = os.environ.get(name)
    if raw is None:
        return default
    try:
        value = float(raw)
    except ValueError:
        return default
    return value if value > 0 else default


# --------------------------------------------------------------------------
# framing


def send_frame(sock: socket.socket, message: dict) -> None:
    """Write one length-prefixed JSON frame."""
    body = json.dumps(message, separators=(",", ":")).encode()
    sock.sendall(_LEN.pack(len(body)) + body)


def _recv_exact(sock: socket.socket, n: int) -> bytes | None:
    """Read exactly ``n`` bytes; None on clean EOF at a frame boundary."""
    buf = bytearray()
    while len(buf) < n:
        data = sock.recv(n - len(buf))
        if not data:
            if buf:
                raise DistributedProtocolError(
                    f"connection closed mid-frame ({len(buf)}/{n} bytes)"
                )
            return None
        buf += data
    return bytes(buf)


def recv_frame(sock: socket.socket) -> dict | None:
    """Read one frame; None on clean EOF between frames.

    Raises :class:`~repro.errors.DistributedProtocolError` on a
    truncated frame, an implausible length prefix, or a body that is
    not a JSON object.
    """
    header = _recv_exact(sock, _LEN.size)
    if header is None:
        return None
    (length,) = _LEN.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise DistributedProtocolError(
            f"frame length {length} exceeds {MAX_FRAME_BYTES} bytes "
            f"(garbage on the wire?)"
        )
    body = _recv_exact(sock, length)
    if body is None:
        raise DistributedProtocolError("connection closed before frame body")
    return _parse_body(bytes(body))


def _parse_body(body: bytes) -> dict:
    try:
        message = json.loads(body)
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise DistributedProtocolError(f"undecodable frame body: {exc}") from exc
    if not isinstance(message, dict):
        raise DistributedProtocolError(
            f"frame body is {type(message).__name__}, expected object"
        )
    return message


class _FrameBuffer:
    """Incremental frame parser for the controller's non-blocking reads."""

    def __init__(self):
        self._buf = bytearray()

    def feed(self, data: bytes) -> list[dict]:
        self._buf += data
        frames = []
        while len(self._buf) >= _LEN.size:
            (length,) = _LEN.unpack(self._buf[: _LEN.size])
            if length > MAX_FRAME_BYTES:
                raise DistributedProtocolError(
                    f"frame length {length} exceeds {MAX_FRAME_BYTES} bytes "
                    f"(garbage on the wire?)"
                )
            if len(self._buf) < _LEN.size + length:
                break
            body = bytes(self._buf[_LEN.size : _LEN.size + length])
            del self._buf[: _LEN.size + length]
            frames.append(_parse_body(body))
        return frames


def _pickle_b64(obj) -> str:
    return base64.b64encode(
        pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    ).decode("ascii")


def _unpickle_b64(text: str):
    try:
        return pickle.loads(base64.b64decode(text, validate=True))
    except Exception as exc:  # binascii.Error, UnpicklingError, EOFError...
        raise DistributedProtocolError(f"undecodable payload: {exc}") from exc


def _write_port_file(path: str, host: str, port: int) -> None:
    """Publish the bound address atomically (for shell orchestration)."""
    target = Path(path)
    tmp = target.with_name(target.name + ".tmp")
    tmp.write_text(f"{host}:{port}\n")
    os.replace(tmp, target)


# --------------------------------------------------------------------------
# controller


class _Worker:
    """Controller-side connection state for one remote worker."""

    __slots__ = ("sock", "addr", "worker_id", "pid", "state", "chunk",
                 "deadline", "chunks_done", "warm", "frames")

    def __init__(self, sock, addr, worker_id: int, deadline: float):
        self.sock = sock
        self.addr = addr
        self.worker_id = worker_id
        self.pid = 0
        self.state = "handshake"   # handshake -> idle <-> busy
        self.chunk: Bounds | None = None
        self.deadline: float | None = deadline
        self.chunks_done = 0
        self.warm = False
        self.frames = _FrameBuffer()


class DistributedBackend:
    """Serve chunks to remote ``repro-worker`` processes over a socket.

    The controller owns no execution — it is a dispatcher: accept
    workers, hand each idle worker the next queued chunk, fold results
    as they stream back, and requeue the chunk of any worker that
    disconnects, stalls past ``chunk_timeout``, or corrupts the wire.
    Payloads are yielded in completion order (like the process pool);
    deterministic fold order is the aggregator's job.

    ``port=0`` binds an ephemeral port; the bound address lands in
    ``self.address`` and, when ``$REPRO_DIST_PORT_FILE`` names a path,
    in that file (``host:port``) so shell-orchestrated workers can find
    a controller that chose its own port.
    """

    live_events = False

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        chunk_timeout: float | None = None,
        worker_timeout: float | None = None,
    ):
        self.host = host
        self.port = port
        #: a busy worker must report its chunk within this many seconds
        self.chunk_timeout = (
            chunk_timeout if chunk_timeout is not None
            else _env_timeout("REPRO_DIST_CHUNK_TIMEOUT", 300.0)
        )
        #: max time with zero connected workers (and for handshakes)
        self.worker_timeout = (
            worker_timeout if worker_timeout is not None
            else _env_timeout("REPRO_DIST_WORKER_TIMEOUT", 120.0)
        )
        self.address: tuple[str, int] | None = None
        #: (warm, init_s) per completed handshake — benchmark fodder
        self.init_stats: list[tuple[bool, float]] = []
        self._next_worker_id = 1

    # -- event/counter helpers (no-ops while obs is disabled) --------------

    def _emit_joined(self, worker: _Worker, init_s: float) -> None:
        rec = get_recorder()
        rec.counter("distributed.workers_joined")
        rec.counter(
            "distributed.warm_inits" if worker.warm
            else "distributed.cold_inits"
        )
        rec.observe("distributed.init_s", init_s)
        rec.emit(WorkerJoined(
            worker=worker.worker_id, pid=worker.pid,
            addr="%s:%s" % worker.addr[:2], warm=worker.warm, init_s=init_s,
        ))

    def _emit_lost(self, worker: _Worker, reason: str) -> None:
        rec = get_recorder()
        if reason != "released":
            rec.counter("distributed.workers_lost")
        rec.emit(WorkerLost(
            worker=worker.worker_id, reason=reason,
            chunks_done=worker.chunks_done,
        ))

    def _emit_requeued(self, worker: _Worker, reason: str) -> None:
        lo, hi = worker.chunk
        rec = get_recorder()
        rec.counter("distributed.chunks_requeued")
        rec.emit(ChunkRequeued(
            chunk_start=lo, chunk_stop=hi,
            worker=worker.worker_id, reason=reason,
        ))

    # -- the dispatch loop -------------------------------------------------

    def run(
        self, ctx: EngineContext, chunks: Sequence[Bounds]
    ) -> Iterator[ChunkPayload]:
        ctx_b64 = _pickle_b64(ctx)
        # content digest: identical campaign state => warm worker reuse
        digest = hashlib.sha256(ctx_b64.encode("ascii")).hexdigest()[:24]
        queue: deque[Bounds] = deque(sorted(chunks))
        completed: set[Bounds] = set()
        total = len(queue)
        workers: dict[int, _Worker] = {}   # fileno -> state
        sel = selectors.DefaultSelector()
        server = socket.create_server((self.host, self.port), backlog=16)
        self.address = server.getsockname()[:2]
        port_file = os.environ.get("REPRO_DIST_PORT_FILE")
        if port_file:
            _write_port_file(port_file, self.address[0], self.address[1])
        sel.register(server, selectors.EVENT_READ, data=None)
        no_worker_deadline = time.monotonic() + self.worker_timeout

        def drop(worker: _Worker, reason: str) -> None:
            """Forget a worker; requeue its in-flight chunk, if any."""
            if worker.chunk is not None and worker.chunk not in completed:
                self._emit_requeued(worker, reason)
                queue.appendleft(worker.chunk)
            worker.chunk = None
            self._emit_lost(worker, reason)
            sel.unregister(worker.sock)
            del workers[worker.sock.fileno()]
            worker.sock.close()

        def handle(worker: _Worker, message: dict) -> ChunkPayload | None:
            op = message.get("op")
            if op == "hello" and worker.state == "handshake":
                worker.pid = int(message.get("pid") or 0)
                worker.warm = digest in message.get("digests", [])
                init: dict = {"op": "init", "digest": digest}
                if not worker.warm:
                    init["ctx"] = ctx_b64
                send_frame(worker.sock, init)
                return None
            if op == "ready" and worker.state == "handshake":
                worker.state = "idle"
                worker.deadline = None
                init_s = float(message.get("init_s") or 0.0)
                self.init_stats.append((worker.warm, init_s))
                self._emit_joined(worker, init_s)
                return None
            if op == "result" and worker.state == "busy":
                bounds = (int(message["start"]), int(message["stop"]))
                if bounds != worker.chunk:
                    raise DistributedProtocolError(
                        f"worker {worker.worker_id} reported chunk {bounds}, "
                        f"expected {worker.chunk}"
                    )
                payload = _unpickle_b64(message["payload"])
                if not isinstance(payload, ChunkPayload):
                    raise DistributedProtocolError(
                        f"worker {worker.worker_id} shipped "
                        f"{type(payload).__name__}, expected ChunkPayload"
                    )
                worker.chunk = None
                worker.state = "idle"
                worker.deadline = None
                worker.chunks_done += 1
                rec = get_recorder()
                if bounds in completed:
                    # at-least-once dispatch: another worker already
                    # reported the requeued chunk — fold exactly once
                    rec.counter("distributed.duplicate_results")
                    return None
                completed.add(bounds)
                rec.counter("distributed.chunks_completed")
                return payload
            if op == "error":
                lo, hi = worker.chunk if worker.chunk else (None, None)
                detail = message.get("message", "worker reported an error")
                raise WorkerCrashError(
                    f"worker {worker.worker_id} failed while running "
                    f"{ctx.app.name!r} trials; remote traceback:\n{detail}",
                    chunk_start=lo, chunk_stop=hi,
                )
            raise DistributedProtocolError(
                f"unexpected {op!r} frame from worker {worker.worker_id} "
                f"in state {worker.state!r}"
            )

        try:
            while len(completed) < total:
                now = time.monotonic()
                # deadlines: handshakes and busy chunks must make progress
                for worker in [w for w in workers.values()
                               if w.deadline is not None and now > w.deadline]:
                    drop(worker, "timeout")
                if workers:
                    no_worker_deadline = now + self.worker_timeout
                elif now > no_worker_deadline:
                    lo, hi = min(b for b in chunks if b not in completed)
                    raise WorkerCrashError(
                        f"no workers connected for {self.worker_timeout:.0f}s "
                        f"with {total - len(completed)} chunk(s) outstanding; "
                        f"first unfinished chunk covers trials {lo}..{hi - 1} "
                        f"— start repro-worker processes pointed at "
                        f"{self.address[0]}:{self.address[1]}, or rerun with "
                        f"an in-process backend",
                        chunk_start=lo, chunk_stop=hi,
                    )
                for key, _ in sel.select(timeout=0.05):
                    if key.data is None:     # the listening socket
                        try:
                            conn, addr = server.accept()
                        except OSError:
                            continue
                        conn.settimeout(_IO_TIMEOUT)
                        worker = _Worker(
                            conn, addr, self._next_worker_id,
                            time.monotonic() + self.worker_timeout,
                        )
                        self._next_worker_id += 1
                        workers[conn.fileno()] = worker
                        sel.register(conn, selectors.EVENT_READ, data=worker)
                        continue
                    worker = key.data
                    if worker.sock.fileno() not in workers:
                        continue             # dropped earlier this round
                    try:
                        data = worker.sock.recv(1 << 16)
                    except (OSError, ValueError):
                        drop(worker, "disconnect")
                        continue
                    if not data:
                        drop(worker, "disconnect")
                        continue
                    try:
                        for message in worker.frames.feed(data):
                            payload = handle(worker, message)
                            if payload is not None:
                                yield payload
                    except DistributedProtocolError:
                        drop(worker, "protocol")
                        continue
                # hand every idle worker the next chunk
                for worker in sorted(
                    (w for w in workers.values() if w.state == "idle"),
                    key=lambda w: w.worker_id,
                ):
                    if not queue:
                        break
                    bounds = queue.popleft()
                    worker.chunk = bounds
                    worker.state = "busy"
                    worker.deadline = time.monotonic() + self.chunk_timeout
                    try:
                        send_frame(worker.sock, {
                            "op": "chunk", "start": bounds[0], "stop": bounds[1],
                        })
                    except OSError:
                        drop(worker, "disconnect")
        finally:
            for worker in list(workers.values()):
                try:
                    send_frame(worker.sock, {"op": "done"})
                except OSError:
                    pass
                drop(worker, "released")
            sel.close()
            server.close()


# --------------------------------------------------------------------------
# worker


#: Warm campaign state, keyed by the controller's content digest.  Lives
#: for the worker process's whole reconnect loop, so sequential
#: campaigns with identical state skip the unpickle entirely.
_WARM: dict[str, EngineContext] = {}


def _resolve_address(args) -> tuple[str, int] | None:
    """The controller address, re-read each attempt (ephemeral ports)."""
    text = None
    if args.port_file:
        try:
            text = Path(args.port_file).read_text().strip()
        except OSError:
            return None
    else:
        text = args.address
    if not text:
        return None
    host, _, port_text = text.rpartition(":")
    try:
        return (host, int(port_text)) if host else None
    except ValueError:
        return None


def _serve_session(sock: socket.socket) -> bool:
    """One controller conversation; True when released by ``done``."""
    send_frame(sock, {
        "op": "hello", "pid": os.getpid(), "digests": sorted(_WARM),
    })
    init = recv_frame(sock)
    if init is None or init.get("op") != "init":
        return False
    digest = init.get("digest", "")
    t0 = time.perf_counter()
    if "ctx" in init:
        try:
            ctx = _unpickle_b64(init["ctx"])
        except DistributedProtocolError as exc:
            # Tell the controller instead of dying silently: a campaign
            # whose state no worker can unpickle (e.g. an app class from
            # a module the worker can't import) should fail fast with
            # the reason, not stall until the worker timeout.
            send_frame(sock, {
                "op": "error",
                "message": f"campaign state failed to unpickle: {exc}",
            })
            return False
        _WARM[digest] = ctx
        warm = False
    else:
        ctx = _WARM.get(digest)
        if ctx is None:
            send_frame(sock, {
                "op": "error",
                "message": f"no warm state for advertised digest {digest}",
            })
            return False
        warm = True
    send_frame(sock, {
        "op": "ready", "warm": warm,
        "init_s": round(time.perf_counter() - t0, 6),
    })
    while True:
        message = recv_frame(sock)
        if message is None:
            return False
        op = message.get("op")
        if op == "done":
            return True
        if op != "chunk":
            raise DistributedProtocolError(f"unexpected {op!r} frame")
        start, stop = int(message["start"]), int(message["stop"])
        try:
            payload = execute_chunk(ctx, start, stop, capture=True)
        except Exception:
            send_frame(sock, {
                "op": "error", "start": start, "stop": stop,
                "message": traceback.format_exc(),
            })
            return False
        send_frame(sock, {
            "op": "result", "start": start, "stop": stop,
            "payload": _pickle_b64(payload),
        })


def worker_main(argv: Sequence[str] | None = None) -> int:
    """The ``repro-worker`` CLI: serve campaigns until idle for too long.

    The worker loops: connect to the controller (from ``address`` or,
    with ``--port-file``, the file a controller publishes its bound
    address into — re-read every attempt, so it follows controllers on
    ephemeral ports), serve one campaign, keep the initialized state
    warm, reconnect for the next campaign.  It exits 0 after
    ``--timeout`` seconds without serving anything, or after
    ``--sessions`` completed campaigns.
    """
    parser = argparse.ArgumentParser(
        prog="repro-worker",
        description="Warm campaign worker for the distributed backend.",
    )
    parser.add_argument(
        "address", nargs="?", default=None,
        help="controller address, host:port",
    )
    parser.add_argument(
        "--port-file", default=None, metavar="PATH",
        help="read the controller address from this file (host:port), "
             "re-read on every reconnect",
    )
    parser.add_argument(
        "--timeout", type=float, default=60.0, metavar="S",
        help="exit after this many seconds without serving a campaign "
             "(default: 60)",
    )
    parser.add_argument(
        "--sessions", type=int, default=0, metavar="N",
        help="exit after N completed campaigns (default: unlimited)",
    )
    args = parser.parse_args(argv)
    if not args.address and not args.port_file:
        parser.error("an address or --port-file is required")

    served = 0
    deadline = time.monotonic() + args.timeout
    while time.monotonic() < deadline:
        address = _resolve_address(args)
        if address is None:
            time.sleep(0.05)
            continue
        try:
            sock = socket.create_connection(address, timeout=5.0)
        except OSError:
            time.sleep(0.05)
            continue
        sock.settimeout(max(_IO_TIMEOUT, args.timeout))
        try:
            released = _serve_session(sock)
        except (OSError, DistributedProtocolError) as exc:
            print(f"repro-worker: session failed: {exc}", file=sys.stderr)
            released = False
        finally:
            sock.close()
        if released:
            served += 1
            deadline = time.monotonic() + args.timeout
            if args.sessions and served >= args.sessions:
                break
    return 0


if __name__ == "__main__":
    sys.exit(worker_main())
