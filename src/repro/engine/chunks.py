"""Trial chunking and chunk execution — the engine's unit of work.

A campaign's trials are partitioned into contiguous ``[start, stop)``
*chunks*.  The chunk is the engine's everything-unit: the scheduling
granule a backend hands to a worker, the payload shipped back to the
driver, the record persisted by the checkpoint store, and the quantum
the aggregator folds.  Chunk boundaries influence scheduling and
checkpoint granularity only — every per-trial decision derives from
``(deployment.seed, trial_index)`` (see :func:`repro.utils.rng.trial_seed`),
so results are chunk-invariant.

:func:`execute_chunk` is the one piece of trial-fold code in the whole
package: the serial path, the worker pool and a resumed campaign all run
it (directly, in a spawned process, or not at all because its persisted
payload was recovered from disk).
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

from repro.fi.outcomes import Outcome, TrialRecord
from repro.obs import MemorySink, ObsSnapshot, Recorder, get_recorder, recording
from repro.obs.sinks import Sink
from repro.obs.trace import TraceContext, make_span

if TYPE_CHECKING:  # circular at runtime: campaign dispatches into here
    from repro.fi.campaign import AppProtocol, Deployment
    from repro.fi.profile import InstructionProfile

__all__ = [
    "MAX_CHUNK_TRIALS", "ChunkPayload", "EngineContext", "chunk_bounds",
    "execute_chunk", "plan_chunks",
]

#: Upper bound on trials per chunk: small enough that progress events
#: flow and stragglers rebalance, large enough to amortize task overhead.
MAX_CHUNK_TRIALS = 50


def chunk_bounds(
    trials: int, jobs: int, max_size: int | None = None
) -> list[tuple[int, int]]:
    """Contiguous ``[start, stop)`` chunks covering ``range(trials)``.

    Aims for ~4 chunks per worker (dynamic load balancing without
    flooding the queue), capped at :data:`MAX_CHUNK_TRIALS` and, when
    given, at ``max_size`` (the checkpoint interval: a chunk is the unit
    of durable progress, so ``--checkpoint-every`` bounds it).
    """
    if trials <= 0:
        return []
    size = max(1, min(MAX_CHUNK_TRIALS, math.ceil(trials / (4 * jobs))))
    if max_size is not None:
        size = max(1, min(size, max_size))
    return [(lo, min(lo + size, trials)) for lo in range(0, trials, size)]


def plan_chunks(
    trials: int, jobs: int, checkpoint_every: int | None = None
) -> list[tuple[int, int]]:
    """The chunk layout for one campaign execution.

    Without workers or checkpointing there is nothing to partition for:
    one chunk keeps the classic in-process loop intact.  A serial
    checkpointed run chunks at exactly the checkpoint interval — the
    chunk *is* the unit of durable progress.  A parallel run splits per
    :func:`chunk_bounds`, with the interval as an upper bound so durable
    progress still lands at least every ``checkpoint_every`` trials.
    """
    if trials <= 0:
        return []
    if jobs <= 1:
        if checkpoint_every is None:
            return [(0, trials)]
        size = checkpoint_every
        return [(lo, min(lo + size, trials)) for lo in range(0, trials, size)]
    return chunk_bounds(trials, jobs, max_size=checkpoint_every)


@dataclass(frozen=True)
class EngineContext:
    """Everything a backend needs to execute trials of one campaign.

    Picklable as a unit: the pool backend ships one context per worker
    (via the pool initializer), never per chunk.
    """

    app: "AppProtocol"
    deployment: "Deployment"
    profile: "InstructionProfile"
    reference: dict
    keep_records: bool
    obs_enabled: bool
    #: hot-path profiling (repro.obs.profiler) — carried to workers so a
    #: chunk's recorder attributes op time exactly like the parent's.
    profiling: bool = False
    #: trials batched per lane-vectorized pass (repro.fi.lanes).  Chunk
    #: planning ignores this — lane blocks subdivide chunks at execution
    #: time, so chunk layout (and thus checkpoint identity) is
    #: lanes-invariant.
    lanes: int = 1
    #: causal tracing (repro.obs.trace) — carried to workers so a
    #: chunk's recorder collects spans exactly like the parent's.
    tracing: bool = False
    #: the parent span for this context's chunks (campaign span in the
    #: fixed driver, the current wave's in the adaptive driver); ids are
    #: deterministic strings, so the context pickles unchanged.
    trace_ctx: TraceContext | None = None


@dataclass
class ChunkPayload:
    """One chunk's compact result, identical from every backend.

    ``joint`` preserves first-occurrence insertion order within the
    chunk, so folding payloads in chunk order rebuilds the exact dict
    the serial loop would have produced.  ``obs`` carries the chunk's
    counters/histograms/span totals and buffered events when capture was
    requested (worker transport or checkpoint persistence); it is None
    when the chunk ran directly against the live recorder.
    """

    start: int
    stop: int
    joint: dict[tuple[Outcome, int, bool], int]
    records: list[TrialRecord] = field(default_factory=list)
    obs: ObsSnapshot | None = None

    @property
    def bounds(self) -> tuple[int, int]:
        return (self.start, self.stop)

    @property
    def n_trials(self) -> int:
        return self.stop - self.start


def execute_chunk(
    ctx: EngineContext,
    start: int,
    stop: int,
    capture: bool = True,
    live_sinks: Sequence[Sink] = (),
) -> ChunkPayload:
    """Run trials ``[start, stop)`` and fold them into one payload.

    ``capture=False`` records straight into the process-wide recorder —
    byte-for-byte the classic serial loop, used when the payload never
    leaves the process and never hits disk.  With ``capture=True`` the
    chunk records into a chunk-local recorder (span paths prefixed with
    ``campaign`` so they match a serial run) whose buffered state ships
    in ``ChunkPayload.obs``; ``live_sinks`` additionally tees every
    event to the given sinks as it happens, keeping ``--progress`` and
    JSONL traces live while an inline checkpointed campaign runs.
    """
    from repro.fi.campaign import run_one_trial  # circular at import time

    # Profiling runs must meter per-trial op counts/time, which a shared
    # batched pass cannot attribute — profiling forces the scalar path.
    effective_lanes = 1 if ctx.profiling else max(1, ctx.lanes)
    if effective_lanes > 1:
        from repro.fi.scenarios import resolve_model  # circular at import

        # lane batching replays bit-flip trial semantics only; other
        # scenario families fall back to the scalar path (run_campaign
        # already warned once)
        if not resolve_model(ctx.deployment.scenario).supports_lanes:
            effective_lanes = 1

    mem: MemorySink | None = None
    if not capture:
        rec = get_recorder()
    elif ctx.obs_enabled:
        mem = MemorySink()
        rec = Recorder(
            [mem, *live_sinks],
            span_prefix=("campaign",),
            profiling=ctx.profiling,
            tracing=ctx.tracing,
        )
    else:
        rec = Recorder(enabled=False)
    # The chunk span: trials record under it (via rec.trace_ctx), and it
    # parents to the driver's campaign/wave span.  Clock reads only —
    # trial execution is untouched, so results cannot depend on tracing.
    tracing = rec.enabled and rec.tracing and ctx.trace_ctx is not None
    prev_trace_ctx = rec.trace_ctx
    if tracing:
        chunk_ctx = ctx.trace_ctx.derive("chunk", start, stop)
        rec.trace_ctx = chunk_ctx
        chunk_w0 = time.time()
        chunk_p0 = time.perf_counter()
    joint: dict[tuple[Outcome, int, bool], int] = {}
    records: list[TrialRecord] = []
    with recording(rec):
        trial = start
        while trial < stop:
            block_stop = min(stop, trial + effective_lanes)
            if block_stop - trial == 1:
                block_records = [run_one_trial(
                    ctx.app, ctx.deployment, ctx.profile, ctx.reference,
                    trial, rec,
                )]
            else:
                from repro.fi.lanes import run_lane_block  # circular at import

                block_records = run_lane_block(
                    ctx.app, ctx.deployment, ctx.profile, ctx.reference,
                    trial, block_stop, rec,
                )
            for record in block_records:
                key = (record.outcome, record.n_contaminated, record.activated)
                joint[key] = joint.get(key, 0) + 1
                if ctx.keep_records:
                    records.append(record)
            trial = block_stop
    if tracing:
        rec.trace_ctx = prev_trace_ctx
        rec.add_trace_span(make_span(
            f"chunk {start}..{stop}", "chunk", chunk_ctx,
            ctx.trace_ctx.span_id, chunk_w0,
            time.perf_counter() - chunk_p0,
            args={"start": start, "stop": stop, "trials": stop - start},
        ))
    snapshot = rec.snapshot(events=mem.events) if mem is not None else None
    return ChunkPayload(
        start=start, stop=stop, joint=joint, records=records, obs=snapshot
    )
