"""Deterministic folding of chunk payloads into campaign aggregates.

The aggregator is why the engine can promise bit-identical results for
any backend, worker count, or interruption pattern: payloads may arrive
in **any** order (pool completion order, checkpoint recovery order), but
they are *folded* strictly in chunk order — the same order the serial
loop visits trials.  Folding merges the ``joint`` distribution
(preserving first-occurrence key insertion order), extends ``records``,
and absorbs each chunk's observability snapshot into the live recorder,
re-emitting buffered events so sinks see every trial exactly once and
in trial order.

This is the one aggregation loop in the package; the serial path, the
worker pool and checkpoint recovery all feed it.
"""

from __future__ import annotations

from typing import Sequence

from repro.engine.chunks import ChunkPayload
from repro.fi.outcomes import Outcome, TrialRecord
from repro.obs import Recorder, get_recorder

__all__ = ["ChunkAggregator"]


class ChunkAggregator:
    """Folds chunk payloads in deterministic chunk order.

    Construct with the campaign's full chunk layout, then :meth:`add`
    payloads as they arrive; out-of-order payloads are buffered until
    every earlier chunk has been folded.  :meth:`finish` returns the
    merged ``(joint, records)`` and verifies nothing went missing.
    """

    def __init__(
        self,
        chunks: Sequence[tuple[int, int]],
        recorder: Recorder | None = None,
    ):
        self._order: list[tuple[int, int]] = sorted(tuple(c) for c in chunks)
        self._next = 0
        self._pending: dict[tuple[int, int], tuple[ChunkPayload, bool]] = {}
        self._recorder = recorder if recorder is not None else get_recorder()
        self.joint: dict[tuple[Outcome, int, bool], int] = {}
        self.records: list[TrialRecord] = []
        self.trials_folded = 0
        self.duplicate_chunks = 0

    def extend(self, chunks: Sequence[tuple[int, int]]) -> None:
        """Append chunks to the layout (adaptive campaigns grow in waves).

        New chunks must come strictly after every chunk already planned —
        the fold order is append-only, so extending never reorders or
        invalidates chunks that may already have been folded.
        """
        new = sorted(tuple(c) for c in chunks)
        if not new:
            return
        if self._order and new[0][0] < self._order[-1][1]:
            raise ValueError(
                f"cannot extend layout with chunk {new[0]}: it overlaps "
                f"already-planned chunk {self._order[-1]}"
            )
        self._order.extend(new)

    def add(self, payload: ChunkPayload, events_emitted: bool = False) -> None:
        """Accept one payload; fold it (and any unblocked successors).

        ``events_emitted`` marks payloads whose events already reached
        the live sinks while the chunk ran (inline execution): their
        aggregates are still absorbed, but events are not re-emitted.

        Re-delivery of a chunk that was already folded or buffered is an
        idempotent no-op (counted in ``duplicate_chunks`` and the
        ``engine.duplicate_chunks`` obs counter): at-least-once backends
        — the distributed backend requeues the chunk of a lost worker,
        and the original worker may still report it — can never
        double-count a trial.  A chunk that was never part of the layout
        at all is still a hard error.
        """
        bounds = payload.bounds
        if bounds in self._pending or bounds in self._order[: self._next]:
            self.duplicate_chunks += 1
            self._recorder.counter("engine.duplicate_chunks")
            return
        if bounds not in self._order[self._next:]:
            raise ValueError(
                f"unexpected chunk {bounds}: not in the remaining "
                f"campaign layout"
            )
        self._pending[payload.bounds] = (payload, events_emitted)
        while (
            self._next < len(self._order)
            and self._order[self._next] in self._pending
        ):
            ready, emitted = self._pending.pop(self._order[self._next])
            self._fold(ready, emitted)
            self._next += 1

    def _fold(self, payload: ChunkPayload, events_emitted: bool) -> None:
        for key, count in payload.joint.items():
            self.joint[key] = self.joint.get(key, 0) + count
        self.records.extend(payload.records)
        self.trials_folded += payload.n_trials
        if payload.obs is not None:
            self._recorder.absorb(payload.obs, emit_events=not events_emitted)

    def finish(
        self,
    ) -> tuple[dict[tuple[Outcome, int, bool], int], list[TrialRecord]]:
        """The merged aggregates; raises if any chunk never arrived."""
        if self._next != len(self._order):
            missing = [c for c in self._order[self._next:] if c not in self._pending]
            raise RuntimeError(
                f"aggregation incomplete: {len(missing)} chunk(s) never "
                f"arrived (first: {missing[0] if missing else self._order[self._next]})"
            )
        return self.joint, self.records
