"""``repro.engine`` — pluggable campaign execution with crash-safe resume.

The subsystem that owns fault-injection trial execution end-to-end
(cf. FINJ, Netti et al. 2018: large campaigns need an orchestration
layer with durable partial results).  One driver
(:func:`~repro.engine.core.run_trials`) runs every campaign through
three orthogonal pieces:

* a :class:`~repro.engine.backends.Backend` — *where* chunks of trials
  execute: in-process (:class:`~repro.engine.backends.InlineBackend`),
  over a spawn-safe worker pool
  (:class:`~repro.engine.backends.ProcessPoolBackend`), or across a
  warm pool of socket-connected worker processes
  (:class:`~repro.engine.distributed.DistributedBackend`, the
  ``distributed:host:port`` spec — see ``docs/distributed.md``);
* a :class:`~repro.engine.aggregate.ChunkAggregator` — *how* chunk
  payloads fold into campaign aggregates: strictly in chunk order, so
  the result is bit-identical to the serial loop no matter which worker
  finished first or which half ran before a crash;
* a :class:`~repro.engine.checkpoint.CheckpointStore` — *what survives*
  a crash: completed chunks persist as they finish, and an interrupted
  campaign (SIGINT, worker crash, OOM kill) resumes by re-running only
  the missing chunks.

``run_campaign`` (:mod:`repro.fi.campaign`) is a thin driver over this
package; see ``docs/engine.md`` for the backend protocol, the
checkpoint format, resume semantics and the determinism argument.
"""

from repro.engine.adaptive import (
    AdaptiveStopper,
    run_adaptive_trials,
    worst_case_trials,
)
from repro.engine.aggregate import ChunkAggregator
from repro.engine.backends import (
    Backend,
    InlineBackend,
    ProcessPoolBackend,
    canonical_backend,
    planning_jobs,
)
from repro.engine.checkpoint import DEFAULT_CHECKPOINT_EVERY, CheckpointStore
from repro.engine.chunks import (
    MAX_CHUNK_TRIALS,
    ChunkPayload,
    EngineContext,
    chunk_bounds,
    execute_chunk,
    plan_chunks,
)
from repro.engine.core import run_trials, select_backend, write_checkpoint
from repro.engine.distributed import DistributedBackend, worker_main
from repro.engine.store import (
    LocalDirStore,
    MemoryStore,
    ResultStore,
    RetryStore,
)

__all__ = [
    "AdaptiveStopper",
    "Backend",
    "DistributedBackend",
    "InlineBackend",
    "ProcessPoolBackend",
    "ChunkAggregator",
    "CheckpointStore",
    "ChunkPayload",
    "EngineContext",
    "DEFAULT_CHECKPOINT_EVERY",
    "MAX_CHUNK_TRIALS",
    "LocalDirStore",
    "MemoryStore",
    "ResultStore",
    "RetryStore",
    "canonical_backend",
    "chunk_bounds",
    "execute_chunk",
    "plan_chunks",
    "planning_jobs",
    "run_adaptive_trials",
    "run_trials",
    "select_backend",
    "worker_main",
    "worst_case_trials",
    "write_checkpoint",
]
