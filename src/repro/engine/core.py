"""The campaign execution driver: chunks → backend → checkpoint → fold.

:func:`run_trials` owns trial execution end-to-end for
:func:`repro.fi.campaign.run_campaign`:

1. plan the chunk layout (or recover the layout of an interrupted run
   from its checkpoint manifest — the layout is pinned at first write so
   resuming under a different ``jobs`` still re-runs exactly the missing
   trial ranges);
2. pick a backend — :class:`~repro.engine.backends.InlineBackend` or
   :class:`~repro.engine.backends.ProcessPoolBackend` — and stream the
   missing chunks through it;
3. persist each completed chunk the moment it lands (when checkpointing
   is on), emitting :class:`~repro.obs.CheckpointWritten`;
4. fold everything — recovered and fresh — in deterministic chunk order
   through one :class:`~repro.engine.aggregate.ChunkAggregator`.

The determinism argument, the checkpoint format and the resume
semantics are documented in ``docs/engine.md``.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING

from repro.engine.aggregate import ChunkAggregator
from repro.engine.backends import (
    Backend,
    InlineBackend,
    ProcessPoolBackend,
    canonical_backend,
    planning_jobs,
)
from repro.engine.checkpoint import DEFAULT_CHECKPOINT_EVERY, CheckpointStore
from repro.engine.distributed import DistributedBackend
from repro.engine.chunks import ChunkPayload, EngineContext, plan_chunks
from repro.fi.outcomes import Outcome, TrialRecord
from repro.obs import CampaignResumed, CheckpointWritten, get_recorder
from repro.obs.trace import make_span, tracing_active

if TYPE_CHECKING:
    from repro.fi.campaign import AppProtocol, Deployment
    from repro.fi.profile import InstructionProfile

__all__ = ["run_trials", "select_backend", "write_checkpoint"]


def write_checkpoint(store, payload: ChunkPayload, obs, trials_done: int) -> None:
    """Persist one completed chunk and emit the bookkeeping telemetry.

    Shared by the fixed-N driver below and the adaptive driver in
    :mod:`repro.engine.adaptive` so both produce identical checkpoint
    artifacts and ``CheckpointWritten`` streams.
    """
    tracing = tracing_active(obs)
    if tracing:
        ckpt_w0 = time.time()
        ckpt_p0 = time.perf_counter()
    path, size = store.write(payload)
    if tracing:
        ctx = obs.trace_ctx
        obs.add_trace_span(make_span(
            f"checkpoint {payload.start}..{payload.stop}", "checkpoint",
            ctx.derive("checkpoint", payload.start, payload.stop),
            ctx.span_id, ckpt_w0, time.perf_counter() - ckpt_p0,
            args={"start": payload.start, "stop": payload.stop,
                  "bytes": size},
        ))
    if obs.enabled:
        obs.counter("checkpoint.writes")
        obs.counter("checkpoint.write_bytes", size)
        obs.emit(CheckpointWritten(
            path=str(path),
            chunk_start=payload.start,
            chunk_stop=payload.stop,
            trials_done=trials_done,
            size_bytes=size,
        ))


def select_backend(
    jobs: int, n_chunks: int, capture: bool, backend: str | None = None
) -> Backend:
    """The backend for ``n_chunks`` remaining chunks at ``jobs`` workers.

    With no explicit ``backend`` spec the historical heuristic applies:
    a pool only pays off with workers to feed and more than one chunk
    to balance; everything else runs inline (``capture`` = buffer chunk
    state for the checkpoint store).  An explicit spec — ``"inline"``,
    ``"process"``, or ``"distributed:host:port"`` (see
    :func:`~repro.engine.backends.canonical_backend`) — overrides the
    heuristic.
    """
    spec = canonical_backend(backend)
    if spec == "inline":
        return InlineBackend(capture=capture)
    if spec == "process":
        return ProcessPoolBackend(max(1, jobs))
    if spec is not None:  # canonical: "distributed:host:port"
        host, _, port = spec.partition(":")[2].rpartition(":")
        return DistributedBackend(host, int(port))
    if jobs > 1 and n_chunks > 1:
        return ProcessPoolBackend(jobs)
    return InlineBackend(capture=capture)


def run_trials(
    app: "AppProtocol",
    deployment: "Deployment",
    profile: "InstructionProfile",
    reference: dict,
    *,
    keep_records: bool = False,
    jobs: int = 1,
    lanes: int = 1,
    checkpoint_every: int | None = None,
    resume: bool = False,
    backend: str | None = None,
) -> tuple[dict[tuple[Outcome, int, bool], int], list[TrialRecord]]:
    """Execute a deployment's trials; returns the merged ``(joint, records)``.

    Bit-identical to the classic serial loop for any ``jobs``, any
    ``lanes`` (trials batched per lane-vectorized execution pass —
    chunk layout stays lanes-invariant), any ``backend`` spec (inline /
    process / distributed), any ``checkpoint_every``, and
    any interruption-and-resume pattern in between.  ``checkpoint_every=N`` persists completed chunks of at
    most N trials as they finish; ``resume=True`` first recovers every
    chunk a previous (interrupted) process persisted and re-runs only
    the missing ones.  ``resume`` alone implies checkpointing at
    :data:`~repro.engine.checkpoint.DEFAULT_CHECKPOINT_EVERY`.
    """
    obs = get_recorder()
    backend = canonical_backend(backend)
    plan_jobs = planning_jobs(backend, jobs)
    trials = deployment.trials
    checkpointing = checkpoint_every is not None or resume
    interval = (
        checkpoint_every if checkpoint_every is not None
        else DEFAULT_CHECKPOINT_EVERY
    )

    store: CheckpointStore | None = None
    chunks: list[tuple[int, int]] | None = None
    recovered: list[ChunkPayload] = []
    if checkpointing:
        store = CheckpointStore(app, deployment, keep_records)
        if resume:
            loaded = store.load()
            if loaded is not None:
                chunks, recovered = loaded
        else:
            store.clear()  # a fresh run never trusts stale leftovers
    if chunks is None:
        chunks = plan_chunks(
            trials, plan_jobs, interval if checkpointing else None
        )
        if store is not None and trials > 0:
            store.begin(trials, chunks)

    done = {payload.bounds for payload in recovered}
    missing = [bounds for bounds in chunks if bounds not in done]
    trials_done = sum(hi - lo for lo, hi in done)

    # progress gauges: last-write-wins, so each campaign resets them and
    # the live /metrics endpoint (and its ETA) tracks the current one
    obs.gauge("campaign.trials_planned", trials)
    obs.gauge("campaign.trials_done", trials_done)

    aggregator = ChunkAggregator(chunks, obs)
    if recovered:
        if obs.enabled:
            obs.emit(CampaignResumed(
                app=app.name,
                trials_done=trials_done,
                trials_total=trials,
                chunks_done=len(recovered),
                chunks_total=len(chunks),
                path=str(store.dir),
            ))
        # fold in chunk order; buffered events replay so the resumed
        # run's trace and provenance cover every trial exactly once
        for payload in sorted(recovered, key=lambda p: p.start):
            aggregator.add(payload)

    if missing:
        ctx = EngineContext(
            app=app, deployment=deployment, profile=profile,
            reference=reference, keep_records=keep_records,
            # checkpointed chunks always capture their events: a run
            # interrupted with obs off can then be resumed with obs ON
            # and still replay every recovered trial into the trace
            obs_enabled=obs.enabled or checkpointing,
            profiling=obs.enabled and obs.profiling,
            lanes=lanes,
            tracing=obs.enabled and obs.tracing,
            trace_ctx=obs.trace_ctx,
        )
        executor = select_backend(
            jobs, len(missing), capture=checkpointing, backend=backend
        )
        for payload in executor.run(ctx, missing):
            if store is not None:
                trials_done += payload.n_trials
                write_checkpoint(store, payload, obs, trials_done)
            aggregator.add(payload, events_emitted=executor.live_events)
            obs.gauge("campaign.trials_done", aggregator.trials_folded)

    joint, records = aggregator.finish()
    if store is not None:
        store.clear()  # complete: the result cache takes over from here
    return joint, records
