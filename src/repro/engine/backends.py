"""Execution backends: where a campaign's chunks actually run.

A :class:`Backend` turns a list of chunk bounds into a stream of
:class:`~repro.engine.chunks.ChunkPayload` objects.  The contract is
deliberately small — it is the seam a future multi-host backend (SSH
fan-out, a batch scheduler, MPI itself) drops into:

* payloads may arrive in **any order** (the driver's aggregator folds
  them deterministically; the checkpoint store persists them as they
  land);
* every chunk handed in must either be yielded exactly once or cause an
  exception — a backend never silently drops work;
* ``live_events`` declares whether the backend already streamed the
  chunks' observability events to the process-wide sinks while running
  (inline execution does; transported payloads have their events
  buffered in ``ChunkPayload.obs`` for the driver to re-emit);
* observability context rides the :class:`EngineContext` one way and
  the :class:`~repro.obs.recorder.ObsSnapshot` the other: the driver's
  causal :class:`~repro.obs.trace.TraceContext` (plus the ``tracing``
  and ``profiling`` switches) ships to workers in the per-worker
  initializer pickle, and each chunk's collected spans, profiler rows
  and buffered events come back in ``ChunkPayload.obs`` — a remote
  backend that honors this contract gets tracing and profiling for
  free.

Two implementations ship: :class:`InlineBackend` (the classic
in-process loop) and :class:`ProcessPoolBackend` (a spawn-safe
``ProcessPoolExecutor``, migrated here from the original — since
removed — ``repro.fi.parallel`` module).
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from typing import Iterator, Protocol, Sequence

from repro.engine.chunks import ChunkPayload, EngineContext, execute_chunk
from repro.errors import ConfigurationError, WorkerCrashError
from repro.obs import get_recorder

__all__ = [
    "Backend", "InlineBackend", "ProcessPoolBackend", "canonical_backend",
    "planning_jobs",
]

Bounds = tuple[int, int]


def canonical_backend(spec: str | None) -> str | None:
    """Validate and canonicalize a backend spec string.

    Accepted forms: ``"inline"``, ``"process"`` (alias ``"pool"``), and
    ``"distributed:host:port"`` (``port`` 0 binds ephemerally; the
    controller publishes the bound address — see
    :mod:`repro.engine.distributed`).  ``None`` means "let
    ``select_backend`` decide from ``jobs``" and passes through.  Raises
    :class:`~repro.errors.ConfigurationError` on anything else, so bad
    ``--backend`` flags and ``$REPRO_BACKEND`` values fail at
    configuration time, not mid-campaign.
    """
    if spec is None:
        return None
    text = str(spec).strip()
    name, _, rest = text.partition(":")
    name = name.lower()
    if name == "inline" and not rest:
        return "inline"
    if name in ("process", "pool") and not rest:
        return "process"
    if name == "distributed":
        host, _, port_text = rest.rpartition(":")
        try:
            port = int(port_text)
        except ValueError:
            port = -1
        if host and 0 <= port <= 65535:
            return f"distributed:{host}:{port}"
        raise ConfigurationError(
            f"invalid backend spec {text!r}: expected distributed:host:port"
        )
    raise ConfigurationError(
        f"unknown backend {text!r}: expected inline, process, or "
        f"distributed:host:port"
    )


def planning_jobs(backend: str | None, jobs: int) -> int:
    """Effective parallelism for chunk planning under a backend spec.

    A distributed campaign with ``jobs`` left at 1 would otherwise plan
    one giant chunk and serialize the whole worker pool; plan for at
    least :data:`~repro.engine.distributed.DEFAULT_PLAN_WORKERS`
    instead.  Safe because chunk layout never affects results — only
    scheduling and checkpoint granularity (see docs/engine.md).
    """
    if backend is not None and backend.startswith("distributed:"):
        from repro.engine.distributed import DEFAULT_PLAN_WORKERS

        return max(jobs, DEFAULT_PLAN_WORKERS)
    return jobs


class Backend(Protocol):
    """Executes chunks of trials; the engine's pluggable seam."""

    #: True when events were already emitted to the live sinks while the
    #: chunk ran (the driver then absorbs aggregates without re-emitting).
    live_events: bool

    def run(
        self, ctx: EngineContext, chunks: Sequence[Bounds]
    ) -> Iterator[ChunkPayload]:
        """Yield one payload per chunk, in any order."""
        ...


class InlineBackend:
    """Run chunks in-process, in order — the classic serial loop.

    With ``capture=False`` (the default) trials record straight into the
    process-wide recorder and the payload carries no snapshot: exactly
    the pre-engine serial path.  ``capture=True`` buffers each chunk's
    observability state for the checkpoint store while teeing events to
    the live sinks, so progress lines and traces behave identically.
    """

    live_events = True

    def __init__(self, capture: bool = False):
        self.capture = capture

    def run(
        self, ctx: EngineContext, chunks: Sequence[Bounds]
    ) -> Iterator[ChunkPayload]:
        live_sinks = tuple(get_recorder().sinks) if self.capture else ()
        for start, stop in chunks:
            yield execute_chunk(
                ctx, start, stop, capture=self.capture, live_sinks=live_sinks
            )


#: Per-worker campaign state, installed once by :func:`_init_worker`.
_WORKER_CTX: list[EngineContext] = []


def _init_worker(ctx: EngineContext) -> None:
    """Pool initializer: receives the campaign state pickled once."""
    _WORKER_CTX[:] = [ctx]


def _run_chunk(bounds: Bounds) -> ChunkPayload:
    """Execute one chunk inside a worker process."""
    start, stop = bounds
    return execute_chunk(_WORKER_CTX[0], start, stop, capture=True)


class ProcessPoolBackend:
    """Fan chunks out over a spawn-safe worker pool.

    The expensive state — the application object, the profiled
    instruction counts, the fault-free reference output — is pickled
    **once per worker** (pool initializer), not per chunk.  Workers use
    the ``spawn`` start method so the engine behaves identically on
    Linux, macOS and Windows and never inherits dirty interpreter state.

    Payloads are yielded in completion order so the driver can persist
    durable progress the moment a chunk finishes; deterministic fold
    order is the aggregator's job.  Worker exceptions propagate
    unchanged; a worker that dies without reporting (hard crash, OOM
    kill) raises :class:`~repro.errors.WorkerCrashError` naming the
    first unfinished chunk's trial range instead of hanging.
    """

    live_events = False

    def __init__(self, jobs: int):
        self.jobs = jobs

    def run(
        self, ctx: EngineContext, chunks: Sequence[Bounds]
    ) -> Iterator[ChunkPayload]:
        context = multiprocessing.get_context("spawn")
        finished: set[Bounds] = set()
        try:
            with ProcessPoolExecutor(
                max_workers=min(self.jobs, len(chunks)),
                mp_context=context,
                initializer=_init_worker,
                initargs=(ctx,),
            ) as pool:
                futures = [pool.submit(_run_chunk, bounds) for bounds in chunks]
                for future in as_completed(futures):
                    payload = future.result()
                    finished.add(payload.bounds)
                    yield payload
        except BrokenProcessPool as exc:
            lo, hi = min(b for b in chunks if b not in finished)
            raise WorkerCrashError(
                f"a worker process died while running {ctx.app.name!r} trials "
                f"(hard crash or external kill before reporting its chunk); "
                f"first unfinished chunk covers trials {lo}..{hi - 1} — rerun "
                f"that range with jobs=1 to reproduce in-process, or rerun "
                f"with checkpointing + resume to redo only the missing chunks",
                chunk_start=lo,
                chunk_stop=hi,
            ) from exc
