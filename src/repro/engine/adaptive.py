"""Adaptive precision-targeted campaigns: spend trials only where needed.

A fixed-N campaign budgets for the worst case: guaranteeing a Wilson
half-width ``h`` on every outcome rate takes ``~(z/2h)^2`` trials when a
rate could sit at 1/2 — but most measured deployments are far more
skewed than that, and the cost of fault-injection sampling dominates
resilience studies (PARIS, Guo et al.; Wu et al. 2018).  This driver
closes the loop the obs layer opened when it started computing Wilson
score intervals per outcome: trials run in *waves* through the existing
:class:`~repro.engine.backends.Backend` /
:class:`~repro.engine.aggregate.ChunkAggregator` /
:class:`~repro.engine.checkpoint.CheckpointStore` machinery, the
per-outcome half-widths are recomputed after each wave, and the
campaign stops as soon as every tracked outcome's half-width falls
below the target — or the deployment's trial cap is hit.

Reproducibility contract (same as the fixed driver's, extended to the
stopping rule): for a fixed ``(seed, target, cap)`` the set of executed
trials is **identical** for any ``jobs`` value and across any
interrupt-and-resume pattern.  Wave boundaries are a deterministic
function of the trial results folded so far — and trial results are
themselves deterministic functions of ``(seed, trial_index)`` — so the
decision sequence cannot depend on worker count or scheduling.  Chunk
layout *within* a wave is scheduler-aware (split per worker via
:func:`~repro.engine.chunks.plan_chunks`), which affects checkpoint
granularity and load balancing only, never the folded result.

See ``docs/adaptive.md`` for the stopping rule, knob precedence and the
full determinism argument.
"""

from __future__ import annotations

import math
import time
from dataclasses import replace
from typing import TYPE_CHECKING

from repro.engine.aggregate import ChunkAggregator
from repro.engine.backends import canonical_backend, planning_jobs
from repro.engine.checkpoint import DEFAULT_CHECKPOINT_EVERY, CheckpointStore
from repro.engine.chunks import ChunkPayload, EngineContext, plan_chunks
from repro.engine.core import select_backend, write_checkpoint
from repro.fi.outcomes import Outcome, TrialRecord
from repro.obs import (
    CampaignConverged,
    CampaignPlanRevised,
    CampaignResumed,
    get_recorder,
)
from repro.obs.confidence import Z_95, wilson_interval
from repro.obs.trace import make_span

if TYPE_CHECKING:
    from repro.fi.campaign import AppProtocol, Deployment
    from repro.fi.profile import InstructionProfile

__all__ = [
    "MIN_WAVE_TRIALS",
    "AdaptiveStopper",
    "achieved_halfwidths",
    "min_trials_for",
    "projected_trials",
    "run_adaptive_trials",
    "wilson_halfwidth",
    "worst_case_trials",
]

#: Floor on wave size: waves below this re-check convergence faster than
#: the estimate can move, and each wave pays fixed scheduling overhead
#: (pool spin-up at ``jobs > 1``, chunk planning, a checkpoint flush).
MIN_WAVE_TRIALS = 20


def wilson_halfwidth(successes: int, n: int, z: float = Z_95) -> float:
    """Half the width of the Wilson score interval for ``successes``/``n``."""
    return wilson_interval(successes, n, z).width / 2.0


def achieved_halfwidths(
    joint: dict[tuple[Outcome, int, bool], int], z: float = Z_95
) -> dict[Outcome, float]:
    """Per-outcome Wilson half-widths of a campaign's joint distribution."""
    n = sum(joint.values())
    out: dict[Outcome, float] = {}
    for oc in Outcome:
        k = sum(c for (o, _, _), c in joint.items() if o == oc)
        out[oc] = wilson_halfwidth(k, n, z)
    return out


def min_trials_for(target: float, z: float = Z_95) -> int:
    """Smallest ``n`` at which *any* rate could meet ``target``.

    The best case is a zero-count outcome, whose Wilson half-width is
    ``z^2 / 2(n + z^2)``; below this ``n`` not even a 0% rate converges,
    so the first wave never needs to be smaller.
    """
    return max(1, math.ceil(z * z * (1.0 / (2.0 * target) - 1.0)))


def worst_case_trials(target: float, z: float = Z_95) -> int:
    """Smallest ``n`` whose worst-case (p = 1/2) half-width meets ``target``.

    This is what a fixed-N campaign must budget when nothing is known
    about the rates up front — the baseline the adaptive driver is
    measured against in ``benchmarks/bench_campaign.py``.
    """
    hi = 2
    while wilson_halfwidth(hi // 2, hi, z) > target:
        hi *= 2
    lo = hi // 2
    while lo < hi:
        mid = (lo + hi) // 2
        if wilson_halfwidth(mid // 2, mid, z) <= target:
            hi = mid
        else:
            lo = mid + 1
    return lo


def projected_trials(
    k: int, n: int, target: float, z: float = Z_95, cap: int = 10**9
) -> int:
    """Projected total trials for ``target`` if the rate stays at ``k/n``.

    Binary-searches the smallest ``m >= n`` whose Wilson half-width at
    the scaled count ``round(k/n * m)`` meets the target, capped at
    ``cap``.  A planning heuristic only: convergence is re-checked on
    the *measured* counts at every wave boundary, so projection error
    merely costs one more (small) wave.
    """
    if n <= 0:
        return min(cap, min_trials_for(target, z))
    if wilson_halfwidth(k, n, z) <= target:
        return n
    p = k / n
    if cap <= n:
        return cap
    if wilson_halfwidth(round(p * cap), cap, z) > target:
        return cap
    lo, hi = n + 1, cap
    while lo < hi:
        mid = (lo + hi) // 2
        if wilson_halfwidth(round(p * mid), mid, z) <= target:
            hi = mid
        else:
            lo = mid + 1
    return lo


class AdaptiveStopper:
    """The sequential stopping rule: wave boundaries and convergence.

    Stateless over the joint distribution so the decision sequence can
    be replayed bit-for-bit on resume: both methods are pure functions
    of ``(target, cap, z)`` and the counts folded so far.
    """

    def __init__(self, target: float, cap: int, z: float = Z_95):
        if not 0.0 < target < 0.5:
            raise ValueError(f"target half-width must be in (0, 0.5), got {target}")
        if cap < 1:
            raise ValueError(f"trial cap must be >= 1, got {cap}")
        self.target = target
        self.cap = cap
        self.z = z

    # ------------------------------------------------------------------
    def _counts(
        self, joint: dict[tuple[Outcome, int, bool], int]
    ) -> dict[Outcome, int]:
        counts = {oc: 0 for oc in Outcome}
        for (oc, _, _), c in joint.items():
            counts[oc] += c
        return counts

    def halfwidths(
        self, joint: dict[tuple[Outcome, int, bool], int]
    ) -> dict[Outcome, float]:
        """Per-outcome achieved half-widths at the current counts."""
        return achieved_halfwidths(joint, self.z)

    def converged(self, joint: dict[tuple[Outcome, int, bool], int]) -> bool:
        """Has every tracked outcome's half-width met the target?"""
        if not joint:
            return False
        return max(self.halfwidths(joint).values()) <= self.target

    def next_boundary(
        self, joint: dict[tuple[Outcome, int, bool], int], n_done: int
    ) -> int:
        """The trial index to run through before the next convergence check.

        The first wave is sized at the smallest count that could
        possibly converge (:func:`min_trials_for`); later waves jump to
        the worst outcome's :func:`projected_trials`.  Both are clamped
        to ``[n_done + MIN_WAVE_TRIALS, cap]`` so every wave makes real
        progress and the cap is never exceeded.
        """
        if n_done == 0:
            boundary = max(MIN_WAVE_TRIALS, min_trials_for(self.target, self.z))
        else:
            counts = self._counts(joint)
            boundary = max(
                projected_trials(counts[oc], n_done, self.target, self.z, self.cap)
                for oc in Outcome
            )
            boundary = max(boundary, n_done + MIN_WAVE_TRIALS)
        return min(self.cap, boundary)


def run_adaptive_trials(
    app: "AppProtocol",
    deployment: "Deployment",
    profile: "InstructionProfile",
    reference: dict,
    *,
    target: float,
    keep_records: bool = False,
    jobs: int = 1,
    lanes: int = 1,
    checkpoint_every: int | None = None,
    resume: bool = False,
    backend: str | None = None,
) -> tuple[dict[tuple[Outcome, int, bool], int], list[TrialRecord]]:
    """Run a deployment adaptively; returns the merged ``(joint, records)``.

    ``deployment.trials`` acts as the trial *cap*; execution stops at
    the first wave boundary where every outcome's Wilson half-width is
    at or below ``target``.  Wave boundaries are deliberately
    lanes-invariant (the executed trial set must not depend on
    ``lanes`` — see the reproducibility contract above); lane blocks
    subdivide each wave's chunks at execution time, with
    :data:`MIN_WAVE_TRIALS` keeping every wave large enough to fill
    whole lane batches.  Checkpointing and resume behave exactly as
    in :func:`~repro.engine.core.run_trials`, with the chunk layout
    extended wave by wave (the manifest's ``planned`` count tracks how
    far the layout reaches).  Emits one
    :class:`~repro.obs.CampaignConverged` event per campaign.
    """
    obs = get_recorder()
    backend = canonical_backend(backend)
    plan_jobs = planning_jobs(backend, jobs)
    cap = deployment.trials
    checkpointing = checkpoint_every is not None or resume
    interval = (
        checkpoint_every if checkpoint_every is not None
        else DEFAULT_CHECKPOINT_EVERY
    )

    store: CheckpointStore | None = None
    pinned: list[tuple[int, int]] = []
    recovered: dict[tuple[int, int], ChunkPayload] = {}
    if checkpointing:
        store = CheckpointStore(app, deployment, keep_records)
        if resume:
            loaded = store.load()
            if loaded is not None:
                pinned, payloads = loaded
                recovered = {p.bounds: p for p in payloads}
        else:
            store.clear()
    planned_hi = max((hi for _, hi in pinned), default=0)

    stopper = AdaptiveStopper(target, cap)
    aggregator = ChunkAggregator([], obs)
    ctx = EngineContext(
        app=app, deployment=deployment, profile=profile,
        reference=reference, keep_records=keep_records,
        # same contract as the fixed driver: checkpointed chunks always
        # capture events so a run interrupted with obs off resumes with
        # full traces
        obs_enabled=obs.enabled or checkpointing,
        profiling=obs.enabled and obs.profiling,
        lanes=lanes,
        tracing=obs.enabled and obs.tracing,
        trace_ctx=obs.trace_ctx,
    )
    # Wave spans nest chunk/checkpoint spans under each wave; the ids
    # are keyed by wave index, so they are deterministic across runs.
    tracing = ctx.tracing and ctx.trace_ctx is not None
    root_trace_ctx = obs.trace_ctx

    trials_durable = sum(hi - lo for lo, hi in recovered)
    if recovered and obs.enabled:
        obs.emit(CampaignResumed(
            app=app.name,
            trials_done=trials_durable,
            trials_total=cap,
            chunks_done=len(recovered),
            chunks_total=len(pinned),
            path=str(store.dir),
        ))

    n_done = 0
    waves = 0
    converged = False
    while not converged and n_done < cap:
        wave_ctx = ctx
        if tracing:
            wave_trace_ctx = root_trace_ctx.derive("wave", waves)
            obs.trace_ctx = wave_trace_ctx
            wave_ctx = replace(ctx, trace_ctx=wave_trace_ctx)
            wave_w0 = time.time()
            wave_p0 = time.perf_counter()
        boundary = stopper.next_boundary(aggregator.joint, n_done)
        # the boundary IS the driver's current projection of the final
        # campaign size — publish it so progress lines and the live
        # /metrics ETA tighten wave by wave instead of assuming the cap
        obs.gauge("campaign.trials_planned", boundary)
        obs.gauge("campaign.trials_done", n_done)
        obs.emit(CampaignPlanRevised(
            app=app.name, planned=boundary, done=n_done,
        ))
        if boundary > planned_hi:
            # extend the pinned layout: fresh trials chunked per worker,
            # durable progress at least every `interval` trials
            fresh = plan_chunks(
                boundary - planned_hi, plan_jobs,
                interval if checkpointing else None,
            )
            pinned.extend(
                (lo + planned_hi, hi + planned_hi) for lo, hi in fresh
            )
            planned_hi = boundary
            if store is not None:
                store.begin(cap, pinned, planned=planned_hi)
        wave = [bounds for bounds in pinned if n_done <= bounds[0] < boundary]
        aggregator.extend(wave)
        missing: list[tuple[int, int]] = []
        for bounds in wave:
            payload = recovered.pop(bounds, None)
            if payload is not None:
                # recovered chunks replay their buffered events through
                # the aggregator, exactly once and in trial order
                aggregator.add(payload)
            else:
                missing.append(bounds)
        if missing:
            executor = select_backend(
                jobs, len(missing), capture=checkpointing, backend=backend
            )
            for payload in executor.run(wave_ctx, missing):
                if store is not None:
                    trials_durable += payload.n_trials
                    write_checkpoint(store, payload, obs, trials_durable)
                aggregator.add(payload, events_emitted=executor.live_events)
                obs.gauge("campaign.trials_done", aggregator.trials_folded)
        n_done = boundary
        waves += 1
        converged = stopper.converged(aggregator.joint)
        obs.gauge("campaign.trials_done", n_done)
        if tracing:
            obs.add_trace_span(make_span(
                f"wave {waves - 1}", "wave", wave_trace_ctx,
                root_trace_ctx.span_id, wave_w0,
                time.perf_counter() - wave_p0,
                args={"wave": waves - 1, "boundary": boundary,
                      "done": n_done},
            ))

    if tracing:
        obs.trace_ctx = root_trace_ctx

    joint, records = aggregator.finish()
    obs.emit(CampaignConverged(
        app=app.name,
        nprocs=deployment.nprocs,
        n_errors=deployment.n_errors,
        target=target,
        trials_used=n_done,
        trials_cap=cap,
        waves=waves,
        converged=converged,
        halfwidths={
            oc.value: hw for oc, hw in stopper.halfwidths(joint).items()
        },
    ))
    if store is not None:
        store.clear()  # complete: the result cache takes over from here
    return joint, records
