"""Pluggable result storage — the durability seam under cache and checkpoints.

Both durable artifact families in this package — the campaign result
cache (:mod:`repro.fi.cache`) and the crash-safe checkpoint store
(:mod:`repro.engine.checkpoint`) — used to speak to the filesystem
directly.  :class:`ResultStore` extracts the five operations they
actually need (get / put / delete / keys / delete_prefix) behind one
protocol, so a campaign's durable state can live on a local directory,
in memory (tests, ephemeral workers), or behind a retry wrapper for
flaky shared filesystems — and a future multi-host deployment can point
every worker at one shared store without touching cache or checkpoint
logic.

Keys are relative POSIX-style paths (``"checkpoints/cg-abc123/meta.json"``).
The contract every implementation honors:

* **Atomicity.** :meth:`~ResultStore.put` is all-or-nothing: a reader
  (or a crash) can never observe a half-written value under a final
  key.  :class:`LocalDirStore` implements this as write-to-temp +
  :func:`os.replace`.
* **Idempotent deletes.** Deleting a missing key is a no-op, so
  corrupt-entry recovery (delete, then recompute) never races itself.
* **Prefix enumeration.** ``keys(prefix)`` returns a sorted list, so
  callers iterate deterministically.

:class:`RetryStore` wraps any store with bounded exponential backoff on
:class:`OSError` — transient NFS/overlay hiccups retry, programming
errors propagate immediately.  The clock and sleep function are
injectable so its backoff schedule is testable without waiting.
"""

from __future__ import annotations

import os
import time
from pathlib import Path, PurePosixPath
from typing import Callable, Protocol, runtime_checkable

__all__ = [
    "LocalDirStore",
    "MemoryStore",
    "ResultStore",
    "RetryStore",
]


@runtime_checkable
class ResultStore(Protocol):
    """Durable key/value storage for campaign artifacts."""

    def get(self, key: str) -> bytes | None:
        """The stored bytes, or None when the key does not exist."""
        ...

    def put(self, key: str, data: bytes) -> int:
        """Atomically store ``data`` under ``key``; returns the byte count."""
        ...

    def delete(self, key: str) -> None:
        """Remove ``key``; deleting a missing key is a no-op."""
        ...

    def keys(self, prefix: str = "") -> list[str]:
        """All stored keys starting with ``prefix``, sorted."""
        ...

    def delete_prefix(self, prefix: str) -> None:
        """Remove every key under ``prefix`` (and any empty directories)."""
        ...

    def describe(self, key: str) -> str:
        """A human-readable location for ``key`` (for events and errors)."""
        ...


def _check_key(key: str) -> str:
    """Reject keys that could escape the store's root."""
    pure = PurePosixPath(key)
    if pure.is_absolute() or ".." in pure.parts or key in ("", "."):
        raise ValueError(f"invalid store key: {key!r}")
    return key


class LocalDirStore:
    """Keys are relative paths under one root directory.

    The on-disk layout is exactly what the pre-store cache and
    checkpoint code wrote — ``LocalDirStore(cache_dir())`` is a drop-in
    for their direct filesystem calls, byte-for-byte.  Writes go to a
    ``<name>.tmp`` sibling first and land via :func:`os.replace`, so a
    kill mid-write can never leave a torn file under a final key;
    ``keys`` skips those transient ``.tmp`` files.
    """

    def __init__(self, root: Path | str):
        self.root = Path(root)

    def _path(self, key: str) -> Path:
        return self.root / _check_key(key)

    def get(self, key: str) -> bytes | None:
        try:
            return self._path(key).read_bytes()
        except FileNotFoundError:
            return None

    def put(self, key: str, data: bytes) -> int:
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(path.name + ".tmp")
        tmp.write_bytes(data)
        os.replace(tmp, path)
        return len(data)

    def delete(self, key: str) -> None:
        try:
            self._path(key).unlink()
        except FileNotFoundError:
            pass

    def keys(self, prefix: str = "") -> list[str]:
        if not self.root.is_dir():
            return []
        found = []
        for path in self.root.rglob("*"):
            if not path.is_file() or path.name.endswith(".tmp"):
                continue
            key = path.relative_to(self.root).as_posix()
            if key.startswith(prefix):
                found.append(key)
        return sorted(found)

    def delete_prefix(self, prefix: str) -> None:
        for key in self.keys(prefix):
            self.delete(key)
        # prune directories the prefix emptied, deepest first
        target = self.root / prefix if prefix else self.root
        base = target if target.is_dir() else target.parent
        if not base.is_dir():
            return
        for directory in sorted(
            (d for d in base.rglob("*") if d.is_dir()), reverse=True
        ) + ([base] if base != self.root else []):
            try:
                directory.rmdir()
            except OSError:
                pass  # not empty (concurrent writer) — leave it

    def describe(self, key: str) -> str:
        return str(self._path(key))


class MemoryStore:
    """An in-process dict with the same contract — tests, dry runs."""

    def __init__(self):
        self._data: dict[str, bytes] = {}

    def get(self, key: str) -> bytes | None:
        return self._data.get(_check_key(key))

    def put(self, key: str, data: bytes) -> int:
        self._data[_check_key(key)] = bytes(data)
        return len(data)

    def delete(self, key: str) -> None:
        self._data.pop(_check_key(key), None)

    def keys(self, prefix: str = "") -> list[str]:
        return sorted(k for k in self._data if k.startswith(prefix))

    def delete_prefix(self, prefix: str) -> None:
        for key in self.keys(prefix):
            del self._data[key]

    def describe(self, key: str) -> str:
        return f"memory:{_check_key(key)}"


class RetryStore:
    """Bounded exponential backoff around a flaky inner store.

    Retries :class:`OSError` only — the failure mode of real shared
    filesystems — up to ``attempts`` total tries per operation, sleeping
    ``base_delay * 2**n`` between tries.  Everything else (bad keys,
    corrupt-data errors raised by callers) propagates immediately.
    ``sleep`` is injectable so tests verify the schedule with a fake
    clock instead of wall time.
    """

    def __init__(
        self,
        inner: ResultStore,
        attempts: int = 3,
        base_delay: float = 0.05,
        sleep: Callable[[float], None] = time.sleep,
    ):
        if attempts < 1:
            raise ValueError("attempts must be >= 1")
        self.inner = inner
        self.attempts = attempts
        self.base_delay = base_delay
        self._sleep = sleep

    def _retry(self, op: Callable, *args):
        for attempt in range(self.attempts):
            try:
                return op(*args)
            except OSError:
                if attempt == self.attempts - 1:
                    raise
                self._sleep(self.base_delay * (2 ** attempt))
        raise AssertionError("unreachable")

    def get(self, key: str) -> bytes | None:
        return self._retry(self.inner.get, key)

    def put(self, key: str, data: bytes) -> int:
        return self._retry(self.inner.put, key, data)

    def delete(self, key: str) -> None:
        return self._retry(self.inner.delete, key)

    def keys(self, prefix: str = "") -> list[str]:
        return self._retry(self.inner.keys, prefix)

    def delete_prefix(self, prefix: str) -> None:
        return self._retry(self.inner.delete_prefix, prefix)

    def describe(self, key: str) -> str:
        return self.inner.describe(key)
