"""Structural analysis of applications' communication behaviour.

Complements the statistical campaigns: a single fault-free run with
traffic recording yields the application's communication graph, from
which :mod:`repro.analysis.topology` derives structural explanations of
the propagation profiles (paper §3.2) — e.g. CG's log2(p)-diameter
exchange + allreduce pattern predicts its one-or-all contamination
histograms, while PENNANT's chain topology predicts gradual creep.
"""

from repro.analysis.topology import CommunicationTopology, analyze_topology

__all__ = ["CommunicationTopology", "analyze_topology"]
