"""Communication-graph extraction and propagation-structure metrics.

One fault-free execution with traffic recording produces the directed
point-to-point graph plus collective counts.  The derived metrics give
*structural* explanations for the measured propagation histograms
(paper §3.2):

* an application whose runs are dominated by **allreduce** collectives
  can only show one-or-all contamination (the collective carries any
  surviving divergence to every rank at once) — CG, FT, LU;
* an application with only **neighbour** point-to-point traffic spreads
  contamination by graph distance per step — PENNANT's chain, MG's
  3-D torus — producing the intermediate contamination counts.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from repro.mpisim.communicator import Communicator
from repro.mpisim.scheduler import Scheduler
from repro.taint.ops import FPOps

__all__ = ["CommunicationTopology", "analyze_topology"]


@dataclass
class CommunicationTopology:
    """The communication structure of one execution."""

    nprocs: int
    graph: nx.DiGraph                     # p2p messages: edge weight = count
    collective_counts: dict[str, int]     # completed collectives by kind

    # ------------------------------------------------------------------
    @property
    def p2p_messages(self) -> int:
        return int(sum(d["weight"] for _, _, d in self.graph.edges(data=True)))

    @property
    def global_collectives(self) -> int:
        """Collectives that synchronize every rank (all kinds here do)."""
        return sum(self.collective_counts.values())

    @property
    def carrying_collectives(self) -> int:
        """Collectives that almost always transport divergence.

        Sum/product reductions combine every contribution into the
        result, so any surviving divergence reaches all ranks; min/max
        reductions absorb a diverged contribution unless it wins, and
        bcast/gather move only specific ranks' data.
        """
        return sum(
            c
            for label, c in self.collective_counts.items()
            if label.endswith(":sum") or label.endswith(":prod")
        )

    def degree(self, rank: int) -> int:
        """Distinct peers this rank exchanges messages with."""
        return len(set(self.graph.successors(rank)) | set(self.graph.predecessors(rank)))

    def p2p_diameter(self) -> float:
        """Longest shortest-path over the undirected p2p graph.

        ``inf`` when the p2p graph alone does not connect the ranks
        (e.g. a collectives-only application).
        """
        if self.nprocs == 1:
            return 0.0
        und = self.graph.to_undirected()
        und.add_nodes_from(range(self.nprocs))
        if not nx.is_connected(und):
            return float("inf")
        return float(nx.diameter(und))

    def spread_rounds(self, source: int = 0) -> dict[int, int]:
        """BFS distance from ``source`` over p2p edges: the minimum number
        of neighbour exchanges before each rank *can* observe divergence
        (collectives can shortcut this to one step for everyone)."""
        und = self.graph.to_undirected()
        und.add_nodes_from(range(self.nprocs))
        lengths = nx.single_source_shortest_path_length(und, source)
        return {r: lengths.get(r, -1) for r in range(self.nprocs)}

    def is_collective_dominated(self) -> bool:
        """Heuristic for the one-or-all propagation signature.

        True when divergence-carrying (sum/prod) global reductions are a
        non-negligible share of a rank's communication events: surviving
        corruption then jumps to every rank at the next reduction (CG,
        FT, LU).  Apps whose reductions are rare relative to neighbour
        traffic (MG's halos, PENNANT's chain with min-reductions) spread
        gradually instead.
        """
        carrying = self.carrying_collectives
        if carrying == 0:
            return False
        per_rank_p2p = self.p2p_messages / max(self.nprocs, 1)
        return carrying / (carrying + per_rank_p2p) >= 0.10


def analyze_topology(app, nprocs: int) -> CommunicationTopology:
    """Run ``app`` fault-free once and extract its communication topology."""
    def factory(rank: int, comm: Communicator):
        return app.program(rank, nprocs, comm, FPOps(None, rank))

    scheduler = Scheduler(nprocs, factory, record_traffic=True)
    scheduler.run()
    graph = nx.DiGraph()
    graph.add_nodes_from(range(nprocs))
    assert scheduler.traffic is not None and scheduler.collective_counts is not None
    for (src, dst), count in scheduler.traffic.items():
        graph.add_edge(src, dst, weight=count)
    return CommunicationTopology(
        nprocs=nprocs,
        graph=graph,
        collective_counts=dict(scheduler.collective_counts),
    )
