"""Exception hierarchy for the :mod:`repro` package.

Every error raised deliberately by this library derives from
:class:`ReproError`, so callers can catch library failures without
swallowing programming errors.  A second, orthogonal family —
:class:`FaultActivatedError` — marks *simulated application failures*
caused by an injected fault (crash / hang analogues).  The fault-injection
campaign driver treats those as the ``FAILURE`` outcome rather than as a
bug in the harness.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """An invalid parameter or an inconsistent configuration was supplied."""


class DeadlockError(ReproError):
    """The simulated MPI scheduler found no runnable rank.

    Raised when every unfinished rank is blocked on a communication
    request that can never be satisfied (e.g. a receive with no matching
    send, or a collective some ranks never enter).
    """


class CommunicatorError(ReproError):
    """Misuse of the simulated MPI API (bad rank, tag, mismatched collective)."""


class InjectionPlanError(ReproError):
    """A fault-injection plan is inconsistent with the profiled execution.

    Typically the plan targets a dynamic instruction index beyond the
    number of instructions the program actually executes.
    """


class CheckerError(ReproError):
    """An application verification checker was configured incorrectly."""


class WorkerCrashError(ReproError):
    """A campaign worker process died without reporting a result.

    Raised by the trial-parallel engine (:mod:`repro.fi.parallel`) when
    a pool worker terminates abruptly — a hard crash, ``os._exit``, or
    the OOM killer — rather than raising a normal (picklable) exception.
    The campaign fails fast instead of hanging on the lost chunk.
    """


class FaultActivatedError(ReproError):
    """Base class for simulated application failures caused by a fault.

    These are *outcomes*, not harness bugs: the campaign driver converts
    them into the ``FAILURE`` fault-injection outcome.
    """


class SimulatedCrashError(FaultActivatedError):
    """The application would have crashed (e.g. NaN/Inf reached a guard)."""


class SimulatedHangError(FaultActivatedError):
    """The application would have hung (e.g. a solver stopped converging)."""
