"""Exception hierarchy for the :mod:`repro` package.

Every error raised deliberately by this library derives from
:class:`ReproError`, so callers can catch library failures without
swallowing programming errors.  A second, orthogonal family —
:class:`FaultActivatedError` — marks *simulated application failures*
caused by an injected fault (crash / hang analogues).  The fault-injection
campaign driver treats those as the ``FAILURE`` outcome rather than as a
bug in the harness.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """An invalid parameter or an inconsistent configuration was supplied."""


class DeadlockError(ReproError):
    """The simulated MPI scheduler found no runnable rank.

    Raised when every unfinished rank is blocked on a communication
    request that can never be satisfied (e.g. a receive with no matching
    send, or a collective some ranks never enter).
    """


class CommunicatorError(ReproError):
    """Misuse of the simulated MPI API (bad rank, tag, mismatched collective)."""


class InjectionPlanError(ReproError):
    """A fault-injection plan is inconsistent with the profiled execution.

    Typically the plan targets a dynamic instruction index beyond the
    number of instructions the program actually executes.
    """


class CheckerError(ReproError):
    """An application verification checker was configured incorrectly."""


class WorkerCrashError(ReproError):
    """A campaign worker process died without reporting a result.

    Raised by the campaign engine (:mod:`repro.engine`) when a pool
    worker terminates abruptly — a hard crash, ``os._exit``, or the OOM
    killer — rather than raising a normal (picklable) exception.  The
    campaign fails fast instead of hanging on the lost chunk, and the
    message narrows the failure to the first unfinished chunk's trial
    range (``chunk_start``/``chunk_stop``, ``[start, stop)``) so the
    culprit can be reproduced with a single in-process trial range.
    """

    def __init__(
        self,
        message: str,
        chunk_start: int | None = None,
        chunk_stop: int | None = None,
    ):
        super().__init__(message)
        self.chunk_start = chunk_start
        self.chunk_stop = chunk_stop


class DistributedProtocolError(ReproError):
    """A distributed-backend socket frame was malformed or out of order.

    Raised by the framing layer (:mod:`repro.engine.distributed`) on a
    truncated frame, an implausible length prefix, undecodable JSON or
    pickle payloads, or a message that violates the hello/init/ready/
    chunk/result conversation.  The controller treats it as the sending
    worker's failure: the worker is dropped, its in-flight chunk is
    requeued, and the campaign continues — the error only propagates to
    callers using the framing helpers directly (e.g. a worker talking
    to a broken controller).
    """


class CheckpointCorruptError(ReproError):
    """A campaign checkpoint file failed to parse or validate.

    Raised by the engine's checkpoint store (:mod:`repro.engine.checkpoint`)
    when a persisted chunk result or the checkpoint manifest is damaged —
    external truncation, disk corruption, or a foreign file in the
    checkpoint directory.  The offending file is deleted before raising,
    so simply rerunning the campaign restarts cleanly (re-running only
    the chunk whose checkpoint was lost).  ``path`` names the damaged
    file.
    """

    def __init__(self, message: str, path: str | None = None):
        super().__init__(message)
        self.path = path


class FaultActivatedError(ReproError):
    """Base class for simulated application failures caused by a fault.

    These are *outcomes*, not harness bugs: the campaign driver converts
    them into the ``FAILURE`` fault-injection outcome.
    """


class SimulatedCrashError(FaultActivatedError):
    """The application would have crashed (e.g. NaN/Inf reached a guard)."""


class SimulatedHangError(FaultActivatedError):
    """The application would have hung (e.g. a solver stopped converging)."""


class InjectedDeadlockError(DeadlockError, FaultActivatedError):
    """An injected system-level fault left live ranks blocked forever.

    Raised by the scheduler instead of the plain :class:`DeadlockError`
    when an armed fault (a rank fail-stop) actually fired before the
    ranks wedged — the surviving ranks are waiting on point-to-point
    messages the dead rank will never send.  Deriving from both bases
    keeps existing ``except DeadlockError`` handlers working while
    letting scenario drivers distinguish fault-induced deadlocks from
    harness bugs in provenance records.
    """


class CollectiveAbortError(CommunicatorError, FaultActivatedError):
    """Communication involving a fail-stopped rank aborted the application.

    The analogue of MPI's default error handler tearing the job down on
    any communication failure: a send targeting a dead rank, or a
    collective that can never complete because a participant was
    fail-stopped after others entered it.  Distinguished from
    :class:`InjectedDeadlockError` (a silent wedge) so rank-kill
    campaigns can report abort vs deadlock rates separately.
    """
