"""Deterministic random-number management for fault-injection campaigns.

A campaign must be reproducible: re-running with the same master seed has
to select the same dynamic instructions, operands and bits for every
trial, regardless of how many trials run or in what order.  We therefore
derive every random stream from a :class:`numpy.random.SeedSequence`
tree keyed by *named* paths (``campaign -> trial #k -> purpose``), never
from shared mutable generator state.
"""

from __future__ import annotations

import hashlib
from typing import Iterable

import numpy as np

__all__ = ["SeedSequenceTree", "spawn_rng", "trial_seed"]


def _key_to_int(key: str | int) -> int:
    """Map an arbitrary string/int key to a stable 64-bit integer."""
    if isinstance(key, (int, np.integer)):
        return int(key)
    digest = hashlib.sha256(key.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


class SeedSequenceTree:
    """A keyed tree of seed sequences.

    Unlike ``SeedSequence.spawn`` (which is order-dependent), children here
    are addressed by key, so ``tree.child("trial", 7)`` is the same stream
    whether or not trials 0..6 were ever requested.

    Parameters
    ----------
    seed:
        Master seed (int) or an existing ``SeedSequence``.
    """

    def __init__(self, seed: int | np.random.SeedSequence = 0):
        if isinstance(seed, np.random.SeedSequence):
            self._ss = seed
        else:
            self._ss = np.random.SeedSequence(int(seed))

    def child(self, *keys: str | int) -> "SeedSequenceTree":
        """Return the subtree addressed by ``keys``."""
        entropy = list(self._ss.entropy if isinstance(self._ss.entropy, (list, tuple))
                       else [self._ss.entropy])
        path = list(self._ss.spawn_key) + [_key_to_int(k) % (2**32) for k in keys]
        return SeedSequenceTree(np.random.SeedSequence(entropy, spawn_key=tuple(path)))

    def generator(self) -> np.random.Generator:
        """Materialize a PCG64 generator at this node."""
        return np.random.Generator(np.random.PCG64(self._ss))

    @property
    def seed_sequence(self) -> np.random.SeedSequence:
        return self._ss


def spawn_rng(seed: int, *keys: str | int) -> np.random.Generator:
    """Convenience: generator at path ``keys`` under master ``seed``."""
    return SeedSequenceTree(seed).child(*keys).generator()


def trial_seed(master_seed: int, trial_index: int, purpose: str = "trial") -> np.random.Generator:
    """Generator dedicated to one fault-injection trial.

    Every trial gets an independent stream so campaigns parallelize or
    truncate without changing per-trial decisions.
    """
    return spawn_rng(master_seed, purpose, trial_index)


def stable_choice(rng: np.random.Generator, items: Iterable) -> object:
    """Uniform choice over a materialized sequence (tuple order preserved)."""
    seq = list(items)
    if not seq:
        raise ValueError("cannot choose from an empty sequence")
    return seq[int(rng.integers(0, len(seq)))]
