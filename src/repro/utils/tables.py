"""Plain-text table rendering for experiment harnesses.

The experiment drivers print the same rows the paper's tables/figures
report; this module gives them a single consistent renderer so the
benchmark output is easy to diff across runs.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["format_table"]


def _cell(value: object, ndigits: int) -> str:
    if isinstance(value, float):
        return f"{value:.{ndigits}f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
    ndigits: int = 3,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned ASCII table."""
    if any(len(row) != len(headers) for row in rows):
        raise ValueError("every row must have exactly one cell per header")
    cells = [[_cell(v, ndigits) for v in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in cells)) if cells else len(headers[i])
        for i in range(len(headers))
    ]
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for r in cells:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(r, widths)))
    return "\n".join(lines)
