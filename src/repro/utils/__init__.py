"""Shared utilities: deterministic RNG trees, validation, timing, tables."""

from repro.utils.rng import SeedSequenceTree, spawn_rng, trial_seed
from repro.utils.timing import Timer
from repro.utils.validation import (
    check_positive_int,
    check_probability,
    check_power_of_two,
    require,
)
from repro.utils.tables import format_table

__all__ = [
    "SeedSequenceTree",
    "spawn_rng",
    "trial_seed",
    "Timer",
    "check_positive_int",
    "check_probability",
    "check_power_of_two",
    "require",
    "format_table",
]
