"""Small argument-validation helpers used across the library.

These raise :class:`repro.errors.ConfigurationError` so user-facing
misconfiguration is distinguishable from internal bugs (which raise the
built-in ``ValueError``/``TypeError``).
"""

from __future__ import annotations

from repro.errors import ConfigurationError

__all__ = ["require", "check_positive_int", "check_probability", "check_power_of_two"]


def require(condition: bool, message: str) -> None:
    """Raise :class:`ConfigurationError` with ``message`` unless ``condition``."""
    if not condition:
        raise ConfigurationError(message)


def check_positive_int(value: int, name: str) -> int:
    """Validate that ``value`` is a positive integer and return it."""
    if not isinstance(value, int) or isinstance(value, bool) or value <= 0:
        raise ConfigurationError(f"{name} must be a positive integer, got {value!r}")
    return value


def check_probability(value: float, name: str) -> float:
    """Validate that ``value`` lies in [0, 1] and return it as float."""
    try:
        v = float(value)
    except (TypeError, ValueError):
        raise ConfigurationError(f"{name} must be a number in [0, 1], got {value!r}") from None
    if not 0.0 <= v <= 1.0:
        raise ConfigurationError(f"{name} must lie in [0, 1], got {v}")
    return v


def check_power_of_two(value: int, name: str) -> int:
    """Validate that ``value`` is a positive power of two and return it."""
    check_positive_int(value, name)
    if value & (value - 1):
        raise ConfigurationError(f"{name} must be a power of two, got {value}")
    return value
