"""Wall-clock timing helpers for campaigns and benchmark harnesses."""

from __future__ import annotations

import time
from dataclasses import dataclass, field

__all__ = ["Timer"]


@dataclass
class Timer:
    """Accumulating stopwatch usable as a context manager.

    >>> t = Timer()
    >>> with t:
    ...     pass
    >>> t.elapsed >= 0.0
    True

    Multiple ``with`` blocks accumulate into :attr:`elapsed`, which suits
    measuring only the injection portion of a campaign loop; each block's
    individual duration is appended to :attr:`splits` (the lap list the
    observability span recorder reuses).

    Misuse (re-entering a running timer, exiting or resetting one that
    is not in the expected state) raises :class:`RuntimeError` — not
    ``assert``, which would vanish under ``python -O``.
    """

    elapsed: float = 0.0
    splits: list[float] = field(default_factory=list)
    _start: float | None = field(default=None, repr=False)

    @property
    def running(self) -> bool:
        """True between ``__enter__`` and ``__exit__``."""
        return self._start is not None

    def __enter__(self) -> "Timer":
        if self._start is not None:
            raise RuntimeError("Timer re-entered while already running")
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        if self._start is None:
            raise RuntimeError("Timer.__exit__ without __enter__")
        lap = time.perf_counter() - self._start
        self.elapsed += lap
        self.splits.append(lap)
        self._start = None

    def reset(self) -> None:
        """Zero the accumulated time and laps; must not be running."""
        if self._start is not None:
            raise RuntimeError("cannot reset a running Timer")
        self.elapsed = 0.0
        self.splits.clear()
