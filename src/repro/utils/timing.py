"""Wall-clock timing helpers for campaigns and benchmark harnesses."""

from __future__ import annotations

import time
from dataclasses import dataclass, field

__all__ = ["Timer"]


@dataclass
class Timer:
    """Accumulating stopwatch usable as a context manager.

    >>> t = Timer()
    >>> with t:
    ...     pass
    >>> t.elapsed >= 0.0
    True

    Multiple ``with`` blocks accumulate into :attr:`elapsed`, which suits
    measuring only the injection portion of a campaign loop.
    """

    elapsed: float = 0.0
    _start: float | None = field(default=None, repr=False)

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        assert self._start is not None, "Timer.__exit__ without __enter__"
        self.elapsed += time.perf_counter() - self._start
        self._start = None

    def reset(self) -> None:
        """Zero the accumulated time; must not be running."""
        assert self._start is None, "cannot reset a running Timer"
        self.elapsed = 0.0
