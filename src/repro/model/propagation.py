"""Error-propagation histograms and the small-to-large mapping (Eq. 5).

A *propagation profile* is the distribution of how many MPI processes
end up contaminated after one error is injected into one process —
``r_x`` in the paper's notation (Eq. 3).  Profiles from a small-scale
execution predict the grouped profile at large scale (Observation 3):
the large-scale cases ``1..p`` are split into ``S`` equal groups and
group ``g`` inherits the small-scale probability ``r'_g`` (Eq. 5,
visualized in Figs. 1c/2c).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.fi.campaign import CampaignResult

__all__ = ["PropagationProfile", "group_histogram", "map_small_to_large"]


@dataclass(frozen=True)
class PropagationProfile:
    """Probabilities ``r_x`` for x = 1..nprocs (x = contaminated count)."""

    nprocs: int
    probabilities: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.probabilities) != self.nprocs:
            raise ConfigurationError(
                f"profile needs {self.nprocs} probabilities, got {len(self.probabilities)}"
            )
        total = sum(self.probabilities)
        if self.probabilities and not math.isclose(total, 1.0, abs_tol=1e-9):
            raise ConfigurationError(f"propagation probabilities must sum to 1, got {total}")

    @classmethod
    def from_counts(cls, counts: dict[int, int], nprocs: int) -> "PropagationProfile":
        """Build from a contaminated-count histogram (1-based keys)."""
        bad = [n for n in counts if not 1 <= n <= nprocs]
        if bad:
            raise ConfigurationError(
                f"contaminated counts {bad} outside [1, {nprocs}]"
            )
        total = sum(counts.values())
        if total == 0:
            raise ConfigurationError("empty propagation histogram")
        probs = tuple(counts.get(x, 0) / total for x in range(1, nprocs + 1))
        return cls(nprocs=nprocs, probabilities=probs)

    @classmethod
    def from_campaign(cls, campaign: CampaignResult) -> "PropagationProfile":
        return cls.from_counts(
            campaign.propagation_counts(), campaign.deployment.nprocs
        )

    # ------------------------------------------------------------------
    def r(self, x: int) -> float:
        """``r_x``: probability that exactly x processes get contaminated."""
        if not 1 <= x <= self.nprocs:
            raise ConfigurationError(f"x={x} outside [1, {self.nprocs}]")
        return self.probabilities[x - 1]

    def as_array(self) -> np.ndarray:
        return np.asarray(self.probabilities)


def group_histogram(profile: PropagationProfile, groups: int) -> np.ndarray:
    """Aggregate a large-scale profile into equal groups (Fig. 1c).

    Splits the ``p`` propagation cases into ``groups`` equal intervals
    and sums the probability mass inside each — the vector the paper
    compares against the small-scale profile with cosine similarity.
    """
    p = profile.nprocs
    if groups < 1 or p % groups:
        raise ConfigurationError(f"cannot split {p} cases into {groups} equal groups")
    width = p // groups
    arr = profile.as_array()
    return arr.reshape(groups, width).sum(axis=1)


def map_small_to_large(
    small: PropagationProfile, large_nprocs: int, mode: str = "group"
) -> PropagationProfile:
    """Project a small-scale ``r'`` profile onto the large scale.

    ``mode="group"`` is the paper's Eq. 5: ``r_x = r'_{ceil(x S / p)} /
    (p / S)`` — each small-scale case's probability mass spreads
    uniformly over its group of ``p/S`` large-scale cases, so the
    projected profile still sums to one.

    ``mode="interpolate"`` is an ablation alternative: the small-scale
    masses are placed at the group centres and linearly interpolated
    before renormalizing — smoother, but it smears the strongly bimodal
    profiles real applications produce (see the ablation benchmark).
    """
    s = small.nprocs
    if large_nprocs % s:
        raise ConfigurationError(
            f"large scale {large_nprocs} must be a multiple of small scale {s}"
        )
    width = large_nprocs // s
    if mode == "group":
        probs = []
        for x in range(1, large_nprocs + 1):
            g = math.ceil(x * s / large_nprocs)
            probs.append(small.r(g) / width)
        return PropagationProfile(nprocs=large_nprocs, probabilities=tuple(probs))
    if mode == "interpolate":
        centres = np.array([(g - 0.5) * width + 0.5 for g in range(1, s + 1)])
        xs = np.arange(1, large_nprocs + 1, dtype=float)
        density = np.interp(xs, centres, small.as_array() / width)
        density /= density.sum()
        return PropagationProfile(nprocs=large_nprocs, probabilities=tuple(density))
    raise ConfigurationError(f"unknown projection mode {mode!r}")
