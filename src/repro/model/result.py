"""Fault-injection result triples (success / SDC / failure rates).

The paper's "fault injection result" is, for each outcome, the fraction
of tests with that outcome (§2).  :class:`FaultInjectionResult` carries
the full triple so the model can predict all three rates at once; the
paper's figures focus on the success rate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.fi.campaign import CampaignResult
from repro.fi.outcomes import Outcome
from repro.obs.confidence import Z_95, ConfidenceInterval, wilson_interval

__all__ = ["FaultInjectionResult", "result_given_contaminated"]


@dataclass(frozen=True)
class FaultInjectionResult:
    """Outcome rates of one deployment (or one conditional slice of it).

    ``bounds`` carries *derived* per-outcome uncertainty for predicted
    triples (``n_trials == 0``), propagated by the predictor from the
    Wilson intervals of its measured inputs; measured triples leave it
    empty and compute Wilson intervals from ``n_trials`` on demand.
    """

    success: float
    sdc: float
    failure: float
    n_trials: int = 0
    bounds: dict[Outcome, ConfidenceInterval] | None = field(
        default=None, compare=False
    )

    def __post_init__(self) -> None:
        total = self.success + self.sdc + self.failure
        if self.n_trials and not math.isclose(total, 1.0, abs_tol=1e-9):
            raise ValueError(f"outcome rates must sum to 1, got {total}")

    # ------------------------------------------------------------------
    @classmethod
    def from_campaign(cls, campaign: CampaignResult) -> "FaultInjectionResult":
        return cls(
            success=campaign.success_rate,
            sdc=campaign.sdc_rate,
            failure=campaign.failure_rate,
            n_trials=campaign.n_trials,
        )

    @classmethod
    def from_rates(
        cls,
        success: float,
        sdc: float,
        failure: float,
        bounds: dict[Outcome, ConfidenceInterval] | None = None,
    ) -> "FaultInjectionResult":
        """Model-predicted triple (not tied to a trial count)."""
        return cls(
            success=success, sdc=sdc, failure=failure, n_trials=0,
            bounds=bounds,
        )

    # ------------------------------------------------------------------
    def rate(self, outcome: Outcome) -> float:
        return {
            Outcome.SUCCESS: self.success,
            Outcome.SDC: self.sdc,
            Outcome.FAILURE: self.failure,
        }[outcome]

    def normalized(self) -> "FaultInjectionResult":
        """Rescale the triple to sum to one (used after fine-tuning)."""
        total = self.success + self.sdc + self.failure
        if total <= 0:
            return FaultInjectionResult.from_rates(1.0, 0.0, 0.0)
        return FaultInjectionResult.from_rates(
            self.success / total, self.sdc / total, self.failure / total
        )

    def success_interval(self, z: float = 1.96) -> tuple[float, float]:
        """Normal-approximation confidence interval on the success rate."""
        if self.n_trials == 0:
            return (self.success, self.success)
        half = z * math.sqrt(
            max(self.success * (1.0 - self.success), 0.0) / self.n_trials
        )
        return (max(self.success - half, 0.0), min(self.success + half, 1.0))

    def interval(
        self, outcome: Outcome = Outcome.SUCCESS, z: float = Z_95
    ) -> ConfidenceInterval:
        """Confidence interval on one outcome rate.

        Precedence: predictor-derived ``bounds`` when present, then the
        Wilson score interval from ``n_trials``, then the degenerate
        point interval for predicted triples with no propagated bounds.
        """
        if self.bounds is not None and outcome in self.bounds:
            return self.bounds[outcome]
        p = min(max(self.rate(outcome), 0.0), 1.0)
        if self.n_trials > 0:
            return wilson_interval(round(p * self.n_trials), self.n_trials, z)
        return ConfidenceInterval(p, p)

    def halfwidth(self, outcome: Outcome = Outcome.SUCCESS, z: float = Z_95) -> float:
        """Half the width of :meth:`interval` — the precision actually
        achieved on one rate, comparable directly against an adaptive
        campaign's ``ci_halfwidth`` target."""
        return self.interval(outcome, z).width / 2.0


def result_given_contaminated(
    campaign: CampaignResult, n_contaminated: int
) -> FaultInjectionResult | None:
    """Outcome rates among activated tests with ``n`` ranks contaminated.

    The quantity plotted on the paper's Fig. 3 parallel curves and used
    as ``FI_small_par_x`` by the alpha fine-tuning.  Returns None when no
    test contaminated exactly ``n`` ranks (the paper's missing bars).
    """
    counts = {Outcome.SUCCESS: 0, Outcome.SDC: 0, Outcome.FAILURE: 0}
    for (outcome, ncont, activated), c in campaign.joint.items():
        if activated and ncont == n_contaminated:
            counts[outcome] += c
    total = sum(counts.values())
    if total == 0:
        return None
    return FaultInjectionResult(
        success=counts[Outcome.SUCCESS] / total,
        sdc=counts[Outcome.SDC] / total,
        failure=counts[Outcome.FAILURE] / total,
        n_trials=total,
    )
