"""The sampling plan for serial fault-injection results (paper §4.2).

Measuring ``FI_ser_x`` for every x in 1..p is exactly what the paper is
trying to avoid; instead ``S`` sample cases are measured and every other
x borrows its nearest sample's result.  The sample cases evenly cover
the space: ``x = 1, 2p/S, 3p/S, ..., p`` (the paper's example with
p = 64, S = 4 measures x in {1, 32, 48, 64}), and case ``x`` maps to the
sample of its group ``g = ceil(x S / p)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = ["SerialSamplePlan"]


@dataclass(frozen=True)
class SerialSamplePlan:
    """Which serial multi-error deployments to run, and the x -> sample map."""

    large_nprocs: int
    n_samples: int

    def __post_init__(self) -> None:
        if self.n_samples < 1:
            raise ConfigurationError(f"n_samples must be >= 1, got {self.n_samples}")
        if self.large_nprocs % self.n_samples:
            raise ConfigurationError(
                f"large scale {self.large_nprocs} must be a multiple of "
                f"the sample count {self.n_samples}"
            )

    # ------------------------------------------------------------------
    @property
    def sample_cases(self) -> tuple[int, ...]:
        """Error counts to actually measure in serial execution.

        ``1`` for the first group (the overwhelmingly common single-
        process case), then each further group's upper edge ``g * p/S``.
        """
        p, s = self.large_nprocs, self.n_samples
        return tuple([1] + [g * p // s for g in range(2, s + 1)])

    def group_of(self, x: int) -> int:
        """1-based group index of case ``x`` (x errors / x contaminated)."""
        if not 1 <= x <= self.large_nprocs:
            raise ConfigurationError(f"x={x} outside [1, {self.large_nprocs}]")
        return math.ceil(x * self.n_samples / self.large_nprocs)

    def sample_for(self, x: int) -> int:
        """The measured sample case whose result stands in for case ``x``."""
        return self.sample_cases[self.group_of(x) - 1]
