"""The resilience predictor: paper Eqs. 1, 4/7/8 assembled end to end.

Inputs (everything measurable *without* large-scale injection):

* serial multi-error campaigns at the sample cases (``FI_ser_x``),
* one small-scale single-error campaign (propagation profile ``r'`` +
  conditional results for alpha fine-tuning + the fine-tune trigger),
* optionally a small-scale campaign restricted to the parallel-unique
  region (``FI_par_unique``), and
* the parallel-unique instruction share at one or more scales, used to
  extrapolate ``prob2`` at the target scale.

Output: the predicted outcome-rate triple at ``target_nprocs``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError
from repro.fi.campaign import CampaignResult
from repro.fi.outcomes import Outcome
from repro.model.finetune import AlphaFineTuner, needs_fine_tuning
from repro.obs.confidence import ConfidenceInterval
from repro.model.propagation import PropagationProfile, group_histogram
from repro.model.result import FaultInjectionResult
from repro.model.sampling import SerialSamplePlan

__all__ = ["PredictionInputs", "ResiliencePredictor"]


def _combine_bounds(
    rates: dict[Outcome, float],
    contributions: list[tuple[float, FaultInjectionResult]],
) -> dict[Outcome, ConfidenceInterval]:
    """Propagate measured uncertainty into a predicted triple.

    A predicted rate is a convex combination ``sum_i w_i * p_i`` of
    measured rates; its half-width is bounded by the same combination of
    the inputs' Wilson half-widths (conservative — treats the sampling
    errors as fully correlated), centered on the predicted rate and
    clipped to [0, 1].
    """
    out: dict[Outcome, ConfidenceInterval] = {}
    for oc, rate in rates.items():
        half = sum(w * fi.halfwidth(oc) for w, fi in contributions)
        out[oc] = ConfidenceInterval(
            max(0.0, rate - half), min(1.0, rate + half)
        )
    return out


def extrapolate_unique_fraction(fractions: dict[int, float], target_nprocs: int) -> float:
    """Extrapolate the parallel-unique share to the target scale.

    The paper leans on execution-time prediction [Chapuis et al.] for
    the Eq. 1 weights; we fit the measured instruction-share against
    ``log2(p)`` (the growth law of exchange-style parallel-unique
    computation) and clamp to [0, 0.95].
    """
    pts = {p: f for p, f in fractions.items() if p > 1}
    if not pts:
        return 0.0
    if target_nprocs in fractions:
        return fractions[target_nprocs]
    if len(pts) == 1:
        ((p, f),) = pts.items()
        scaled = f * math.log2(target_nprocs) / math.log2(p)
        return float(np.clip(scaled, 0.0, 0.95))
    xs = np.log2(np.array(sorted(pts)))
    ys = np.array([pts[p] for p in sorted(pts)])
    slope, intercept = np.polyfit(xs, ys, 1)
    return float(np.clip(slope * math.log2(target_nprocs) + intercept, 0.0, 0.95))


@dataclass
class PredictionInputs:
    """Everything the model consumes (see module docstring)."""

    serial_samples: dict[int, FaultInjectionResult]   # x errors -> FI_ser_x
    small_campaign: CampaignResult                    # S ranks, 1 error/test
    unique_result: FaultInjectionResult | None = None  # FI_par_unique
    unique_fractions: dict[int, float] = field(default_factory=dict)  # p -> share
    #: FI_ser with S errors — lets the fine-tune trigger compare serial
    #: emulation of the small scale against the small-scale measurement.
    serial_probe: FaultInjectionResult | None = None

    @property
    def small_nprocs(self) -> int:
        return self.small_campaign.deployment.nprocs


class ResiliencePredictor:
    """Predicts large-scale fault-injection results (paper §4)."""

    def __init__(
        self,
        inputs: PredictionInputs,
        fine_tune_threshold: float = 0.20,
        unique_ignore_below: float = 0.02,
    ):
        self.inputs = inputs
        self.fine_tune_threshold = fine_tune_threshold
        self.unique_ignore_below = unique_ignore_below
        self._small_profile = PropagationProfile.from_campaign(inputs.small_campaign)
        self._small_overall = FaultInjectionResult.from_campaign(inputs.small_campaign)
        self._tuner = AlphaFineTuner.from_campaign(inputs.small_campaign)

    # ------------------------------------------------------------------
    @property
    def fine_tuning_active(self) -> bool:
        """The paper's >20 % trigger: is serial emulation good enough?

        The small scale is *emulated* from serial results — single-error
        serial for the one-process-contaminated mass, S-error serial
        (the probe) for the propagated mass — and compared against the
        measured small-scale result.  Disagreement beyond the threshold
        means serial multi-error injection does not model concurrent
        contamination for this application (paper names FT, LU, MG) and
        the alpha fine-tuning takes over.
        """
        serial_1 = self.inputs.serial_samples.get(1)
        if serial_1 is None:
            raise ConfigurationError("serial sample for x=1 error is required")
        probe = self.inputs.serial_probe
        r1 = self._small_profile.r(1)
        if probe is None:
            emulated = serial_1
        else:
            emulated = FaultInjectionResult.from_rates(
                success=r1 * serial_1.success + (1 - r1) * probe.success,
                sdc=r1 * serial_1.sdc + (1 - r1) * probe.sdc,
                failure=r1 * serial_1.failure + (1 - r1) * probe.failure,
            )
        return needs_fine_tuning(
            emulated, self._small_overall, self.fine_tune_threshold
        )

    # ------------------------------------------------------------------
    def input_halfwidths(self) -> dict[str, float]:
        """Worst-outcome achieved Wilson half-width per measured input.

        One entry per campaign feeding the prediction — ``"serial x=K"``
        for every multi-error serial sample, ``"small p=S"`` for the
        small-scale propagation campaign, ``"unique p=S"`` when the
        parallel-unique term is active.  This is what an adaptive
        campaign's ``ci_halfwidth`` target controls: every value here is
        at most the target when the sweep converged (see
        ``docs/adaptive.md``), and the Eq. 1/8 convex combinations mean
        the predicted triple's propagated half-width is bounded by the
        worst of these.
        """
        out: dict[str, float] = {}
        for x in sorted(self.inputs.serial_samples):
            fi = self.inputs.serial_samples[x]
            out[f"serial x={x}"] = max(fi.halfwidth(oc) for oc in Outcome)
        small = self._small_overall
        out[f"small p={self.inputs.small_nprocs}"] = max(
            small.halfwidth(oc) for oc in Outcome
        )
        if self.inputs.unique_result is not None:
            out[f"unique p={self.inputs.small_nprocs}"] = max(
                self.inputs.unique_result.halfwidth(oc) for oc in Outcome
            )
        return out

    def predict(self, target_nprocs: int) -> FaultInjectionResult:
        """Eq. 1: weighted sum of the common and parallel-unique terms."""
        common = self.predict_common(target_nprocs)
        prob2 = extrapolate_unique_fraction(
            self.inputs.unique_fractions, target_nprocs
        )
        if prob2 < self.unique_ignore_below or self.inputs.unique_result is None:
            # Observation 2: the parallel-unique term is negligible.
            return common
        unique = self.inputs.unique_result
        prob1 = 1.0 - prob2
        rates = {
            oc: prob1 * common.rate(oc) + prob2 * unique.rate(oc)
            for oc in Outcome
        }
        return FaultInjectionResult.from_rates(
            success=rates[Outcome.SUCCESS],
            sdc=rates[Outcome.SDC],
            failure=rates[Outcome.FAILURE],
            bounds=_combine_bounds(
                rates, [(prob1, common), (prob2, unique)]
            ),
        )

    def predict_common(self, target_nprocs: int) -> FaultInjectionResult:
        """Eq. 8: FI_par_common = sum_g r'_g * FI'_ser(sample of group g).

        The small-scale propagation profile is first re-grouped to the
        sample-plan group count (identical when the small scale and the
        sample count coincide, the paper's default).
        """
        samples = self.inputs.serial_samples
        plan = SerialSamplePlan(
            large_nprocs=target_nprocs, n_samples=self._group_count(samples)
        )
        weights = self._group_weights(plan.n_samples)
        tune = self.fine_tuning_active
        succ = sdc = fail = 0.0
        contributions: list[tuple[float, FaultInjectionResult]] = []
        for g, case in enumerate(plan.sample_cases, start=1):
            fi = samples.get(case)
            if fi is None:
                raise ConfigurationError(
                    f"missing serial sample for x={case} errors "
                    f"(plan cases: {plan.sample_cases})"
                )
            w = weights[g - 1]
            # Uncertainty is carried by the *measured* sample; tuned
            # triples are derived quantities with n_trials = 0.
            contributions.append((w, fi))
            if tune:
                fi = self._tuner.tuned_for_group(g, plan.n_samples, fi)
            succ += w * fi.success
            sdc += w * fi.sdc
            fail += w * fi.failure
        rates = {Outcome.SUCCESS: succ, Outcome.SDC: sdc, Outcome.FAILURE: fail}
        return FaultInjectionResult.from_rates(
            succ, sdc, fail, bounds=_combine_bounds(rates, contributions)
        )

    # ------------------------------------------------------------------
    def _group_count(self, samples: dict[int, FaultInjectionResult]) -> int:
        """Number of sample groups = number of serial sample campaigns."""
        n = len(samples)
        if n < 1:
            raise ConfigurationError("at least one serial sample is required")
        return n

    def _group_weights(self, n_groups: int) -> np.ndarray:
        """r' aggregated into the sample-plan's groups.

        When the small scale S equals the group count this is exactly
        the small-scale histogram (paper Eq. 8); a larger small scale is
        first grouped down (e.g. S = 8 predicting with 4 samples).
        """
        s = self._small_profile.nprocs
        if s == n_groups:
            return self._small_profile.as_array()
        if s % n_groups == 0:
            return group_histogram(self._small_profile, n_groups)
        raise ConfigurationError(
            f"small scale {s} incompatible with {n_groups} sample groups"
        )
