"""The paper's contribution: resilience models for large-scale prediction.

Given fault-injection results from *serial* execution (with 1..p errors
per test, sampled) and one *small-scale* parallel execution (S ranks),
the models predict the fault-injection result of a large-scale parallel
execution (p ranks) without ever injecting at scale:

* :mod:`repro.model.result` — outcome-rate triples and conditional
  rates extracted from campaigns;
* :mod:`repro.model.propagation` — contaminated-process histograms, the
  paper's Fig. 1c grouping, and the Eq. 5 small-to-large mapping;
* :mod:`repro.model.similarity` — cosine similarity (Table 2);
* :mod:`repro.model.sampling` — the sample-case plan for FI_ser_x;
* :mod:`repro.model.finetune` — the alpha fine-tuning parameters;
* :mod:`repro.model.predictor` — Eq. 1/4/8 assembled into a predictor;
* :mod:`repro.model.metrics` — prediction error and RMSE (Eq. 9).
"""

from repro.model.result import FaultInjectionResult, result_given_contaminated
from repro.model.propagation import (
    PropagationProfile,
    group_histogram,
    map_small_to_large,
)
from repro.model.similarity import cosine_similarity
from repro.model.sampling import SerialSamplePlan
from repro.model.finetune import AlphaFineTuner, needs_fine_tuning
from repro.model.predictor import ResiliencePredictor, PredictionInputs
from repro.model.metrics import prediction_error, rmse

__all__ = [
    "FaultInjectionResult",
    "result_given_contaminated",
    "PropagationProfile",
    "group_histogram",
    "map_small_to_large",
    "cosine_similarity",
    "SerialSamplePlan",
    "AlphaFineTuner",
    "needs_fine_tuning",
    "ResiliencePredictor",
    "PredictionInputs",
    "prediction_error",
    "rmse",
]
