"""Cosine similarity between propagation vectors (paper Table 2)."""

from __future__ import annotations

import numpy as np

__all__ = ["cosine_similarity"]


def cosine_similarity(a, b) -> float:
    """Cosine of the angle between two non-negative vectors.

    The paper's Table-2 metric: 1 means the small-scale propagation
    profile matches the grouped large-scale profile, 0 means orthogonal.
    Zero vectors are defined to have similarity 0.
    """
    va = np.asarray(a, dtype=np.float64)
    vb = np.asarray(b, dtype=np.float64)
    if va.shape != vb.shape:
        raise ValueError(f"vector shapes differ: {va.shape} vs {vb.shape}")
    na, nb = np.linalg.norm(va), np.linalg.norm(vb)
    if na == 0.0 or nb == 0.0:
        return 0.0
    return float(np.clip(np.dot(va, vb) / (na * nb), -1.0, 1.0))
