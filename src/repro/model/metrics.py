"""Accuracy metrics: prediction error and RMSE (paper §5, Eq. 9)."""

from __future__ import annotations

import math
from typing import Iterable

from repro.model.result import FaultInjectionResult

__all__ = ["prediction_error", "rmse"]


def prediction_error(
    predicted: FaultInjectionResult, measured: FaultInjectionResult
) -> float:
    """Absolute success-rate prediction error, in rate units.

    The paper reports prediction errors as percentages of the success
    rate scale (e.g. "average prediction error is 8%"); multiply by 100
    to quote the same way.
    """
    return abs(predicted.success - measured.success)


def rmse(pairs: Iterable[tuple[FaultInjectionResult, FaultInjectionResult]]) -> float:
    """Eq. 9: root-mean-square of success-rate errors across benchmarks."""
    errors = [prediction_error(p, m) for p, m in pairs]
    if not errors:
        raise ValueError("rmse requires at least one (predicted, measured) pair")
    return math.sqrt(sum(e * e for e in errors) / len(errors))
