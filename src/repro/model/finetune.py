"""Alpha fine-tuning: correcting serial emulation with small-scale data.

Observation 4 warns that for some applications (the paper names FT, LU
and MG) serial multi-error injection emulates parallel contamination
poorly.  The paper's remedy: compare the serial and small-scale fault
injection results; if they differ by more than a threshold (20 %),
scale each ``FI_ser_x`` by ``alpha_x = FI_small_par_x / FI_ser_x``,
where ``FI_small_par_x`` is the small-scale result conditioned on ``x``
contaminated processes, and ``alpha_x = alpha_S`` beyond the small
scale's size.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.fi.campaign import CampaignResult
from repro.model.result import FaultInjectionResult, result_given_contaminated

__all__ = ["needs_fine_tuning", "AlphaFineTuner"]


def needs_fine_tuning(
    serial: FaultInjectionResult,
    small: FaultInjectionResult,
    threshold: float = 0.20,
) -> bool:
    """The paper's trigger: do serial and small-scale results disagree?

    Compares the success rates relative to the small-scale value (the
    measurement being trusted); a disagreement above ``threshold``
    (default 20 %, §4.2) means serial emulation is not good enough.
    """
    denom = max(small.success, 1e-12)
    return abs(serial.success - small.success) / denom > threshold


@dataclass
class AlphaFineTuner:
    """Per-x correction factors derived from one small-scale campaign."""

    small_nprocs: int
    alphas: dict[int, FaultInjectionResult] = field(default_factory=dict)
    _small_conditionals: dict[int, FaultInjectionResult | None] = field(default_factory=dict)

    @classmethod
    def from_campaign(cls, small_campaign: CampaignResult) -> "AlphaFineTuner":
        s = small_campaign.deployment.nprocs
        tuner = cls(small_nprocs=s)
        for x in range(1, s + 1):
            tuner._small_conditionals[x] = result_given_contaminated(small_campaign, x)
        return tuner

    # ------------------------------------------------------------------
    def tuned_for_group(
        self, group: int, n_groups: int, serial_result: FaultInjectionResult
    ) -> FaultInjectionResult:
        """``FI'_ser = alpha * FI_ser`` for one sample group (renormalized).

        The paper's worked example (§4.2) pairs sample group ``g`` with
        the small-scale conditional ``FI_small_par_g``; with a small
        scale larger than the sample count the pairing scales up
        (``g -> g * S_small / n_groups``, group 1 staying at one
        contaminated process).  Missing conditionals fall back to the
        nearest observed smaller case, and ultimately to ``alpha = 1``.
        """
        if group == 1:
            probe = 1
        else:
            probe = min(
                max(group * self.small_nprocs // n_groups, 1), self.small_nprocs
            )
        # walk down to the nearest observed conditional ( <= probe )
        small = None
        for candidate in range(probe, 0, -1):
            small = self._small_conditionals.get(candidate)
            if small is not None:
                break
        if small is None:
            return serial_result
        # alpha_x = FI_small_par_x / FI_ser_x applied to FI_ser_x reduces
        # to the small-scale conditional itself — exactly the paper's
        # worked example ("FI'_ser_64 = FI_small_par4") — and stays
        # well-defined when a serial rate is zero.
        return FaultInjectionResult.from_rates(
            success=small.success, sdc=small.sdc, failure=small.failure
        )
