"""repro — reproduction of "Modeling Application Resilience in
Large-scale Parallel Execution" (Wu et al., ICPP 2018).

The library predicts fault-injection results of an MPI application at
large scale from injections into serial and small-scale executions.  It
ships the full stack the paper depends on:

* a deterministic simulated MPI runtime (:mod:`repro.mpisim`),
* a dual-value traced floating-point layer with value-accurate
  cross-process contamination tracking (:mod:`repro.taint`),
* an instruction-level single-bit-flip fault injector
  (:mod:`repro.fi`),
* six mini-applications matching the paper's benchmarks
  (:mod:`repro.apps`),
* the resilience models — propagation grouping, serial-sample plans,
  alpha fine-tuning, the Eq. 1/4/8 predictor (:mod:`repro.model`), and
* one experiment harness per paper table/figure
  (:mod:`repro.experiments`).

Quickstart::

    from repro import get_app, Deployment, run_campaign

    cg = get_app("cg")
    result = run_campaign(cg, Deployment(nprocs=8, trials=500))
    print(result.success_rate, result.propagation_counts())

    from repro.experiments.common import build_predictor
    predictor = build_predictor("cg", small_nprocs=8, target_nprocs=64)
    print(predictor.predict(64))
"""

from repro.apps import AppSpec, available_apps, get_app, paper_apps
from repro.errors import (
    CommunicatorError,
    ConfigurationError,
    DeadlockError,
    FaultActivatedError,
    InjectionPlanError,
    ReproError,
    SimulatedCrashError,
    SimulatedHangError,
)
from repro.fi import (
    CampaignResult,
    Deployment,
    InjectionPlan,
    Outcome,
    Tracer,
    TracerMode,
    run_campaign,
    sample_plan,
)
from repro.fi.cache import cached_campaign
from repro.model import (
    FaultInjectionResult,
    PredictionInputs,
    PropagationProfile,
    ResiliencePredictor,
    SerialSamplePlan,
    cosine_similarity,
    group_histogram,
    map_small_to_large,
    prediction_error,
    result_given_contaminated,
    rmse,
)
from repro.mpisim import Communicator, Scheduler, execute_spmd
from repro import obs
from repro.taint import FPOps, Region, TArray

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # apps
    "AppSpec", "available_apps", "get_app", "paper_apps",
    # errors
    "ReproError", "ConfigurationError", "DeadlockError", "CommunicatorError",
    "InjectionPlanError", "FaultActivatedError", "SimulatedCrashError",
    "SimulatedHangError",
    # fault injection
    "CampaignResult", "Deployment", "InjectionPlan", "Outcome", "Tracer",
    "TracerMode", "run_campaign", "sample_plan", "cached_campaign",
    # model
    "FaultInjectionResult", "PredictionInputs", "PropagationProfile",
    "ResiliencePredictor", "SerialSamplePlan", "cosine_similarity",
    "group_histogram", "map_small_to_large", "prediction_error",
    "result_given_contaminated", "rmse",
    # substrate
    "Communicator", "Scheduler", "execute_spmd", "FPOps", "Region", "TArray",
    # observability
    "obs",
]
