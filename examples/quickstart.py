#!/usr/bin/env python
"""Quickstart: run a fault-injection campaign on one benchmark.

Runs the paper's CG benchmark at 8 simulated MPI ranks, injecting one
random single-bit flip into a random dynamic FP add/multiply per test,
and prints the outcome statistics and the error-propagation histogram
(how many ranks end up contaminated per test — paper Fig. 1a).

Usage::

    python examples/quickstart.py [--trials 300] [--nprocs 8] [--app cg]
"""

import argparse

from repro import Deployment, FaultInjectionResult, get_app, run_campaign


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--app", default="cg", help="benchmark name (see repro.available_apps())")
    parser.add_argument("--nprocs", type=int, default=8)
    parser.add_argument("--trials", type=int, default=300)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    app = get_app(args.app)
    print(f"running {args.trials} fault-injection tests on {app.name!r} "
          f"at {args.nprocs} simulated MPI ranks ...")
    result = run_campaign(
        app, Deployment(nprocs=args.nprocs, trials=args.trials, seed=args.seed)
    )

    fi = FaultInjectionResult.from_campaign(result)
    lo, hi = fi.success_interval()
    print(f"\nsuccess rate : {fi.success:.3f}  (95% CI [{lo:.3f}, {hi:.3f}])")
    print(f"SDC rate     : {fi.sdc:.3f}")
    print(f"failure rate : {fi.failure:.3f}")
    print(f"injection time: {result.injection_time:.1f}s "
          f"({1000 * result.injection_time / result.n_trials:.1f} ms/test)")

    print("\nerror propagation (contaminated ranks -> share of tests):")
    counts = result.propagation_counts()
    total = sum(counts.values())
    for n in sorted(counts):
        share = counts[n] / total
        print(f"  {n:3d} rank(s): {share:6.1%}  {'#' * int(50 * share)}")

    # where do the harmful flips land? (IEEE-754 field breakdown)
    from repro.fi.sensitivity import run_sensitivity

    report = run_sensitivity(
        app, Deployment(nprocs=args.nprocs, trials=min(args.trials, 200),
                        seed=args.seed + 1)
    )
    print("\nsuccess rate by flipped bit field:")
    for field, rate in report.success_rate_by_bit_field().items():
        print(f"  {field.value:>8}: {rate:6.1%}")


if __name__ == "__main__":
    main()
