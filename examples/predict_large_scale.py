#!/usr/bin/env python
"""The paper's headline workflow: predict large-scale resilience.

Builds every model input from *cheap* executions — serial multi-error
injections plus one small-scale campaign — then predicts the
fault-injection result at the target scale (paper Eqs. 1-8).  With
``--validate`` it also runs the expensive large-scale campaign the model
is designed to avoid, and reports the prediction error (paper Figs. 5-7).

Usage::

    python examples/predict_large_scale.py --app cg --small 8 --target 64 \
        --trials 300 --validate
"""

import argparse

from repro import FaultInjectionResult, get_app
from repro.experiments.common import build_predictor, measured_campaign


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--app", default="cg")
    parser.add_argument("--small", type=int, default=8,
                        help="small-scale process count (paper: 4 or 8)")
    parser.add_argument("--target", type=int, default=64,
                        help="large-scale process count to predict")
    parser.add_argument("--trials", type=int, default=300)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--validate", action="store_true",
                        help="also measure at the target scale and report error")
    args = parser.parse_args()

    print(f"assembling model inputs for {args.app!r}: serial samples + "
          f"{args.small}-rank campaign ({args.trials} tests each) ...")
    predictor = build_predictor(
        args.app, small_nprocs=args.small, target_nprocs=args.target,
        trials=args.trials, seed=args.seed,
    )

    inputs = predictor.inputs
    print(f"\nserial samples (x errors -> success rate):")
    for x, fi in sorted(inputs.serial_samples.items()):
        print(f"  x={x:3d}: {fi.success:.3f}")
    profile = predictor._small_profile
    print(f"small-scale propagation r': "
          f"{[round(p, 3) for p in profile.probabilities]}")
    print(f"alpha fine-tuning active: {predictor.fine_tuning_active}")
    print(f"parallel-unique share: "
          f"{ {p: round(f, 4) for p, f in inputs.unique_fractions.items()} }")

    predicted = predictor.predict(args.target)
    print(f"\npredicted at {args.target} ranks: success={predicted.success:.3f} "
          f"sdc={predicted.sdc:.3f} failure={predicted.failure:.3f}")

    if args.validate:
        print(f"\nvalidating (running the {args.target}-rank campaign the "
              f"model lets you skip) ...")
        measured = FaultInjectionResult.from_campaign(
            measured_campaign(get_app(args.app), args.target, args.trials, args.seed)
        )
        err = abs(predicted.success - measured.success)
        print(f"measured: success={measured.success:.3f}")
        print(f"success-rate prediction error: {100 * err:.1f} percentage points")


if __name__ == "__main__":
    main()
