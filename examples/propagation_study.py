#!/usr/bin/env python
"""Study cross-process error propagation across execution scales.

Reproduces the paper's §3.2 characterization for one benchmark: the
contaminated-process histograms at several scales, the group-aggregated
large-scale histogram (Fig. 1c), and the cosine similarity between
scales (Table 2).  Also demonstrates the Eq. 5 projection used by the
model.

Usage::

    python examples/propagation_study.py --app ft --scales 4 8 --large 32
"""

import argparse

from repro import (
    Deployment,
    PropagationProfile,
    cosine_similarity,
    get_app,
    group_histogram,
    map_small_to_large,
    run_campaign,
)


def bar(share: float, width: int = 40) -> str:
    return "#" * int(width * share)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--app", default="ft")
    parser.add_argument("--scales", type=int, nargs="+", default=[4, 8])
    parser.add_argument("--large", type=int, default=32)
    parser.add_argument("--trials", type=int, default=300)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    app = get_app(args.app)

    # structural view first: the communication graph explains the shapes
    from repro.analysis import analyze_topology

    topo = analyze_topology(app, args.large)
    print(f"communication structure at {args.large} ranks: "
          f"{topo.p2p_messages} p2p messages, "
          f"{topo.carrying_collectives} divergence-carrying reductions, "
          f"p2p diameter {topo.p2p_diameter()}")
    if topo.is_collective_dominated():
        print("-> collective-dominated: expect one-or-all contamination\n")
    else:
        print("-> neighbour-dominated: expect gradual contamination creep\n")

    print(f"profiling error propagation of {app.name!r} "
          f"({args.trials} tests per scale) ...\n")

    profiles: dict[int, PropagationProfile] = {}
    for p in args.scales + [args.large]:
        result = run_campaign(
            app, Deployment(nprocs=p, trials=args.trials, seed=args.seed + p)
        )
        profiles[p] = PropagationProfile.from_campaign(result)

    large = profiles[args.large]
    print(f"large scale ({args.large} ranks) histogram (nonzero cases):")
    for x, prob in enumerate(large.probabilities, start=1):
        if prob > 0:
            print(f"  {x:3d} contaminated: {prob:6.1%} {bar(prob)}")

    for s in args.scales:
        small = profiles[s]
        grouped = group_histogram(large, s)
        cos = cosine_similarity(small.as_array(), grouped)
        print(f"\nsmall scale {s} vs grouped {args.large} "
              f"(cosine similarity {cos:.3f}):")
        print(f"  {'grp':>4} {'small':>8} {'grouped':>8}")
        for g in range(s):
            print(f"  {g + 1:4d} {small.probabilities[g]:8.3f} {grouped[g]:8.3f}")

        projected = map_small_to_large(small, args.large)
        proj_cos = cosine_similarity(projected.as_array(), large.as_array())
        print(f"  Eq. 5 projection {s} -> {args.large}: cosine vs measured "
              f"large profile = {proj_cos:.3f}")


if __name__ == "__main__":
    main()
