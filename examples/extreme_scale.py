#!/usr/bin/env python
"""Predict resilience at scales you cannot afford to inject at.

This is the paper's raison d'être: once the serial samples and one
small-scale campaign exist, predicting a larger scale costs *nothing at
that scale* — with ``prob2_mode="extrapolate"`` not even a profiling run
of the target is needed.  This script sweeps target scales (e.g. 64,
128, 256, 512, 1024 simulated ranks) and prints the predicted outcome
triple for each, exactly the study the paper envisions for future
extreme-scale systems (§1, §7).

Usage::

    python examples/extreme_scale.py --app cg --small 8 \
        --targets 64 128 256 512 1024 --trials 300
"""

import argparse

from repro.experiments.common import build_predictor


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--app", default="cg")
    parser.add_argument("--small", type=int, default=8)
    parser.add_argument("--targets", type=int, nargs="+",
                        default=[64, 128, 256, 512, 1024])
    parser.add_argument("--trials", type=int, default=300)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    print(f"inputs: serial multi-error campaigns + one {args.small}-rank "
          f"campaign of {args.app!r} ({args.trials} tests each)\n")
    print(f"{'target ranks':>12} | {'success':>8} | {'SDC':>8} | "
          f"{'failure':>8} | fine-tuned")
    print("-" * 58)
    for target in args.targets:
        predictor = build_predictor(
            args.app, small_nprocs=args.small, target_nprocs=target,
            trials=args.trials, seed=args.seed,
            prob2_mode="extrapolate",  # never touches the target scale
        )
        fi = predictor.predict(target)
        print(f"{target:>12} | {fi.success:8.3f} | {fi.sdc:8.3f} | "
              f"{fi.failure:8.3f} | {'yes' if predictor.fine_tuning_active else 'no'}")
    print("\nno execution at any target scale was required "
          "(the paper's §1 hardware-resource argument).")


if __name__ == "__main__":
    main()
