#!/usr/bin/env python
"""Bring your own application: resilience-model a custom SPMD code.

Shows everything a downstream user needs to plug their own application
into the framework: write the numerics through the traced FP layer,
express communication as yielded requests, tag any parallel-unique
computation, provide a checker — then every tool in the library
(campaigns, propagation profiling, the large-scale predictor) works on
it unchanged.

The demo application is an explicit 1-D heat-equation solver with halo
exchange and a conserved-energy checker.

Usage::

    python examples/custom_app.py [--trials 200]
"""

import argparse
import math

import numpy as np

from repro import (
    AppSpec,
    Deployment,
    FaultInjectionResult,
    PredictionInputs,
    ResiliencePredictor,
    Region,
    TArray,
    run_campaign,
)


class HeatApp(AppSpec):
    """Explicit heat equation u_t = u_xx on [0,1], fixed steps.

    Block decomposition with one-cell halo exchange per step; the final
    verified outputs are the total heat (conserved by the scheme) and a
    moment checksum.  A tiny parallel-unique region recomputes the halo
    flux correction — purely to demonstrate region tagging.
    """

    name = "heat1d"

    def __init__(self, n=256, steps=30, kappa=0.2, epsilon=1e-9):
        self.n, self.steps, self.kappa, self.epsilon = n, steps, kappa, epsilon
        x = np.linspace(0.0, 1.0, n)
        self._u0 = np.exp(-100.0 * (x - 0.3) ** 2) + 0.5 * np.exp(-50.0 * (x - 0.7) ** 2)

    def program(self, rank, size, comm, fp):
        self.check_nprocs(size, limit=self.n // 4)
        nloc = self.n // size
        u = fp.asarray(self._u0[rank * nloc : (rank + 1) * nloc])
        for step in range(self.steps):
            if size > 1:
                left = yield comm.sendrecv(
                    (rank + 1) % size, u[-1:], source=(rank - 1) % size, send_tag=step,
                )
                right = yield comm.sendrecv(
                    (rank - 1) % size, u[:1], source=(rank + 1) % size,
                    send_tag=1000 + step,
                )
            else:
                left, right = u[-1:], u[:1]
            ext = TArray.concatenate([left, u, right])
            lap = fp.sub(fp.add(ext[:-2], ext[2:]), fp.mul(u, 2.0))
            if size > 1:
                # demonstration of a parallel-unique region: an extra
                # boundary-flux recomputation only the MPI build performs
                with fp.region(Region.PARALLEL_UNIQUE):
                    flux = fp.sub(left, u[:1])
                    lap = TArray.concatenate([fp.add(lap[:1], fp.mul(flux, 0.0)), lap[1:]])
            u = fp.add(u, fp.mul(lap, self.kappa))
        total = yield comm.allreduce(fp.sum(u), op="sum")
        xs = fp.asarray(np.arange(rank * nloc, (rank + 1) * nloc, dtype=float))
        moment = yield comm.allreduce(fp.sum(fp.mul(u, xs)), op="sum")
        if rank == 0:
            return self._as_output(total=total.value, moment=moment.value)
        return None

    def verify(self, output, reference):
        for key in ("total", "moment"):
            got, ref = output[key], reference[key]
            if not (math.isfinite(got) and math.isfinite(ref)):
                return False
            if abs(got - ref) > self.epsilon * max(abs(ref), 1.0):
                return False
        return True


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--trials", type=int, default=200)
    args = parser.parse_args()

    app = HeatApp()
    print("heat conservation check:", app.reference_output(1))

    # 1. campaigns at several scales
    small = run_campaign(app, Deployment(nprocs=4, trials=args.trials, seed=1))
    print(f"\n4-rank campaign: success={small.success_rate:.3f} "
          f"sdc={small.sdc_rate:.3f} failure={small.failure_rate:.3f}")
    print("propagation:", dict(sorted(small.propagation_counts().items())))

    # 2. serial multi-error samples for predicting 16 ranks (4 samples)
    serial = {}
    for x in (1, 8, 12, 16):
        res = run_campaign(
            app,
            Deployment(nprocs=1, trials=args.trials, n_errors=x,
                       region=Region.COMMON, seed=100 + x),
        )
        serial[x] = FaultInjectionResult.from_campaign(res)
    probe = FaultInjectionResult.from_campaign(
        run_campaign(
            app,
            Deployment(nprocs=1, trials=args.trials, n_errors=4,
                       region=Region.COMMON, seed=104),
        )
    )

    predictor = ResiliencePredictor(
        PredictionInputs(
            serial_samples=serial,
            small_campaign=small,
            unique_fractions={4: small.parallel_unique_fraction},
            serial_probe=probe,
        )
    )
    predicted = predictor.predict(16)
    print(f"\npredicted success at 16 ranks: {predicted.success:.3f} "
          f"(fine-tuned: {predictor.fine_tuning_active})")

    measured = FaultInjectionResult.from_campaign(
        run_campaign(app, Deployment(nprocs=16, trials=args.trials, seed=55))
    )
    print(f"measured  success at 16 ranks: {measured.success:.3f}")
    print(f"prediction error: {100 * abs(predicted.success - measured.success):.1f} pp")


if __name__ == "__main__":
    main()
