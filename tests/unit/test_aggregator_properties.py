"""Property-based tests for the engine's chunk aggregator.

The :class:`~repro.engine.aggregate.ChunkAggregator` is the keystone of
the engine's bit-reproducibility contract: payloads may arrive in *any*
order (pool completion order, checkpoint recovery order, adaptive
waves), but the fold must behave exactly as if the serial loop had
visited the trials in order.  These tests drive that claim with brute
force — every permutation of arrival orders for small chunk counts,
plus seeded random samples for larger ones (plain ``random``, no extra
dependencies) — and compare three observables against in-order
delivery: the joint distribution (content *and* insertion order), the
re-emitted event stream, and the serialized provenance bytes.
"""

from __future__ import annotations

import itertools
import json
import random

import pytest

from repro.engine.aggregate import ChunkAggregator
from repro.engine.chunks import ChunkPayload, EngineContext, execute_chunk
from repro.fi.outcomes import Outcome, TrialRecord
from repro.obs import JsonlSink, MemorySink, ObsSnapshot, Recorder
from repro.obs.events import TrialFinished, TrialProvenance


# ----------------------------------------------------------------------
# synthetic payloads: deterministic, distinct per trial, cheap
# ----------------------------------------------------------------------
_OUTCOMES = [Outcome.SUCCESS, Outcome.SDC, Outcome.FAILURE]


def make_payload(lo: int, hi: int) -> ChunkPayload:
    """A synthetic chunk whose content is a pure function of its bounds."""
    joint: dict[tuple[Outcome, int, bool], int] = {}
    records: list[TrialRecord] = []
    events: list = []
    for trial in range(lo, hi):
        outcome = _OUTCOMES[trial % 3]
        ncont = trial % 4
        activated = trial % 2 == 0
        key = (outcome, ncont, activated)
        joint[key] = joint.get(key, 0) + 1
        records.append(TrialRecord(
            outcome=outcome, n_contaminated=ncont, activated=activated,
            detail=f"trial-{trial}",
        ))
        events.append(TrialFinished(
            trial=trial, outcome=outcome.value, n_contaminated=ncont,
            activated=activated, duration_s=0.0,
        ))
        events.append(TrialProvenance(
            trial=trial, outcome=outcome.value, n_contaminated=ncont,
            activated=activated, detail=f"trial-{trial}",
            planned=[{"rank": 0, "index": trial, "bit": trial % 52}],
            fired=[], timeline=[[trial, 0]],
        ))
    snapshot = ObsSnapshot(
        counters={f"campaign.trials.{_OUTCOMES[0].value}": hi - lo},
        histograms={"taint.contamination_spread": [t % 4 for t in range(lo, hi)]},
        span_totals={"campaign/trial": [hi - lo, 0.001 * (hi - lo)]},
        events=events,
    )
    return ChunkPayload(
        start=lo, stop=hi, joint=joint, records=records, obs=snapshot,
    )


def chunk_layout(n_chunks: int, size: int = 3) -> list[tuple[int, int]]:
    return [(i * size, (i + 1) * size) for i in range(n_chunks)]


def fold_in_order(chunks, payloads, order, tmp_path, tag: str):
    """Fold ``payloads`` arriving in ``order``; capture every observable.

    Returns (joint items, records, memory events, provenance bytes) —
    the provenance stream goes through a real timestamp-free JsonlSink,
    the same configuration ``obs.configure`` uses for ``*.provenance.jsonl``.
    """
    prov_path = tmp_path / f"{tag}.provenance.jsonl"
    mem = MemorySink()
    sinks = [
        mem,
        JsonlSink(prov_path, only=(TrialProvenance,), stamp_ts=False),
    ]
    recorder = Recorder(sinks, enabled=True)
    agg = ChunkAggregator(chunks, recorder)
    for i in order:
        agg.add(payloads[i])
    joint, records = agg.finish()
    recorder.close()
    return (
        list(joint.items()),
        records,
        list(mem.events),
        prov_path.read_bytes(),
    )


class TestArrivalOrderInvariance:
    @pytest.mark.parametrize("n_chunks", [1, 2, 3, 4])
    def test_every_permutation_matches_in_order(self, n_chunks, tmp_path):
        """Exhaustive: all n! arrival orders produce identical artifacts."""
        chunks = chunk_layout(n_chunks)
        payloads = [make_payload(lo, hi) for lo, hi in chunks]
        reference = fold_in_order(
            chunks, payloads, range(n_chunks), tmp_path, "ref"
        )
        for k, perm in enumerate(itertools.permutations(range(n_chunks))):
            got = fold_in_order(chunks, payloads, perm, tmp_path, f"perm{k}")
            assert got[0] == reference[0], f"joint diverged for {perm}"
            assert got[1] == reference[1], f"records diverged for {perm}"
            assert got[2] == reference[2], f"event order diverged for {perm}"
            assert got[3] == reference[3], f"provenance bytes diverged for {perm}"

    def test_sampled_permutations_for_larger_layouts(self, tmp_path):
        """Seeded random sample of arrival orders at 8 chunks (8! is too many)."""
        n_chunks = 8
        chunks = chunk_layout(n_chunks, size=2)
        payloads = [make_payload(lo, hi) for lo, hi in chunks]
        reference = fold_in_order(
            chunks, payloads, range(n_chunks), tmp_path, "ref"
        )
        rng = random.Random(0xA11C)
        for k in range(40):
            perm = list(range(n_chunks))
            rng.shuffle(perm)
            got = fold_in_order(chunks, payloads, perm, tmp_path, f"s{k}")
            assert got[0] == reference[0], f"joint diverged for {perm}"
            assert got[1] == reference[1], f"records diverged for {perm}"
            assert got[2] == reference[2], f"event order diverged for {perm}"
            assert got[3] == reference[3], f"provenance bytes diverged for {perm}"

    def test_ragged_chunk_sizes(self, tmp_path):
        """Uneven layouts (the adaptive driver's tail chunks) stay invariant."""
        chunks = [(0, 5), (5, 6), (6, 13), (13, 15)]
        payloads = [make_payload(lo, hi) for lo, hi in chunks]
        reference = fold_in_order(chunks, payloads, range(4), tmp_path, "ref")
        for k, perm in enumerate(itertools.permutations(range(4))):
            got = fold_in_order(chunks, payloads, perm, tmp_path, f"r{k}")
            assert got == reference, f"diverged for {perm}"

    def test_events_replay_in_trial_order(self, tmp_path):
        """The re-emitted stream is sorted by trial even for reversed arrival."""
        chunks = chunk_layout(4)
        payloads = [make_payload(lo, hi) for lo, hi in chunks]
        _, _, events, _ = fold_in_order(
            chunks, payloads, [3, 2, 1, 0], tmp_path, "rev"
        )
        trials = [e.trial for e in events if isinstance(e, TrialFinished)]
        assert trials == sorted(trials) == list(range(12))

    def test_provenance_file_covers_every_trial_once(self, tmp_path):
        chunks = chunk_layout(3)
        payloads = [make_payload(lo, hi) for lo, hi in chunks]
        _, _, _, raw = fold_in_order(
            chunks, payloads, [2, 0, 1], tmp_path, "cov"
        )
        lines = [json.loads(l) for l in raw.splitlines()]
        assert [d["trial"] for d in lines] == list(range(9))
        assert all("ts" not in d for d in lines)  # timestamp-free by contract


class TestRealEnginePayloads:
    """The same invariance through real executed chunks, not synthetic ones."""

    def test_permuted_real_chunks_match_serial(self, tmp_path):
        from repro.apps import get_app
        from repro.fi.campaign import Deployment
        from repro.fi.tracer import Tracer, TracerMode
        from repro.mpisim.runner import execute_spmd

        app = get_app("cg")
        dep = Deployment(nprocs=1, trials=9, seed=21)
        profile_tracer = Tracer(TracerMode.PROFILE)
        outputs = execute_spmd(app.program, dep.nprocs, sink=profile_tracer)
        ctx = EngineContext(
            app=app, deployment=dep, profile=profile_tracer.profile,
            reference=outputs[0], keep_records=True, obs_enabled=True,
        )
        chunks = [(0, 3), (3, 6), (6, 9)]
        payloads = [
            execute_chunk(ctx, lo, hi, capture=True)
            for lo, hi in chunks
        ]
        reference = fold_in_order(chunks, payloads, range(3), tmp_path, "ref")
        for k, perm in enumerate(itertools.permutations(range(3))):
            got = fold_in_order(chunks, payloads, perm, tmp_path, f"e{k}")
            assert got == reference, f"real-engine fold diverged for {perm}"


class TestLayoutExtension:
    """`extend` (the adaptive driver's wave growth) keeps the invariants."""

    def test_extend_then_out_of_order_within_wave(self, tmp_path):
        chunks = chunk_layout(2)
        payloads = [make_payload(lo, hi) for lo, hi in chunks]
        wave2 = [(6, 9), (9, 12)]
        wave2_payloads = [make_payload(lo, hi) for lo, hi in wave2]

        full = chunks + wave2
        reference = fold_in_order(
            full, payloads + wave2_payloads, range(4), tmp_path, "ref"
        )

        mem = MemorySink()
        prov = tmp_path / "ext.provenance.jsonl"
        recorder = Recorder(
            [mem, JsonlSink(prov, only=(TrialProvenance,), stamp_ts=False)],
            enabled=True,
        )
        agg = ChunkAggregator([], recorder)
        agg.extend(chunks)
        agg.add(payloads[1])
        agg.add(payloads[0])
        agg.extend(wave2)
        agg.add(wave2_payloads[1])
        agg.add(wave2_payloads[0])
        joint, records = agg.finish()
        recorder.close()
        assert (
            list(joint.items()), records, list(mem.events), prov.read_bytes()
        ) == reference

    def test_extend_rejects_overlapping_chunks(self):
        agg = ChunkAggregator([(0, 5), (5, 10)])
        with pytest.raises(ValueError, match="overlaps"):
            agg.extend([(8, 12)])

    def test_extend_rejects_chunks_before_existing_layout(self):
        agg = ChunkAggregator([(10, 20)])
        with pytest.raises(ValueError, match="overlaps"):
            agg.extend([(0, 10), (20, 30)])

    def test_finish_still_detects_missing_extended_chunk(self):
        agg = ChunkAggregator([(0, 3)])
        agg.add(make_payload(0, 3))
        agg.extend([(3, 6)])
        with pytest.raises(RuntimeError, match="never"):
            agg.finish()
