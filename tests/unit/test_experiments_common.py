"""Unit tests for experiment orchestration helpers."""

import json

import pytest

from repro.apps import get_app
from repro.experiments import common
from repro.experiments.common import (
    build_predictor,
    measured_campaign,
    serial_sample_results,
    small_campaign,
    unique_campaign,
    unique_fraction,
)
from repro.fi.cache import cache_dir, load_unique_fraction, store_unique_fraction
from repro.model.predictor import extrapolate_unique_fraction
from repro.taint.region import Region

TRIALS = 10


class TestDefaultTrials:
    def test_arg_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRIALS", "50")
        assert common.default_trials(7) == 7

    def test_env_honoured(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRIALS", "42")
        assert common.default_trials() == 42

    def test_malformed_env_falls_back_with_warning(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_TRIALS", "lots")
        assert common.default_trials() == 300
        err = capsys.readouterr().err
        assert err.count("\n") == 1  # exactly one warning line
        assert "REPRO_TRIALS" in err and "'lots'" in err and "300" in err

    def test_well_formed_env_warns_nothing(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_TRIALS", "25")
        common.default_trials()
        assert capsys.readouterr().err == ""


class TestPublicSurface:
    def test_unique_campaign_exported(self):
        assert "unique_campaign" in common.__all__

    def test_every_all_name_resolves(self):
        # a stale __all__ entry would break `from ... import *` for users
        for name in common.__all__:
            assert callable(getattr(common, name)), name


class TestCampaignBuilders:
    def test_seed_roles_are_independent(self):
        app = get_app("mg")
        small = small_campaign(app, 2, TRIALS, seed=0)
        measured = measured_campaign(app, 2, TRIALS, seed=0)
        # same scale+trials but different roles -> different seed streams
        assert small.deployment.seed != measured.deployment.seed

    def test_serial_samples_are_serial_common_region(self):
        app = get_app("mg")
        out = serial_sample_results(app, target_nprocs=4, n_samples=2,
                                    trials=TRIALS, seed=0)
        assert set(out) == {1, 4}
        for fi in out.values():
            assert fi.n_trials == TRIALS

    def test_unique_campaign_targets_unique_region(self):
        app = get_app("cg")
        res = unique_campaign(app, 2, TRIALS, seed=0)
        assert res.deployment.region is Region.PARALLEL_UNIQUE

    def test_unique_fraction_monotone_for_cg(self):
        app = get_app("cg")
        assert unique_fraction(app, 2) < unique_fraction(app, 8)

    def test_build_predictor_skips_unique_term_for_mg(self):
        predictor = build_predictor("mg", small_nprocs=2, target_nprocs=4,
                                    trials=TRIALS)
        assert predictor.inputs.unique_result is None
        assert predictor.inputs.unique_fractions[2] == 0.0

    def test_build_predictor_includes_unique_term_for_ft(self):
        predictor = build_predictor("ft", small_nprocs=2, target_nprocs=4,
                                    trials=TRIALS)
        assert predictor.inputs.unique_result is not None

    def test_predict_triple_is_distribution(self):
        predictor = build_predictor("ft", small_nprocs=2, target_nprocs=4,
                                    trials=TRIALS)
        fi = predictor.predict(4)
        assert fi.success + fi.sdc + fi.failure == pytest.approx(1.0)


class TestFractionPersistence:
    """unique_fraction results survive process restarts via the disk cache."""

    @pytest.fixture(autouse=True)
    def _clear_memory_cache(self):
        saved = dict(common._fraction_cache)
        common._fraction_cache.clear()
        yield
        common._fraction_cache.clear()
        common._fraction_cache.update(saved)

    def test_fraction_written_to_disk(self):
        app = get_app("cg")
        value = unique_fraction(app, 2)
        path = cache_dir() / "unique_fractions.json"
        assert path.is_file()
        entries = json.loads(path.read_text()).values()
        match = [e for e in entries if e["fraction"] == value]
        assert match and match[0]["candidates"] > 0

    def test_fresh_process_reads_disk_not_reprofiles(self):
        """Simulated restart: empty memory cache, poisoned disk entry.

        The sentinel coming back proves the value was served from disk
        (a re-profile would have produced the true fraction instead).
        """
        app = get_app("cg")
        unique_fraction(app, 2)
        store_unique_fraction(app, 2, 0.123456)
        common._fraction_cache.clear()
        assert unique_fraction(app, 2) == 0.123456

    def test_corrupt_fraction_file_recomputed(self):
        app = get_app("cg")
        true_value = unique_fraction(app, 2)
        path = cache_dir() / "unique_fractions.json"
        path.write_text("{ not json")
        common._fraction_cache.clear()
        assert unique_fraction(app, 2) == true_value

    def test_disabled_cache_skips_disk(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", "0")
        app = get_app("cg")
        unique_fraction(app, 2)
        assert load_unique_fraction(app, 2) is None
        assert not (cache_dir() / "unique_fractions.json").exists()


class TestExtrapolationEdgeCases:
    def test_serial_only_point_ignored(self):
        # p=1 has no parallel-unique computation by definition
        assert extrapolate_unique_fraction({1: 0.0}, 64) == 0.0

    def test_mixed_points_prefer_fit(self):
        val = extrapolate_unique_fraction({1: 0.0, 4: 0.1, 8: 0.2}, 16)
        assert val == pytest.approx(0.3, abs=1e-9)  # fit over p>1 points
