"""Child process for the adaptive campaign's CLI crash/resume parity test.

Not a test module (no ``test_`` prefix): ``tests/unit/test_adaptive.py``
launches it in a subprocess so a mid-wave ``os._exit`` — the closest
in-tree stand-in for an OOM kill — takes down a whole interpreter
without touching the pytest process.  Unlike ``engine_child.py`` this
one goes through the real CLI entry point (``repro.experiments.cli``),
so the ``--ci-halfwidth`` env relay, the experiment harness, and the
adaptive engine are all exercised end to end.

Usage::

    python adaptive_child.py {clean|crash|resume} TRACE OUT_JSON CACHE_DIR

* ``clean``  — uninterrupted adaptive run, no checkpointing.
* ``crash``  — checkpointed adaptive run, hard-exits (status 41) mid-wave.
* ``resume`` — checkpointed adaptive run with ``--resume``, after ``crash``.

``clean`` and ``resume`` write the executed trial stream and the
per-campaign convergence summaries (reconstructed from the trace) to
OUT_JSON; the trace and its sibling ``*.provenance.jsonl`` land next to
TRACE.
"""

import json
import os
import sys

CRASH_AT_TRIAL = 7   # one checkpoint chunk durable, mid first 20-trial wave
EXIT_STATUS = 41

CLI_ARGS = [
    "motivation", "-q",
    "--trials", "30",          # the adaptive cap
    "--ci-halfwidth", "0.15",  # first wave = 20 trials, so the cap bites
]


def main() -> None:
    mode, trace, out_json, cache_dir = sys.argv[1:5]
    os.environ["REPRO_CACHE"] = "0"  # isolate from the result cache
    os.environ["REPRO_CACHE_DIR"] = cache_dir  # checkpoints live here

    import repro.fi.campaign as campaign_mod
    from repro.experiments.cli import main as cli_main

    argv = [*CLI_ARGS, "--trace-out", trace]

    if mode == "crash":
        real = campaign_mod.run_one_trial
        calls = {"n": 0}

        def dying(*args, **kwargs):
            calls["n"] += 1
            if calls["n"] > CRASH_AT_TRIAL:
                os._exit(EXIT_STATUS)  # no flush, no atexit — a hard kill
            return real(*args, **kwargs)

        campaign_mod.run_one_trial = dying
        cli_main(argv + ["--checkpoint-every", "7"])
        raise SystemExit("crash mode must never complete")

    if mode == "clean":
        rc = cli_main(argv)
    elif mode == "resume":
        rc = cli_main(argv + ["--checkpoint-every", "7", "--resume"])
    else:
        raise SystemExit(f"unknown mode {mode!r}")
    if rc != 0:
        raise SystemExit(f"cli exited with {rc}")

    # Reconstruct the executed trial stream and convergence decisions
    # from the trace: trial order, outcomes, and per-campaign wave/stop
    # decisions must all survive the kill byte-for-byte.
    from repro.obs import load_trace
    from repro.obs.events import CampaignConverged, TrialFinished

    events = load_trace(trace)
    payload = {
        "trials": [
            [e.trial, e.outcome, e.n_contaminated, e.activated]
            for e in events if isinstance(e, TrialFinished)
        ],
        "converged": [
            [e.app, e.nprocs, e.target, e.trials_used, e.trials_cap,
             e.waves, e.converged, e.halfwidths]
            for e in events if isinstance(e, CampaignConverged)
        ],
    }
    with open(out_json, "w") as fh:
        json.dump(payload, fh)


if __name__ == "__main__":
    main()
