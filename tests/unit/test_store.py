"""Property tests for the ``ResultStore`` implementations.

:mod:`repro.engine.store` is the persistence seam under the campaign
cache and the checkpoint store: byte blobs keyed by relative
slash-separated strings.  The contract every implementation must hold:

* ``put`` is atomic — a key is either absent or holds a complete blob,
  never a torn write (local stores stage to a sibling temp file and
  rename);
* ``keys`` enumerates sorted, ``delete``/``delete_prefix`` are
  idempotent, and the local store never leaks staging files;
* ``RetryStore`` retries transient ``OSError`` with exponential
  backoff and re-raises everything else untouched.

Mirrors the brute-force style of test_aggregator_properties: seeded
random op sequences replayed against both implementations must agree
observable-for-observable.
"""

from __future__ import annotations

import random

import pytest

from repro.engine.checkpoint import CheckpointStore
from repro.engine.store import (
    LocalDirStore,
    MemoryStore,
    ResultStore,
    RetryStore,
)
from repro.errors import CheckpointCorruptError


def both_stores(tmp_path):
    return [LocalDirStore(tmp_path / "local"), MemoryStore()]


class TestStoreContract:
    def test_roundtrip_and_size(self, tmp_path):
        for store in both_stores(tmp_path):
            assert store.get("a/b.json") is None
            assert store.put("a/b.json", b"payload") == len(b"payload")
            assert store.get("a/b.json") == b"payload"

    def test_overwrite_replaces(self, tmp_path):
        for store in both_stores(tmp_path):
            store.put("k", b"old")
            store.put("k", b"new-longer-content")
            assert store.get("k") == b"new-longer-content"

    def test_delete_is_idempotent(self, tmp_path):
        for store in both_stores(tmp_path):
            store.put("k", b"x")
            store.delete("k")
            store.delete("k")                      # second time: no-op
            assert store.get("k") is None

    def test_keys_sorted_and_prefix_filtered(self, tmp_path):
        for store in both_stores(tmp_path):
            for key in ["z.json", "a/2.json", "a/1.json", "b/x/deep.json"]:
                store.put(key, b".")
            assert store.keys() == [
                "a/1.json", "a/2.json", "b/x/deep.json", "z.json"
            ]
            assert store.keys("a/") == ["a/1.json", "a/2.json"]

    def test_delete_prefix(self, tmp_path):
        for store in both_stores(tmp_path):
            store.put("c/1", b".")
            store.put("c/d/2", b".")
            store.put("keep", b".")
            store.delete_prefix("c/")
            assert store.keys() == ["keep"]
            store.delete_prefix("c/")              # idempotent

    def test_delete_prefix_prunes_local_dirs(self, tmp_path):
        root = tmp_path / "local"
        store = LocalDirStore(root)
        store.put("deep/nested/dir/blob", b".")
        store.delete_prefix("deep/")
        assert not (root / "deep").exists()

    @pytest.mark.parametrize("key", ["", "/abs", "../escape", "a/../b"])
    def test_hostile_keys_rejected(self, tmp_path, key):
        for store in both_stores(tmp_path):
            with pytest.raises(ValueError):
                store.put(key, b".")

    def test_no_temp_files_leak(self, tmp_path):
        root = tmp_path / "local"
        store = LocalDirStore(root)
        for i in range(10):
            store.put(f"dir/entry-{i}.json", b"x" * (i + 1))
        leftovers = [p for p in root.rglob("*") if p.name.endswith(".tmp")]
        assert leftovers == []
        assert len(store.keys()) == 10

    def test_random_op_sequences_agree(self, tmp_path):
        """Seeded random workloads: both implementations stay in lockstep."""
        rng = random.Random(20260808)
        keyspace = [f"{a}/{b}.json" for a in "xyz" for b in "12345"]
        for trial in range(20):
            local = LocalDirStore(tmp_path / f"seq-{trial}")
            memory = MemoryStore()
            for _ in range(40):
                op = rng.choice(["put", "get", "delete", "keys", "prefix"])
                key = rng.choice(keyspace)
                if op == "put":
                    blob = rng.randbytes(rng.randrange(0, 64))
                    assert local.put(key, blob) == memory.put(key, blob)
                elif op == "get":
                    assert local.get(key) == memory.get(key)
                elif op == "delete":
                    local.delete(key)
                    memory.delete(key)
                elif op == "keys":
                    assert local.keys() == memory.keys()
                else:
                    prefix = key.split("/")[0] + "/"
                    local.delete_prefix(prefix)
                    memory.delete_prefix(prefix)
            assert local.keys() == memory.keys()


# ----------------------------------------------------------------------
class FlakyStore:
    """Delegates to a MemoryStore, failing the first N calls per op."""

    def __init__(self, failures: int, exc: Exception | None = None):
        self.inner = MemoryStore()
        self.failures = failures
        self.exc = exc if exc is not None else OSError("transient")
        self.calls = 0

    def _maybe_fail(self):
        self.calls += 1
        if self.calls <= self.failures:
            raise self.exc

    def get(self, key):
        self._maybe_fail()
        return self.inner.get(key)

    def put(self, key, data):
        self._maybe_fail()
        return self.inner.put(key, data)

    def delete(self, key):
        self._maybe_fail()
        self.inner.delete(key)

    def keys(self, prefix=""):
        self._maybe_fail()
        return self.inner.keys(prefix)

    def delete_prefix(self, prefix):
        self._maybe_fail()
        self.inner.delete_prefix(prefix)

    def describe(self, key):
        return self.inner.describe(key)


class TestRetryStore:
    def test_transient_errors_retried_with_backoff(self):
        naps: list[float] = []
        flaky = FlakyStore(failures=2)
        store = RetryStore(flaky, attempts=3, base_delay=0.05,
                           sleep=naps.append)
        assert store.put("k", b"v") == 1
        assert store.get("k") == b"v"              # failures exhausted
        assert naps == [0.05, 0.1]                 # exponential schedule

    def test_exhausted_attempts_reraise(self):
        naps: list[float] = []
        flaky = FlakyStore(failures=99)
        store = RetryStore(flaky, attempts=3, base_delay=0.05,
                           sleep=naps.append)
        with pytest.raises(OSError, match="transient"):
            store.get("k")
        assert naps == [0.05, 0.1]                 # slept between, not after

    def test_non_oserror_propagates_immediately(self):
        naps: list[float] = []
        flaky = FlakyStore(failures=1, exc=KeyError("not transient"))
        store = RetryStore(flaky, attempts=5, base_delay=0.05,
                           sleep=naps.append)
        with pytest.raises(KeyError):
            store.get("k")
        assert naps == []

    def test_bad_attempts_rejected(self):
        with pytest.raises(ValueError):
            RetryStore(MemoryStore(), attempts=0)

    def test_satisfies_protocol(self):
        assert isinstance(RetryStore(MemoryStore()), ResultStore)
        assert isinstance(MemoryStore(), ResultStore)


# ----------------------------------------------------------------------
class _App:
    name = "store-app"

    def cache_key(self) -> str:
        return "store-app(v=1)"


def _checkpoint_store(store) -> CheckpointStore:
    from repro.fi.campaign import Deployment

    deployment = Deployment(nprocs=2, trials=8, seed=3)
    return CheckpointStore(_App(), deployment, store=store)


class TestCheckpointStoreOnResultStore:
    """The checkpoint layer runs unchanged on any ResultStore."""

    def _payload(self, lo, hi):
        from repro.engine.chunks import ChunkPayload
        from repro.fi.outcomes import Outcome, TrialRecord

        return ChunkPayload(
            start=lo, stop=hi,
            joint={(Outcome.SUCCESS, 0, False): hi - lo},
            records=[
                TrialRecord(outcome=Outcome.SUCCESS, n_contaminated=0,
                            activated=False, detail=f"trial-{t}")
                for t in range(lo, hi)
            ],
        )

    def test_roundtrip_on_memory_store(self):
        backing = MemoryStore()
        store = _checkpoint_store(backing)
        chunks = [(0, 4), (4, 8)]
        store.begin(8, chunks)
        store.write(self._payload(0, 4))
        recovered = _checkpoint_store(backing).load()
        assert recovered is not None
        layout, payloads = recovered
        assert layout == chunks
        assert [(p.start, p.stop) for p in payloads] == [(0, 4)]
        assert payloads[0].joint == self._payload(0, 4).joint

    def test_corrupt_chunk_deleted_and_raised(self):
        backing = MemoryStore()
        store = _checkpoint_store(backing)
        store.begin(8, [(0, 4), (4, 8)])
        store.write(self._payload(0, 4))
        chunk_key = store._chunk_key(0, 4)
        backing.put(chunk_key, b"{not json")
        with pytest.raises(CheckpointCorruptError):
            _checkpoint_store(backing).load()
        # the damaged entry is gone; the next load succeeds without it
        assert backing.get(chunk_key) is None
        layout, payloads = _checkpoint_store(backing).load()
        assert layout == [(0, 4), (4, 8)]
        assert payloads == []

    def test_retry_wrapped_local_store(self, tmp_path):
        naps: list[float] = []
        backing = RetryStore(
            LocalDirStore(tmp_path / "ckpt"), sleep=naps.append
        )
        store = _checkpoint_store(backing)
        store.begin(8, [(0, 4), (4, 8)])
        store.write(self._payload(4, 8))
        layout, payloads = _checkpoint_store(backing).load()
        assert [(p.start, p.stop) for p in payloads] == [(4, 8)]
        assert naps == []                          # healthy disk: no retries
