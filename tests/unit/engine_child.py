"""Child process for the engine's crash/resume byte-parity test.

Not a test module (no ``test_`` prefix): ``tests/unit/test_engine.py``
launches it in a subprocess so a mid-campaign ``os._exit`` — the closest
in-tree stand-in for an OOM kill — takes down a whole interpreter
without touching the pytest process.

Usage::

    python engine_child.py {clean|crash|resume} TRACE OUT_JSON CACHE_DIR

* ``clean``  — uninterrupted serial campaign, no checkpointing.
* ``crash``  — checkpointed campaign, hard-exits (status 41) mid-trial.
* ``resume`` — checkpointed campaign with resume, after a ``crash`` run.

``clean`` and ``resume`` write the final joint distribution (as an
insertion-ordered list) to OUT_JSON; the trace and its sibling
``*.provenance.jsonl`` land next to TRACE.
"""

import json
import os
import sys

CRASH_AT_TRIAL = 7  # inside the third of four checkpoint chunks
EXIT_STATUS = 41


def main() -> None:
    mode, trace, out_json, cache_dir = sys.argv[1:5]
    os.environ["REPRO_CACHE"] = "0"  # isolate from the result cache
    os.environ["REPRO_CACHE_DIR"] = cache_dir  # checkpoints live here

    from repro import Deployment, obs, run_campaign
    from repro.apps import get_app
    import repro.fi.campaign as campaign_mod

    app = get_app("cg")
    dep = Deployment(nprocs=2, trials=10, seed=13)
    recorder = obs.configure(trace_path=trace)

    if mode == "crash":
        real = campaign_mod.run_one_trial
        calls = {"n": 0}

        def dying(*args, **kwargs):
            calls["n"] += 1
            if calls["n"] > CRASH_AT_TRIAL:
                os._exit(EXIT_STATUS)  # no flush, no atexit — a hard kill
            return real(*args, **kwargs)

        campaign_mod.run_one_trial = dying
        run_campaign(app, dep, jobs=1, checkpoint_every=3)
        raise SystemExit("crash mode must never complete")

    if mode == "clean":
        result = run_campaign(app, dep, jobs=1)
    elif mode == "resume":
        result = run_campaign(app, dep, jobs=1, checkpoint_every=3, resume=True)
    else:
        raise SystemExit(f"unknown mode {mode!r}")
    recorder.close()

    joint = [
        [outcome.value, ncont, activated, count]
        for (outcome, ncont, activated), count in result.joint.items()
    ]
    with open(out_json, "w") as fh:
        json.dump({"joint": joint}, fh)


if __name__ == "__main__":
    main()
