"""Causal tracing and timeline exporters.

Three contracts under test:

* **determinism** — trace/span ids are pure hashes of the deployment
  identity and span coordinates: identical across runs, ``--jobs`` and
  ``--lanes`` values; only ``t0``/``dur`` carry wall-clock;
* **byte identity** — records, the main event trace and the provenance
  file are unchanged by the tracing switch (spans ride a separate
  ``*.timeline.jsonl`` sidecar), and trace state stays out of
  checkpoint files;
* **export validity** — the Chrome trace is schema-valid (sorted and
  per-tid monotone timestamps, balanced B/E pairs, one lane per pid)
  and the OTLP/utilization/swimlane views agree with the span data.

The app is module-level so ``spawn`` workers can unpickle it.
"""

from __future__ import annotations

import json
import xml.etree.ElementTree as ET

import numpy as np
import pytest

from repro import obs
from repro.fi.campaign import Deployment, run_campaign
from repro.obs.events import CampaignTrace
from repro.obs.recorder import ObsSnapshot
from repro.obs.timeline import (
    STRAGGLER_K,
    chrome_trace,
    otlp_trace,
    render_timeline_report,
    spans_of,
    timeline_path,
    timeline_swimlane_svg,
    validate_chrome_trace,
    worker_utilization,
)
from repro.obs.trace import TraceContext, make_span, span_id_from, trace_id_from


class TraceApp:
    """Distributed dot product: cheap, but exercises real injections."""

    name = "traceapp"

    def __init__(self, n=64, tol=1e-9):
        self.n = n
        self.tol = tol

    def program(self, rank, size, comm, fp):
        chunk = self.n // size
        x = fp.asarray(np.linspace(1.0, 2.0, chunk) + rank)
        local = fp.dot(x, x)
        total = yield comm.allreduce(local, op="sum")
        if rank == 0:
            return {"total": total.value}
        return None

    def verify(self, output, reference):
        got, ref = output["total"], reference["total"]
        if not (np.isfinite(got) and np.isfinite(ref)):
            return False
        return abs(got - ref) <= self.tol * abs(ref)

    def cache_key(self):
        return f"traceapp(n={self.n},tol={self.tol})"


def _traced_run(deployment, jobs=1, lanes=None, profiling=False,
                checkpoint_every=None, resume=False):
    mem = obs.MemorySink()
    rec = obs.Recorder([mem], tracing=True, profiling=profiling)
    with obs.recording(rec):
        result = run_campaign(
            TraceApp(), deployment, jobs=jobs, lanes=lanes,
            checkpoint_every=checkpoint_every, resume=resume,
        )
    return result, mem, rec


DEP = Deployment(nprocs=2, trials=10, seed=7)


class TestIds:
    def test_trace_id_shape_and_determinism(self):
        a = trace_id_from("app", "key")
        assert a == trace_id_from("app", "key")
        assert len(a) == 32 and int(a, 16) >= 0
        assert a != trace_id_from("app", "other")

    def test_span_id_shape_and_determinism(self):
        t = trace_id_from("app", "key")
        s = span_id_from(t, "chunk", 0, 10)
        assert s == span_id_from(t, "chunk", 0, 10)
        assert len(s) == 16 and int(s, 16) >= 0
        assert s != span_id_from(t, "chunk", 10, 20)
        assert s != span_id_from(trace_id_from("x"), "chunk", 0, 10)

    def test_context_derive(self):
        ctx = TraceContext("t" * 32, "s" * 16)
        child = ctx.derive("trial", 3)
        assert child.trace_id == ctx.trace_id
        assert child.span_id == span_id_from(ctx.trace_id, "trial", 3)

    def test_make_span_fields(self):
        ctx = TraceContext("t" * 32, span_id_from("t" * 32, "x"))
        span = make_span("x", "chunk", ctx, "p" * 16, 1.5, 0.25,
                         args={"start": 0})
        assert span["trace_id"] == ctx.trace_id
        assert span["span_id"] == ctx.span_id
        assert span["parent_id"] == "p" * 16
        assert (span["t0"], span["dur"]) == (1.5, 0.25)
        assert span["args"] == {"start": 0}
        assert isinstance(span["pid"], int)


class TestSpanCollection:
    def test_serial_campaign_span_tree(self):
        _, mem, _ = _traced_run(DEP)
        (event,) = [e for e in mem.events if isinstance(e, CampaignTrace)]
        spans = event.spans
        cats = {s["cat"] for s in spans}
        assert cats == {"campaign", "phase", "chunk", "trial"}
        (root,) = [s for s in spans if s["cat"] == "campaign"]
        assert root["parent_id"] == ""
        assert event.trace_id == root["trace_id"]
        assert all(s["trace_id"] == root["trace_id"] for s in spans)
        # every non-root parent link resolves inside the tree
        ids = {s["span_id"] for s in spans}
        assert all(s["parent_id"] in ids for s in spans if s is not root)
        assert sum(1 for s in spans if s["cat"] == "trial") == DEP.trials

    def test_span_ids_deterministic_across_runs(self):
        _, mem1, _ = _traced_run(DEP)
        _, mem2, _ = _traced_run(DEP)
        ids = lambda m: sorted(s["span_id"] for s in spans_of(m.events))
        assert ids(mem1) == ids(mem2)

    def test_untraced_recorder_collects_nothing(self):
        mem = obs.MemorySink()
        with obs.recording(obs.Recorder([mem])) as rec:
            run_campaign(TraceApp(), DEP, jobs=1)
        assert rec.trace_spans == []
        assert not [e for e in mem.events if isinstance(e, CampaignTrace)]

    def test_jobs2_same_ids_more_pids(self):
        r1, mem1, _ = _traced_run(DEP, jobs=1)
        r2, mem2, _ = _traced_run(DEP, jobs=2)
        assert r1.joint == r2.joint
        s1, s2 = spans_of(mem1.events), spans_of(mem2.events)
        # per-trial and root ids are jobs-invariant; only chunk spans
        # (keyed on chunk bounds) follow the jobs-dependent chunk layout
        trial_ids = lambda s: sorted(
            x["span_id"] for x in s if x["cat"] == "trial"
        )
        assert trial_ids(s1) == trial_ids(s2)
        root = lambda s: next(x for x in s if x["cat"] == "campaign")
        assert root(s1)["span_id"] == root(s2)["span_id"]
        assert root(s1)["trace_id"] == root(s2)["trace_id"]
        assert len({x["pid"] for x in s2}) >= 2  # driver + worker(s)

    def test_checkpoint_spans_parented_to_campaign(self, tmp_cache):
        _, mem, _ = _traced_run(DEP, jobs=2, checkpoint_every=4)
        spans = spans_of(mem.events)
        ckpts = [s for s in spans if s["cat"] == "checkpoint"]
        assert ckpts
        (root,) = [s for s in spans if s["cat"] == "campaign"]
        assert all(c["parent_id"] == root["span_id"] for c in ckpts)
        assert all(c["args"]["bytes"] > 0 for c in ckpts)

    def test_adaptive_wave_spans(self):
        dep = Deployment(nprocs=2, trials=120, seed=7, ci_halfwidth=0.12)
        _, mem, _ = _traced_run(dep)
        spans = spans_of(mem.events)
        waves = [s for s in spans if s["cat"] == "wave"]
        assert waves
        (root,) = [s for s in spans if s["cat"] == "campaign"]
        assert all(w["parent_id"] == root["span_id"] for w in waves)
        # chunks hang off their wave, not the campaign root
        wave_ids = {w["span_id"] for w in waves}
        chunks = [s for s in spans if s["cat"] == "chunk"]
        assert chunks and all(c["parent_id"] in wave_ids for c in chunks)

    def test_lane_block_spans(self):
        res, mem, _ = _traced_run(DEP, lanes=4)
        serial, _, _ = _traced_run(DEP)
        assert res.joint == serial.joint
        spans = spans_of(mem.events)
        blocks = [s for s in spans if s["cat"] == "lanes"]
        assert blocks
        chunk_ids = {s["span_id"] for s in spans if s["cat"] == "chunk"}
        assert all(b["parent_id"] in chunk_ids for b in blocks)


class TestJobsAndLanesCombined:
    """ObsSnapshot/absorb under --jobs > 1 AND --lanes > 1."""

    def _run(self, jobs, lanes):
        mem = obs.MemorySink()
        rec = obs.Recorder([mem], tracing=True, profiling=True)
        with obs.recording(rec):
            result = run_campaign(TraceApp(), DEP, jobs=jobs, lanes=lanes)
        return result, mem, rec

    def test_results_and_counters_match_serial_scalar(self):
        serial, _, serial_rec = self._run(jobs=1, lanes=1)
        combo, _, combo_rec = self._run(jobs=2, lanes=4)
        assert combo.joint == serial.joint
        assert list(combo.joint) == list(serial.joint)
        assert combo_rec.counters == serial_rec.counters

    def test_trace_state_merges_losslessly(self):
        _, solo, _ = self._run(jobs=1, lanes=4)
        _, combo, _ = self._run(jobs=2, lanes=4)
        ids = lambda m: sorted(
            s["span_id"] for s in spans_of(m.events) if s["cat"] == "trial"
        )
        assert ids(solo) == ids(combo)  # every trial's span survived absorb
        assert len({s["pid"] for s in spans_of(combo.events)}) >= 2

    def test_profile_state_merges_losslessly(self):
        from repro.obs.profiler import profiles_of

        _, solo, _ = self._run(jobs=1, lanes=4)
        _, combo, _ = self._run(jobs=2, lanes=4)
        (p1,) = profiles_of(solo.events)
        (p2,) = profiles_of(combo.events)
        ops = lambda p: sorted(
            (r["phase"], r["kind"], r["rank"], r["ops"]) for r in p.ops
        )
        assert ops(p1) == ops(p2)  # op counts are jobs-invariant
        assert {path: c for path, (c, _) in p1.spans.items()} == \
            {path: c for path, (c, _) in p2.spans.items()}

    def test_event_reemission_order_deterministic(self):
        _, a, _ = self._run(jobs=2, lanes=4)
        _, b, _ = self._run(jobs=2, lanes=4)
        shape = lambda m: [
            (type(e).__name__, getattr(e, "trial", None)) for e in m.events
            if not isinstance(e, CampaignTrace)
        ]
        assert shape(a) == shape(b)
        trials = [e.trial for e in a.events
                  if isinstance(e, obs.TrialFinished)]
        assert trials == sorted(trials) == list(range(DEP.trials))


class TestCheckpointExcludesTrace:
    def test_serializer_drops_trace(self):
        from repro.engine.checkpoint import (
            _deserialize_snapshot,
            _serialize_snapshot,
        )

        snap = ObsSnapshot(
            counters={"x": 1}, histograms={}, span_totals={}, events=[],
            trace=[{"name": "chunk 0..2", "span_id": "a" * 16, "t0": 1.0}],
        )
        blob = _serialize_snapshot(snap)
        assert "trace" not in blob
        restored = _deserialize_snapshot(blob)
        assert restored.trace == []  # old/new checkpoints both load

    def test_resume_retraces_only_missing_chunks(self, tmp_cache):
        import repro.fi.campaign as campaign_mod

        dep = Deployment(nprocs=2, trials=10, seed=7, checkpoint_every=2)
        clean, clean_mem, _ = _traced_run(dep)

        real = campaign_mod.run_one_trial
        calls = {"n": 0}

        def interrupted(*args, **kwargs):
            calls["n"] += 1
            if calls["n"] > 5:
                raise KeyboardInterrupt
            return real(*args, **kwargs)

        campaign_mod.run_one_trial = interrupted
        try:
            with pytest.raises(KeyboardInterrupt):
                _traced_run(dep)
        finally:
            campaign_mod.run_one_trial = real

        resumed, mem, _ = _traced_run(dep, jobs=1, resume=True)
        assert resumed.joint == clean.joint
        spans = spans_of(mem.events)
        # the resumed run's trial spans cover only re-executed trials,
        # and recovered chunks are not re-traced
        trial_ids = {s["args"]["trial"] for s in spans
                     if s["cat"] == "trial"}
        assert trial_ids and trial_ids < set(range(dep.trials))
        clean_ids = {s["span_id"] for s in spans_of(clean_mem.events)}
        assert {s["span_id"] for s in spans} <= clean_ids  # same id space


class TestChromeTrace:
    def test_real_campaign_trace_validates(self):
        _, mem, _ = _traced_run(DEP, jobs=2)
        blob = chrome_trace(spans_of(mem.events))
        pairs = validate_chrome_trace(blob)
        assert pairs == len(spans_of(mem.events))
        body = [e for e in blob["traceEvents"] if e["ph"] in "BE"]
        assert all("pid" in e and "tid" in e for e in body)
        # one lane per recording pid, with metadata naming it
        pids = {e["pid"] for e in body}
        meta = [e for e in blob["traceEvents"] if e["ph"] == "M"]
        assert {e["pid"] for e in meta} == pids
        assert json.loads(json.dumps(blob)) == blob  # JSON-serializable

    def test_per_tid_timestamps_monotone(self):
        _, mem, _ = _traced_run(DEP, jobs=2)
        blob = chrome_trace(spans_of(mem.events))
        by_tid = {}
        for e in blob["traceEvents"]:
            if e["ph"] in "BE":
                by_tid.setdefault(e["tid"], []).append(e["ts"])
        for ts in by_tid.values():
            assert ts == sorted(ts)

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            validate_chrome_trace(chrome_trace([]))

    def test_unsorted_ts_rejected(self):
        bad = {"traceEvents": [
            {"name": "a", "ph": "B", "ts": 5.0, "pid": 1, "tid": 1},
            {"name": "a", "ph": "E", "ts": 1.0, "pid": 1, "tid": 1},
        ]}
        with pytest.raises(ValueError, match="sorted"):
            validate_chrome_trace(bad)

    def test_unbalanced_events_rejected(self):
        bad = {"traceEvents": [
            {"name": "a", "ph": "B", "ts": 1.0, "pid": 1, "tid": 1},
            {"name": "b", "ph": "E", "ts": 2.0, "pid": 1, "tid": 1},
        ]}
        with pytest.raises(ValueError, match="unbalanced"):
            validate_chrome_trace(bad)
        bad = {"traceEvents": [
            {"name": "a", "ph": "B", "ts": 1.0, "pid": 1, "tid": 1},
        ]}
        with pytest.raises(ValueError, match="unclosed"):
            validate_chrome_trace(bad)

    def test_missing_fields_rejected(self):
        bad = {"traceEvents": [{"name": "a", "ph": "B", "ts": 1.0, "pid": 1}]}
        with pytest.raises(ValueError, match="tid"):
            validate_chrome_trace(bad)


class TestOtlp:
    def test_shape_and_ids(self):
        _, mem, _ = _traced_run(DEP)
        spans = spans_of(mem.events)
        blob = otlp_trace(spans)
        rendered = blob["resourceSpans"][0]["scopeSpans"][0]["spans"]
        assert len(rendered) == len(spans)
        for s in rendered:
            assert len(s["traceId"]) == 32 and len(s["spanId"]) == 16
            assert int(s["endTimeUnixNano"]) >= int(s["startTimeUnixNano"])
            assert s["kind"] == 1
        assert json.loads(json.dumps(blob)) == blob


class TestUtilization:
    # synthetic 10s window: campaign on pid 1, chunks on pids 2 and 3
    def _spans(self):
        mk = lambda name, cat, pid, t0, dur, **args: {
            "name": name, "cat": cat, "trace_id": "t", "span_id": name,
            "parent_id": "", "t0": t0, "dur": dur, "pid": pid,
            "args": args,
        }
        return [
            mk("campaign", "campaign", 1, 100.0, 10.0),
            mk("c1", "chunk", 2, 101.0, 4.0, trials=4),
            mk("c2", "chunk", 2, 106.0, 1.0, trials=2),
            mk("c3", "chunk", 3, 105.0, 1.0, trials=2),
        ]

    def test_fractions(self):
        util = worker_utilization(self._spans())
        assert util["window_s"] == pytest.approx(10.0)
        w2 = util["workers"][2]
        assert w2["chunks"] == 2 and w2["trials"] == 6
        assert w2["busy_s"] == pytest.approx(5.0)
        assert w2["queue_wait_s"] == pytest.approx(1.0)
        assert w2["idle_s"] == pytest.approx(4.0)
        assert w2["busy_frac"] == pytest.approx(0.5)
        w3 = util["workers"][3]
        assert w3["queue_wait_s"] == pytest.approx(5.0)
        total = w3["busy_frac"] + w3["queue_wait_frac"] + w3["idle_frac"]
        assert total == pytest.approx(1.0)

    def test_stragglers(self):
        util = worker_utilization(self._spans())
        # median chunk dur = 1.0; c1 (4.0s) is 4x it
        assert [s["name"] for s in util["stragglers"]] == ["c1"]
        assert util["stragglers"][0]["ratio"] == pytest.approx(4.0)
        assert util["chunk_median_s"] == pytest.approx(1.0)
        assert not worker_utilization(self._spans(), k=5.0)["stragglers"]

    def test_empty(self):
        util = worker_utilization([])
        assert util == {"window_s": 0.0, "workers": {}, "stragglers": [],
                        "chunk_median_s": 0.0}

    def test_report_renders(self):
        text = render_timeline_report(self._spans())
        assert "Worker utilization" in text and "Stragglers" in text
        assert f"{STRAGGLER_K:g}x median" in text
        assert render_timeline_report([]) == "(no spans recorded)"


class TestSwimlane:
    def test_real_campaign_svg(self):
        _, mem, _ = _traced_run(DEP, jobs=2)
        svg = timeline_swimlane_svg(spans_of(mem.events)).render()
        ET.fromstring(svg)
        assert svg.startswith("<svg")
        assert "driver" in svg and "worker" in svg

    def test_driver_lane_first(self):
        _, mem, _ = _traced_run(DEP, jobs=2)
        svg = timeline_swimlane_svg(spans_of(mem.events)).render()
        assert svg.index("driver") < svg.index("worker")

    def test_empty_spans_still_render(self):
        ET.fromstring(timeline_swimlane_svg([]).render())


class TestSidecarAndByteIdentity:
    def _cli_run(self, tmp_path, name, timeline):
        trace = tmp_path / f"{name}.jsonl"
        recorder = obs.configure(trace_path=trace, timeline=timeline)
        try:
            result = run_campaign(TraceApp(), DEP, jobs=2)
        finally:
            obs.reset()
            recorder.close()
        return trace, result

    def test_spans_routed_to_sidecar_only(self, tmp_path):
        trace, _ = self._cli_run(tmp_path, "on", timeline=True)
        sidecar = timeline_path(trace)
        assert sidecar.exists()
        side_events = obs.load_trace(sidecar)
        assert side_events and all(
            isinstance(e, CampaignTrace) for e in side_events
        )
        assert spans_of(side_events)
        # ... and never into the main trace, traced or not
        assert not [e for e in obs.load_trace(trace)
                    if isinstance(e, CampaignTrace)]

    def test_main_trace_and_records_unchanged_by_tracing(self, tmp_path):
        def strip(path):
            events = []
            for line in path.read_text().splitlines():
                blob = json.loads(line)
                for key in ("ts", "duration_s", "profile_time",
                            "injection_time"):
                    blob.pop(key, None)
                events.append(blob)
            return events

        on, r_on = self._cli_run(tmp_path, "on2", timeline=True)
        off, r_off = self._cli_run(tmp_path, "off", timeline=False)
        assert r_on.joint == r_off.joint
        assert list(r_on.joint) == list(r_off.joint)
        assert strip(on) == strip(off)
        prov_on = on.with_name("on2.provenance.jsonl")
        prov_off = off.with_name("off.provenance.jsonl")
        assert prov_on.read_bytes() == prov_off.read_bytes()
        assert not timeline_path(off).exists()


class TestTimelinePath:
    def test_sidecar_naming(self):
        assert timeline_path("a/b/run.jsonl").name == "run.timeline.jsonl"
        assert timeline_path("run.jsonl").name == "run.timeline.jsonl"

    def test_dedup_in_spans_of(self):
        span = {"name": "x", "cat": "chunk", "span_id": "s", "t0": 1.0,
                "dur": 0.5, "pid": 1, "parent_id": ""}
        ev = CampaignTrace(app="a", trace_id="t", spans=[span])
        assert len(spans_of([ev, ev])) == 1
        rerun = CampaignTrace(app="a", trace_id="t",
                              spans=[{**span, "t0": 2.0}])
        assert len(spans_of([ev, rerun])) == 2  # same id, new run


class TestCli:
    def test_missing_file_exit_2(self, tmp_path, capsys):
        from repro.experiments.cli import main

        assert main(["obs-timeline", str(tmp_path / "nope.jsonl")]) == 2
        assert "no such trace file" in capsys.readouterr().err

    def test_directory_exit_2(self, tmp_path, capsys):
        from repro.experiments.cli import main

        for sub in ("obs-timeline", "obs-report", "obs-profile",
                    "obs-dashboard"):
            assert main([sub, str(tmp_path)]) == 2, sub
            assert "no such trace file" in capsys.readouterr().err

    def test_untraced_file_exit_1(self, tmp_path, capsys):
        from repro.experiments.cli import main

        trace = tmp_path / "plain.jsonl"
        trace.write_text(
            '{"type": "trial_finished", "trial": 0, "outcome": "success", '
            '"n_contaminated": 0, "activated": false, "duration_s": 0.1}\n'
        )
        assert main(["obs-timeline", str(trace)]) == 1
        assert "no campaign_trace spans" in capsys.readouterr().err

    def test_exports_written_and_valid(self, tmp_path, capsys):
        from repro.experiments.cli import main

        trace = tmp_path / "run.jsonl"
        recorder = obs.configure(trace_path=trace, timeline=True)
        try:
            run_campaign(TraceApp(), DEP, jobs=2)
        finally:
            obs.reset()
            recorder.close()
        chrome = tmp_path / "chrome.json"
        otlp = tmp_path / "otlp.json"
        svg = tmp_path / "lanes.svg"
        rc = main(["obs-timeline", str(trace), "--chrome", str(chrome),
                   "--otlp", str(otlp), "--svg", str(svg)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Worker utilization" in out
        validate_chrome_trace(json.loads(chrome.read_text()))
        assert json.loads(otlp.read_text())["resourceSpans"]
        ET.parse(svg)


class TestDashboardSection:
    def test_static_dashboard_picks_up_sidecar(self, tmp_path):
        from repro.obs.dashboard import render_dashboard

        trace = tmp_path / "run.jsonl"
        recorder = obs.configure(trace_path=trace, timeline=True)
        try:
            run_campaign(TraceApp(), DEP, jobs=2)
        finally:
            obs.reset()
            recorder.close()
        html = render_dashboard(trace)
        assert "Worker timeline" in html
        assert "straggler" in html.lower()

    def test_untraced_dashboard_omits_section(self, tmp_path):
        from repro.obs.dashboard import render_dashboard

        trace = tmp_path / "run.jsonl"
        recorder = obs.configure(trace_path=trace)
        try:
            run_campaign(TraceApp(), DEP, jobs=1)
        finally:
            obs.reset()
            recorder.close()
        assert "Worker timeline" not in render_dashboard(trace)

    def test_live_dashboard_synthesizes_midrun_trace(self):
        from repro.obs.live import LiveObsServer
        from repro.obs.sinks import RingBufferSink

        rec = obs.Recorder([], tracing=True)
        rec.enabled = True  # as start_live_server does
        rec.trace_ctx = TraceContext(
            trace_id_from("live"), span_id_from(trace_id_from("live"), "c")
        )
        rec.add_trace_span(make_span(
            "chunk 0..2", "chunk", rec.trace_ctx, "", 1.0, 0.5,
        ))
        server = LiveObsServer(rec, RingBufferSink(8))
        try:
            status, ctype, body = server.handle("/")
        finally:
            server.close()
        assert status == 200
        assert "Worker timeline" in body


class TestDroppedEventsCounter:
    def test_ring_on_drop_callback(self):
        from repro.obs.sinks import RingBufferSink

        drops = []
        ring = RingBufferSink(capacity=2, on_drop=lambda: drops.append(1))
        for i in range(5):
            ring.write(obs.CacheMiss(path=str(i)))
        assert len(drops) == 3 == ring.dropped

    def test_live_server_exports_dropped_total(self):
        from repro.obs.live import render_prometheus, start_live_server

        rec = obs.Recorder([])
        server = start_live_server(rec, port=0, capacity=2)
        try:
            page = render_prometheus(rec)
            assert "repro_events_dropped_total 0" in page
            for i in range(5):
                rec.emit(obs.CacheMiss(path=str(i)))
            page = render_prometheus(rec)
            assert "repro_events_dropped_total 3" in page
            assert "events.dropped" in obs.render_metrics_summary(rec)
        finally:
            server.close()


class TestReportPercentiles:
    def test_nearest_rank(self):
        from repro.obs.report import _percentile

        ordered = [float(i) for i in range(1, 101)]
        assert _percentile(ordered, 50) == 50.0
        assert _percentile(ordered, 95) == 95.0
        assert _percentile(ordered, 99) == 99.0
        assert _percentile([7.0], 99) == 7.0
        assert _percentile([], 50) == 0.0

    def test_trace_report_gains_latency_table(self, tmp_path):
        from repro.obs.report import render_trace_report

        trace = tmp_path / "run.jsonl"
        recorder = obs.configure(trace_path=trace)
        try:
            run_campaign(TraceApp(), DEP, jobs=1)
        finally:
            obs.reset()
            recorder.close()
        report = render_trace_report(trace)
        assert "Trial wall time" in report
        for col in ("p50 ms", "p95 ms", "p99 ms"):
            assert col in report
