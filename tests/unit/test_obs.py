"""Tests for the observability layer (recorder, sinks, events, report)."""

import io
import json

import pytest

from repro import obs
from repro.obs.events import SpanEnd, TrialFinished, event_from_dict
from repro.obs.report import render_metrics_summary, render_trace_report
from repro.obs.sinks import JsonlSink, MemorySink, ProgressSink, load_trace


class FakeClock:
    """Deterministic monotonic clock advanced by hand."""

    def __init__(self, start=0.0):
        self.now = start

    def __call__(self):
        return self.now

    def tick(self, dt):
        self.now += dt


class TestRecorder:
    def test_counters_accumulate(self):
        rec = obs.Recorder(enabled=True)
        rec.counter("x")
        rec.counter("x", 4)
        rec.counter("y", 2.5)
        assert rec.counters == {"x": 5, "y": 2.5}

    def test_gauges_last_write_wins(self):
        rec = obs.Recorder(enabled=True)
        rec.gauge("campaign.trials_done", 3)
        rec.gauge("campaign.trials_done", 9)
        assert rec.gauges == {"campaign.trials_done": 9}

    def test_gauges_noop_while_disabled(self):
        rec = obs.Recorder(enabled=False)
        rec.gauge("g", 1)
        assert rec.gauges == {}

    def test_histograms_accumulate(self):
        rec = obs.Recorder(enabled=True)
        rec.observe("h", 1)
        rec.observe("h", 3)
        assert rec.histograms == {"h": [1, 3]}

    def test_span_nesting_builds_paths(self):
        clock = FakeClock()
        rec = obs.Recorder(enabled=True, clock=clock)
        with rec.span("campaign"):
            clock.tick(1.0)
            for _ in range(2):
                with rec.span("trial"):
                    clock.tick(0.25)
                    with rec.span("inject"):
                        clock.tick(0.5)
        assert rec.span_totals["campaign"] == [1, pytest.approx(2.5)]
        assert rec.span_totals["campaign/trial"] == [2, pytest.approx(1.5)]
        assert rec.span_totals["campaign/trial/inject"] == [2, pytest.approx(1.0)]

    def test_span_emits_events(self):
        mem = MemorySink()
        rec = obs.Recorder([mem])
        with rec.span("a"):
            with rec.span("b"):
                pass
        paths = [e.path for e in mem.of(SpanEnd)]
        assert paths == ["a/b", "a"]  # inner closes first

    def test_span_rejects_slash(self):
        rec = obs.Recorder(enabled=True)
        with pytest.raises(ValueError):
            with rec.span("a/b"):
                pass

    def test_disabled_recorder_records_nothing(self):
        mem = MemorySink()
        rec = obs.Recorder([mem], enabled=False)
        rec.counter("x")
        rec.observe("h", 1)
        with rec.span("s"):
            pass
        rec.emit(TrialFinished(trial=0, outcome="success",
                               n_contaminated=1, activated=True, duration_s=0.1))
        assert rec.counters == {}
        assert rec.histograms == {}
        assert rec.span_totals == {}
        assert mem.events == []

    def test_sinks_imply_enabled(self):
        assert obs.Recorder([MemorySink()]).enabled
        assert not obs.Recorder().enabled

    def test_recording_installs_and_restores(self):
        outer = obs.get_recorder()
        rec = obs.Recorder(enabled=True)
        with obs.recording(rec):
            assert obs.get_recorder() is rec
        assert obs.get_recorder() is outer


class TestEvents:
    def test_round_trip_through_dict(self):
        event = TrialFinished(trial=7, outcome="sdc", n_contaminated=3,
                              activated=True, duration_s=0.5)
        blob = event.to_dict()
        assert blob["type"] == "trial_finished"
        assert event_from_dict(blob) == event

    def test_unknown_type_skipped(self):
        assert event_from_dict({"type": "from_the_future", "x": 1}) is None

    def test_extra_keys_ignored(self):
        blob = SpanEnd(path="a", duration_s=1.0).to_dict()
        blob["ts"] = 123.0
        assert event_from_dict(blob) == SpanEnd(path="a", duration_s=1.0)


class TestJsonlSink:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlSink(path)
        events = [
            obs.CampaignStarted(app="cg", nprocs=2, trials=3, n_errors=1, seed=0),
            TrialFinished(trial=0, outcome="success", n_contaminated=1,
                          activated=True, duration_s=0.1),
            SpanEnd(path="campaign", duration_s=1.5),
        ]
        for e in events:
            sink.write(e)
        sink.close()
        assert load_trace(path) == events

    def test_lines_carry_timestamps(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlSink(path, clock=lambda: 42.0)
        sink.write(SpanEnd(path="x", duration_s=0.0))
        sink.close()
        (line,) = path.read_text().splitlines()
        assert json.loads(line)["ts"] == 42.0

    def test_truncated_final_line_tolerated(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlSink(path)
        sink.write(SpanEnd(path="x", duration_s=0.0))
        sink.close()
        with path.open("a") as fh:
            fh.write('{"type": "trial_fin')  # killed mid-write
        assert len(load_trace(path)) == 1

    def test_write_after_close_raises(self, tmp_path):
        sink = JsonlSink(tmp_path / "t.jsonl")
        sink.close()
        with pytest.raises(RuntimeError):
            sink.write(SpanEnd(path="x", duration_s=0.0))


def _trial(i, outcome="success"):
    return TrialFinished(trial=i, outcome=outcome, n_contaminated=1,
                         activated=True, duration_s=0.01)


class TestProgressSink:
    def test_throttles_repaints(self):
        clock = FakeClock()
        stream = io.StringIO()
        sink = ProgressSink(stream=stream, min_interval=1.0, clock=clock)
        sink.write(obs.CampaignStarted(app="a", nprocs=1, trials=100,
                                       n_errors=1, seed=0))
        for i in range(50):
            clock.tick(0.01)  # 50 trials in 0.5s: inside one interval
            sink.write(_trial(i))
        assert sink.paints == 1  # first paint at -inf threshold, rest throttled

    def test_final_trial_always_paints(self):
        clock = FakeClock()
        stream = io.StringIO()
        sink = ProgressSink(stream=stream, min_interval=1000.0, clock=clock)
        sink.write(obs.CampaignStarted(app="a", nprocs=1, trials=3,
                                       n_errors=1, seed=0))
        for i in range(3):
            clock.tick(0.1)
            sink.write(_trial(i, "sdc" if i == 0 else "success"))
        out = stream.getvalue()
        assert "trial 3/3" in out
        assert out.endswith("\n")
        assert "sdc=33.3%" in out
        assert "10 trials/s" in out

    def test_close_finishes_line_midway(self):
        clock = FakeClock()
        stream = io.StringIO()
        sink = ProgressSink(stream=stream, min_interval=1000.0, clock=clock)
        sink.write(obs.CampaignStarted(app="a", nprocs=1, trials=10,
                                       n_errors=1, seed=0))
        clock.tick(1.0)
        sink.write(_trial(0))
        sink.close()
        assert stream.getvalue().endswith("\n")


class TestReport:
    def test_trace_report_tables(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlSink(path)
        sink.write(SpanEnd(path="campaign", duration_s=2.0))
        for i in range(4):
            sink.write(SpanEnd(path="campaign/trial", duration_s=0.5))
            sink.write(_trial(i, "sdc" if i == 0 else "success"))
        sink.close()
        report = render_trace_report(path)
        assert "campaign/trial" in report
        assert "Trial outcomes (4 trials)" in report
        assert "sdc" in report and "success" in report

    def test_empty_trace_report(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert "no known events" in render_trace_report(path)

    def test_metrics_summary(self):
        rec = obs.Recorder(enabled=True)
        rec.counter("cache.hits", 3)
        rec.observe("taint.contamination_spread", 2)
        with rec.span("campaign"):
            pass
        summary = render_metrics_summary(rec)
        assert "cache.hits" in summary
        assert "taint.contamination_spread" in summary
        assert "campaign" in summary

    def test_metrics_summary_includes_gauges(self):
        rec = obs.Recorder(enabled=True)
        rec.gauge("campaign.trials_done", 7)
        summary = render_metrics_summary(rec)
        assert "Gauges" in summary and "campaign.trials_done" in summary

    def test_metrics_summary_empty(self):
        assert "no metrics" in render_metrics_summary(obs.Recorder(enabled=True))


class TestSchedulerObservability:
    def test_deadlock_event_names_blocked_ranks(self):
        from repro.errors import DeadlockError
        from repro.mpisim.runner import execute_spmd

        def prog(rank, size, comm, fp):
            if rank == 0:
                yield comm.recv(source=1, tag=9)
            return None

        mem = MemorySink()
        with obs.recording(obs.Recorder([mem])):
            with pytest.raises(DeadlockError):
                execute_spmd(prog, 2)
        (event,) = mem.of(obs.SchedulerDeadlock)
        assert event.blocked_ranks == [0]
        assert "recv(source=1, tag=9)" in event.pending_ops[0]

    def test_step_counter_and_blocked_gauge(self):
        from repro.mpisim.runner import execute_spmd

        def prog(rank, size, comm, fp):
            total = yield comm.allreduce(rank, op="sum")
            return total

        with obs.recording(obs.Recorder(enabled=True)) as rec:
            assert execute_spmd(prog, 4) == [6, 6, 6, 6]
        assert rec.counters["scheduler.steps"] >= 8  # 2 resumptions x 4 ranks
        assert rec.counters["scheduler.runs"] == 1
        # all four ranks were parked in the allreduce when the queue drained
        assert 4 in rec.histograms["scheduler.blocked_ranks"]


class TestConfigure:
    def test_configure_installs_and_close(self, tmp_path):
        previous = obs.get_recorder()
        try:
            rec = obs.configure(trace_path=tmp_path / "t.jsonl")
            assert obs.get_recorder() is rec
            assert rec.enabled
            rec.close()
        finally:
            obs.set_recorder(previous)

    def test_metrics_only_has_no_sinks(self):
        previous = obs.get_recorder()
        try:
            rec = obs.configure(metrics=True)
            assert rec.enabled and rec.sinks == []
        finally:
            obs.set_recorder(previous)

    def test_default_recorder_is_disabled(self):
        assert not obs.get_recorder().enabled

class TestSnapshotAbsorb:
    """Edge cases of the worker-aggregation snapshot/absorb cycle."""

    def test_absorb_empty_snapshot_is_identity(self):
        rec = obs.Recorder(enabled=True)
        rec.counter("x", 2)
        rec.observe("h", 1.0)
        with rec.span("s"):
            pass
        before = (dict(rec.counters),
                  {k: list(v) for k, v in rec.histograms.items()},
                  {k: list(v) for k, v in rec.span_totals.items()})
        rec.absorb(obs.ObsSnapshot())
        assert (rec.counters, rec.histograms, rec.span_totals) == before

    def test_nested_span_prefix_composes_paths(self):
        worker = obs.Recorder(enabled=True, span_prefix=("campaign", "chunk"))
        with worker.span("trial"):
            with worker.span("inject"):
                pass
        parent = obs.Recorder(enabled=True)
        parent.absorb(worker.snapshot())
        assert set(parent.span_totals) == {
            "campaign/chunk/trial", "campaign/chunk/trial/inject",
        }

    def test_absorb_after_reset_goes_to_new_recorder(self):
        worker = obs.Recorder(enabled=True)
        worker.counter("trials", 5)
        snap = worker.snapshot()
        first = obs.Recorder(enabled=True)
        with obs.recording(first):
            obs.reset()
            fresh = obs.get_recorder()
            # the default reset() recorder is disabled: absorb is a no-op
            fresh.absorb(snap)
            assert fresh.counters == {}
            replacement = obs.Recorder(enabled=True)
            obs.set_recorder(replacement)
            obs.get_recorder().absorb(snap)
            assert replacement.counters == {"trials": 5}
        assert first.counters == {}  # never touched after the reset

    def test_absorb_reemits_events_in_order(self):
        mem_worker = MemorySink()
        worker = obs.Recorder([mem_worker])
        for i in range(3):
            worker.emit(_trial(i))
        mem_parent = MemorySink()
        parent = obs.Recorder([mem_parent])
        parent.absorb(worker.snapshot(events=mem_worker.events))
        assert [e.trial for e in mem_parent.of(TrialFinished)] == [0, 1, 2]


class TestLoadTraceSkips:
    def test_partial_trailing_line_skipped_with_message(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlSink(path)
        sink.write(_trial(0))
        sink.close()
        with path.open("a") as fh:
            fh.write('{"type": "trial_fin')  # interrupted mid-write
        messages = []
        events = load_trace(path, on_skip=messages.append)
        assert len(events) == 1
        assert len(messages) == 1 and ":2:" in messages[0]

    def test_no_callback_still_tolerates_corruption(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('not json at all\n')
        assert load_trace(path) == []
