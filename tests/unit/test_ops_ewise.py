"""Elementwise traced operations: correctness, tracing, injection."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.fi.profile import InstructionProfile
from repro.fi.tracer import Tracer, TracerMode
from repro.numerics.bits import flip_bit_scalar
from repro.taint.ops import FPOps
from repro.taint.region import Region
from repro.taint.tarray import TArray
from repro.taint.tracer_api import Operand, OpKind
from tests.conftest import make_inject_fp


class TestPlainCorrectness:
    """Without injection, traced ops must equal plain numpy."""

    @pytest.mark.parametrize(
        "op,ufunc",
        [("add", np.add), ("sub", np.subtract), ("mul", np.multiply),
         ("div", np.divide), ("minimum", np.minimum), ("maximum", np.maximum)],
    )
    def test_binary_matches_numpy(self, fp, rng, op, ufunc):
        a, b = rng.standard_normal(32), rng.standard_normal(32) + 3.0
        out = getattr(fp, op)(fp.asarray(a), fp.asarray(b))
        np.testing.assert_array_equal(out.to_numpy(), ufunc(a, b))
        assert not out.diverged

    @pytest.mark.parametrize(
        "op,ufunc",
        [("neg", np.negative), ("abs", np.abs), ("sqrt", np.sqrt),
         ("exp", np.exp), ("log", np.log), ("sin", np.sin), ("cos", np.cos),
         ("reciprocal", np.reciprocal)],
    )
    def test_unary_matches_numpy(self, fp, rng, op, ufunc):
        a = rng.uniform(0.5, 2.0, size=16)
        out = getattr(fp, op)(fp.asarray(a))
        np.testing.assert_array_equal(out.to_numpy(), ufunc(a))

    def test_scalar_broadcast(self, fp):
        out = fp.mul(fp.asarray([1.0, 2.0]), 3.0)
        np.testing.assert_array_equal(out.to_numpy(), [3.0, 6.0])

    def test_general_broadcast(self, fp, rng):
        a = rng.standard_normal((4, 1, 3))
        b = rng.standard_normal((2, 1))
        out = fp.add(fp.asarray(a), fp.asarray(b))
        np.testing.assert_array_equal(out.to_numpy(), a + b)

    def test_where_and_comparisons(self, fp):
        a = fp.asarray([1.0, 5.0, 3.0])
        b = fp.asarray([4.0, 2.0, 3.0])
        mask = fp.greater(a, b)
        np.testing.assert_array_equal(mask, [False, True, False])
        np.testing.assert_array_equal(fp.less(a, b), [True, False, False])
        out = fp.where(mask, a, b)
        np.testing.assert_array_equal(out.to_numpy(), [4.0, 5.0, 3.0])


class TestInstructionAccounting:
    def test_candidate_counts(self):
        tracer = Tracer(TracerMode.PROFILE)
        fp = FPOps(tracer, rank=3)
        a = fp.asarray(np.ones(10))
        fp.add(a, a)          # 10 ADD
        fp.mul(a, 2.0)        # 10 MUL
        fp.div(a, a)          # 10 DIV (not candidate)
        prof: InstructionProfile = tracer.profile
        assert prof.candidates(3) == 20
        assert prof.total_instructions(3) == 30
        assert prof.counts[(3, Region.COMMON, OpKind.DIV)] == 10

    def test_region_tagging(self):
        tracer = Tracer(TracerMode.PROFILE)
        fp = FPOps(tracer)
        a = fp.asarray(np.ones(4))
        fp.add(a, a)
        with fp.region(Region.PARALLEL_UNIQUE):
            fp.add(a, a)
            assert fp.current_region is Region.PARALLEL_UNIQUE
        assert fp.current_region is Region.COMMON
        assert tracer.profile.candidates(0, Region.COMMON) == 4
        assert tracer.profile.candidates(0, Region.PARALLEL_UNIQUE) == 4
        assert tracer.profile.parallel_unique_fraction() == 0.5


class TestInjection:
    def test_operand_a_flip(self, rng):
        a, b = rng.standard_normal(8), rng.standard_normal(8)
        fp, tracer = make_inject_fp(index=3, operand=Operand.A, bit=63)
        out = fp.add(fp.asarray(a), fp.asarray(b))
        expected = a + b
        expected[3] = -a[3] + b[3]
        np.testing.assert_array_equal(out.to_numpy(), expected)
        np.testing.assert_array_equal(out.golden_numpy(), a + b)
        assert out.diverged and tracer.contaminated == {0}
        assert tracer.all_flips_activated

    def test_operand_b_flip(self, rng):
        a, b = rng.standard_normal(8), rng.standard_normal(8)
        fp, _ = make_inject_fp(index=0, operand=Operand.B, bit=63)
        out = fp.mul(fp.asarray(a), fp.asarray(b))
        assert out.to_numpy()[0] == a[0] * -b[0]

    def test_operand_out_flip(self, rng):
        a = rng.standard_normal(4)
        fp, _ = make_inject_fp(index=2, operand=Operand.OUT, bit=52)
        out = fp.add(fp.asarray(a), 0.0)
        assert out.to_numpy()[2] == flip_bit_scalar(a[2], 52)

    def test_flip_is_transient_not_persistent(self, rng):
        """The stored input array must never be corrupted."""
        a = fp_in = TArray.fresh(rng.standard_normal(4))
        fp, _ = make_inject_fp(index=1, operand=Operand.A, bit=63)
        fp.add(fp_in, 1.0)
        np.testing.assert_array_equal(a.to_numpy(), a.golden_numpy())

    def test_index_counts_across_ops(self, rng):
        """The candidate stream spans consecutive operations."""
        a = rng.standard_normal(4)
        fp, tracer = make_inject_fp(index=6, operand=Operand.OUT, bit=63)
        first = fp.add(fp.asarray(a), 0.0)   # indices 0..3
        second = fp.add(fp.asarray(a), 0.0)  # indices 4..7 -> lane 2
        assert not first.diverged
        assert second.to_numpy()[2] == -a[2]

    def test_noncandidate_ops_do_not_consume_indices(self, rng):
        a = rng.uniform(1.0, 2.0, 4)
        fp, _ = make_inject_fp(index=0, operand=Operand.OUT, bit=63)
        fp.sqrt(fp.asarray(a))               # OTHER: no candidates
        out = fp.add(fp.asarray(a), 0.0)     # first candidate op
        assert out.diverged

    def test_injection_into_broadcast_scalar_operand(self):
        fp, _ = make_inject_fp(index=2, operand=Operand.B, bit=63)
        out = fp.mul(fp.asarray([1.0, 2.0, 3.0, 4.0]), 2.0)
        np.testing.assert_array_equal(out.to_numpy(), [2.0, 4.0, -6.0, 8.0])

    def test_multibit_same_site_composes(self, rng):
        """Two flips on the same instruction operand XOR both bits."""
        from repro.fi.plan import InjectionPlan, PlannedFlip
        from repro.fi.tracer import Tracer, TracerMode
        from repro.taint.region import Region

        a = rng.standard_normal(4)
        plan = InjectionPlan(flips=(
            PlannedFlip(rank=0, region=Region.COMMON, index=1,
                        operand=Operand.A, bit=63),
            PlannedFlip(rank=0, region=Region.COMMON, index=1,
                        operand=Operand.A, bit=52),
        ))
        tracer = Tracer(TracerMode.INJECT, plan)
        fp = FPOps(tracer)
        out = fp.add(fp.asarray(a), 0.0)
        expected = flip_bit_scalar(flip_bit_scalar(a[1], 63), 52)
        assert out.to_numpy()[1] == expected
        assert tracer.all_flips_activated

    def test_mantissa_absorption_keeps_clean(self):
        """A flip whose arithmetic effect rounds away must not diverge."""
        # adding 1 ulp-of-tiny to a huge number: flip the tiny operand
        fp, tracer = make_inject_fp(index=0, operand=Operand.B, bit=0)
        out = fp.add(fp.asarray([1e300]), fp.asarray([1e-300]))
        assert not out.diverged
        assert tracer.contaminated == set()
        assert tracer.all_flips_activated  # the flip fired, then vanished

    def test_where_propagates_divergence(self, rng):
        fp, _ = make_inject_fp(index=0, operand=Operand.OUT, bit=63)
        a = fp.add(fp.asarray([2.0, 3.0]), 0.0)  # lane 0 corrupted
        assert a.diverged
        picked = fp.where(np.array([True, False]), a, fp.asarray([0.0, 0.0]))
        assert picked.diverged


class TestDivergencePropagation:
    def test_diverged_input_produces_diverged_output(self):
        fp = FPOps()
        bad = TArray(np.array([1.0]), np.array([2.0]))
        out = fp.add(bad, 1.0)
        assert out.diverged
        assert out.to_numpy()[0] == 3.0 and out.golden_numpy()[0] == 2.0

    def test_multiply_by_zero_collapses(self):
        """Corruption annihilated by x*0 re-shares golden and faulty."""
        fp = FPOps()
        bad = TArray(np.array([1.0]), np.array([2.0]))
        out = fp.mul(bad, 0.0)
        assert not out.diverged

    @given(st.integers(0, 62))
    def test_flip_then_subtract_self_is_clean(self, bit):
        fp = FPOps()
        flipped = flip_bit_scalar(1.5, bit)
        bad = TArray(np.array([1.5]), np.array([flipped]))
        out = fp.sub(bad, bad)
        if np.isfinite(flipped):
            assert not out.diverged  # x - x == 0 on both paths
        else:
            assert out.diverged  # inf - inf = NaN differs from golden 0.0
