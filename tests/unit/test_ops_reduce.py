"""Reduction and sparse traced operations: sum, dot, csr_matvec, segment_sum."""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings, strategies as st

from repro.fi.plan import InjectionPlan, PlannedFlip
from repro.fi.tracer import Tracer, TracerMode
from repro.numerics.bits import flip_bit_scalar
from repro.taint.ops import FPOps, _sum_sequential_with_injections
from repro.taint.region import Region
from repro.taint.tarray import TArray
from repro.taint.tracer_api import LaneInjection, Operand
from tests.conftest import make_inject_fp


class TestSumAndDot:
    def test_sum_matches_numpy(self, fp, rng):
        a = rng.standard_normal(100)
        assert fp.sum(fp.asarray(a)).value == pytest.approx(np.sum(a), rel=1e-15)

    def test_sum_counts_n_minus_1_adds(self):
        tracer = Tracer(TracerMode.PROFILE)
        fp = FPOps(tracer)
        fp.sum(fp.asarray(np.ones(10)))
        assert tracer.profile.candidates(0) == 9

    def test_dot_counts_muls_and_adds(self):
        tracer = Tracer(TracerMode.PROFILE)
        fp = FPOps(tracer)
        fp.dot(fp.asarray(np.ones(10)), fp.asarray(np.ones(10)))
        assert tracer.profile.candidates(0) == 10 + 9

    def test_dot_matches_numpy(self, fp, rng):
        a, b = rng.standard_normal(64), rng.standard_normal(64)
        assert fp.dot(fp.asarray(a), fp.asarray(b)).value == pytest.approx(
            np.dot(a, b), rel=1e-12
        )

    def test_norm2(self, fp, rng):
        a = rng.standard_normal(16)
        assert fp.norm2(fp.asarray(a)).value == pytest.approx(np.linalg.norm(a))

    def test_max_min(self, fp, rng):
        a = rng.standard_normal(16)
        assert fp.max(fp.asarray(a)).value == a.max()
        assert fp.min(fp.asarray(a)).value == a.min()

    def test_sum_single_element_no_adds(self):
        tracer = Tracer(TracerMode.PROFILE)
        fp = FPOps(tracer)
        out = fp.sum(fp.asarray([4.0]))
        assert out.value == 4.0
        assert tracer.profile.candidates(0) == 0


class TestReductionInjection:
    def test_element_flip_in_reduction(self, rng):
        a = rng.standard_normal(8)
        # reduction add i consumes element i+1: flip element 4's view
        fp, tracer = make_inject_fp(index=3, operand=Operand.B, bit=63)
        out = fp.sum(fp.asarray(a))
        expected = np.sum(a) - 2 * a[4]
        assert out.value == pytest.approx(expected, rel=1e-12)
        assert tracer.all_flips_activated

    def test_accumulator_flip_corrupts_prefix(self, rng):
        a = rng.standard_normal(6)
        fp, _ = make_inject_fp(index=2, operand=Operand.A, bit=63)
        out = fp.sum(fp.asarray(a))
        # accumulator before add 2 holds sum(a[:3]); sign-flip it
        expected = -np.sum(a[:3]) + np.sum(a[3:])
        assert out.value == pytest.approx(expected, rel=1e-12)

    def test_out_flip_applies_after_add(self, rng):
        a = rng.standard_normal(4)
        fp, _ = make_inject_fp(index=2, operand=Operand.OUT, bit=63)
        out = fp.sum(fp.asarray(a))
        assert out.value == pytest.approx(-np.sum(a), rel=1e-12)

    def test_golden_path_untouched_by_reduction_injection(self, rng):
        a = rng.standard_normal(16)
        fp, _ = make_inject_fp(index=7, operand=Operand.A, bit=55)
        out = fp.sum(fp.asarray(a))
        # golden uses the same association order minus the flip
        assert out.golden_value == pytest.approx(np.sum(a), rel=1e-12)

    def test_low_bit_reduction_flip_can_be_absorbed(self):
        """Flipping the LSB of a tiny element in a big sum rounds away."""
        a = np.array([1e16, 1.0, 1e16])
        fp, tracer = make_inject_fp(index=0, operand=Operand.B, bit=0)
        out = fp.sum(fp.asarray(a))
        assert not out.diverged
        assert tracer.all_flips_activated


def _random_csr(rng, nrows=12, ncols=10, density=0.4):
    m = sp.random(nrows, ncols, density=density, random_state=42, format="csr")
    m.data = rng.standard_normal(m.nnz)
    return m


class TestCsrMatvec:
    def test_matches_scipy(self, fp, rng):
        m = _random_csr(rng)
        x = rng.standard_normal(m.shape[1])
        y = fp.csr_matvec(m.data, m.indices, m.indptr, fp.asarray(x))
        np.testing.assert_allclose(y.to_numpy(), m @ x, rtol=1e-12)

    def test_trailing_empty_rows_keep_last_product(self, fp):
        """Regression: trailing empty rows must not drop prod[nnz-1]."""
        indptr = np.array([0, 3, 3, 3])
        indices = np.array([0, 1, 2])
        data = np.array([1.0, 2.0, 4.0])
        y = fp.csr_matvec(data, indices, indptr, fp.asarray([1.0, 1.0, 1.0]))
        np.testing.assert_array_equal(y.to_numpy(), [7.0, 0.0, 0.0])

    def test_empty_rows_give_zero(self, fp, rng):
        indptr = np.array([0, 2, 2, 3])
        indices = np.array([0, 1, 2])
        data = np.array([1.0, 2.0, 3.0])
        x = fp.asarray([1.0, 1.0, 1.0])
        y = fp.csr_matvec(data, indices, indptr, x)
        np.testing.assert_array_equal(y.to_numpy(), [3.0, 0.0, 3.0])

    def test_instruction_counts(self, rng):
        m = _random_csr(rng)
        tracer = Tracer(TracerMode.PROFILE)
        fp = FPOps(tracer)
        fp.csr_matvec(m.data, m.indices, m.indptr, fp.asarray(np.ones(m.shape[1])))
        lens = np.diff(m.indptr)
        expected = m.nnz + int(np.maximum(lens - 1, 0).sum())
        assert tracer.profile.candidates(0) == expected

    def test_mul_stage_injection(self, rng):
        m = _random_csr(rng)
        x = rng.standard_normal(m.shape[1])
        k = 5  # corrupt the 6th stored product's A operand (matrix entry)
        fp, tracer = make_inject_fp(index=k, operand=Operand.A, bit=63)
        y = fp.csr_matvec(m.data, m.indices, m.indptr, fp.asarray(x))
        row = int(np.searchsorted(m.indptr, k, side="right")) - 1
        expected = m @ x
        expected[row] -= 2 * m.data[k] * x[m.indices[k]]
        np.testing.assert_allclose(y.to_numpy(), expected, rtol=1e-10)
        assert tracer.contaminated == {0}

    def test_add_stage_injection_changes_single_row(self, rng):
        m = _random_csr(rng, density=0.8)
        x = rng.standard_normal(m.shape[1])
        lens = np.diff(m.indptr)
        n_adds = int(np.maximum(lens - 1, 0).sum())
        fp, tracer = make_inject_fp(
            index=m.nnz + n_adds // 2, operand=Operand.OUT, bit=63
        )
        y = fp.csr_matvec(m.data, m.indices, m.indptr, fp.asarray(x))
        diff = np.abs(y.to_numpy() - m @ x) > 1e-12
        assert diff.sum() == 1  # exactly one row corrupted
        assert tracer.all_flips_activated

    def test_diverged_x_propagates(self, fp, rng):
        m = _random_csr(rng)
        x = rng.standard_normal(m.shape[1])
        xf = x.copy()
        xf[0] += 1.0
        y = fp.csr_matvec(m.data, m.indices, m.indptr, TArray(x, xf))
        assert y.diverged
        np.testing.assert_allclose(y.golden_numpy(), m @ x, rtol=1e-12)
        np.testing.assert_allclose(y.to_numpy(), m @ xf, rtol=1e-12)

    def test_data_length_mismatch(self, fp):
        with pytest.raises(ValueError):
            fp.csr_matvec(np.ones(3), np.array([0, 1]), np.array([0, 2]), fp.asarray([1.0, 1.0]))


class TestSegmentSum:
    def test_matches_reduceat(self, fp, rng):
        vals = rng.standard_normal(20)
        indptr = np.array([0, 3, 3, 10, 20])
        out = fp.segment_sum(fp.asarray(vals), indptr)
        expected = [vals[0:3].sum(), 0.0, vals[3:10].sum(), vals[10:20].sum()]
        np.testing.assert_allclose(out.to_numpy(), expected, rtol=1e-12)

    def test_counts_adds(self):
        tracer = Tracer(TracerMode.PROFILE)
        fp = FPOps(tracer)
        fp.segment_sum(fp.asarray(np.ones(10)), np.array([0, 4, 10]))
        assert tracer.profile.candidates(0) == 3 + 5

    def test_injection_in_segment(self, rng):
        vals = rng.standard_normal(10)
        indptr = np.array([0, 4, 10])
        # segment 1 has 5 adds at stream offsets 3..7; flip its first add's
        # incoming element (segment element index 1 => vals[5])
        fp, tracer = make_inject_fp(index=3, operand=Operand.B, bit=63)
        out = fp.segment_sum(fp.asarray(vals), indptr)
        expected0 = vals[:4].sum()
        expected1 = vals[4:].sum() - 2 * vals[5]
        np.testing.assert_allclose(out.to_numpy(), [expected0, expected1], rtol=1e-12)
        assert tracer.all_flips_activated

    def test_length_mismatch(self, fp):
        with pytest.raises(ValueError):
            fp.segment_sum(fp.asarray(np.ones(5)), np.array([0, 3]))


class TestSequentialDecomposition:
    """The helper behind reduction injections must be order-exact."""

    @given(
        data=st.lists(st.floats(-1e6, 1e6), min_size=2, max_size=30),
        offset_frac=st.floats(0.0, 0.999),
        operand=st.sampled_from(list(Operand)),
    )
    @settings(max_examples=60)
    def test_no_flip_equals_plain_sum(self, data, offset_frac, operand):
        arr = np.array(data)
        offset = int(offset_frac * (len(data) - 1))
        injs = [LaneInjection(offset=offset, operand=operand, bit=3)]
        val = _sum_sequential_with_injections(arr, injs, apply_flips=False)
        # identical association order as a plain left fold
        acc = arr[0]
        for v in arr[1:]:
            acc = acc + v
        assert val == pytest.approx(acc, rel=1e-12, abs=1e-9)

    def test_multiple_flips_sorted_application(self, rng):
        arr = rng.standard_normal(10)
        injs = [
            LaneInjection(offset=7, operand=Operand.B, bit=63),
            LaneInjection(offset=2, operand=Operand.B, bit=63),
        ]
        val = _sum_sequential_with_injections(arr, injs, apply_flips=True)
        expected = arr.sum() - 2 * arr[3] - 2 * arr[8]
        assert val == pytest.approx(expected, rel=1e-10)

    def test_empty_array(self):
        assert _sum_sequential_with_injections(np.array([]), [], True) == 0.0
