"""Tests for the SVG chart renderer (structure verified via ElementTree)."""

import xml.etree.ElementTree as ET

import pytest

from repro.viz.svg import SvgCanvas, bar_chart, grouped_bar_chart, line_chart

SVG_NS = "{http://www.w3.org/2000/svg}"


def parse(canvas: SvgCanvas) -> ET.Element:
    return ET.fromstring(canvas.render())


class TestCanvas:
    def test_valid_xml_and_size(self):
        c = SvgCanvas(200, 100)
        c.rect(0, 0, 10, 10, fill="#f00")
        c.text(5, 5, "hi & <bye>")
        root = parse(c)
        assert root.get("width") == "200"
        texts = root.findall(f"{SVG_NS}text")
        assert texts[0].text == "hi & <bye>"  # escaped on the way in

    def test_save(self, tmp_path):
        c = SvgCanvas(50, 50)
        c.line(0, 0, 50, 50)
        out = tmp_path / "x.svg"
        c.save(out)
        assert out.read_text().startswith("<svg")


class TestBarChart:
    def test_bar_count_matches_values(self):
        c = bar_chart(["a", "b", "c"], [0.2, 0.5, 0.9], title="T")
        root = parse(c)
        # background + bars (+ no legend)
        rects = root.findall(f"{SVG_NS}rect")
        assert len(rects) == 1 + 3

    def test_none_values_skipped(self):
        c = grouped_bar_chart(
            ["a", "b"], {"s1": [0.5, None], "s2": [0.1, 0.2]}, title="T"
        )
        root = parse(c)
        rects = root.findall(f"{SVG_NS}rect")
        # background + 3 bars + 2 legend swatches
        assert len(rects) == 1 + 3 + 2

    def test_series_length_mismatch(self):
        with pytest.raises(ValueError):
            grouped_bar_chart(["a"], {"s": [1.0, 2.0]}, title="T")

    def test_empty_series_rejected(self):
        with pytest.raises(ValueError):
            grouped_bar_chart(["a"], {}, title="T")

    def test_title_rendered(self):
        root = parse(bar_chart(["x"], [0.4], title="My Chart"))
        labels = [t.text for t in root.findall(f"{SVG_NS}text")]
        assert "My Chart" in labels


class TestLineChart:
    def test_polyline_per_series(self):
        c = line_chart([1, 2, 4], {"a": [0.1, 0.2, 0.3], "b": [0.3, 0.2, 0.1]},
                       title="L")
        root = parse(c)
        assert len(root.findall(f"{SVG_NS}polyline")) == 2
        assert len(root.findall(f"{SVG_NS}circle")) == 6

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            line_chart([1], {}, title="L")


class TestFigureBuilders:
    def test_render_all_from_synthetic_results(self, tmp_path):
        from repro.model.result import FaultInjectionResult
        from repro.viz.figures import render_all_figures

        fi = lambda s: FaultInjectionResult.from_rates(s, 1 - s, 0.0)  # noqa: E731
        results = {
            "table1": {"fractions": {"cg": 0.03, "ft": 0.16, "mg": 0.0}},
            "figure12": {
                "cg": {
                    "small": [0.7, 0, 0, 0, 0, 0, 0, 0.3],
                    "large": [0.6] + [0.0] * 62 + [0.4],
                    "grouped": [0.6, 0, 0, 0, 0, 0, 0, 0.4],
                    "cosine": 0.99,
                }
            },
            "figure3": {
                "cg": {"serial": [0.8] * 8, "parallel": [0.7, None] + [None] * 5 + [0.6]}
            },
            "figure5": {"cg": {"predicted": fi(0.7), "measured": fi(0.75),
                               "error": 0.05, "fine_tuned": True}},
            "figure6": {"cg": {"predicted": fi(0.72), "measured": fi(0.75),
                               "error": 0.03, "fine_tuned": True}},
            "figure7": {"serial+4procs": {"cg": {"predicted": fi(0.7),
                                                 "measured": fi(0.73),
                                                 "error": 0.03}}},
            "figure8": {4: {"rmse": 0.1, "normalized_time": 4.0},
                        8: {"rmse": 0.08, "normalized_time": 9.0}},
        }
        written = render_all_figures(results, tmp_path)
        names = {p.name for p in written}
        assert {"table1.svg", "figure1a_cg.svg", "figure1b_cg.svg",
                "figure1c_cg.svg", "figure3_cg.svg", "figure5.svg",
                "figure6.svg", "figure7.svg", "figure8.svg"} <= names
        for p in written:
            ET.fromstring(p.read_text())  # every file is valid XML
