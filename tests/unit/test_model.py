"""Tests for the model layer: results, propagation, sampling, similarity."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.fi.campaign import CampaignResult, Deployment
from repro.fi.outcomes import Outcome
from repro.model.metrics import prediction_error, rmse
from repro.model.propagation import (
    PropagationProfile,
    group_histogram,
    map_small_to_large,
)
from repro.model.result import FaultInjectionResult, result_given_contaminated
from repro.model.sampling import SerialSamplePlan
from repro.model.similarity import cosine_similarity


def make_campaign(joint, nprocs=8):
    return CampaignResult(
        app_name="x",
        deployment=Deployment(nprocs=nprocs, trials=sum(joint.values())),
        joint=joint,
        parallel_unique_fraction=0.0,
        total_instructions=0,
        candidate_instructions=0,
        profile_time=0.0,
        injection_time=0.0,
    )


class TestFaultInjectionResult:
    def test_from_campaign(self):
        camp = make_campaign({
            (Outcome.SUCCESS, 1, True): 6,
            (Outcome.SDC, 8, True): 3,
            (Outcome.FAILURE, 2, True): 1,
        })
        fi = FaultInjectionResult.from_campaign(camp)
        assert (fi.success, fi.sdc, fi.failure) == (0.6, 0.3, 0.1)

    def test_sum_validation(self):
        with pytest.raises(ValueError):
            FaultInjectionResult(success=0.5, sdc=0.5, failure=0.5, n_trials=10)

    def test_normalized(self):
        fi = FaultInjectionResult.from_rates(0.2, 0.2, 0.0).normalized()
        assert fi.success == pytest.approx(0.5)

    def test_normalized_degenerate(self):
        fi = FaultInjectionResult.from_rates(0.0, 0.0, 0.0).normalized()
        assert fi.success == 1.0

    def test_confidence_interval(self):
        fi = FaultInjectionResult(0.5, 0.5, 0.0, n_trials=100)
        lo, hi = fi.success_interval()
        assert lo < 0.5 < hi
        assert hi - lo == pytest.approx(2 * 1.96 * 0.05, rel=1e-6)

    def test_rate_accessor(self):
        fi = FaultInjectionResult.from_rates(0.7, 0.2, 0.1)
        assert fi.rate(Outcome.SDC) == 0.2

    def test_conditional_result(self):
        camp = make_campaign({
            (Outcome.SUCCESS, 8, True): 3,
            (Outcome.SDC, 8, True): 1,
            (Outcome.SUCCESS, 1, True): 5,
            (Outcome.SUCCESS, 2, False): 9,  # unactivated: excluded
        })
        cond = result_given_contaminated(camp, 8)
        assert cond.success == pytest.approx(0.75)
        assert cond.n_trials == 4
        assert result_given_contaminated(camp, 5) is None


class TestPropagationProfile:
    def test_from_counts(self):
        prof = PropagationProfile.from_counts({1: 7, 8: 3}, nprocs=8)
        assert prof.r(1) == 0.7
        assert prof.r(8) == 0.3
        assert prof.r(4) == 0.0

    def test_invalid_counts(self):
        with pytest.raises(ConfigurationError):
            PropagationProfile.from_counts({0: 1}, nprocs=8)
        with pytest.raises(ConfigurationError):
            PropagationProfile.from_counts({9: 1}, nprocs=8)
        with pytest.raises(ConfigurationError):
            PropagationProfile.from_counts({}, nprocs=8)

    def test_grouping_conserves_mass(self):
        prof = PropagationProfile.from_counts({1: 5, 17: 3, 64: 2}, nprocs=64)
        grouped = group_histogram(prof, 8)
        assert grouped.sum() == pytest.approx(1.0)
        assert grouped[0] == 0.5  # cases 1..8
        assert grouped[2] == 0.3  # cases 17..24
        assert grouped[7] == 0.2  # cases 57..64

    def test_grouping_requires_divisibility(self):
        prof = PropagationProfile.from_counts({1: 1}, nprocs=8)
        with pytest.raises(ConfigurationError):
            group_histogram(prof, 3)

    def test_eq5_mapping_mass_and_values(self):
        small = PropagationProfile.from_counts({1: 8, 4: 2}, nprocs=4)
        large = map_small_to_large(small, 64)
        assert sum(large.probabilities) == pytest.approx(1.0)
        # group 1 (cases 1..16) inherits r'_1 = 0.8 spread over 16 cases
        assert large.r(1) == pytest.approx(0.8 / 16)
        assert large.r(16) == pytest.approx(0.8 / 16)
        assert large.r(17) == pytest.approx(0.0)
        assert large.r(64) == pytest.approx(0.2 / 16)

    def test_interpolation_mode_valid_distribution(self):
        small = PropagationProfile.from_counts({1: 6, 4: 4}, nprocs=4)
        interp = map_small_to_large(small, 32, mode="interpolate")
        assert sum(interp.probabilities) == pytest.approx(1.0)
        # interpolation smears mass across group boundaries, unlike Eq. 5
        # (case 8 is inside group 1 but already blends toward group 2's 0)
        assert 0 < interp.r(8) < interp.r(1)

    def test_unknown_mode_rejected(self):
        small = PropagationProfile.from_counts({1: 1}, nprocs=4)
        with pytest.raises(ConfigurationError):
            map_small_to_large(small, 8, mode="nearest")

    def test_eq5_roundtrip_with_grouping(self):
        """Projecting up then grouping down recovers the small profile."""
        small = PropagationProfile.from_counts({1: 3, 2: 2, 4: 5}, nprocs=4)
        large = map_small_to_large(small, 32)
        back = group_histogram(large, 4)
        np.testing.assert_allclose(back, small.as_array(), atol=1e-12)

    @given(
        counts=st.dictionaries(
            st.integers(1, 8), st.integers(1, 50), min_size=1, max_size=8
        )
    )
    def test_profile_always_sums_to_one(self, counts):
        prof = PropagationProfile.from_counts(counts, nprocs=8)
        assert sum(prof.probabilities) == pytest.approx(1.0)


class TestCosineSimilarity:
    def test_identical_is_one(self):
        assert cosine_similarity([1, 2, 3], [2, 4, 6]) == pytest.approx(1.0)

    def test_orthogonal_is_zero(self):
        assert cosine_similarity([1, 0], [0, 1]) == 0.0

    def test_zero_vector(self):
        assert cosine_similarity([0, 0], [1, 1]) == 0.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            cosine_similarity([1], [1, 2])

    @given(
        a=st.lists(st.floats(0, 100), min_size=2, max_size=10),
        b=st.lists(st.floats(0, 100), min_size=2, max_size=10),
    )
    @settings(max_examples=50)
    def test_bounded(self, a, b):
        n = min(len(a), len(b))
        value = cosine_similarity(a[:n], b[:n])
        assert 0.0 <= value <= 1.0  # non-negative inputs


class TestSamplePlan:
    def test_paper_example(self):
        """p=64, S=4 must measure x in {1, 32, 48, 64} (paper §4.2)."""
        plan = SerialSamplePlan(large_nprocs=64, n_samples=4)
        assert plan.sample_cases == (1, 32, 48, 64)

    def test_group_mapping_matches_eq7(self):
        plan = SerialSamplePlan(large_nprocs=64, n_samples=4)
        assert plan.sample_for(2) == 1
        assert plan.sample_for(16) == 1
        assert plan.sample_for(17) == 32
        assert plan.sample_for(33) == 48
        assert plan.sample_for(49) == 64
        assert plan.sample_for(64) == 64

    def test_full_sampling(self):
        plan = SerialSamplePlan(large_nprocs=8, n_samples=8)
        assert plan.sample_cases == (1, 2, 3, 4, 5, 6, 7, 8)
        assert all(plan.sample_for(x) == x for x in range(1, 9))

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SerialSamplePlan(large_nprocs=64, n_samples=0)
        with pytest.raises(ConfigurationError):
            SerialSamplePlan(large_nprocs=64, n_samples=5)
        plan = SerialSamplePlan(large_nprocs=8, n_samples=4)
        with pytest.raises(ConfigurationError):
            plan.group_of(9)


class TestConditionalConsistency:
    def test_conditionals_partition_the_campaign(self):
        """Conditional slices must add back up to the aggregate rates."""
        joint = {
            (Outcome.SUCCESS, 1, True): 10,
            (Outcome.SDC, 1, True): 5,
            (Outcome.SUCCESS, 8, True): 12,
            (Outcome.FAILURE, 8, True): 3,
        }
        camp = make_campaign(joint)
        total = camp.n_trials
        recomposed = 0.0
        for n in (1, 8):
            cond = result_given_contaminated(camp, n)
            weight = sum(
                c for (_, nc, act), c in joint.items() if act and nc == n
            ) / total
            recomposed += weight * cond.success
        assert recomposed == pytest.approx(camp.success_rate)


class TestMetrics:
    def test_prediction_error(self):
        a = FaultInjectionResult.from_rates(0.8, 0.2, 0.0)
        b = FaultInjectionResult.from_rates(0.7, 0.3, 0.0)
        assert prediction_error(a, b) == pytest.approx(0.1)

    def test_rmse_paper_equation(self):
        pairs = [
            (FaultInjectionResult.from_rates(0.8, 0.2, 0.0),
             FaultInjectionResult.from_rates(0.7, 0.3, 0.0)),
            (FaultInjectionResult.from_rates(0.5, 0.5, 0.0),
             FaultInjectionResult.from_rates(0.8, 0.2, 0.0)),
        ]
        expected = math.sqrt((0.1**2 + 0.3**2) / 2)
        assert rmse(pairs) == pytest.approx(expected)

    def test_rmse_empty(self):
        with pytest.raises(ValueError):
            rmse([])
