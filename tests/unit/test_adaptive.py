"""Adaptive stopping: unit properties and statistical guarantees.

Two layers of testing for :mod:`repro.engine.adaptive`:

* exact unit properties of the sizing functions (``min_trials_for`` /
  ``worst_case_trials`` / ``projected_trials``) and the
  :class:`AdaptiveStopper` decision rule, and
* a Monte-Carlo guarantee test: Bernoulli simulations at known true
  rates, driven through the *actual* stopping rule across a seed grid
  (plain seeded ``random``, no extra dependencies), asserting that
  converged campaigns achieve the requested half-width and that the
  reported Wilson intervals keep close to their nominal 95 % coverage
  despite the optional stopping.
"""

from __future__ import annotations

import json
import os
import random
import subprocess
import sys
from pathlib import Path

import pytest

import repro

from repro.engine.adaptive import (
    MIN_WAVE_TRIALS,
    AdaptiveStopper,
    achieved_halfwidths,
    min_trials_for,
    projected_trials,
    wilson_halfwidth,
    worst_case_trials,
)
from repro.fi.outcomes import Outcome
from repro.obs.confidence import wilson_interval


# ----------------------------------------------------------------------
# exact properties of the sizing functions
# ----------------------------------------------------------------------
TARGETS = [0.02, 0.05, 0.08, 0.1, 0.2]


class TestSizingFunctions:
    @pytest.mark.parametrize("target", TARGETS)
    def test_min_trials_for_is_tight(self, target):
        n = min_trials_for(target)
        assert wilson_halfwidth(0, n) <= target
        if n > 1:
            assert wilson_halfwidth(0, n - 1) > target

    @pytest.mark.parametrize("target", TARGETS)
    def test_worst_case_trials_is_tight(self, target):
        n = worst_case_trials(target)
        assert wilson_halfwidth(n // 2, n) <= target
        assert wilson_halfwidth((n - 1) // 2, n - 1) > target

    @pytest.mark.parametrize("target", TARGETS)
    def test_worst_case_dominates_every_rate(self, target):
        """At the worst-case budget, *any* observed count meets the target."""
        n = worst_case_trials(target)
        assert max(wilson_halfwidth(k, n) for k in range(n + 1)) <= target

    def test_projected_trials_is_tight_at_stable_rate(self):
        target = 0.05
        k, n = 30, 100  # p = 0.3: far from converged at n = 100
        m = projected_trials(k, n, target)
        assert m > n
        p = k / n
        assert wilson_halfwidth(round(p * m), m) <= target
        assert wilson_halfwidth(round(p * (m - 1)), m - 1) > target

    def test_projected_trials_already_converged_returns_n(self):
        assert projected_trials(0, 1000, 0.05) == 1000

    def test_projected_trials_respects_cap(self):
        # p = 1/2 at a tiny cap: unreachable, so the cap comes back
        assert projected_trials(10, 20, 0.01, cap=50) == 50

    def test_projected_trials_empty_history(self):
        assert projected_trials(0, 0, 0.05) == min_trials_for(0.05)

    def test_achieved_halfwidths_tracks_all_outcomes(self):
        joint = {(Outcome.SUCCESS, 0, True): 90, (Outcome.SDC, 1, True): 10}
        hws = achieved_halfwidths(joint)
        assert set(hws) == set(Outcome)
        # the unobserved outcome (k = 0) has the narrowest interval
        assert hws[Outcome.FAILURE] <= hws[Outcome.SDC]
        assert hws[Outcome.FAILURE] == wilson_halfwidth(0, 100)


class TestStopperRule:
    def test_rejects_bad_knobs(self):
        with pytest.raises(ValueError, match="half-width"):
            AdaptiveStopper(0.0, 100)
        with pytest.raises(ValueError, match="half-width"):
            AdaptiveStopper(0.5, 100)
        with pytest.raises(ValueError, match="cap"):
            AdaptiveStopper(0.05, 0)

    def test_empty_joint_never_converged(self):
        assert not AdaptiveStopper(0.05, 100).converged({})

    def test_first_boundary_is_min_viable_wave(self):
        stopper = AdaptiveStopper(0.05, 10_000)
        assert stopper.next_boundary({}, 0) == max(
            MIN_WAVE_TRIALS, min_trials_for(0.05)
        )

    def test_boundaries_make_progress_and_respect_cap(self):
        stopper = AdaptiveStopper(0.05, 100)
        joint = {(Outcome.SUCCESS, 0, False): 50, (Outcome.SDC, 1, True): 50}
        b = stopper.next_boundary(joint, 90)
        assert 90 < b <= 100

    def test_boundary_floor_is_min_wave(self):
        # a nearly-converged campaign still advances by a full wave
        stopper = AdaptiveStopper(0.05, 10_000)
        joint = {(Outcome.SUCCESS, 0, False): 390, (Outcome.SDC, 1, True): 2}
        b = stopper.next_boundary(joint, 392)
        assert b >= 392 + MIN_WAVE_TRIALS


# ----------------------------------------------------------------------
# Monte-Carlo: the statistical guarantee, via the real decision rule
# ----------------------------------------------------------------------
def simulate_adaptive(p: float, target: float, cap: int, seed: int):
    """Drive the actual stopping rule on Bernoulli(p) SDC draws.

    Mirrors the wave loop of ``run_adaptive_trials`` with simulated
    trial results: outcome is SDC with probability ``p``, else SUCCESS.
    Returns ``(n_sdc, n_done, converged, stopper)``.
    """
    rng = random.Random(seed)
    stopper = AdaptiveStopper(target, cap)
    joint: dict[tuple[Outcome, int, bool], int] = {}
    n_done = 0
    while not stopper.converged(joint) and n_done < cap:
        boundary = stopper.next_boundary(joint, n_done)
        for _ in range(boundary - n_done):
            oc = Outcome.SDC if rng.random() < p else Outcome.SUCCESS
            key = (oc, 1 if oc is Outcome.SDC else 0, oc is Outcome.SDC)
            joint[key] = joint.get(key, 0) + 1
        n_done = boundary
    n_sdc = sum(c for (oc, _, _), c in joint.items() if oc is Outcome.SDC)
    return n_sdc, n_done, stopper.converged(joint), stopper


class TestStatisticalGuarantee:
    TARGET = 0.05

    @pytest.mark.parametrize("p", [0.02, 0.1, 0.25, 0.5])
    def test_converged_runs_achieve_target(self, p):
        cap = worst_case_trials(self.TARGET)
        for seed in range(30):
            n_sdc, n_done, converged, stopper = simulate_adaptive(
                p, self.TARGET, cap, seed
            )
            assert n_done <= cap
            # the cap equals the worst-case fixed budget, so the rule
            # *always* converges by the time it is exhausted
            assert converged
            hw = wilson_halfwidth(n_sdc, n_done)
            assert hw <= self.TARGET, (
                f"p={p} seed={seed}: achieved ±{hw:.4f} > ±{self.TARGET}"
            )

    def test_skewed_rates_save_trials(self):
        """The economic claim: skewed rates stop well before the cap."""
        cap = worst_case_trials(self.TARGET)
        used = [
            simulate_adaptive(0.03, self.TARGET, cap, seed)[1]
            for seed in range(30)
        ]
        assert max(used) <= 0.75 * cap, (
            f"adaptive used {max(used)} of cap {cap}: expected >=25% savings"
        )

    def test_balanced_rates_cannot_beat_worst_case(self):
        """p = 1/2 is the worst case: the rule must spend ~the full cap."""
        cap = worst_case_trials(self.TARGET)
        for seed in range(10):
            _, n_done, converged, _ = simulate_adaptive(
                0.5, self.TARGET, cap, seed
            )
            assert converged
            assert n_done >= 0.9 * cap

    @pytest.mark.parametrize("p", [0.1, 0.3])
    def test_wilson_coverage_survives_optional_stopping(self, p):
        """Empirical coverage of the reported 95 % interval >= ~93 %.

        Sequential stopping invalidates naive fixed-n coverage claims in
        general; this pins down that *this* rule's early looks cost at
        most a couple of points of coverage at realistic rates.
        """
        cap = worst_case_trials(self.TARGET)
        runs = 250
        hits = 0
        for seed in range(runs):
            n_sdc, n_done, _, _ = simulate_adaptive(p, self.TARGET, cap, seed)
            ci = wilson_interval(n_sdc, n_done)
            hits += ci.low <= p <= ci.high
        coverage = hits / runs
        assert coverage >= 0.93, f"p={p}: empirical coverage {coverage:.3f}"

    def test_decision_sequence_is_deterministic(self):
        """Same (p, target, cap, seed) => identical executed-trial count."""
        a = simulate_adaptive(0.1, 0.05, 1000, 7)
        b = simulate_adaptive(0.1, 0.05, 1000, 7)
        assert (a[0], a[1], a[2]) == (b[0], b[1], b[2])


# ----------------------------------------------------------------------
# end-to-end: the CLI, a mid-wave kill, and --resume
# ----------------------------------------------------------------------
class TestAdaptiveCrashResumeE2E:
    """An adaptive CLI run hard-killed mid-wave resumes byte-identically.

    The full stack in one test: ``--ci-halfwidth`` env relay through
    ``repro.experiments.cli``, the experiment harness, wave planning,
    checkpointing of a partially-planned layout, and recovery.  The
    child (``adaptive_child.py``) is a separate interpreter so the
    ``os._exit`` kill is real; see that module's docstring.
    """

    def test_killed_adaptive_cli_run_resumes_byte_identically(self, tmp_path):
        child = Path(__file__).with_name("adaptive_child.py")
        src = Path(repro.__file__).resolve().parents[1]
        env = {**os.environ,
               "PYTHONPATH": f"{src}{os.pathsep}" + os.environ.get(
                   "PYTHONPATH", "")}

        def run_child(mode, trace, out):
            return subprocess.run(
                [sys.executable, str(child), mode, str(tmp_path / trace),
                 str(tmp_path / out), str(tmp_path / "ckpt")],
                env=env, capture_output=True, text=True, timeout=300,
            )

        clean = run_child("clean", "clean.jsonl", "clean.json")
        assert clean.returncode == 0, clean.stderr

        crash = run_child("crash", "broken.jsonl", "unused.json")
        assert crash.returncode == 41, crash.stderr  # died mid-wave
        ckpt_dirs = list((tmp_path / "ckpt" / "checkpoints").glob("cg-*"))
        assert ckpt_dirs, "the killed run left no checkpoints behind"
        # the interrupted layout was persisted as *partial* (planned <
        # cap): the manifest must say so, or resume validation would
        # reject it
        meta = json.loads((ckpt_dirs[0] / "meta.json").read_text())
        assert meta["planned"] < meta["trials"]

        resume = run_child("resume", "broken.jsonl", "resumed.json")
        assert resume.returncode == 0, resume.stderr

        clean_out = json.loads((tmp_path / "clean.json").read_text())
        resumed_out = json.loads((tmp_path / "resumed.json").read_text())
        # identical executed trial stream (order included) and identical
        # convergence decisions (trials used, waves, half-widths)
        assert resumed_out == clean_out
        assert clean_out["converged"], "no adaptive campaign ran"
        assert all(c[3] <= c[4] for c in clean_out["converged"])
        assert (tmp_path / "broken.provenance.jsonl").read_bytes() == \
            (tmp_path / "clean.provenance.jsonl").read_bytes()
