"""Unit + property tests for IEEE-754 bit flips."""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.numerics.bits import (
    BitField,
    bit_width,
    bits_to_float,
    classify_bit,
    flip_bit_array,
    flip_bit_scalar,
    float_to_bits,
)


class TestScalarFlip:
    def test_sign_bit_flip_negates(self):
        assert flip_bit_scalar(1.5, 63) == -1.5

    def test_mantissa_lsb_changes_value_minimally(self):
        flipped = flip_bit_scalar(1.0, 0)
        assert flipped != 1.0
        assert abs(flipped - 1.0) < 1e-15

    def test_exponent_flip_doubles_or_halves(self):
        # bit 52 is the exponent LSB: 1.0 has exponent 1023 (odd), so the
        # flip clears it to 1022, halving the value
        assert flip_bit_scalar(1.0, 52) == 0.5
        assert flip_bit_scalar(0.5, 52) == 1.0

    def test_zero_sign_flip_gives_negative_zero(self):
        flipped = flip_bit_scalar(0.0, 63)
        assert flipped == 0.0 and math.copysign(1.0, flipped) == -1.0

    def test_float32_supported(self):
        f32 = np.dtype(np.float32)
        assert flip_bit_scalar(1.0, 31, f32) == -1.0

    @pytest.mark.parametrize("bit", [-1, 64])
    def test_out_of_range_bit_rejected(self, bit):
        with pytest.raises(ValueError):
            flip_bit_scalar(1.0, bit)

    @given(
        value=st.floats(allow_nan=False, allow_infinity=False),
        bit=st.integers(0, 63),
    )
    def test_involution(self, value, bit):
        once = flip_bit_scalar(value, bit)
        twice = flip_bit_scalar(once, bit)
        assert float_to_bits(twice) == float_to_bits(value)

    @given(value=st.floats(), bit=st.integers(0, 63))
    def test_flip_always_changes_storage_bits(self, value, bit):
        assert float_to_bits(flip_bit_scalar(value, bit)) != float_to_bits(value)


class TestArrayFlip:
    def test_flips_only_target_lane(self, rng):
        arr = rng.standard_normal(16)
        out = flip_bit_array(arr, 5, 63)
        assert out[5] == -arr[5]
        mask = np.ones(16, bool)
        mask[5] = False
        np.testing.assert_array_equal(out[mask], arr[mask])

    def test_input_not_modified(self, rng):
        arr = rng.standard_normal(8)
        before = arr.copy()
        flip_bit_array(arr, 0, 10)
        np.testing.assert_array_equal(arr, before)

    def test_multidimensional_flat_index(self):
        arr = np.ones((3, 4))
        out = flip_bit_array(arr, 7, 63)
        assert out[1, 3] == -1.0

    def test_index_out_of_range(self):
        with pytest.raises(IndexError):
            flip_bit_array(np.ones(4), 4, 0)

    def test_unsupported_dtype(self):
        with pytest.raises(TypeError):
            flip_bit_array(np.ones(4, dtype=np.int64), 0, 0)


class TestClassification:
    def test_fields(self):
        assert classify_bit(0) is BitField.MANTISSA
        assert classify_bit(51) is BitField.MANTISSA
        assert classify_bit(52) is BitField.EXPONENT
        assert classify_bit(62) is BitField.EXPONENT
        assert classify_bit(63) is BitField.SIGN

    def test_float32_fields(self):
        f32 = np.dtype(np.float32)
        assert classify_bit(22, f32) is BitField.MANTISSA
        assert classify_bit(23, f32) is BitField.EXPONENT
        assert classify_bit(31, f32) is BitField.SIGN

    def test_width(self):
        assert bit_width(np.dtype(np.float64)) == 64
        assert bit_width(np.dtype(np.float32)) == 32

    def test_roundtrip_bits(self):
        for v in (0.0, -1.5, math.pi, 1e300, 5e-324):
            assert bits_to_float(float_to_bits(v)) == v
