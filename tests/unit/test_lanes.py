"""Lane-vectorized shadow execution: scalar parity and the lanes knob.

The hard guarantee under test: ``run_campaign(..., lanes=N)`` is
bit-identical to ``lanes=1`` — joint content *and* insertion order,
records, events (minus wall-clock fields), and provenance bytes — for
any lane count, any worker count, and any interruption-and-resume
pattern in between (see docs/performance.md, "Lane vectorization").
Apps are module-level classes so ``spawn`` workers can unpickle them.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

import repro.fi.lanes as lanes_mod
from repro import obs
from repro.fi.cache import deployment_key
from repro.fi.campaign import (
    Deployment,
    _resolve_lanes,
    default_lanes,
    run_campaign,
)
from repro.obs import provenance_path
from repro.taint.tarray import TArray


class LaneApp:
    """Distributed dot product with reductions and an allreduce.

    Exercises elementwise ops, a sequential-decomposition reduction
    (injection sites inside ``dot``), and collective taint spread — the
    paths where lane batching must reproduce scalar bits exactly.
    """

    name = "laneapp"

    def __init__(self, n=64, tol=1e-9):
        self.n = n
        self.tol = tol

    def program(self, rank, size, comm, fp):
        chunk = self.n // size
        x = fp.asarray(np.linspace(1.0, 2.0, chunk) + rank)
        y = fp.mul(x, x)
        local = fp.dot(x, y)
        total = yield comm.allreduce(local, op="sum")
        if rank == 0:
            return {"total": total.value}
        return None

    def verify(self, output, reference):
        got, ref = output["total"], reference["total"]
        if not (np.isfinite(got) and np.isfinite(ref)):
            return False
        return abs(got - ref) <= self.tol * abs(ref)

    def cache_key(self):
        return f"laneapp(n={self.n},tol={self.tol})"


class BranchyApp(LaneApp):
    """Reads ``.value`` mid-program: diverged lanes must eject cleanly."""

    name = "branchy"

    def program(self, rank, size, comm, fp):
        chunk = self.n // size
        x = fp.asarray(np.linspace(1.0, 2.0, chunk) + rank)
        local = fp.dot(x, x)
        total = yield comm.allreduce(local, op="sum")
        # Control-flow read: any lane whose value diverged from golden
        # leaves the shared path here and replays on the scalar path.
        if total.value > 0:
            z = fp.add(x, x)
        else:
            z = fp.sub(x, x)
        final = yield comm.allreduce(fp.sum(z), op="sum")
        if rank == 0:
            return {"total": final.value}
        return None

    def cache_key(self):
        return f"branchy(n={self.n},tol={self.tol})"


def _strip_times(line: str) -> dict:
    event = json.loads(line)
    for key in ("ts", "duration_s", "profile_time", "injection_time"):
        event.pop(key, None)
    return event


def _run_traced(app, deployment, tmp_path, tag, *, lanes, jobs=1):
    """One campaign with a JSONL trace; returns (result, events, prov)."""
    trace = tmp_path / f"{tag}.jsonl"
    previous = obs.get_recorder()
    rec = obs.configure(trace_path=trace)
    try:
        result = run_campaign(
            app, deployment, keep_records=True, jobs=jobs, lanes=lanes
        )
    finally:
        rec.close()
        obs.set_recorder(previous)
    events = [_strip_times(line) for line in trace.read_text().splitlines()]
    prov = provenance_path(trace).read_bytes()
    return result, events, prov


class TestScalarParity:
    """lanes=N must be indistinguishable from lanes=1 in every output."""

    @pytest.mark.parametrize("lanes", [2, 8, 32])
    def test_records_joint_events_provenance_identical(self, tmp_path, lanes):
        app = LaneApp()
        dep = Deployment(nprocs=2, trials=24, seed=9)
        base, ev1, pv1 = _run_traced(app, dep, tmp_path, "scalar", lanes=1)
        got, ev, pv = _run_traced(app, dep, tmp_path, f"l{lanes}", lanes=lanes)
        assert got.joint == base.joint
        assert list(got.joint) == list(base.joint)
        assert got.records == base.records
        assert ev == ev1
        assert pv == pv1

    def test_lanes_compose_with_jobs(self, tmp_path):
        app = LaneApp()
        dep = Deployment(nprocs=2, trials=20, seed=4)
        base = run_campaign(app, dep, keep_records=True, jobs=1, lanes=1)
        got = run_campaign(
            app, dep, keep_records=True, jobs=2, lanes=4, checkpoint_every=5
        )
        assert got.joint == base.joint
        assert list(got.joint) == list(base.joint)
        assert got.records == base.records

    def test_lane_trailing_block_shorter_than_lanes(self):
        """Trial count not divisible by lanes: the short tail still runs."""
        app = LaneApp()
        dep = Deployment(nprocs=2, trials=7, seed=2)
        base = run_campaign(app, dep, keep_records=True, jobs=1, lanes=1)
        got = run_campaign(app, dep, keep_records=True, jobs=1, lanes=4)
        assert got.records == base.records


class TestInterruptResume:
    def test_resume_matches_uninterrupted_scalar(self, monkeypatch):
        app = LaneApp()
        dep = Deployment(nprocs=2, trials=24, seed=9)
        clean = run_campaign(app, dep, keep_records=True, jobs=1, lanes=1)

        real = lanes_mod.run_lane_block
        calls = {"n": 0}

        def interrupted(*args, **kwargs):
            calls["n"] += 1
            if calls["n"] > 2:  # two blocks = one checkpointed chunk
                raise KeyboardInterrupt
            return real(*args, **kwargs)

        monkeypatch.setattr(lanes_mod, "run_lane_block", interrupted)
        with pytest.raises(KeyboardInterrupt):
            run_campaign(app, dep, keep_records=True, jobs=1, lanes=4,
                         checkpoint_every=8)
        monkeypatch.setattr(lanes_mod, "run_lane_block", real)

        resumed = run_campaign(app, dep, keep_records=True, jobs=1, lanes=4,
                               checkpoint_every=8, resume=True)
        assert resumed.joint == clean.joint
        assert list(resumed.joint) == list(clean.joint)
        assert resumed.records == clean.records

    def test_resume_under_different_lane_count(self, monkeypatch):
        """Lane count is an execution knob: a checkpoint written under
        one value resumes under any other (chunk layout is pinned at
        first write and lanes-invariant)."""
        app = LaneApp()
        dep = Deployment(nprocs=2, trials=24, seed=9)
        clean = run_campaign(app, dep, keep_records=True, jobs=1, lanes=1)

        real = lanes_mod.run_lane_block
        calls = {"n": 0}

        def interrupted(*args, **kwargs):
            calls["n"] += 1
            if calls["n"] > 1:
                raise KeyboardInterrupt
            return real(*args, **kwargs)

        monkeypatch.setattr(lanes_mod, "run_lane_block", interrupted)
        with pytest.raises(KeyboardInterrupt):
            run_campaign(app, dep, keep_records=True, jobs=1, lanes=8,
                         checkpoint_every=8)
        monkeypatch.setattr(lanes_mod, "run_lane_block", real)

        resumed = run_campaign(app, dep, keep_records=True, jobs=1, lanes=3,
                               checkpoint_every=8, resume=True)
        assert resumed.records == clean.records


class TestEjection:
    def test_branchy_app_ejects_and_stays_identical(self, monkeypatch):
        app = BranchyApp()
        dep = Deployment(nprocs=2, trials=24, seed=9)
        base = run_campaign(app, dep, keep_records=True, jobs=1, lanes=1)

        ejections = []
        real = lanes_mod.BatchTracer.eject

        def spying(self, lanes, reason):
            ejections.extend(lanes)
            return real(self, lanes, reason)

        monkeypatch.setattr(lanes_mod.BatchTracer, "eject", spying)
        got = run_campaign(app, dep, keep_records=True, jobs=1, lanes=8)
        assert ejections, "control-flow read never ejected a lane"
        assert got.joint == base.joint
        assert got.records == base.records


class TestLanesKnob:
    def test_precedence_arg_over_field_over_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_LANES", "16")
        assert default_lanes() == 16
        dep_plain = Deployment(nprocs=1, trials=1)
        dep_field = Deployment(nprocs=1, trials=1, lanes=4)
        assert _resolve_lanes(None, dep_plain) == 16  # env fallback
        assert _resolve_lanes(None, dep_field) == 4   # field beats env
        assert _resolve_lanes(2, dep_field) == 2      # arg beats field

    def test_malformed_env_falls_back_to_one(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_LANES", "many")
        assert default_lanes() == 1
        assert "REPRO_LANES" in capsys.readouterr().err
        monkeypatch.setenv("REPRO_LANES", "0")
        assert default_lanes() == 1

    def test_cache_key_excludes_lanes(self):
        dep = Deployment(nprocs=2, trials=10, seed=5)
        batched = Deployment(nprocs=2, trials=10, seed=5, lanes=32)
        assert deployment_key(dep) == deployment_key(batched)

    def test_profiling_stays_per_trial(self):
        """Candidate-instruction counts come from scalar profiling runs
        regardless of the lane count (profiling forces lanes=1)."""
        app = LaneApp()
        dep = Deployment(nprocs=2, trials=8, seed=3)
        base = run_campaign(app, dep, jobs=1, lanes=1)
        got = run_campaign(app, dep, jobs=1, lanes=8)
        assert got.total_instructions == base.total_instructions
        assert got.candidate_instructions == base.candidate_instructions


class TestDataMovementDtypes:
    """scatter/concatenate/stack preserve non-default dtypes."""

    def test_scatter_keeps_float32(self):
        values = TArray(np.ones(3, dtype=np.float32))
        out = TArray.scatter(values, np.array([0, 2, 4]), 6)
        assert out.golden.dtype == np.float32

    def test_concatenate_keeps_float32(self):
        parts = [TArray(np.ones(2, dtype=np.float32)) for _ in range(2)]
        out = TArray.concatenate(parts)
        assert out.golden.dtype == np.float32

    def test_stack_keeps_float32(self):
        parts = [TArray(np.ones(2, dtype=np.float32)) for _ in range(2)]
        out = TArray.stack(parts)
        assert out.golden.dtype == np.float32
