"""The pluggable fault-scenario layer (``repro.fi.scenarios``).

Three guarantees are pinned here:

* **Byte-identity** — the refactored :class:`BitFlipModel` reproduces
  the pre-refactor pipeline's provenance sidecars, canonical trace
  events, and joint distributions byte-for-byte (against goldens
  captured before the scenario layer existed) for any jobs × lanes ×
  interrupt/resume combination;
* **Determinism of the new families** — rank-kill and
  message-corruption trials are pure functions of
  ``(deployment.seed, trial)``: identical records across repeat runs,
  worker counts, and checkpoint/resume;
* **Identity separation** — scenario specs are canonicalized into
  ``deployment_key``, so different families (and different parameters)
  never share cache entries or checkpoint directories, while the
  default bit-flip family keeps its pre-scenario identities.

The apps here are module-level classes so ``spawn`` workers can
unpickle them (see ``test_parallel.py``).
"""

from __future__ import annotations

import importlib.util
import json
import sys
import tempfile
from pathlib import Path

import numpy as np
import pytest

from repro import obs
from repro.apps import get_app
from repro.errors import ConfigurationError
from repro.fi import campaign as campaign_mod
from repro.fi.cache import deployment_key
from repro.fi.campaign import (
    Deployment,
    default_scenario,
    run_campaign,
    with_resolved_scenario,
)
from repro.fi.outcomes import Outcome
from repro.fi.scenarios import (
    SCENARIOS,
    BitFlipModel,
    MessageCorruptionModel,
    RankKillModel,
    canonical_scenario,
    execution_dynamics,
    parse_scenario,
    resolve_model,
)
from repro.obs.provenance import (
    ScenarioObservation,
    load_provenance,
    provenance_path,
)
from repro.obs.report import render_trace_report

GOLDEN_DIR = Path(__file__).resolve().parents[1] / "goldens"

# the golden generator is the single source of truth for the capture
# procedure (cases, volatile fields, canonicalization)
_spec = importlib.util.spec_from_file_location(
    "gen_bitflip_goldens", GOLDEN_DIR / "gen_bitflip_goldens.py"
)
goldens = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(goldens)


class ScenarioApp:
    """Distributed dot product with an allreduce: real traffic, cheap."""

    name = "scenario-dot"

    def __init__(self, n=64, tol=1e-9):
        self.n = n
        self.tol = tol

    def program(self, rank, size, comm, fp):
        chunk = self.n // size
        x = fp.asarray(np.linspace(1.0, 2.0, chunk) + rank)
        local = fp.dot(x, x)
        total = yield comm.allreduce(local, op="sum")
        if rank == 0:
            return {"total": total.value}
        return None

    def verify(self, output, reference):
        got, ref = output["total"], reference["total"]
        if not (np.isfinite(got) and np.isfinite(ref)):
            return False
        return abs(got - ref) <= self.tol * abs(ref)

    def cache_key(self):
        return f"scenario-dot(n={self.n},tol={self.tol})"


def _run_captured(app, deployment, **kwargs):
    """Run a campaign under a trace; return (prov bytes, events, joint)."""
    with tempfile.TemporaryDirectory() as tmp:
        trace = Path(tmp) / "run.jsonl"
        previous = obs.get_recorder()
        recorder = obs.configure(trace_path=trace)
        try:
            result = run_campaign(app, deployment, **kwargs)
        finally:
            obs.set_recorder(previous)
            recorder.close()
        prov = provenance_path(trace).read_bytes()
        events = "".join(
            goldens.strip_volatile(line) + "\n"
            for line in trace.read_text().splitlines()
        )
    joint = [
        [outcome.value, ncont, activated, count]
        for (outcome, ncont, activated), count in result.joint.items()
    ]
    return prov, events, joint


def _golden(name: str):
    return (
        (GOLDEN_DIR / f"{name}.provenance.jsonl").read_bytes(),
        (GOLDEN_DIR / f"{name}.events.jsonl").read_text(),
        json.loads((GOLDEN_DIR / f"{name}.joint.json").read_text()),
    )


def _interrupt_after(n_trials: int):
    """Patch ``run_one_trial`` to raise KeyboardInterrupt after N calls."""
    real = campaign_mod.run_one_trial
    calls = {"n": 0}

    def interrupted(*args, **kwargs):
        calls["n"] += 1
        if calls["n"] > n_trials:
            raise KeyboardInterrupt
        return real(*args, **kwargs)

    campaign_mod.run_one_trial = interrupted
    return lambda: setattr(campaign_mod, "run_one_trial", real)


# ----------------------------------------------------------------------
# byte-identity of the refactored default family
# ----------------------------------------------------------------------
class TestBitFlipByteIdentity:
    @pytest.mark.parametrize("name", sorted(goldens.CASES))
    @pytest.mark.parametrize("jobs,lanes", [(1, 1), (1, 16)])
    def test_inline_paths_match_pre_refactor_goldens(self, name, jobs, lanes):
        app = get_app(name)
        deployment = Deployment(**goldens.CASES[name])
        prov, events, joint = _run_captured(
            app, deployment, jobs=jobs, lanes=lanes
        )
        gold_prov, gold_events, gold_joint = _golden(name)
        assert prov == gold_prov
        assert events == gold_events
        assert joint == gold_joint

    @pytest.mark.parametrize("name,jobs,lanes", [("cg", 4, 1), ("mg", 4, 16)])
    def test_worker_pool_matches_pre_refactor_goldens(self, name, jobs, lanes):
        app = get_app(name)
        deployment = Deployment(**goldens.CASES[name])
        prov, events, joint = _run_captured(
            app, deployment, jobs=jobs, lanes=lanes
        )
        gold_prov, gold_events, gold_joint = _golden(name)
        assert prov == gold_prov
        assert events == gold_events
        assert joint == gold_joint

    @pytest.mark.parametrize("name", sorted(goldens.CASES))
    def test_interrupt_resume_matches_pre_refactor_goldens(
        self, name, tmp_cache
    ):
        app = get_app(name)
        deployment = Deployment(**goldens.CASES[name])
        restore = _interrupt_after(10)
        try:
            with pytest.raises(KeyboardInterrupt):
                run_campaign(app, deployment, jobs=1, checkpoint_every=6)
        finally:
            restore()
        prov, _, joint = _run_captured(
            app, deployment, jobs=1, lanes=1,
            checkpoint_every=6, resume=True,
        )
        gold_prov, _, gold_joint = _golden(name)
        # resumed chunks re-emit provenance in trial order: byte-identical
        assert prov == gold_prov
        assert joint == gold_joint


# ----------------------------------------------------------------------
# rank fail-stop
# ----------------------------------------------------------------------
class TestRankKill:
    def test_cg_trials_classify_as_failures_with_typed_modes(self):
        app = get_app("cg")
        deployment = Deployment(nprocs=4, trials=12, seed=7, scenario="rankkill")
        result = run_campaign(app, deployment, keep_records=True, jobs=1)
        assert result.n_trials == 12
        for record in result.records:
            assert record.outcome is Outcome.FAILURE
            assert record.detail.split(":", 1)[0] in {"abort", "deadlock", "lost"}
            assert record.activated
            assert record.n_contaminated == 0

    def test_mg_runs_and_repeats_identically(self):
        app = get_app("mg")
        deployment = Deployment(nprocs=4, trials=10, seed=3, scenario="rankkill")
        first = run_campaign(app, deployment, keep_records=True, jobs=1)
        again = run_campaign(app, deployment, keep_records=True, jobs=1)
        assert first.records == again.records
        assert first.joint == again.joint

    def test_worker_pool_parity(self):
        app = ScenarioApp()
        deployment = Deployment(nprocs=4, trials=8, seed=2, scenario="rankkill")
        serial = run_campaign(app, deployment, keep_records=True, jobs=1)
        pooled = run_campaign(app, deployment, keep_records=True, jobs=2)
        assert serial.records == pooled.records
        assert list(serial.joint) == list(pooled.joint)

    def test_pinned_victim_and_events_and_provenance(self):
        app = get_app("cg")
        deployment = Deployment(
            nprocs=4, trials=6, seed=7, scenario="rankkill:rank=0"
        )
        with tempfile.TemporaryDirectory() as tmp:
            trace = Path(tmp) / "run.jsonl"
            previous = obs.get_recorder()
            recorder = obs.configure(trace_path=trace)
            try:
                result = run_campaign(app, deployment, jobs=1)
            finally:
                obs.set_recorder(previous)
                recorder.close()
            kills = [
                e for e in obs.load_trace(trace)
                if isinstance(e, obs.RankKilled)
            ]
            assert kills and all(e.rank == 0 for e in kills)
            records = load_provenance(provenance_path(trace))
        assert result.failure_rate == 1.0
        assert len(records) == 6
        for prov in records:
            (planned,) = prov.planned
            assert planned["scenario"] == "rankkill"
            assert planned["rank"] == 0
            for fired in prov.fired:
                assert isinstance(fired, ScenarioObservation)
                assert fired.scenario == "rankkill"
                assert fired.bits == ()

    def test_victim_rank_outside_communicator_rejected(self):
        app = get_app("cg")
        deployment = Deployment(
            nprocs=2, trials=2, seed=0, scenario="rankkill:rank=5"
        )
        with pytest.raises(ConfigurationError, match="outside"):
            run_campaign(app, deployment, jobs=1)

    def test_checkpoint_resume_matches_uninterrupted(self, tmp_cache):
        app = ScenarioApp()
        deployment = Deployment(nprocs=4, trials=10, seed=5, scenario="rankkill")
        clean = run_campaign(app, deployment, keep_records=True, jobs=1)
        restore = _interrupt_after(6)
        try:
            with pytest.raises(KeyboardInterrupt):
                run_campaign(app, deployment, keep_records=True, jobs=1,
                             checkpoint_every=3)
        finally:
            restore()
        resumed = run_campaign(app, deployment, keep_records=True, jobs=1,
                               checkpoint_every=3, resume=True)
        assert resumed.joint == clean.joint
        assert resumed.records == clean.records


# ----------------------------------------------------------------------
# in-transit message corruption
# ----------------------------------------------------------------------
class TestMessageCorruption:
    def test_fixed_seed_and_trial_is_deterministic(self):
        app = get_app("cg")
        deployment = Deployment(
            nprocs=4, trials=10, seed=7, scenario="msgcorrupt"
        )
        first = run_campaign(app, deployment, keep_records=True, jobs=1)
        again = run_campaign(app, deployment, keep_records=True, jobs=1)
        assert first.records == again.records
        assert first.joint == again.joint
        # corruption reaches real traffic on this seed: every trial fires
        # and contaminates at least the receiving rank
        assert all(r.activated for r in first.records)
        assert all(r.n_contaminated >= 1 for r in first.records)

    def test_worker_pool_parity(self):
        app = ScenarioApp()
        deployment = Deployment(
            nprocs=4, trials=8, seed=4, scenario="msgcorrupt"
        )
        serial = run_campaign(app, deployment, keep_records=True, jobs=1)
        pooled = run_campaign(app, deployment, keep_records=True, jobs=2)
        assert serial.records == pooled.records
        assert list(serial.joint) == list(pooled.joint)

    def test_events_and_provenance_payloads(self):
        app = ScenarioApp()
        deployment = Deployment(
            nprocs=4, trials=6, seed=4, scenario="msgcorrupt:bit=62"
        )
        with tempfile.TemporaryDirectory() as tmp:
            trace = Path(tmp) / "run.jsonl"
            previous = obs.get_recorder()
            recorder = obs.configure(trace_path=trace)
            try:
                run_campaign(app, deployment, jobs=1)
            finally:
                obs.set_recorder(previous)
                recorder.close()
            corruptions = [
                e for e in obs.load_trace(trace)
                if isinstance(e, obs.MessageCorrupted)
            ]
            assert corruptions and all(e.bit == 62 for e in corruptions)
            records = load_provenance(provenance_path(trace))
        for prov in records:
            (planned,) = prov.planned
            assert planned["scenario"] == "msgcorrupt"
            assert planned["bit"] == 62
            for fired in prov.fired:
                assert isinstance(fired, ScenarioObservation)
                assert {"kind", "src", "dest", "element", "pre", "post"} <= set(
                    fired.payload
                )

    def test_lane_batching_falls_back_to_scalar_with_warning(self, capsys):
        app = ScenarioApp()
        deployment = Deployment(
            nprocs=4, trials=4, seed=4, scenario="msgcorrupt"
        )
        with_lanes = run_campaign(app, deployment, keep_records=True, lanes=8)
        err = capsys.readouterr().err
        assert "does not support lane batching" in err
        scalar = run_campaign(app, deployment, keep_records=True, lanes=1)
        assert with_lanes.records == scalar.records


# ----------------------------------------------------------------------
# specs, canonicalization, identity separation
# ----------------------------------------------------------------------
class TestScenarioSpecs:
    def test_registry_names(self):
        assert set(SCENARIOS) == {"bitflip", "rankkill", "msgcorrupt"}

    def test_default_family_canonicalizes_to_none(self):
        assert canonical_scenario(None) is None
        assert canonical_scenario("bitflip") is None
        assert canonical_scenario("  ") is None
        assert Deployment(nprocs=2, trials=2, scenario="bitflip").scenario is None

    def test_parameters_sort_and_case_folds(self):
        assert canonical_scenario("RANKKILL") == "rankkill"
        assert canonical_scenario("rankkill:rank=2") == "rankkill:rank=2"
        assert canonical_scenario("msgcorrupt:bit=3") == "msgcorrupt:bit=3"

    def test_unknown_scenario_and_parameters_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown scenario"):
            parse_scenario("cosmicray")
        with pytest.raises(ConfigurationError, match="does not accept"):
            parse_scenario("bitflip:rank=1")
        with pytest.raises(ConfigurationError, match="malformed"):
            parse_scenario("rankkill:rank")
        with pytest.raises(ConfigurationError, match="not an integer"):
            parse_scenario("rankkill:rank=zero").int_param("rank")

    def test_resolve_model_memoizes_and_defaults(self):
        assert resolve_model(None) is resolve_model(None)
        assert isinstance(resolve_model(None), BitFlipModel)
        assert isinstance(resolve_model("rankkill"), RankKillModel)
        assert isinstance(resolve_model("msgcorrupt"), MessageCorruptionModel)

    def test_deployment_key_separation(self):
        base = dict(nprocs=4, trials=10, seed=1)
        keys = {
            deployment_key(Deployment(**base, scenario=s))
            for s in (None, "rankkill", "rankkill:rank=1", "msgcorrupt",
                      "msgcorrupt:bit=5")
        }
        assert len(keys) == 5
        # the default family's key has no scenario component at all:
        # pre-scenario cache entries and checkpoints stay valid
        assert ",sc=" not in deployment_key(Deployment(**base))
        assert deployment_key(Deployment(**base)) == deployment_key(
            Deployment(**base, scenario="bitflip")
        )

    def test_precedence_arg_over_field_over_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCENARIO", "msgcorrupt")
        deployment = Deployment(nprocs=2, trials=2)
        assert with_resolved_scenario(deployment).scenario == "msgcorrupt"
        pinned = Deployment(nprocs=2, trials=2, scenario="rankkill")
        assert with_resolved_scenario(pinned).scenario == "rankkill"
        assert with_resolved_scenario(pinned, "bitflip").scenario is None

    def test_malformed_env_warns_and_falls_back(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_SCENARIO", "cosmicray")
        assert default_scenario() is None
        assert "ignoring REPRO_SCENARIO" in capsys.readouterr().err

    def test_execution_dynamics_probe(self):
        app = ScenarioApp()
        deployment = Deployment(nprocs=4, trials=2)
        dynamics = execution_dynamics(app, deployment)
        assert dynamics.steps > 0
        assert dynamics.deliveries > 0
        assert execution_dynamics(app, deployment) is dynamics  # memoized


# ----------------------------------------------------------------------
# reporting
# ----------------------------------------------------------------------
class TestFailureModeReport:
    def test_obs_report_tallies_failure_modes(self):
        app = get_app("cg")
        deployment = Deployment(nprocs=4, trials=8, seed=7, scenario="rankkill")
        with tempfile.TemporaryDirectory() as tmp:
            trace = Path(tmp) / "run.jsonl"
            previous = obs.get_recorder()
            recorder = obs.configure(trace_path=trace)
            try:
                run_campaign(app, deployment, jobs=1)
            finally:
                obs.set_recorder(previous)
                recorder.close()
            report = render_trace_report(trace)
        assert "Failure modes" in report
        assert "abort" in report or "deadlock" in report or "lost" in report
