"""Tests for the dual-value TArray container."""

import numpy as np
import pytest
from hypothesis import given, strategies as st
from hypothesis.extra import numpy as hnp

from repro.taint.tarray import TArray, arrays_equal, as_tarray

finite_arrays = hnp.arrays(
    dtype=np.float64,
    shape=hnp.array_shapes(max_dims=2, max_side=8),
    elements=st.floats(-1e6, 1e6),
)


class TestConstruction:
    def test_fresh_shares(self):
        t = TArray.fresh([1.0, 2.0])
        assert t.faulty is t.golden
        assert not t.diverged

    def test_diverged_when_different(self):
        t = TArray(np.array([1.0]), np.array([2.0]))
        assert t.diverged

    def test_equal_faulty_collapses_to_shared(self):
        g = np.array([1.0, 2.0])
        t = TArray(g, g.copy())
        assert t.faulty is t.golden

    def test_nan_payloads_compare_equal(self):
        g = np.array([np.nan, 1.0])
        t = TArray(g, np.array([np.nan, 1.0]))
        assert not t.diverged

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            TArray(np.zeros(3), np.zeros(4))

    def test_integer_input_coerced_to_float(self):
        t = TArray.fresh([1, 2, 3])
        assert t.dtype == np.float64

    def test_immutability(self):
        t = TArray.fresh([1.0])
        with pytest.raises(ValueError):
            t.golden[0] = 5.0


class TestAccessors:
    def test_value_requires_scalar(self):
        assert TArray.fresh(3.5).value == 3.5
        with pytest.raises(ValueError):
            TArray.fresh([1.0, 2.0]).value

    def test_golden_value_on_diverged(self):
        t = TArray(np.array(1.0), np.array(2.0))
        assert t.golden_value == 1.0
        assert t.value == 2.0

    def test_to_numpy_is_faulty_path(self):
        t = TArray(np.array([1.0]), np.array([9.0]))
        np.testing.assert_array_equal(t.to_numpy(), [9.0])
        np.testing.assert_array_equal(t.golden_numpy(), [1.0])


class TestDataMovement:
    def test_getitem_clean_slice_of_diverged_array_reshares(self):
        g = np.arange(4.0)
        f = g.copy()
        f[3] = 99.0
        t = TArray(g, f)
        assert t.diverged
        assert not t[:3].diverged  # the corrupted lane is outside the slice
        assert t[2:].diverged

    def test_fancy_indexing(self):
        t = TArray.fresh(np.arange(10.0))
        picked = t[np.array([3, 1, 4])]
        np.testing.assert_array_equal(picked.to_numpy(), [3.0, 1.0, 4.0])

    def test_reshape_ravel_transpose(self):
        t = TArray.fresh(np.arange(6.0))
        r = t.reshape(2, 3)
        assert r.shape == (2, 3)
        assert r.ravel().shape == (6,)
        assert r.transpose(1, 0).shape == (3, 2)

    def test_concatenate_tracks_divergence(self):
        clean = TArray.fresh([1.0])
        dirty = TArray(np.array([1.0]), np.array([2.0]))
        assert not TArray.concatenate([clean, clean]).diverged
        assert TArray.concatenate([clean, dirty]).diverged

    def test_stack(self):
        a = TArray.fresh([1.0, 2.0])
        s = TArray.stack([a, a], axis=0)
        assert s.shape == (2, 2)

    def test_scatter(self):
        vals = TArray(np.array([5.0, 6.0]), np.array([5.0, 7.0]))
        out = TArray.scatter(vals, np.array([1, 3]), 5)
        np.testing.assert_array_equal(out.golden_numpy(), [0, 5, 0, 6, 0])
        np.testing.assert_array_equal(out.to_numpy(), [0, 5, 0, 7, 0])

    def test_copy_returns_self(self):
        t = TArray.fresh([1.0])
        assert t.copy() is t


class TestHelpers:
    def test_as_tarray_passthrough(self):
        t = TArray.fresh([1.0])
        assert as_tarray(t) is t
        assert as_tarray(2.0).value == 2.0

    @given(finite_arrays)
    def test_arrays_equal_reflexive(self, arr):
        assert arrays_equal(arr, arr.copy())

    @given(finite_arrays)
    def test_fresh_never_diverged(self, arr):
        assert not TArray.fresh(arr).diverged

    def test_arrays_equal_shape_mismatch(self):
        assert not arrays_equal(np.zeros(2), np.zeros(3))

    def test_negative_zero_equal(self):
        assert arrays_equal(np.array([0.0]), np.array([-0.0]))
