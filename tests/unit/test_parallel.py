"""Serial-vs-parallel campaign parity and worker-failure semantics.

The apps here are module-level classes so ``spawn`` workers can unpickle
them (spawned children import this module by path).  Parity is the hard
guarantee: ``run_campaign(..., jobs=N)`` must be bit-identical to the
serial path for any N, because the disk cache and every results/*.txt
regression keys off the serial numbers.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro import obs
from repro.errors import ConfigurationError, WorkerCrashError
from repro.fi.cache import cached_campaign
from repro.fi.campaign import Deployment, default_jobs, run_campaign
from repro.fi.outcomes import Outcome
from repro.engine import MAX_CHUNK_TRIALS, chunk_bounds


class ParityApp:
    """Distributed dot product: cheap, but exercises real injections."""

    name = "parity"

    def __init__(self, n=64, tol=1e-9):
        self.n = n
        self.tol = tol

    def program(self, rank, size, comm, fp):
        chunk = self.n // size
        x = fp.asarray(np.linspace(1.0, 2.0, chunk) + rank)
        local = fp.dot(x, x)
        total = yield comm.allreduce(local, op="sum")
        if rank == 0:
            return {"total": total.value}
        return None

    def verify(self, output, reference):
        got, ref = output["total"], reference["total"]
        if not (np.isfinite(got) and np.isfinite(ref)):
            return False
        return abs(got - ref) <= self.tol * abs(ref)

    def cache_key(self):
        return f"parity(n={self.n},tol={self.tol})"


class CrashingWorkerApp(ParityApp):
    """Dies abruptly — but only inside a worker process.

    ``parent_pid`` is captured at construction (in the test process) and
    travels with the pickle, so the parent's profiling pass succeeds
    while any spawned worker hard-exits without reporting.
    """

    name = "crashy"

    def __init__(self, **kwargs):
        super().__init__(**kwargs)
        self.parent_pid = os.getpid()

    def program(self, rank, size, comm, fp):
        if os.getpid() != self.parent_pid:
            os._exit(3)
        return super().program(rank, size, comm, fp)


class RaisingWorkerApp(ParityApp):
    """Raises a normal exception — but only inside a worker process."""

    name = "angry"

    def __init__(self, **kwargs):
        super().__init__(**kwargs)
        self.parent_pid = os.getpid()

    def program(self, rank, size, comm, fp):
        if os.getpid() != self.parent_pid:
            raise RuntimeError("worker exploded on purpose")
        return super().program(rank, size, comm, fp)


class TestChunking:
    def test_chunks_cover_range_exactly(self):
        for trials, jobs in [(1, 4), (7, 2), (40, 4), (200, 3), (1000, 16)]:
            chunks = chunk_bounds(trials, jobs)
            flat = [t for lo, hi in chunks for t in range(lo, hi)]
            assert flat == list(range(trials))

    def test_chunk_size_capped(self):
        assert all(
            hi - lo <= MAX_CHUNK_TRIALS for lo, hi in chunk_bounds(10_000, 2)
        )

    def test_no_trials_no_chunks(self):
        assert chunk_bounds(0, 4) == []


class TestJobsResolution:
    def test_default_jobs_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert default_jobs() == 3

    def test_default_jobs_fallback(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert default_jobs() == 1
        monkeypatch.setenv("REPRO_JOBS", "not-a-number")
        assert default_jobs() == 1

    def test_deployment_validates_jobs(self):
        with pytest.raises(ConfigurationError):
            Deployment(nprocs=1, trials=1, jobs=0)

    def test_env_drives_run_campaign(self, monkeypatch):
        # jobs resolved from $REPRO_JOBS must give the serial result too
        serial = run_campaign(ParityApp(), Deployment(nprocs=1, trials=6, seed=3))
        monkeypatch.setenv("REPRO_JOBS", "2")
        parallel = run_campaign(ParityApp(), Deployment(nprocs=1, trials=6, seed=3))
        assert parallel.joint == serial.joint


class TestParity:
    """jobs ∈ {1, 2, 4} must agree bit-for-bit."""

    def _assert_identical(self, app, deployment, jobs):
        serial = run_campaign(app, deployment, keep_records=True, jobs=1)
        parallel = run_campaign(app, deployment, keep_records=True, jobs=jobs)
        assert parallel.joint == serial.joint
        # dict *insertion order* must match too: the serialized cache
        # entry and any iteration-order-dependent consumer see no delta
        assert list(parallel.joint) == list(serial.joint)
        assert parallel.records == serial.records
        assert parallel.activation_rate() == serial.activation_rate()
        for outcome in Outcome:
            assert parallel.rate(outcome) == serial.rate(outcome)
        assert parallel.parallel_unique_fraction == serial.parallel_unique_fraction
        assert parallel.total_instructions == serial.total_instructions

    @pytest.mark.parametrize("jobs", [2, 4])
    def test_single_error_parallel_app(self, jobs):
        self._assert_identical(
            ParityApp(), Deployment(nprocs=2, trials=14, seed=5), jobs
        )

    def test_multi_error_deployment(self):
        self._assert_identical(
            ParityApp(), Deployment(nprocs=1, trials=10, n_errors=4, seed=2), 2
        )

    def test_multibit_deployment(self):
        self._assert_identical(
            ParityApp(),
            Deployment(nprocs=1, trials=10, seed=8, bits_per_error=2), 2,
        )

    def test_registered_app(self):
        from repro.apps import get_app

        self._assert_identical(
            get_app("cg"), Deployment(nprocs=2, trials=8, seed=1), 2
        )

    def test_more_jobs_than_trials(self):
        self._assert_identical(
            ParityApp(), Deployment(nprocs=1, trials=3, seed=4), 4
        )


class TestCacheInteraction:
    def test_jobs_do_not_fork_cache_entries(self, tmp_cache):
        """jobs is an execution knob, not part of the result's identity."""
        app = ParityApp()
        first = cached_campaign(app, Deployment(nprocs=1, trials=8, seed=6, jobs=2))
        assert len(list(tmp_cache.glob("parity-*.json"))) == 1
        mem = obs.MemorySink()
        with obs.recording(obs.Recorder([mem])):
            second = cached_campaign(
                app, Deployment(nprocs=1, trials=8, seed=6, jobs=1)
            )
        assert len(mem.of(obs.CacheHit)) == 1  # served, not recomputed
        assert second.joint == first.joint


class TestWorkerFailure:
    def test_worker_crash_is_a_clear_error_not_a_hang(self):
        app = CrashingWorkerApp()
        with pytest.raises(WorkerCrashError, match="worker process died"):
            run_campaign(app, Deployment(nprocs=1, trials=6, seed=0), jobs=2)

    def test_worker_exception_propagates(self):
        app = RaisingWorkerApp()
        with pytest.raises(RuntimeError, match="worker exploded on purpose"):
            run_campaign(app, Deployment(nprocs=1, trials=6, seed=0), jobs=2)


class TestParallelObservability:
    """Events and aggregates must match serial-run semantics exactly."""

    def _run(self, deployment, jobs):
        mem = obs.MemorySink()
        with obs.recording(obs.Recorder([mem])) as rec:
            result = run_campaign(ParityApp(), deployment, jobs=jobs)
        return result, mem, rec

    def test_trial_events_complete_and_ordered(self):
        dep = Deployment(nprocs=2, trials=12, seed=9)
        res, mem, _ = self._run(dep, jobs=2)
        trials = mem.of(obs.TrialFinished)
        assert [e.trial for e in trials] == list(range(12))
        for outcome in Outcome:
            emitted = sum(1 for e in trials if e.outcome == outcome.value)
            assert emitted == res.outcome_count(outcome)

    def test_aggregates_match_serial(self):
        dep = Deployment(nprocs=2, trials=12, seed=9)
        _, _, serial_rec = self._run(dep, jobs=1)
        _, _, parallel_rec = self._run(dep, jobs=2)
        # counters: identical work was metered, just in other processes
        assert parallel_rec.counters == serial_rec.counters
        assert sorted(parallel_rec.histograms["taint.contamination_spread"]) == \
            sorted(serial_rec.histograms["taint.contamination_spread"])
        # span paths and counts line up (durations differ, of course)
        assert set(parallel_rec.span_totals) == set(serial_rec.span_totals)
        for path in ("campaign/trial", "campaign/trial/inject"):
            assert parallel_rec.span_totals[path][0] == \
                serial_rec.span_totals[path][0]

    def test_fault_injected_events_match_activation(self):
        dep = Deployment(nprocs=1, trials=10, seed=3)
        res, mem, _ = self._run(dep, jobs=2)
        activated = sum(c for (_, _, act), c in res.joint.items() if act)
        assert len(mem.of(obs.FaultInjected)) == activated

    def test_progress_sink_sees_every_trial(self):
        sink = obs.ProgressSink(stream=_NullStream(), min_interval=0.0)
        with obs.recording(obs.Recorder([sink])):
            run_campaign(ParityApp(), Deployment(nprocs=1, trials=8, seed=1), jobs=2)
        assert sink._done == 8
        assert sink._total == 8


class _NullStream:
    def write(self, text):
        return None

    def flush(self):
        return None
