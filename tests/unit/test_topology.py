"""Tests for the communication-topology analysis."""

import math

import pytest

from repro.analysis.topology import analyze_topology
from repro.apps import get_app


class TestTopologyExtraction:
    def test_pennant_is_a_chain(self):
        topo = analyze_topology(get_app("pennant"), 8)
        # chain: interior ranks talk to exactly 2 peers, ends to 1
        degrees = [topo.degree(r) for r in range(8)]
        assert degrees[0] == 1 and degrees[-1] == 1
        assert all(d == 2 for d in degrees[1:-1])
        assert topo.p2p_diameter() == 7

    def test_cg_exchange_has_log_diameter(self):
        topo = analyze_topology(get_app("cg"), 8)
        # recursive halving partners: diameter well below a chain's
        assert topo.p2p_diameter() <= math.log2(8) + 1
        assert topo.collective_counts.get("allreduce:sum", 0) > 0
        assert topo.is_collective_dominated()

    def test_mg_torus_neighbours(self):
        topo = analyze_topology(get_app("mg"), 8)
        # 3-D torus (2,2,2): each rank talks to 3 distinct neighbours
        # (opposite directions coincide at extent 2), plus coarse levels
        assert all(topo.degree(r) >= 3 for r in range(8))
        assert topo.p2p_messages > 0
        # halo traffic dwarfs the per-cycle norm reductions
        assert not topo.is_collective_dominated()

    def test_pennant_not_collective_dominated(self):
        """PENNANT's per-step reductions are MIN (absorbing), so its
        carrying-collective share is tiny — predicting gradual creep."""
        topo = analyze_topology(get_app("pennant"), 8)
        assert topo.collective_counts.get("allreduce:min", 0) > 0
        assert not topo.is_collective_dominated()

    def test_serial_has_no_communication(self):
        topo = analyze_topology(get_app("lu"), 1)
        assert topo.p2p_messages == 0
        assert topo.p2p_diameter() == 0.0

    def test_spread_rounds_chain(self):
        topo = analyze_topology(get_app("pennant"), 4)
        rounds = topo.spread_rounds(0)
        assert rounds == {0: 0, 1: 1, 2: 2, 3: 3}

    def test_collectives_only_app_disconnected_p2p(self):
        class AllreduceOnly:
            name = "ar"

            def program(self, rank, size, comm, fp):
                total = yield comm.allreduce(float(rank), op="sum")
                return {"t": total} if rank == 0 else None

            def verify(self, output, reference):
                return True

            def cache_key(self):
                return "ar"

        topo = analyze_topology(AllreduceOnly(), 4)
        assert topo.p2p_messages == 0
        assert topo.p2p_diameter() == float("inf")
        assert topo.global_collectives == 1
        assert topo.is_collective_dominated()


class TestStructuralPredictions:
    """The topology metrics explain the measured propagation shapes."""

    def test_collective_dominated_apps_show_one_or_all(self):
        from repro.fi import Deployment, run_campaign

        app = get_app("lu")
        topo = analyze_topology(app, 8)
        assert topo.is_collective_dominated()
        res = run_campaign(app, Deployment(nprocs=8, trials=50, seed=11))
        counts = res.propagation_counts()
        edge = counts.get(1, 0) + counts.get(8, 0)
        assert edge / sum(counts.values()) > 0.7
