"""Documentation sanity: the shipped docs reference real APIs."""

import importlib
import re
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parents[2]


class TestDocsExist:
    @pytest.mark.parametrize(
        "name", ["README.md", "DESIGN.md", "Makefile", "LICENSE", "CITATION.cff"]
    )
    def test_top_level_files(self, name):
        assert (ROOT / name).is_file()

    @pytest.mark.parametrize(
        "name", ["fault-model.md", "model.md", "substrate.md", "developer.md",
                 "apps.md", "observability.md", "performance.md", "engine.md",
                 "adaptive.md", "scenarios.md", "distributed.md"]
    )
    def test_docs_pages(self, name):
        assert (ROOT / "docs" / name).stat().st_size > 500


class TestDocsReferenceRealCode:
    def test_readme_code_blocks_import(self):
        """Module paths named in the README must exist."""
        text = (ROOT / "README.md").read_text()
        for mod in set(re.findall(r"repro\.[a-z_.]+[a-z_]", text)):
            root = mod.split(".")[:2]
            importlib.import_module(".".join(root))

    def test_design_maps_every_bench_file(self):
        design = (ROOT / "DESIGN.md").read_text()
        for bench in (ROOT / "benchmarks").glob("bench_figure*.py"):
            assert bench.name in design, bench.name

    def test_experiments_cli_names_match_modules(self):
        from repro.experiments import EXPERIMENTS

        for name in EXPERIMENTS:
            module = importlib.import_module(f"repro.experiments.{name}")
            assert callable(module.run)

    def test_observability_doc_covers_live_and_profiler(self):
        text = (ROOT / "docs" / "observability.md").read_text()
        assert "## Live telemetry" in text
        assert "## Profiling the hot path" in text
        # performance.md points profiling-minded readers at both anchors
        perf = (ROOT / "docs" / "performance.md").read_text()
        assert "observability.md#profiling-the-hot-path" in perf
        assert "observability.md#live-telemetry" in perf

    def test_performance_doc_covers_lanes(self):
        perf = (ROOT / "docs" / "performance.md").read_text()
        assert "## Lane vectorization" in perf
        # lane docs are reachable from the engine, adaptive and README pages
        anchor = "performance.md#lane-vectorization---lanes"
        assert anchor in (ROOT / "docs" / "engine.md").read_text()
        assert anchor in (ROOT / "docs" / "adaptive.md").read_text()
        assert "docs/" + anchor in (ROOT / "README.md").read_text()

    def test_observability_doc_covers_tracing_and_timelines(self):
        text = (ROOT / "docs" / "observability.md").read_text()
        assert "## Causal tracing" in text
        assert "## Worker timelines" in text
        # the sink/exporter architecture diagram names the real pieces
        for piece in ("chrome_trace", "otlp_trace", "worker_utilization",
                      "timeline_swimlane_svg", "ObsSnapshot.trace",
                      "*.timeline.jsonl"):
            assert piece in text, piece
        # cross-linked from the performance, engine and README pages
        perf = (ROOT / "docs" / "performance.md").read_text()
        assert "observability.md#worker-timelines" in perf
        assert "observability.md#causal-tracing" in perf
        assert "observability.md#causal-tracing" in (
            ROOT / "docs" / "engine.md"
        ).read_text()
        assert "docs/observability.md#worker-timelines" in (
            ROOT / "README.md"
        ).read_text()

    def test_scenarios_doc_names_every_family_and_is_linked(self):
        from repro.fi.scenarios import SCENARIOS

        text = (ROOT / "docs" / "scenarios.md").read_text()
        for family in SCENARIOS:
            assert f"### `{family}`" in text, family
        # reachable from the README, engine and observability pages
        assert "docs/scenarios.md" in (ROOT / "README.md").read_text()
        assert "scenarios.md" in (ROOT / "docs" / "engine.md").read_text()
        assert "scenarios.md" in (
            ROOT / "docs" / "observability.md"
        ).read_text()

    def test_distributed_doc_covers_protocol_and_is_linked(self):
        text = (ROOT / "docs" / "distributed.md").read_text()
        for piece in ("## Wire protocol", "## Warm worker pools",
                      "## Determinism contract", "## Failure semantics",
                      "repro-worker", "REPRO_DIST_CHUNK_TIMEOUT",
                      "REPRO_DIST_WORKER_TIMEOUT", "REPRO_DIST_PORT_FILE",
                      "ResultStore"):
            assert piece in text, piece
        # reachable from the engine, performance and README pages
        assert "distributed.md" in (ROOT / "docs" / "engine.md").read_text()
        assert "distributed.md" in (
            ROOT / "docs" / "performance.md"
        ).read_text()
        assert "docs/distributed.md" in (ROOT / "README.md").read_text()

    def test_documented_cli_flags_exist(self):
        """Flags and subcommands the docs advertise must parse."""
        import io
        from contextlib import redirect_stdout

        from repro.experiments.cli import main

        buf = io.StringIO()
        with redirect_stdout(buf), pytest.raises(SystemExit):
            main(["--help"])
        help_text = buf.getvalue()
        for flag in ("--serve-obs", "--profile", "--trace-out", "--lanes",
                     "--progress", "--metrics-summary", "obs-profile",
                     "--timeline", "obs-timeline", "--scenario", "--backend"):
            assert flag in help_text, flag
