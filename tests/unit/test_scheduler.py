"""Tests for the simulated MPI scheduler, communicator and collectives."""

import numpy as np
import pytest

from repro.errors import CommunicatorError, DeadlockError, SimulatedHangError
from repro.mpisim import ANY, Communicator, execute_spmd
from repro.mpisim.collectives import payload_diverged, reduce_payloads
from repro.taint.tarray import TArray
from repro.taint.tracer_api import NullSink


def run(program, size, sink=None, max_steps=None):
    return execute_spmd(program, size, sink=sink, max_steps=max_steps)


class TestPointToPoint:
    def test_send_recv(self):
        def prog(rank, size, comm, fp):
            if rank == 0:
                yield comm.send(1, "hello", tag=7)
                return "sent"
            msg = yield comm.recv(source=0, tag=7)
            return msg

        assert run(prog, 2) == ["sent", "hello"]

    def test_fifo_per_channel(self):
        def prog(rank, size, comm, fp):
            if rank == 0:
                for i in range(5):
                    yield comm.send(1, i, tag=1)
                return None
            got = []
            for _ in range(5):
                got.append((yield comm.recv(source=0, tag=1)))
            return got

        assert run(prog, 2)[1] == [0, 1, 2, 3, 4]

    def test_tag_selectivity(self):
        def prog(rank, size, comm, fp):
            if rank == 0:
                yield comm.send(1, "a", tag=1)
                yield comm.send(1, "b", tag=2)
                return None
            second = yield comm.recv(source=0, tag=2)
            first = yield comm.recv(source=0, tag=1)
            return (first, second)

        assert run(prog, 2)[1] == ("a", "b")

    def test_wildcard_source_and_tag(self):
        def prog(rank, size, comm, fp):
            if rank == 2:
                a = yield comm.recv(source=ANY, tag=ANY)
                b = yield comm.recv(source=ANY, tag=ANY)
                return sorted([a, b])
            yield comm.send(2, rank, tag=rank)
            return None

        assert run(prog, 3)[2] == [0, 1]

    def test_sendrecv_pairwise_swap(self):
        def prog(rank, size, comm, fp):
            partner = rank ^ 1
            got = yield comm.sendrecv(partner, f"from{rank}", send_tag=3)
            return got

        assert run(prog, 2) == ["from1", "from0"]

    def test_sendrecv_chain_different_peers(self):
        def prog(rank, size, comm, fp):
            got = yield comm.sendrecv(
                (rank + 1) % size, rank, source=(rank - 1) % size, send_tag=0
            )
            return got

        assert run(prog, 4) == [3, 0, 1, 2]

    def test_send_to_self(self):
        def prog(rank, size, comm, fp):
            yield comm.send(rank, "me", tag=0)
            got = yield comm.recv(source=rank, tag=0)
            return got

        assert run(prog, 1) == ["me"]

    def test_bad_peer_rejected(self):
        comm = Communicator(0, 2)
        with pytest.raises(CommunicatorError):
            comm.send(2, "x")
        with pytest.raises(CommunicatorError):
            comm.recv(source=5)


class TestCollectiveOps:
    def test_barrier(self):
        def prog(rank, size, comm, fp):
            yield comm.barrier()
            return rank

        assert run(prog, 4) == [0, 1, 2, 3]

    def test_bcast(self):
        def prog(rank, size, comm, fp):
            got = yield comm.bcast("root-data" if rank == 1 else None, root=1)
            return got

        assert run(prog, 3) == ["root-data"] * 3

    def test_allreduce_python_scalars(self):
        def prog(rank, size, comm, fp):
            total = yield comm.allreduce(rank + 1, op="sum")
            biggest = yield comm.allreduce(rank, op="max")
            return (total, biggest)

        assert run(prog, 4) == [(10, 3)] * 4

    def test_reduce_only_root(self):
        def prog(rank, size, comm, fp):
            got = yield comm.reduce(rank, op="sum", root=2)
            return got

        assert run(prog, 3) == [None, None, 3]

    def test_gather_allgather(self):
        def prog(rank, size, comm, fp):
            g = yield comm.gather(rank * 10, root=0)
            ag = yield comm.allgather(rank)
            return (g, ag)

        out = run(prog, 3)
        assert out[0] == ([0, 10, 20], [0, 1, 2])
        assert out[1] == (None, [0, 1, 2])

    def test_scatter(self):
        def prog(rank, size, comm, fp):
            got = yield comm.scatter([10, 20, 30] if rank == 0 else None, root=0)
            return got

        assert run(prog, 3) == [10, 20, 30]

    def test_alltoall(self):
        def prog(rank, size, comm, fp):
            got = yield comm.alltoall([f"{rank}->{d}" for d in range(size)])
            return got

        out = run(prog, 2)
        assert out[0] == ["0->0", "1->0"]
        assert out[1] == ["0->1", "1->1"]

    def test_allreduce_tarrays(self):
        def prog(rank, size, comm, fp):
            v = fp.asarray(np.full(3, float(rank + 1)))
            total = yield comm.allreduce(v, op="sum")
            return total.to_numpy().tolist()

        assert run(prog, 3) == [[6.0, 6.0, 6.0]] * 3

    def test_single_rank_collectives(self):
        def prog(rank, size, comm, fp):
            t = yield comm.allreduce(5, op="sum")
            b = yield comm.bcast("x", root=0)
            return (t, b)

        assert run(prog, 1) == [(5, "x")]


class TestFailureModes:
    def test_deadlock_missing_send(self):
        def prog(rank, size, comm, fp):
            if rank == 0:
                yield comm.recv(source=1, tag=9)
            else:
                yield comm.barrier()
            return None

        with pytest.raises((DeadlockError, CommunicatorError)):
            run(prog, 2)

    def test_deadlock_partial_collective(self):
        def prog(rank, size, comm, fp):
            if rank == 0:
                yield comm.barrier()
            return None

        with pytest.raises(DeadlockError):
            run(prog, 2)

    def test_mismatched_collectives(self):
        def prog(rank, size, comm, fp):
            if rank == 0:
                yield comm.barrier()
            else:
                yield comm.allreduce(1, op="sum")
            return None

        with pytest.raises(CommunicatorError):
            run(prog, 2)

    def test_mismatched_roots(self):
        def prog(rank, size, comm, fp):
            yield comm.bcast("x", root=rank)
            return None

        with pytest.raises(CommunicatorError):
            run(prog, 2)

    def test_mismatched_reduction_ops(self):
        def prog(rank, size, comm, fp):
            yield comm.allreduce(1, op="sum" if rank == 0 else "max")
            return None

        with pytest.raises(CommunicatorError):
            run(prog, 2)

    def test_send_to_finished_rank(self):
        def prog(rank, size, comm, fp):
            if rank == 1:
                return None
            yield comm.barrier() if False else None
            # give rank 1 time to finish: scheduler runs rank 0 first, so
            # bounce through a self-message before sending
            yield comm.send(0, "spin", tag=0)
            yield comm.recv(source=0, tag=0)
            yield comm.send(1, "late", tag=1)
            return None

        with pytest.raises(CommunicatorError):
            run(prog, 2)

    def test_max_steps_hang_guard(self):
        def prog(rank, size, comm, fp):
            while True:
                yield comm.send(rank, "x", tag=0)
                yield comm.recv(source=rank, tag=0)

        with pytest.raises(SimulatedHangError):
            run(prog, 1, max_steps=100)

    def test_non_request_yield(self):
        def prog(rank, size, comm, fp):
            yield "not a request"

        with pytest.raises(CommunicatorError):
            run(prog, 1)

    def test_invalid_reduction_op(self):
        comm = Communicator(0, 2)
        with pytest.raises(CommunicatorError):
            comm.allreduce(1, op="xor")

    def test_alltoall_wrong_length(self):
        comm = Communicator(0, 3)
        with pytest.raises(CommunicatorError):
            comm.alltoall([1, 2])

    def test_scatter_wrong_length(self):
        comm = Communicator(0, 3)
        with pytest.raises(CommunicatorError):
            comm.scatter([1, 2], root=0)


class TestTaintDelivery:
    class _Sink(NullSink):
        def __init__(self):
            self.marks = []

        def mark_contaminated(self, rank):
            self.marks.append(rank)

    def test_diverged_payload_marks_receiver(self):
        sink = self._Sink()

        def prog(rank, size, comm, fp):
            if rank == 0:
                bad = TArray(np.array([1.0]), np.array([2.0]))
                yield comm.send(1, bad, tag=0)
                return None
            yield comm.recv(source=0, tag=0)
            return None

        run(prog, 2, sink=sink)
        assert sink.marks == [1]

    def test_clean_payload_marks_nobody(self):
        sink = self._Sink()

        def prog(rank, size, comm, fp):
            if rank == 0:
                yield comm.send(1, TArray.fresh([1.0]), tag=0)
                return None
            yield comm.recv(source=0, tag=0)
            return None

        run(prog, 2, sink=sink)
        assert sink.marks == []

    def test_allreduce_cancellation_absorbs_taint(self):
        """A diverged contribution that does not change the reduced value
        (min over other lanes) must not contaminate the receivers."""
        sink = self._Sink()

        def prog(rank, size, comm, fp):
            if rank == 0:
                v = TArray(np.array([5.0]), np.array([7.0]))  # diverged, loses min
            else:
                v = TArray.fresh([1.0])
            out = yield comm.allreduce(v, op="min")
            return out.to_numpy()[0]

        out = run(prog, 2, sink=sink)
        assert out == [1.0, 1.0]
        assert sink.marks == []

    def test_allreduce_sum_taint_reaches_all(self):
        sink = self._Sink()

        def prog(rank, size, comm, fp):
            v = TArray(np.array([1.0]), np.array([2.0])) if rank == 0 else TArray.fresh([1.0])
            yield comm.allreduce(v, op="sum")
            return None

        run(prog, 3, sink=sink)
        assert sorted(sink.marks) == [0, 1, 2]

    def test_nested_payload_walk(self):
        bad = TArray(np.array([1.0]), np.array([2.0]))
        assert payload_diverged({"a": [TArray.fresh([1.0]), (bad,)]})
        assert not payload_diverged({"a": [TArray.fresh([1.0])], "b": 3})


class TestReducePayloads:
    def test_mixed_payloads_rejected(self):
        with pytest.raises(CommunicatorError):
            reduce_payloads([TArray.fresh([1.0]), 2.0], "sum")

    def test_empty_rejected(self):
        with pytest.raises(CommunicatorError):
            reduce_payloads([], "sum")

    def test_prod_min(self):
        assert reduce_payloads([2, 3, 4], "prod") == 24
        assert reduce_payloads([2.0, 3.0], "min") == 2.0

    def test_tarray_faulty_path_reduced_separately(self):
        a = TArray(np.array([1.0]), np.array([10.0]))
        b = TArray.fresh([2.0])
        out = reduce_payloads([a, b], "sum")
        assert out.golden_numpy()[0] == 3.0
        assert out.to_numpy()[0] == 12.0
