"""Cross-cutting property-based tests (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.fi.plan import sample_plan
from repro.fi.profile import InstructionProfile
from repro.fi.tracer import Tracer, TracerMode
from repro.model.propagation import (
    PropagationProfile,
    group_histogram,
    map_small_to_large,
)
from repro.model.similarity import cosine_similarity
from repro.model.sampling import SerialSamplePlan
from repro.mpisim import execute_spmd
from repro.taint.ops import FPOps
from repro.taint.region import Region
from repro.taint.tracer_api import OpKind
from repro.utils.rng import spawn_rng


class TestRandomRingExchanges:
    """The scheduler must deliver arbitrary ring-shift patterns intact."""

    @given(
        size=st.integers(2, 6),
        shifts=st.lists(st.integers(1, 5), min_size=1, max_size=4),
    )
    @settings(max_examples=25, deadline=None)
    def test_ring_shifts_permute_values(self, size, shifts):
        def prog(rank, p, comm, fp):
            value = rank
            for i, shift in enumerate(shifts):
                s = shift % p
                value = yield comm.sendrecv(
                    (rank + s) % p, value, source=(rank - s) % p, send_tag=i,
                )
            return value

        outs = execute_spmd(prog, size)
        total_shift = sum(s % size for s in shifts) % size
        expected = [(r - total_shift) % size for r in range(size)]
        assert outs == expected

    @given(size=st.integers(1, 6), payloads=st.lists(st.integers(), min_size=1, max_size=6))
    @settings(max_examples=25, deadline=None)
    def test_allgather_order(self, size, payloads):
        def prog(rank, p, comm, fp):
            got = yield comm.allgather((rank, payloads[rank % len(payloads)]))
            return got

        outs = execute_spmd(prog, size)
        for o in outs:
            assert [pair[0] for pair in o] == list(range(size))


class TestTracerStreamInvariants:
    @given(
        chunks=st.lists(st.integers(1, 50), min_size=1, max_size=20),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=40, deadline=None)
    def test_every_sampled_index_fires_exactly_once(self, chunks, seed):
        """However an op stream is chunked, a planned flip fires once."""
        profile = InstructionProfile()
        profile.record(0, Region.COMMON, OpKind.ADD, sum(chunks))
        plan = sample_plan(profile, spawn_rng(seed, "t"))
        tracer = Tracer(TracerMode.INJECT, plan)
        fired = []
        for c in chunks:
            fired.extend(tracer.account(0, Region.COMMON, OpKind.ADD, c))
        assert len(fired) == 1
        assert tracer.all_flips_activated

    @given(seed=st.integers(0, 300))
    @settings(max_examples=30, deadline=None)
    def test_plan_sampling_stays_in_candidate_space(self, seed):
        profile = InstructionProfile()
        profile.record(0, Region.COMMON, OpKind.ADD, 17)
        profile.record(0, Region.PARALLEL_UNIQUE, OpKind.MUL, 3)
        plan = sample_plan(profile, spawn_rng(seed, "p"), n_errors=2, target_rank=0)
        for flip in plan.flips:
            assert flip.index < profile.candidates(0, flip.region)


class TestTaintAlgebra:
    @given(
        data=st.lists(st.floats(-1e3, 1e3), min_size=1, max_size=32),
        scale=st.floats(-10, 10),
    )
    @settings(max_examples=40)
    def test_clean_inputs_stay_clean(self, data, scale):
        fp = FPOps()
        x = fp.asarray(np.array(data))
        y = fp.add(fp.mul(x, scale), 1.0)
        z = fp.sum(y)
        assert not y.diverged and not z.diverged

    @given(data=st.lists(st.floats(-1e3, 1e3), min_size=2, max_size=32))
    @settings(max_examples=40)
    def test_traced_sum_equals_numpy(self, data):
        fp = FPOps()
        arr = np.array(data)
        assert fp.sum(fp.asarray(arr)).value == pytest.approx(
            np.sum(arr), rel=1e-9, abs=1e-9
        )


class TestModelProperties:
    @given(
        counts=st.dictionaries(st.integers(1, 4), st.integers(1, 30), min_size=1),
        factor=st.sampled_from([2, 4, 8]),
    )
    @settings(max_examples=40)
    def test_projection_then_grouping_is_identity(self, counts, factor):
        small = PropagationProfile.from_counts(counts, nprocs=4)
        large = map_small_to_large(small, 4 * factor)
        back = group_histogram(large, 4)
        np.testing.assert_allclose(back, small.as_array(), atol=1e-12)

    @given(
        p_exp=st.integers(3, 7),
        s_exp=st.integers(0, 5),
    )
    @settings(max_examples=30)
    def test_sample_plan_covers_every_case(self, p_exp, s_exp):
        p = 1 << p_exp
        s = 1 << min(s_exp, p_exp)
        plan = SerialSamplePlan(large_nprocs=p, n_samples=s)
        cases = set(plan.sample_cases)
        for x in range(1, p + 1):
            assert plan.sample_for(x) in cases

    @given(v=st.lists(st.floats(0.001, 100), min_size=2, max_size=12))
    @settings(max_examples=30)
    def test_cosine_self_similarity(self, v):
        assert cosine_similarity(v, v) == pytest.approx(1.0)
