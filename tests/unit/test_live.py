"""Live telemetry: endpoints, ETA, ring buffer, thread safety, identity."""

from __future__ import annotations

import io
import json
import re
import threading
import urllib.error
import urllib.request

import pytest

from repro import obs
from repro.apps import get_app
from repro.experiments.cli import main
from repro.fi.campaign import Deployment, run_campaign
from repro.obs.events import CampaignPlanRevised, CampaignStarted, TrialFinished
from repro.obs.live import (
    LiveObsServer,
    render_metrics_json,
    render_prometheus,
    start_live_server,
)
from repro.obs.provenance import provenance_path
from repro.obs.sinks import ProgressSink, RingBufferSink, _format_eta

_EXTERNAL_REF = re.compile(r"""(?:src|href)\s*=\s*["']?(?:[a-z]+:)?//""", re.I)


def _trial(i, outcome="success"):
    return TrialFinished(trial=i, outcome=outcome, n_contaminated=1,
                         activated=True, duration_s=0.01)


def _loaded_recorder(profiling=False):
    rec = obs.Recorder(enabled=True, profiling=profiling)
    rec.counter("campaign.trials.success", 7)
    rec.gauge("campaign.trials_planned", 10)
    rec.gauge("campaign.trials_done", 7)
    rec.observe("taint.contamination_spread", 2.0)
    with rec.span("campaign"):
        if profiling:
            rec.profile_op("add", 0, 100, 0.25)
    return rec


class FakeClock:
    def __init__(self, start=0.0):
        self.now = start

    def __call__(self):
        return self.now

    def tick(self, dt):
        self.now += dt


class TestRenderers:
    def test_prometheus_exposition(self):
        text = render_prometheus(_loaded_recorder(profiling=True), eta_s=12.5)
        assert "# TYPE repro_campaign_trials_success_total counter" in text
        assert "repro_campaign_trials_success_total 7" in text
        assert "repro_campaign_trials_planned 10" in text
        assert "repro_campaign_eta_seconds 12.5" in text
        assert "repro_taint_contamination_spread_count 1" in text
        assert 'repro_span_seconds_total{path="campaign"}' in text
        assert ('repro_profile_ops_total{phase="campaign",op="add",'
                'rank="0"} 100' in text)
        assert text.endswith("\n")

    def test_json_exposition(self):
        blob = json.loads(render_metrics_json(_loaded_recorder(profiling=True)))
        assert blob["counters"]["campaign.trials.success"] == 7
        assert blob["gauges"]["campaign.trials_done"] == 7
        hist = blob["histograms"]["taint.contamination_spread"]
        assert hist == {"count": 1, "sum": 2.0, "min": 2.0, "max": 2.0}
        assert blob["spans"]["campaign"]["count"] == 1
        assert blob["profile"][0]["kind"] == "add"
        assert blob["eta_seconds"] is None


class TestRingBufferSink:
    def test_bounded_with_drop_accounting(self):
        ring = RingBufferSink(capacity=3)
        for i in range(5):
            ring.write(_trial(i))
        assert [e.trial for e in ring.tail()] == [2, 3, 4]
        assert ring.written == 5 and ring.dropped == 2

    def test_tail_n(self):
        ring = RingBufferSink(capacity=10)
        for i in range(4):
            ring.write(_trial(i))
        assert [e.trial for e in ring.tail(2)] == [2, 3]
        assert ring.tail(0) == []

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            RingBufferSink(capacity=0)


class TestEndpoints:
    @pytest.fixture()
    def server(self):
        rec = _loaded_recorder(profiling=True)
        server = start_live_server(rec, port=0)
        rec.emit(_trial(0, "sdc"))
        rec.emit(_trial(1))
        yield server
        server.close()

    def _get(self, server, path):
        with urllib.request.urlopen(server.url + path, timeout=10) as resp:
            return resp.status, resp.headers["Content-Type"], resp.read().decode()

    def test_metrics_prometheus(self, server):
        status, ctype, body = self._get(server, "/metrics")
        assert status == 200 and ctype.startswith("text/plain")
        assert "repro_campaign_trials_success_total 7" in body

    def test_metrics_json(self, server):
        status, ctype, body = self._get(server, "/metrics?format=json")
        assert status == 200 and ctype == "application/json"
        assert json.loads(body)["gauges"]["campaign.trials_planned"] == 10

    def test_events_tail(self, server):
        _, _, body = self._get(server, "/events")
        events = json.loads(body)
        assert [e["type"] for e in events] == ["trial_finished"] * 2
        _, _, body = self._get(server, "/events?n=1")
        assert json.loads(body)[0]["trial"] == 1

    def test_events_bad_n_is_400(self, server):
        with pytest.raises(urllib.error.HTTPError) as exc:
            self._get(server, "/events?n=bogus")
        assert exc.value.code == 400

    def test_healthz(self, server):
        assert self._get(server, "/healthz")[2] == "ok\n"

    def test_unknown_route_is_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as exc:
            self._get(server, "/nope")
        assert exc.value.code == 404

    def test_dashboard_is_live_self_contained_html(self, server):
        status, ctype, html = self._get(server, "/")
        assert status == 200 and ctype.startswith("text/html")
        assert html.startswith("<!DOCTYPE html>")
        assert "<script" not in html and not _EXTERNAL_REF.search(html)
        assert "Live status" in html
        assert 'http-equiv="refresh"' in html
        # profiling is on: the synthesized live profile renders a flamegraph
        assert "Hot-path profile" in html

    def test_start_live_server_attaches_ring_and_enables(self):
        rec = obs.Recorder()  # disabled by default
        server = start_live_server(rec, port=0)
        try:
            assert rec.enabled
            assert any(isinstance(s, RingBufferSink) for s in rec.sinks)
        finally:
            server.close()

    def test_url_file_written_on_start(self, tmp_path, monkeypatch):
        url_file = tmp_path / "obs-url"
        monkeypatch.setenv("REPRO_OBS_URL_FILE", str(url_file))
        server = start_live_server(obs.Recorder(enabled=True), port=0)
        try:
            assert url_file.read_text().strip() == server.url
        finally:
            server.close()


class TestEta:
    def test_eta_from_successive_scrapes(self):
        clock = FakeClock()
        rec = obs.Recorder(enabled=True)
        server = LiveObsServer(rec, RingBufferSink(8), port=0, clock=clock)
        try:
            rec.gauge("campaign.trials_planned", 100)
            rec.gauge("campaign.trials_done", 10)
            assert server._eta_seconds() is None  # single observation
            clock.tick(5.0)
            rec.gauge("campaign.trials_done", 60)  # 10 trials/s observed
            assert server._eta_seconds() == pytest.approx(4.0)
            rec.gauge("campaign.trials_done", 100)
            assert server._eta_seconds() == 0.0  # plan reached
        finally:
            server.close()

    def test_eta_absent_without_gauges(self):
        server = LiveObsServer(
            obs.Recorder(enabled=True), RingBufferSink(8), port=0
        )
        try:
            assert server._eta_seconds() is None
        finally:
            server.close()


class TestFormatEta:
    def test_minutes_seconds(self):
        assert _format_eta(83.4) == "1:23"
        assert _format_eta(0.4) == "0:00"

    def test_hours(self):
        assert _format_eta(3600 + 125) == "1:02:05"

    def test_negative_clamped(self):
        assert _format_eta(-5) == "0:00"


class TestProgressEta:
    def _sink(self, trials=10):
        clock = FakeClock()
        stream = io.StringIO()
        sink = ProgressSink(stream=stream, min_interval=0.0, clock=clock)
        sink.write(CampaignStarted(app="a", nprocs=1, trials=trials,
                                   n_errors=1, seed=0))
        return sink, stream, clock

    def test_eta_appended_midway(self):
        sink, stream, clock = self._sink()
        for i in range(5):
            clock.tick(1.0)
            sink.write(_trial(i))
        assert "eta 0:05" in stream.getvalue()  # 5 left at 1 trial/s

    def test_no_eta_on_final_line(self):
        sink, stream, clock = self._sink(trials=2)
        for i in range(2):
            clock.tick(1.0)
            sink.write(_trial(i))
        final = stream.getvalue().splitlines()[-1]
        assert "trial 2/2" in final and "eta" not in final

    def test_plan_revision_repins_denominator(self):
        sink, stream, clock = self._sink(trials=100)
        sink.write(CampaignPlanRevised(app="a", planned=20, done=10))
        clock.tick(1.0)
        sink.write(_trial(0))
        assert "/20" in stream.getvalue()


class TestThreadSafety:
    def test_snapshot_and_tail_race_a_writer(self):
        rec = obs.Recorder(enabled=True, profiling=True)
        ring = RingBufferSink(capacity=256)
        rec.sinks.append(ring)
        stop = threading.Event()
        wrote = threading.Event()

        def writer():
            i = 0
            while not stop.is_set():
                rec.counter(f"c{i % 97}")
                rec.observe(f"h{i % 31}", float(i))
                rec.profile_op(f"k{i % 13}", i % 4, 1, 1e-6)
                rec.gauge("campaign.trials_done", i)
                rec.emit(_trial(i))
                i += 1
                wrote.set()

        thread = threading.Thread(target=writer, daemon=True)
        thread.start()
        try:
            assert wrote.wait(timeout=10)
            for _ in range(300):
                snap = rec.snapshot()
                assert all(v >= 1 for v in snap.counters.values())
                events = ring.tail(16)
                assert len(events) <= 16
                json.loads(render_metrics_json(rec))
                render_prometheus(rec)
        finally:
            stop.set()
            thread.join(timeout=10)
        assert not thread.is_alive()


class TestByteIdentity:
    """Telemetry and profiling must not change campaign outputs."""

    def _run(self, tmp_path, name, profile=False, serve=False, jobs=1):
        previous = obs.get_recorder()
        trace = tmp_path / f"{name}.jsonl"
        rec = obs.configure(trace_path=trace, profile=profile)
        server = None
        try:
            if serve:
                server = start_live_server(rec, port=0)
                # an actual mid-run scrape, as a live browser would do
                urllib.request.urlopen(server.url + "/metrics", timeout=10)
            result = run_campaign(
                get_app("cg"),
                Deployment(nprocs=2, trials=10, seed=7),
                jobs=jobs,
                keep_records=True,
            )
            if serve:
                urllib.request.urlopen(server.url + "/", timeout=10)
        finally:
            if server is not None:
                server.close()
            obs.set_recorder(previous)
            rec.close()
        return result, provenance_path(trace).read_bytes()

    def test_outputs_identical_with_telemetry_on(self, tmp_path):
        plain, prov_plain = self._run(tmp_path, "plain")
        live, prov_live = self._run(
            tmp_path, "live", profile=True, serve=True
        )
        assert live.joint == plain.joint
        assert list(live.joint) == list(plain.joint)
        assert live.records == plain.records
        assert prov_live == prov_plain

    def test_outputs_identical_with_telemetry_on_parallel(self, tmp_path):
        plain, prov_plain = self._run(tmp_path, "plain")
        live, prov_live = self._run(
            tmp_path, "live2", profile=True, serve=True, jobs=2
        )
        assert live.joint == plain.joint
        assert list(live.joint) == list(plain.joint)
        assert live.records == plain.records
        assert prov_live == prov_plain


class _StubExperiment:
    """Stands in for an experiment module so CLI wiring tests stay fast."""

    def __init__(self):
        self.calls = 0

    def run(self, trials=None, seed=0, quiet=False):
        self.calls += 1


@pytest.fixture()
def stub_experiment(monkeypatch):
    import repro.experiments.cli as cli_module

    stub = _StubExperiment()
    monkeypatch.setattr(
        cli_module.importlib, "import_module", lambda name: stub
    )
    return stub


class TestCliServeObs:
    def test_rejects_out_of_range_port(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["table1", "--serve-obs", "99999"])
        assert exc.value.code == 2
        assert "must be in [0, 65535]" in capsys.readouterr().err

    def test_malformed_env_port_warns_and_runs(
        self, monkeypatch, capsys, stub_experiment
    ):
        monkeypatch.setenv("REPRO_OBS_PORT", "not-a-port")
        assert main(["table1", "-q"]) == 0
        assert stub_experiment.calls == 1
        err = capsys.readouterr().err
        assert "malformed REPRO_OBS_PORT" in err
        assert "serving observability" not in err

    def test_env_port_starts_server(
        self, monkeypatch, capsys, stub_experiment
    ):
        monkeypatch.setenv("REPRO_OBS_PORT", "0")
        assert main(["table1", "-q"]) == 0
        err = capsys.readouterr().err
        assert "serving observability on http://127.0.0.1:" in err

    def test_flag_overrides_env(self, monkeypatch, capsys, stub_experiment):
        monkeypatch.setenv("REPRO_OBS_PORT", "not-a-port")
        assert main(["table1", "-q", "--serve-obs", "0"]) == 0
        err = capsys.readouterr().err
        assert "malformed" not in err
        assert "serving observability" in err

    def test_profile_flag_installs_profiling_recorder(
        self, stub_experiment, monkeypatch
    ):
        import repro.experiments.cli as cli_module

        seen = {}
        real_run = stub_experiment.run

        def spy_run(trials=None, seed=0, quiet=False):
            rec = obs.get_recorder()
            seen["enabled"] = rec.enabled
            seen["profiling"] = rec.profiling
            return real_run(trials=trials, seed=seed, quiet=quiet)

        stub_experiment.run = spy_run
        assert cli_module.main(["table1", "-q", "--profile"]) == 0
        assert seen == {"enabled": True, "profiling": True}
