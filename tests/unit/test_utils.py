"""Tests for the utils package (rng, validation, timing, tables)."""

import time

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.utils.rng import SeedSequenceTree, spawn_rng, stable_choice, trial_seed
from repro.utils.tables import format_table
from repro.utils.timing import Timer
from repro.utils.validation import (
    check_positive_int,
    check_power_of_two,
    check_probability,
    require,
)


class TestRng:
    def test_same_path_same_stream(self):
        a = spawn_rng(7, "x", 3).standard_normal(5)
        b = spawn_rng(7, "x", 3).standard_normal(5)
        np.testing.assert_array_equal(a, b)

    def test_different_keys_differ(self):
        a = spawn_rng(7, "x", 3).standard_normal(5)
        b = spawn_rng(7, "x", 4).standard_normal(5)
        assert not np.array_equal(a, b)

    def test_key_addressing_is_order_independent(self):
        tree = SeedSequenceTree(1)
        direct = tree.child("trial", 9).generator().integers(0, 1 << 30)
        tree2 = SeedSequenceTree(1)
        tree2.child("trial", 0)  # touching other children must not matter
        again = tree2.child("trial", 9).generator().integers(0, 1 << 30)
        assert direct == again

    def test_trial_seed_independent_of_other_trials(self):
        a = trial_seed(0, 5).integers(0, 1 << 30)
        b = trial_seed(0, 5).integers(0, 1 << 30)
        assert a == b

    def test_string_and_int_keys_distinct(self):
        a = SeedSequenceTree(0).child("1").generator().integers(0, 1 << 30)
        b = SeedSequenceTree(0).child(1).generator().integers(0, 1 << 30)
        assert a != b  # astronomically unlikely to collide

    def test_stable_choice(self):
        rng = np.random.default_rng(0)
        assert stable_choice(rng, [42]) == 42
        with pytest.raises(ValueError):
            stable_choice(rng, [])


class TestValidation:
    def test_require(self):
        require(True, "fine")
        with pytest.raises(ConfigurationError, match="broken"):
            require(False, "broken")

    @pytest.mark.parametrize("bad", [0, -3, 1.5, True, "x"])
    def test_positive_int_rejects(self, bad):
        with pytest.raises(ConfigurationError):
            check_positive_int(bad, "n")

    def test_positive_int_accepts(self):
        assert check_positive_int(7, "n") == 7

    def test_probability(self):
        assert check_probability(0.5, "p") == 0.5
        for bad in (-0.1, 1.1, "x"):
            with pytest.raises(ConfigurationError):
                check_probability(bad, "p")

    def test_power_of_two(self):
        assert check_power_of_two(8, "n") == 8
        for bad in (0, 3, 12):
            with pytest.raises(ConfigurationError):
                check_power_of_two(bad, "n")


class TestTimer:
    def test_accumulates(self):
        t = Timer()
        with t:
            time.sleep(0.01)
        first = t.elapsed
        with t:
            time.sleep(0.01)
        assert t.elapsed > first >= 0.01

    def test_reset(self):
        t = Timer()
        with t:
            pass
        t.reset()
        assert t.elapsed == 0.0
        assert t.splits == []

    def test_splits_record_each_lap(self):
        t = Timer()
        with t:
            pass
        with t:
            time.sleep(0.01)
        assert len(t.splits) == 2
        assert t.splits[1] >= 0.01
        assert sum(t.splits) == pytest.approx(t.elapsed)

    def test_reenter_raises_runtime_error(self):
        t = Timer()
        with pytest.raises(RuntimeError):
            with t:
                with t:
                    pass
        # __exit__ of the outer ``with`` already ran; timer is stopped
        assert not t.running

    def test_exit_without_enter_raises(self):
        with pytest.raises(RuntimeError):
            Timer().__exit__(None, None, None)

    def test_reset_while_running_raises(self):
        t = Timer()
        with pytest.raises(RuntimeError):
            with t:
                t.reset()


class TestTables:
    def test_alignment_and_title(self):
        out = format_table(["a", "bb"], [(1, 2.5), (30, 4.125)], title="T", ndigits=2)
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "2.50" in out and "4.12" in out

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a"], [(1, 2)])

    def test_empty_rows(self):
        out = format_table(["col"], [])
        assert "col" in out
