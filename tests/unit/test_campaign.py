"""Tests for the campaign driver and the disk cache."""

import json

import numpy as np
import pytest

from repro import obs
from repro.errors import ConfigurationError, SimulatedCrashError
from repro.fi.cache import cached_campaign
from repro.fi.campaign import CampaignResult, Deployment, run_campaign
from repro.fi.outcomes import Outcome


class TinyApp:
    """A deliberately simple SPMD app: distributed dot product.

    The checker accepts relative deviations below ``tol``.
    """

    name = "tiny"

    def __init__(self, n=64, tol=1e-9, crash_on_nan=False):
        self.n = n
        self.tol = tol
        self.crash_on_nan = crash_on_nan

    def program(self, rank, size, comm, fp):
        chunk = self.n // size
        x = fp.asarray(np.linspace(1.0, 2.0, chunk) + rank)
        local = fp.dot(x, x)
        if self.crash_on_nan:
            # amplification squares corrupted magnitudes into overflow
            amp = fp.mul(local, local)
            amp = fp.mul(amp, amp)
            if not np.isfinite(amp.value):
                raise SimulatedCrashError("overflow detected")
        total = yield comm.allreduce(local, op="sum")
        if rank == 0:
            return {"total": total.value}
        return None

    def verify(self, output, reference):
        got, ref = output["total"], reference["total"]
        if not (np.isfinite(got) and np.isfinite(ref)):
            return False
        return abs(got - ref) <= self.tol * abs(ref)

    def cache_key(self):
        return f"tiny(n={self.n},tol={self.tol},crash={self.crash_on_nan})"


class TestDeployment:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            Deployment(nprocs=0, trials=10)
        with pytest.raises(ConfigurationError):
            Deployment(nprocs=4, trials=0)
        with pytest.raises(ConfigurationError):
            Deployment(nprocs=4, trials=10, n_errors=2)  # needs target_rank

    def test_multi_error_serial_defaults_to_rank0(self):
        dep = Deployment(nprocs=1, trials=5, n_errors=3)
        assert dep.effective_target_rank == 0


class TestRunCampaign:
    def test_rates_sum_to_one(self):
        res = run_campaign(TinyApp(), Deployment(nprocs=4, trials=40, seed=1))
        assert res.n_trials == 40
        assert res.success_rate + res.sdc_rate + res.failure_rate == pytest.approx(1.0)

    def test_deterministic_under_seed(self):
        a = run_campaign(TinyApp(), Deployment(nprocs=2, trials=30, seed=5))
        b = run_campaign(TinyApp(), Deployment(nprocs=2, trials=30, seed=5))
        assert a.joint == b.joint

    def test_different_seeds_differ(self):
        a = run_campaign(TinyApp(), Deployment(nprocs=2, trials=60, seed=1))
        b = run_campaign(TinyApp(), Deployment(nprocs=2, trials=60, seed=2))
        assert a.joint != b.joint  # overwhelmingly likely

    def test_propagation_counts_within_bounds(self):
        res = run_campaign(TinyApp(), Deployment(nprocs=4, trials=50, seed=3))
        assert all(1 <= n <= 4 for n in res.propagation_counts())

    def test_crash_classified_as_failure(self):
        res = run_campaign(
            TinyApp(crash_on_nan=True), Deployment(nprocs=2, trials=120, seed=7)
        )
        # exponent flips regularly produce inf/nan in the dot product
        assert res.failure_rate > 0

    def test_records_kept_on_request(self):
        res = run_campaign(
            TinyApp(), Deployment(nprocs=1, trials=10, seed=0), keep_records=True
        )
        assert len(res.records) == 10

    def test_conditional_success_rate(self):
        res = run_campaign(TinyApp(), Deployment(nprocs=4, trials=60, seed=9))
        for n in range(1, 5):
            rate = res.success_rate_given_contaminated(n)
            assert rate is None or 0.0 <= rate <= 1.0

    def test_serial_multi_error_campaign(self):
        res = run_campaign(
            TinyApp(), Deployment(nprocs=1, trials=30, n_errors=5, seed=2)
        )
        assert res.n_trials == 30
        # all five flips hit rank 0; contamination is exactly one process
        assert set(res.propagation_counts()) <= {1}

    def test_activation_rate(self):
        res = run_campaign(TinyApp(), Deployment(nprocs=2, trials=20, seed=4))
        assert 0.0 <= res.activation_rate() <= 1.0


class TestCampaignObservability:
    """Per-trial events must match the CampaignResult aggregates."""

    def _run_traced(self, deployment, app=None):
        mem = obs.MemorySink()
        with obs.recording(obs.Recorder([mem])) as rec:
            result = run_campaign(app or TinyApp(), deployment)
        return result, mem, rec

    def test_trial_events_match_joint(self):
        res, mem, _ = self._run_traced(Deployment(nprocs=2, trials=40, seed=1))
        trials = mem.of(obs.TrialFinished)
        assert len(trials) == res.n_trials == 40
        for outcome in Outcome:
            emitted = sum(1 for e in trials if e.outcome == outcome.value)
            assert emitted == res.outcome_count(outcome)
        # contamination spread per trial replays the joint distribution
        spread = sorted(e.n_contaminated for e in trials)
        expected = sorted(
            n for (_, n, _), c in res.joint.items() for _ in range(c)
        )
        assert spread == expected

    def test_campaign_start_finish_events(self):
        res, mem, _ = self._run_traced(Deployment(nprocs=2, trials=10, seed=2))
        (started,) = mem.of(obs.CampaignStarted)
        assert (started.app, started.nprocs, started.trials) == ("tiny", 2, 10)
        (finished,) = mem.of(obs.CampaignFinished)
        assert finished.success_rate == pytest.approx(res.success_rate)
        assert finished.sdc_rate == pytest.approx(res.sdc_rate)

    def test_fault_injected_events_match_activation(self):
        res, mem, _ = self._run_traced(Deployment(nprocs=1, trials=15, seed=3))
        injected = mem.of(obs.FaultInjected)
        # single-error deployment: one fired flip per activated trial
        activated_trials = sum(
            c for (_, _, act), c in res.joint.items() if act
        )
        assert len(injected) == activated_trials
        assert all(e.rank == 0 for e in injected)

    def test_span_totals_nest(self):
        _, _, rec = self._run_traced(Deployment(nprocs=1, trials=5, seed=0))
        assert rec.span_totals["campaign"][0] == 1
        assert rec.span_totals["campaign/profile"][0] == 1
        assert rec.span_totals["campaign/trial"][0] == 5
        assert rec.span_totals["campaign/trial/inject"][0] == 5
        # children are contained in their parent's wall-clock
        assert rec.span_totals["campaign/trial"][1] <= rec.span_totals["campaign"][1]

    def test_metrics_counters(self):
        res, _, rec = self._run_traced(Deployment(nprocs=2, trials=10, seed=4))
        by_outcome = {
            o: rec.counters.get(f"campaign.trials.{o.value}", 0) for o in Outcome
        }
        assert by_outcome == {o: res.outcome_count(o) for o in Outcome}
        # both ranks performed candidate FP work
        assert rec.counters["fp.add.rank0"] > 0
        assert rec.counters["fp.add.rank1"] > 0
        assert len(rec.histograms["taint.contamination_spread"]) == 10

    def test_disabled_recorder_emits_nothing(self):
        mem = obs.MemorySink()
        with obs.recording(obs.Recorder([mem], enabled=False)) as rec:
            run_campaign(TinyApp(), Deployment(nprocs=1, trials=5, seed=0))
        assert mem.events == []
        assert rec.counters == {}
        assert rec.span_totals == {}

    def test_instrumentation_does_not_change_results(self):
        dep = Deployment(nprocs=2, trials=20, seed=6)
        plain = run_campaign(TinyApp(), dep)
        traced, _, _ = self._run_traced(dep)
        assert traced.joint == plain.joint


class TestCache:
    def test_roundtrip(self, tmp_cache):
        app = TinyApp()
        dep = Deployment(nprocs=2, trials=25, seed=11)
        first = cached_campaign(app, dep)
        files = list(tmp_cache.glob("*.json"))
        assert len(files) == 1
        second = cached_campaign(app, dep)
        assert second.joint == first.joint
        assert second.parallel_unique_fraction == first.parallel_unique_fraction

    def test_cache_disabled(self, tmp_cache, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", "0")
        cached_campaign(TinyApp(), Deployment(nprocs=1, trials=5, seed=0))
        assert list(tmp_cache.glob("*.json")) == []

    def test_corrupt_entry_recomputed(self, tmp_cache):
        app = TinyApp()
        dep = Deployment(nprocs=1, trials=5, seed=0)
        cached_campaign(app, dep)
        (path,) = tmp_cache.glob("*.json")
        path.write_text("{ not json")
        res = cached_campaign(app, dep)
        assert res.n_trials == 5
        assert json.loads(path.read_text())["app_name"] == "tiny"

    def test_truncated_entry_deleted_and_recomputed(self, tmp_cache):
        app = TinyApp()
        dep = Deployment(nprocs=1, trials=5, seed=0)
        cached_campaign(app, dep)
        (path,) = tmp_cache.glob("*.json")
        path.write_text(path.read_text()[:40])  # truncated mid-write
        mem = obs.MemorySink()
        with obs.recording(obs.Recorder([mem])):
            res = cached_campaign(app, dep)
        assert res.n_trials == 5
        (corrupt,) = mem.of(obs.CacheCorrupt)
        assert corrupt.path == str(path)
        assert mem.of(obs.CacheMiss) and mem.of(obs.CacheWrite)
        # the rewritten entry is valid again and served as a hit
        with obs.recording(obs.Recorder([mem])):
            cached_campaign(app, dep)
        (hit,) = mem.of(obs.CacheHit)
        assert hit.size_bytes == path.stat().st_size

    def test_hit_and_miss_events(self, tmp_cache):
        app = TinyApp()
        dep = Deployment(nprocs=1, trials=5, seed=3)
        mem = obs.MemorySink()
        with obs.recording(obs.Recorder([mem])) as rec:
            cached_campaign(app, dep)   # miss + write
            cached_campaign(app, dep)   # hit
        assert len(mem.of(obs.CacheMiss)) == 1
        assert len(mem.of(obs.CacheWrite)) == 1
        assert len(mem.of(obs.CacheHit)) == 1
        assert rec.counters["cache.hits"] == 1
        assert rec.counters["cache.hit_bytes"] > 0

    def test_distinct_deployments_distinct_entries(self, tmp_cache):
        app = TinyApp()
        cached_campaign(app, Deployment(nprocs=1, trials=5, seed=0))
        cached_campaign(app, Deployment(nprocs=1, trials=5, seed=1))
        assert len(list(tmp_cache.glob("*.json"))) == 2

    def test_max_steps_changes_the_key(self):
        from repro.fi.cache import _deployment_key

        base = Deployment(nprocs=2, trials=10, seed=0)
        guarded = Deployment(nprocs=2, trials=10, seed=0, max_steps=500)
        assert _deployment_key(base) != _deployment_key(guarded)
        # ... but keys without the guard keep their historical form, so
        # entries cached before the field existed are still served
        assert ",ms=" not in _deployment_key(base)
        assert _deployment_key(guarded).endswith(",ms=500")

    def test_jobs_not_part_of_the_key(self):
        from repro.fi.cache import _deployment_key

        a = Deployment(nprocs=2, trials=10, seed=0, jobs=4)
        b = Deployment(nprocs=2, trials=10, seed=0, jobs=1)
        assert _deployment_key(a) == _deployment_key(b)

    def test_multibit_pattern_has_its_own_entry(self, tmp_cache):
        app = TinyApp()
        single = cached_campaign(app, Deployment(nprocs=1, trials=20, seed=0))
        double = cached_campaign(
            app, Deployment(nprocs=1, trials=20, seed=0, bits_per_error=2)
        )
        assert len(list(tmp_cache.glob("*.json"))) == 2
        # a 2-bit fault is at least as damaging on average
        assert double.success_rate <= single.success_rate + 0.2


class TestMultiBitCampaign:
    def test_two_bit_faults_fire_both_flips(self):
        res = run_campaign(
            TinyApp(), Deployment(nprocs=1, trials=30, seed=1, bits_per_error=2)
        )
        assert res.activation_rate() == 1.0

    def test_validation(self):
        import pytest as _pt

        with _pt.raises(Exception):
            Deployment(nprocs=1, trials=1, bits_per_error=0)


class TestCampaignResultAccessors:
    def test_rate_nan_when_empty(self):
        res = CampaignResult(
            app_name="x",
            deployment=Deployment(nprocs=1, trials=1),
            joint={},
            parallel_unique_fraction=0.0,
            total_instructions=0,
            candidate_instructions=0,
            profile_time=0.0,
            injection_time=0.0,
        )
        assert np.isnan(res.success_rate)

    def test_outcome_count(self):
        res = CampaignResult(
            app_name="x",
            deployment=Deployment(nprocs=2, trials=3),
            joint={
                (Outcome.SUCCESS, 1, True): 2,
                (Outcome.SDC, 2, True): 1,
            },
            parallel_unique_fraction=0.0,
            total_instructions=0,
            candidate_instructions=0,
            profile_time=0.0,
            injection_time=0.0,
        )
        assert res.outcome_count(Outcome.SUCCESS) == 2
        assert res.success_rate == pytest.approx(2 / 3)
        assert res.propagation_counts() == {1: 2, 2: 1}
